#!/usr/bin/env python
"""Scenario: interoperating with MOTChallenge-format data.

A real deployment does not use the simulator — it has detection and
tracking files in the MOTChallenge CSV format.  This example shows the
full interchange loop:

  1. export simulated detections / tracks / ground truth as MOT files,
  2. reload them (all simulation-only attributes are gone, exactly as
     with real data),
  3. run a tracker on the external detections,
  4. run the query engine on the external tracks,
  5. point out the single integration seam for merging: any object with
     an ``extract(detection) -> np.ndarray`` method can replace
     ``SimReIDModel`` inside ``ReidScorer`` — that is where a real ReID
     network plugs in.
"""

import tempfile
from pathlib import Path

from repro import (
    CountQuery,
    NoisyDetector,
    QueryEngine,
    SortTracker,
    mot17_like,
    simulate_world,
)
from repro.io import (
    read_detections_mot,
    read_tracks_mot,
    world_to_mot_gt,
    write_detections_mot,
    write_tracks_mot,
)


def main() -> None:
    preset = mot17_like()
    world = simulate_world(preset.config, n_frames=400, seed=6)
    detections = NoisyDetector().detect_video(world, seed=106)
    tracks = SortTracker().run(detections)

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        det_path = tmp / "det.txt"
        trk_path = tmp / "tracks.txt"
        gt_path = tmp / "gt.txt"

        # 1. Export.
        write_detections_mot(detections, det_path)
        write_tracks_mot(tracks, trk_path)
        world_to_mot_gt(world, gt_path)
        print("exported:")
        for path in (det_path, trk_path, gt_path):
            lines = path.read_text().count("\n")
            print(f"  {path.name}: {lines} rows")
        print("first detection row:", det_path.read_text().split()[0])

        # 2. Reload — this is what real external data looks like.
        ext_detections = read_detections_mot(det_path)
        ext_tracks = read_tracks_mot(trk_path)
        print(
            f"\nreloaded {sum(len(f) for f in ext_detections)} detections, "
            f"{len(ext_tracks)} tracks (simulation attributes stripped)"
        )

        # 3. Trackers run on external detections unchanged.
        retracked = SortTracker().run(ext_detections)
        print(f"re-tracked external detections -> {len(retracked)} tracks")

        # 4. Queries run on external tracks unchanged.
        engine = QueryEngine.from_tracks(ext_tracks)
        answer = engine.run(CountQuery(min_frames=150))
        print(
            f"Count(>=150 frames) on external tracks: {answer.count} objects"
        )

    # 5. The merging seam.
    print(
        "\nTo merge external tracks, construct ReidScorer with any model\n"
        "exposing  extract(detection) -> np.ndarray  (a real ReID network\n"
        "wrapper); every merger (BaselineMerger, TMerge, ...) then runs\n"
        "unchanged.  In this repository SimReIDModel plays that role for\n"
        "simulated worlds."
    )


if __name__ == "__main__":
    main()
