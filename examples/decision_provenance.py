#!/usr/bin/env python
"""Scenario: *why* did the merger accept — or prune — this track pair?

Aggregate metrics say how well TMerge did; the decision-provenance
ledger (DESIGN.md §14) says *why* each individual call went the way it
did.  This example attaches a :class:`~repro.provenance.DecisionLedger`
to a seeded ingestion run (pure observation — the merge results are
bit-identical with it on or off), exports the event log to JSONL the
way an operator would (``python -m repro.experiments serve
--ledger-out``), reloads it, and reconstructs two full decision chains
with :func:`~repro.provenance.explain_pair`: one pair the merger
accepted as a polyonymous candidate, and one it pruned.  The same
chains are available from the terminal via ``python -m
repro.experiments explain --ledger <file> --pair A B``.
"""

import tempfile
from pathlib import Path

from repro import TMerge, TracktorTracker, simulate_world
from repro.core.pipeline import IngestionPipeline
from repro.provenance import DecisionLedger, explain_pair, load_events_jsonl
from repro.synth.datasets import mot17_like


def build_pipeline(ledger):
    """The quickstart pipeline with a decision ledger attached."""
    return IngestionPipeline(
        tracker=TracktorTracker(),
        merger=TMerge(
            k=0.1, tau_max=400, batch_size=10, seed=3,
            ulb_scale=0.3, ulb_interval=10,
        ),
        window_length=300,
        ledger=ledger,
    )


def pick_pairs(events):
    """One accepted and one pruned pair from the recorded final verdicts.

    Every window's ``window`` event lists the candidate pairs in arm
    order; its ``final`` event lists the chosen arm indices.  The first
    window that both chose and rejected something gives us our two
    chains.
    """
    windows = {
        e.window: e.data["pairs"] for e in events if e.kind == "window"
    }
    for event in events:
        if event.kind != "final":
            continue
        pairs = windows[event.window]
        chosen = set(event.data["chosen"])
        pruned = [i for i in range(len(pairs)) if i not in chosen]
        if chosen and pruned:
            accepted = tuple(pairs[next(iter(sorted(chosen)))])
            rejected = tuple(pairs[pruned[0]])
            return event.window, accepted, rejected
    raise RuntimeError("no window produced both an accept and a prune")


def main(n_frames: int = 600) -> None:
    """Run seeded, export the ledger, explain one accept and one prune."""
    world = simulate_world(mot17_like().config, n_frames=n_frames, seed=2)
    ledger = DecisionLedger()
    result = build_pipeline(ledger).run(world)
    print(
        f"ingested {n_frames} frames in {len(result.windows)} windows: "
        f"{len(result.tracks)} tracks -> "
        f"{len(result.merged_tracks)} after merging"
    )
    print(
        f"ledger: {len(ledger)} events recorded "
        f"({ledger.n_dropped} dropped by the capacity bound)"
    )

    # --- export the way an operator would, and reload ------------------
    path = Path(tempfile.mkdtemp()) / "decision_ledger.jsonl"
    n_written = ledger.export_jsonl(str(path))
    events = load_events_jsonl(str(path))
    assert [e.to_dict() for e in events] == ledger.to_dicts()
    print(f"exported {n_written} events to {path} and reloaded them\n")

    # --- reconstruct one accept and one prune chain --------------------
    window, accepted, rejected = pick_pairs(events)
    chain = explain_pair(events, accepted, window=window)
    print(f"=== why was pair {accepted} ACCEPTED? ===")
    print(chain.render())
    print()
    chain = explain_pair(events, rejected, window=window)
    print(f"=== why was pair {rejected} PRUNED? ===")
    print(chain.render())


if __name__ == "__main__":
    main()
