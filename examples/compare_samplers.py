#!/usr/bin/env python
"""Scenario: choosing a polyonymous-pair identification strategy.

Reproduces a slice of the paper's §V-D comparison on one video: runs the
exhaustive baseline (BL), proportional sampling (PS), the LCB bandit and
TMerge (plus its batched form) on the same window, and prints the
recall / simulated-cost frontier so the trade-offs are visible side by
side.
"""

from repro import (
    BaselineMerger,
    LcbMerger,
    NoisyDetector,
    ProportionalMerger,
    TMerge,
    TracktorTracker,
    match_tracks_to_gt,
    mot17_like,
    polyonymous_pairs,
    simulate_world,
)
from repro.core import WindowedTracks, build_track_pairs, partition_windows
from repro.metrics.recall import window_recall
from repro.reid import CostModel, ReidScorer, SimReIDModel


def main() -> None:
    preset = mot17_like()
    world = simulate_world(preset.config, n_frames=700, seed=0)
    detections = NoisyDetector().detect_video(world, seed=100)
    tracks = TracktorTracker().run(detections)
    assignment = match_tracks_to_gt(tracks, world)

    windows = partition_windows(world.n_frames, preset.default_window)
    windowed = WindowedTracks.assign(tracks, windows)
    pairs = build_track_pairs(windowed.tracks_of(0))
    gt = polyonymous_pairs(pairs, assignment)
    print(
        f"window 0: {len(pairs)} track pairs, {len(gt)} truly polyonymous "
        f"({100 * len(gt) / len(pairs):.1f}%)"
    )

    mergers = [
        BaselineMerger(k=0.05),
        ProportionalMerger(eta=0.001, k=0.05, seed=3),
        LcbMerger(tau_max=5000, k=0.05, seed=3),
        TMerge(k=0.05, tau_max=10_000, seed=3),
        TMerge(k=0.05, tau_max=1000, batch_size=100, seed=3),
    ]

    print(f"\n{'method':<14} {'REC':>6} {'sim seconds':>12} {'FPS':>9}")
    for merger in mergers:
        for pair in pairs:
            pair.reset_sampling()
        scorer = ReidScorer(SimReIDModel(world, seed=1), cost=CostModel())
        result = merger.run(pairs, scorer)
        rec = window_recall(result.candidate_keys, gt)
        fps = world.n_frames / result.simulated_seconds
        print(
            f"{merger.name:<14} {rec:>6.3f} "
            f"{result.simulated_seconds:>12.1f} {fps:>9.1f}"
        )

    print(
        "\nReading: the exhaustive baseline sets the accuracy ceiling but "
        "pays full price;\nTMerge approaches the ceiling at a fraction of "
        "the ReID cost, and batching\n(TMerge-B100) multiplies the "
        "throughput again."
    )


if __name__ == "__main__":
    main()
