#!/usr/bin/env python
"""Scenario: declarative queries over a surveillance feed (§V-H).

Motivating use case from the paper's introduction: find scenes where the
same people linger or co-occur in a monitored area.  Track fragmentation
silently breaks such queries — a person who was occluded mid-visit looks
like two short visits.  This example quantifies the damage and the repair.

It runs the Count and Co-occurrence queries three ways:
  1. on the ground truth (the reference answer),
  2. on raw Tracktor output,
  3. on Tracktor output merged with TMerge's confirmed candidates,
and prints recall for (2) and (3).
"""

from repro import (
    CoOccurrenceQuery,
    CountQuery,
    NoisyDetector,
    QueryEngine,
    TMerge,
    TracktorTracker,
    cooccurrence_query_recall,
    count_query_recall,
    match_tracks_to_gt,
    merge_tracks,
    mot17_like,
    polyonymous_pairs,
    simulate_world,
)
from repro.core import build_track_pairs, partition_windows, WindowedTracks
from repro.reid import CostModel, ReidScorer, SimReIDModel


def identify_and_confirm(world, tracks, assignment, window_length):
    """Run TMerge per window; confirm candidates (the paper's human-
    inspection step, §I) against ground truth."""
    scorer = ReidScorer(SimReIDModel(world, seed=1), cost=CostModel())
    windows = partition_windows(world.n_frames, window_length)
    windowed = WindowedTracks.assign(tracks, windows)
    merger = TMerge(k=0.05, tau_max=2000, batch_size=100, seed=3)
    confirmed = set()
    for c in range(len(windows)):
        pairs = build_track_pairs(
            windowed.tracks_of(c), windowed.previous_tracks_of(c)
        )
        if not pairs:
            continue
        candidates = merger.run(pairs, scorer).candidate_keys
        confirmed |= candidates & polyonymous_pairs(pairs, assignment)
    return confirmed, scorer.cost


def main() -> None:
    preset = mot17_like()
    world = simulate_world(preset.config, n_frames=700, seed=4)
    detections = NoisyDetector().detect_video(world, seed=104)
    tracks = TracktorTracker().run(detections)
    assignment = match_tracks_to_gt(tracks, world)
    print(
        f"scene: {len(world.objects)} people -> {len(tracks)} raw tracks"
    )

    confirmed, cost = identify_and_confirm(
        world, tracks, assignment, preset.default_window
    )
    merged, id_map = merge_tracks(tracks, sorted(confirmed))
    merged_assignment = match_tracks_to_gt(merged, world)
    print(
        f"TMerge confirmed {len(confirmed)} polyonymous pairs in "
        f"{cost.seconds:.1f} simulated seconds; "
        f"{len(tracks)} -> {len(merged)} tracks"
    )

    count_query = CountQuery(min_frames=200)
    cooccur_query = CoOccurrenceQuery(group_size=3, min_frames=50)

    print("\nQuery: people visible for >= 200 frames")
    raw = count_query_recall(tracks, world, assignment, count_query)
    fixed = count_query_recall(merged, world, merged_assignment, count_query)
    print(f"  recall without TMerge: {raw:.2f}")
    print(f"  recall with    TMerge: {fixed:.2f}")

    print("\nQuery: clips (>= 50 frames) with the same 3 people together")
    raw = cooccurrence_query_recall(tracks, world, assignment, cooccur_query)
    fixed = cooccurrence_query_recall(
        merged, world, merged_assignment, cooccur_query
    )
    print(f"  recall without TMerge: {raw:.2f}")
    print(f"  recall with    TMerge: {fixed:.2f}")

    # Show a concrete answer set on the merged store.
    engine = QueryEngine.from_tracks(merged)
    groups = engine.run(cooccur_query).groups
    print(f"\n{len(groups)} co-occurring triples found; first few:")
    for group in sorted(groups)[:5]:
        print(f"  track ids {group}")


if __name__ == "__main__":
    main()
