#!/usr/bin/env python
"""Quickstart: ingest one simulated surveillance video with TMerge.

Walks the full pipeline of the paper:

    simulate video  →  detect  →  track (Tracktor)  →  identify
    polyonymous pairs with TMerge  →  merge fragments  →  query

and prints what each stage produced.  Runs in under a minute on a laptop.
"""

from repro import (
    CountQuery,
    IngestionPipeline,
    QueryEngine,
    TMerge,
    TracktorTracker,
    match_tracks_to_gt,
    mot17_like,
    polyonymous_pairs,
    simulate_world,
)
from repro.metrics.recall import average_recall


def main() -> None:
    # 1. A synthetic "MOT-17-like" surveillance scene: pedestrians, static
    #    occluders, occasional glare.
    preset = mot17_like()
    world = simulate_world(preset.config, n_frames=700, seed=0)
    print(f"simulated {world.n_frames} frames, {len(world.objects)} objects")

    # 2. The ingestion pipeline: detector -> Tracktor -> TMerge per window.
    pipeline = IngestionPipeline(
        tracker=TracktorTracker(),
        merger=TMerge(k=0.05, tau_max=2000, batch_size=100, seed=3),
        window_length=preset.default_window,
        # Automatic merging: only apply confidently-similar candidates;
        # the rest would go to the paper's optional human inspection.
        merge_score_threshold=0.45,
    )
    result = pipeline.run(world)
    print(
        f"tracker produced {len(result.tracks)} tracks "
        f"({len(result.tracks) - len(world.objects)} more than objects "
        f"actually present — fragmentation!)"
    )

    # 3. How well did TMerge find the fragmented pairs?
    assignment = match_tracks_to_gt(result.tracks, world)
    per_window = []
    for pairs, window_result in zip(
        result.window_pairs, result.window_results
    ):
        gt = polyonymous_pairs(pairs, assignment)
        per_window.append((window_result.candidate_keys, gt))
        if gt:
            print(
                f"  window {len(per_window) - 1}: |P_c|={len(pairs)}, "
                f"|P*_c|={len(gt)}, found "
                f"{len(window_result.candidate_keys & gt)}"
            )
    print(f"REC = {average_recall(per_window):.3f}")
    print(
        f"simulated merging cost: {result.total_simulated_seconds:.1f}s "
        f"({result.fps:.1f} frames/sec)"
    )

    # 4. Tracks after merging, and a downstream query.
    print(
        f"{len(result.tracks)} tracks merged down to "
        f"{len(result.merged_tracks)}"
    )
    engine = QueryEngine.from_tracks(result.merged_tracks)
    answer = engine.run(CountQuery(min_frames=200))
    print(
        f"Count query (>=200 frames): {answer.count} objects "
        f"{sorted(answer.qualifying)[:10]}"
    )


if __name__ == "__main__":
    main()
