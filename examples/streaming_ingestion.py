#!/usr/bin/env python
"""Scenario: streaming ingestion of a long (unbounded) video feed.

The paper's windowing (§II) exists precisely so the method works on
streams: half-overlapping windows are processed "in order of succession",
each window pairing its new tracks against its own and the previous
window's.  This example drives that loop explicitly, window by window,
the way a live deployment would — tracking incrementally, merging
incrementally, and reporting running statistics after every window.
"""

from repro import (
    NoisyDetector,
    TMerge,
    TracktorTracker,
    UnionFind,
    match_tracks_to_gt,
    pathtrack_like,
    polyonymous_pairs,
    simulate_world,
)
from repro.core import WindowedTracks, build_track_pairs, partition_windows
from repro.metrics.recall import window_recall
from repro.reid import CostModel, ReidScorer, SimReIDModel


def main() -> None:
    preset = pathtrack_like()
    n_frames = 2400
    window_length = 2000  # L >= 2 * L_max = 2000

    world = simulate_world(preset.config, n_frames=n_frames, seed=2)
    detections = NoisyDetector().detect_video(world, seed=102)
    # A deployment would track incrementally; functionally the windowed
    # view below is identical, so we reuse one tracker pass.
    tracks = TracktorTracker().run(detections)
    assignment = match_tracks_to_gt(tracks, world)

    windows = partition_windows(n_frames, window_length)
    windowed = WindowedTracks.assign(tracks, windows)
    merger = TMerge(k=0.05, tau_max=1500, batch_size=100, seed=3)
    scorer = ReidScorer(SimReIDModel(world, seed=1), cost=CostModel())
    dsu = UnionFind([t.track_id for t in tracks])

    print(
        f"streaming {n_frames} frames in {len(windows)} windows of "
        f"L={window_length} (stride {window_length // 2})"
    )
    total_found = 0
    total_gt = 0
    for c, window in enumerate(windows):
        pairs = build_track_pairs(
            windowed.tracks_of(c), windowed.previous_tracks_of(c)
        )
        if not pairs:
            print(f"window {c}: no new track pairs")
            continue
        before = scorer.cost.seconds
        result = merger.run(pairs, scorer)
        gt = polyonymous_pairs(pairs, assignment)
        confirmed = result.candidate_keys & gt  # human-inspection step
        for a, b in confirmed:
            dsu.union(a, b)
        total_found += len(confirmed)
        total_gt += len(gt)
        rec = window_recall(result.candidate_keys, gt)
        rec_text = f"{rec:.2f}" if rec is not None else "n/a"
        print(
            f"window {c} [{window.start}:{window.end}]: "
            f"{len(pairs)} pairs, {len(gt)} polyonymous, REC {rec_text}, "
            f"+{scorer.cost.seconds - before:.1f}s sim"
        )

    n_components = len(dsu.components())
    print(
        f"\nrunning identity map: {len(tracks)} raw tracks -> "
        f"{n_components} merged identities "
        f"({total_found}/{total_gt} fragment pairs caught)"
    )
    print(
        f"total simulated merging cost: {scorer.cost.seconds:.1f}s "
        f"for {n_frames} frames "
        f"({n_frames / scorer.cost.seconds:.1f} FPS)"
    )


if __name__ == "__main__":
    main()
