#!/usr/bin/env python
"""Scenario: streaming ingestion of a long (unbounded) video feed.

The paper's windowing (§II) exists precisely so the method works on
streams: half-overlapping windows are processed "in order of
succession", each window pairing its new tracks against its own and the
previous window's.  This example drives the real online service
(``repro.streaming``): frames arrive as events with bounded arrival
disorder, a watermark admits or sheds them, windows close incrementally
and merge through the parallel engine's window-local regime, completed
windows are evicted (bounded memory) — and halfway through we *kill*
the service and resume it from its durable checkpoint, verifying the
resumed emissions are bit-identical to an uninterrupted run.
"""

from repro import TMerge, TracktorTracker, UnionFind, simulate_world
from repro.resilience import CheckpointStore
from repro.streaming import (
    BackpressurePolicy,
    StreamingIngestionService,
    SyntheticFeedSource,
)
from repro.synth.datasets import pathtrack_like


def build_service(store, *, window_length, policy):
    """One service instance bound to ``store`` (rebuilt across 'crashes')."""
    return StreamingIngestionService(
        TracktorTracker(),
        TMerge(k=0.05, tau_max=400, batch_size=10, seed=3),
        window_length=window_length,
        allowed_lateness=4,
        max_open_windows=8,
        policy=policy,
        workers=1,
        store=store,
    )


def main(n_frames: int = 1200, window_length: int = 400,
         kill_after: int = 2) -> None:
    """Run the feed twice: uninterrupted, then killed + resumed."""
    preset = pathtrack_like()
    world = simulate_world(preset.config, n_frames=n_frames, seed=2)
    source = SyntheticFeedSource(world, disorder_ms=60.0, disorder_seed=5)
    policy = BackpressurePolicy(mode="block", capacity=64)

    print(
        f"streaming {n_frames} frames as events "
        f"(60 ms arrival jitter, watermark lateness 4 frames), "
        f"windows of L={window_length}"
    )

    # --- reference: one uninterrupted run -----------------------------
    reference = build_service(
        CheckpointStore(), window_length=window_length, policy=policy
    ).run(source)
    for emission in reference.emissions:
        r = emission.result
        print(
            f"window {emission.index} "
            f"[{emission.window.start}:{emission.window.end}]: "
            f"{emission.n_tracks} tracks, {r.n_pairs} pairs, "
            f"{len(r.candidates)} candidates, "
            f"lag {emission.lag_ms:.0f} ms sim"
        )
    counters = {k: v for k, v in sorted(reference.counters.items())}
    print(
        f"peak open windows: {reference.peak_open_windows} (bound 8), "
        f"counters: {counters}"
    )

    # --- kill after a few windows, resume from the checkpoint ---------
    store = CheckpointStore()
    first = build_service(
        store, window_length=window_length, policy=policy
    ).run(source, stop_after_windows=kill_after)
    print(
        f"\nkilled the service after {len(first.emissions)} windows "
        f"(source offset {first.position}); restarting from checkpoint..."
    )
    resumed = build_service(
        store, window_length=window_length, policy=policy
    ).run(source)
    stitched = first.fingerprints() + resumed.fingerprints()
    identical = stitched == reference.fingerprints()
    print(
        f"resumed run emitted {len(resumed.emissions)} more windows; "
        f"stitched emissions bit-identical to uninterrupted run: "
        f"{identical}"
    )
    if not identical:
        raise AssertionError("restart equivalence violated")

    # --- the running identity map a consumer would maintain -----------
    track_ids = sorted(
        {tid for e in reference.emissions for pair in e.result.candidates
         for tid in pair.key}
    )
    dsu = UnionFind(track_ids)
    for emission in reference.emissions:
        for pair in emission.result.candidates:
            a, b = pair.key
            dsu.union(a, b)
    print(
        f"\nrunning identity map: {len(track_ids)} tracks in merge "
        f"candidates -> {len(dsu.components())} merged identities"
    )


if __name__ == "__main__":
    main()
