"""Unit tests for repro.faults (injectors, profiles, determinism)."""

import numpy as np
import pytest

from helpers import make_detection, StubReidModel

from repro.faults import (
    ArmedCrash,
    FaultProfile,
    FaultyReidModel,
    FeatureCorruptionInjector,
    FrameDropInjector,
    PROFILES,
    ReidCallFaultInjector,
    ReidFaultError,
    ReidTimeoutError,
    WindowCrashError,
    fault_profile,
)


def fault_pattern(injector: ReidCallFaultInjector, n: int = 50) -> list[str]:
    """The outcome of n consecutive calls, as a compact trace."""
    trace = []
    for _ in range(n):
        try:
            injector.check()
            trace.append("ok")
        except ReidTimeoutError:
            trace.append("timeout")
        except ReidFaultError:
            trace.append("fail")
    return trace


class TestReidCallFaultInjector:
    def test_zero_rates_never_fail(self):
        injector = ReidCallFaultInjector(np.random.default_rng(0))
        assert fault_pattern(injector) == ["ok"] * 50

    def test_full_rate_always_fails(self):
        injector = ReidCallFaultInjector(
            np.random.default_rng(0), failure_rate=1.0
        )
        assert fault_pattern(injector) == ["fail"] * 50
        assert injector.n_failures == 50

    def test_same_seed_same_schedule(self):
        def trace(seed):
            return fault_pattern(
                ReidCallFaultInjector(
                    np.random.default_rng(seed),
                    failure_rate=0.3,
                    timeout_rate=0.2,
                )
            )

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)

    def test_timeout_carries_penalty(self):
        injector = ReidCallFaultInjector(
            np.random.default_rng(0),
            timeout_rate=1.0,
            timeout_penalty_ms=75.0,
        )
        with pytest.raises(ReidTimeoutError) as excinfo:
            injector.check()
        assert excinfo.value.penalty_ms == 75.0

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            ReidCallFaultInjector(np.random.default_rng(0), failure_rate=1.5)
        with pytest.raises(ValueError):
            ReidCallFaultInjector(np.random.default_rng(0), timeout_rate=-0.1)


class TestFeatureCorruptionInjector:
    def test_nan_mode_produces_all_nan(self):
        injector = FeatureCorruptionInjector(
            np.random.default_rng(0), rate=1.0, mode="nan"
        )
        out = injector.corrupt(np.ones(8))
        assert np.all(np.isnan(out))
        assert injector.n_corrupted == 1

    def test_swap_mode_returns_previous_feature(self):
        injector = FeatureCorruptionInjector(
            np.random.default_rng(0), rate=1.0, mode="swap"
        )
        first = np.full(8, 1.0)
        second = np.full(8, 2.0)
        # First call has nothing to swap with; the feature passes through.
        assert np.allclose(injector.corrupt(first), 1.0)
        assert np.allclose(injector.corrupt(second), 1.0)

    def test_zero_rate_is_identity(self):
        injector = FeatureCorruptionInjector(np.random.default_rng(0))
        feature = np.arange(4.0)
        assert injector.corrupt(feature) is feature

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            FeatureCorruptionInjector(
                np.random.default_rng(0), rate=0.5, mode="flip"
            )


class TestFrameDropInjector:
    def test_drops_are_blank_and_aligned(self):
        frames = [[make_detection(10.0 * i)] for i in range(100)]
        injector = FrameDropInjector(np.random.default_rng(3), rate=0.3)
        out = injector.apply(frames)
        assert len(out) == len(frames)
        assert injector.n_dropped == sum(1 for f in out if f == [])
        assert 0 < injector.n_dropped < 100

    def test_zero_rate_copies_frames(self):
        frames = [[make_detection()], []]
        out = FrameDropInjector(np.random.default_rng(0)).apply(frames)
        assert out == frames
        assert out is not frames

    def test_same_seed_drops_same_frames(self):
        frames = [[make_detection()] for _ in range(50)]

        def dropped(seed):
            injector = FrameDropInjector(
                np.random.default_rng(seed), rate=0.4
            )
            return [i for i, f in enumerate(injector.apply(frames)) if not f]

        assert dropped(5) == dropped(5)


class TestWindowCrash:
    def test_armed_crash_fires_exactly_once(self):
        armed = ArmedCrash(calls_left=2, window_index=0)
        armed.tick()
        armed.tick()
        with pytest.raises(WindowCrashError):
            armed.tick()
        assert armed.fired
        armed.tick()  # the replacement worker survives

    def test_full_rate_arms_every_window(self):
        profile = fault_profile("window-crash", seed=11)
        crasher = profile.window_crasher()
        armed = [crasher.arm(c) for c in range(10)]
        assert all(a is not None for a in armed)
        assert all(
            profile.crash_min_calls
            <= a.calls_left
            <= profile.crash_max_calls
            for a in armed
        )

    def test_same_seed_same_countdowns(self):
        def countdowns(seed):
            crasher = fault_profile("window-crash", seed=seed).window_crasher()
            return [crasher.arm(c).calls_left for c in range(10)]

        assert countdowns(4) == countdowns(4)


class TestFaultyReidModel:
    def test_failed_call_does_not_advance_model_rng(self):
        detection = make_detection()
        plain = StubReidModel(noise=0.1, seed=0)
        faulty_inner = StubReidModel(noise=0.1, seed=0)
        injector = ReidCallFaultInjector(
            np.random.default_rng(0), failure_rate=1.0
        )
        faulty = FaultyReidModel(faulty_inner, call_injector=injector)
        for _ in range(3):
            with pytest.raises(ReidFaultError):
                faulty.extract(detection)
        injector.failure_rate = 0.0
        # After three failed calls the wrapped model's noise stream is
        # untouched: the next extraction matches a fault-free model's first.
        assert np.allclose(faulty.extract(detection), plain.extract(detection))

    def test_rng_state_roundtrip_replays_schedule(self):
        detection = make_detection()
        profile = FaultProfile(
            reid_failure_rate=0.3, corrupt_rate=0.3, corrupt_mode="nan", seed=9
        )
        # Noise-free stub: the trace depends only on the injector RNGs,
        # which is exactly what rng_state() captures for a plain model.
        model = profile.wrap_model(StubReidModel(noise=0.0, seed=1))
        for _ in range(5):
            try:
                model.extract(detection)
            except ReidFaultError:
                pass
        saved = model.rng_state()

        def trace(m):
            out = []
            for _ in range(20):
                try:
                    out.append(float(np.nansum(m.extract(detection))))
                except ReidFaultError:
                    out.append(None)
            return out

        first = trace(model)
        model.set_rng_state(saved)
        assert trace(model) == first


class TestProfiles:
    def test_registry_names(self):
        assert {
            "flaky-reid",
            "corrupt-features",
            "swapped-features",
            "window-crash",
            "drop-frames",
            "reid-offline",
            "chaos",
        } <= set(PROFILES)

    def test_lookup_unknown_lists_known(self):
        with pytest.raises(KeyError, match="flaky-reid"):
            fault_profile("no-such-profile")

    def test_with_seed_is_a_distinct_profile(self):
        base = fault_profile("flaky-reid")
        reseeded = fault_profile("flaky-reid", seed=99)
        assert reseeded.seed == 99
        assert base.seed != 99  # registry entry untouched

    def test_injects_reid_faults_property(self):
        assert fault_profile("flaky-reid").injects_reid_faults
        assert fault_profile("corrupt-features").injects_reid_faults
        assert not fault_profile("window-crash").injects_reid_faults
        assert not fault_profile("drop-frames").injects_reid_faults

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultProfile(reid_failure_rate=2.0)
        with pytest.raises(ValueError):
            FaultProfile(corrupt_mode="garbage")

    def test_seams_draw_independent_streams(self):
        """Enabling one seam never perturbs another seam's schedule."""
        profile = FaultProfile(
            reid_failure_rate=0.5, window_crash_rate=1.0, seed=3
        )
        lone = FaultProfile(window_crash_rate=1.0, seed=3)
        a = [profile.window_crasher().arm(c).calls_left for c in range(5)]
        b = [lone.window_crasher().arm(c).calls_left for c in range(5)]
        assert a == b
