"""Unit tests for repro.detect."""

import numpy as np
import pytest

from helpers import tiny_scene_config, tiny_world

from repro.detect import DetectorConfig, NoisyDetector
from repro.synth.world import simulate_world


class TestDetectorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DetectorConfig(base_detect_prob=1.5)
        with pytest.raises(ValueError):
            DetectorConfig(clutter_rate=-1.0)


class TestNoisyDetector:
    def test_output_shape(self):
        world = tiny_world(n_frames=50)
        detections = NoisyDetector().detect_video(world, seed=0)
        assert len(detections) == 50

    def test_deterministic_with_seed(self):
        world = tiny_world(n_frames=50)
        detector = NoisyDetector()
        a = detector.detect_video(world, seed=3)
        b = detector.detect_video(world, seed=3)
        for frame_a, frame_b in zip(a, b):
            assert len(frame_a) == len(frame_b)
            for da, db in zip(frame_a, frame_b):
                assert da.bbox.to_xyxy() == db.bbox.to_xyxy()
                assert da.source_id == db.source_id

    def test_detections_inside_image(self):
        world = tiny_world(n_frames=80, seed=2)
        for frame in NoisyDetector().detect_video(world, seed=1):
            for det in frame:
                assert 0 <= det.bbox.x1 <= det.bbox.x2 <= world.config.width
                assert 0 <= det.bbox.y1 <= det.bbox.y2 <= world.config.height
                assert 0.0 <= det.confidence <= 1.0

    def test_visible_objects_mostly_detected(self):
        world = tiny_world(n_frames=100, seed=3)
        config = DetectorConfig(clutter_rate=0.0)
        detections = NoisyDetector(config).detect_video(world, seed=0)
        detected = 0
        visible = 0
        for frame, dets in enumerate(detections):
            sources = {d.source_id for d in dets}
            for state in world.frames[frame]:
                if state.visibility > 0.9:
                    visible += 1
                    if state.object_id in sources:
                        detected += 1
        assert visible > 0
        assert detected / visible > 0.9

    def test_invisible_objects_never_detected(self):
        world = tiny_world(n_frames=100, seed=4)
        config = DetectorConfig(min_visibility=0.5, clutter_rate=0.0)
        detections = NoisyDetector(config).detect_video(world, seed=0)
        for frame, dets in enumerate(detections):
            visibility = {
                s.object_id: s.visibility for s in world.frames[frame]
            }
            for det in dets:
                assert visibility[det.source_id] >= 0.5

    def test_clutter_marked_as_such(self):
        world = tiny_world(n_frames=60, seed=5, initial_objects=0,
                           spawn_rate=0.0)
        config = DetectorConfig(clutter_rate=2.0)
        detections = NoisyDetector(config).detect_video(world, seed=0)
        clutter = [d for frame in detections for d in frame]
        assert clutter, "expected clutter detections"
        assert all(d.is_clutter for d in clutter)
        assert all(d.source_id is None for d in clutter)

    def test_zero_clutter_rate(self):
        world = tiny_world(n_frames=60, seed=6)
        config = DetectorConfig(clutter_rate=0.0)
        detections = NoisyDetector(config).detect_video(world, seed=0)
        assert all(
            not d.is_clutter for frame in detections for d in frame
        )

    def test_glare_suppresses_detection(self):
        # A world fully covered by glare at strength 0 yields no real
        # detections during the glare frames.
        config = tiny_scene_config(
            glare_rate=0.0, initial_objects=3, spawn_rate=0.0
        )
        world = simulate_world(config, 30, seed=0)
        from repro.synth.events import GlareInterval

        world.glare.append(GlareInterval(0, 29, 0.0))
        # Rebuild visibility by re-simulating is overkill: glare applies at
        # world build time, so instead simulate a fresh world with heavy
        # glare directly.
        config2 = tiny_scene_config(
            glare_rate=1000.0,
            glare_duration=(30, 30),
            glare_strength=0.0,
            initial_objects=3,
            spawn_rate=0.0,
        )
        world2 = simulate_world(config2, 30, seed=0)
        detector = NoisyDetector(DetectorConfig(clutter_rate=0.0))
        detections = detector.detect_video(world2, seed=0)
        glared_frames = [
            f for f in range(30)
            if any(g.active_at(f) for g in world2.glare)
        ]
        assert glared_frames, "expected glare frames"
        for frame in glared_frames:
            assert detections[frame] == []
