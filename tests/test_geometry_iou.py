"""Unit tests for repro.geometry.iou."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import BBox, iou, iou_matrix, pairwise_center_distances


class TestIou:
    def test_identical_boxes(self):
        box = BBox(0, 0, 10, 10)
        assert iou(box, box) == pytest.approx(1.0)

    def test_disjoint_zero(self):
        assert iou(BBox(0, 0, 1, 1), BBox(5, 5, 6, 6)) == 0.0

    def test_half_overlap(self):
        a = BBox(0, 0, 10, 10)
        b = BBox(0, 5, 10, 15)
        # intersection 50, union 150
        assert iou(a, b) == pytest.approx(1.0 / 3.0)

    def test_contained_box(self):
        outer = BBox(0, 0, 10, 10)
        inner = BBox(0, 0, 5, 5)
        assert iou(outer, inner) == pytest.approx(0.25)

    def test_zero_area_boxes(self):
        degenerate = BBox(5, 5, 5, 5)
        assert iou(degenerate, degenerate) == 0.0


class TestIouMatrix:
    def test_matches_scalar_iou(self):
        rng = np.random.default_rng(0)
        boxes_a = [
            BBox.from_center(rng.uniform(0, 50), rng.uniform(0, 50), 10, 10)
            for _ in range(5)
        ]
        boxes_b = [
            BBox.from_center(rng.uniform(0, 50), rng.uniform(0, 50), 12, 8)
            for _ in range(7)
        ]
        matrix = iou_matrix(boxes_a, boxes_b)
        assert matrix.shape == (5, 7)
        for i, a in enumerate(boxes_a):
            for j, b in enumerate(boxes_b):
                assert matrix[i, j] == pytest.approx(iou(a, b))

    def test_empty_inputs(self):
        assert iou_matrix([], []).shape == (0, 0)
        assert iou_matrix([BBox(0, 0, 1, 1)], []).shape == (1, 0)
        assert iou_matrix([], [BBox(0, 0, 1, 1)]).shape == (0, 1)

    def test_values_in_unit_interval(self):
        boxes = [BBox(i, 0, i + 5, 5) for i in range(0, 20, 2)]
        matrix = iou_matrix(boxes, boxes)
        assert (matrix >= 0).all() and (matrix <= 1).all()
        assert np.allclose(np.diag(matrix), 1.0)

    def test_symmetry(self):
        boxes = [BBox(i, i, i + 4, i + 6) for i in range(5)]
        matrix = iou_matrix(boxes, boxes)
        assert np.allclose(matrix, matrix.T)


class TestPairwiseCenterDistances:
    def test_values(self):
        a = [BBox.from_center(0, 0, 2, 2)]
        b = [BBox.from_center(3, 4, 2, 2), BBox.from_center(0, 0, 8, 8)]
        d = pairwise_center_distances(a, b)
        assert d.shape == (1, 2)
        assert d[0, 0] == pytest.approx(5.0)
        assert d[0, 1] == pytest.approx(0.0)

    def test_empty(self):
        assert pairwise_center_distances([], []).shape == (0, 0)


@given(
    ax=st.floats(0, 100), ay=st.floats(0, 100),
    bx=st.floats(0, 100), by=st.floats(0, 100),
    w=st.floats(1, 30), h=st.floats(1, 30),
)
def test_iou_symmetric_and_bounded(ax, ay, bx, by, w, h):
    a = BBox.from_center(ax, ay, w, h)
    b = BBox.from_center(bx, by, w, h)
    value = iou(a, b)
    assert 0.0 <= value <= 1.0 + 1e-12
    assert value == pytest.approx(iou(b, a))
