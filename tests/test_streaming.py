"""Unit and differential tests for the streaming ingestion subsystem.

Covers the building blocks (watermark, reorder buffer, backpressure
queue, replayable feed source, lazy per-window seeds, incremental
tracker sessions) and the service-level guarantees short of restart
(which has its own differential suite, ``test_streaming_restart.py``):
disorder healed within the allowed lateness, shedding beyond it,
bounded resident memory over feeds much longer than the bound, and the
backpressure policies' deterministic decisions.
"""

import json

import pytest

from helpers import tiny_scene_config, tiny_world

from repro.core.tmerge import TMerge
from repro.core.windows import partition_windows, window_at
from repro.detect import NoisyDetector
from repro.resilience import CheckpointStore
from repro.streaming import (
    BackpressurePolicy,
    FrameEvent,
    IntakeQueue,
    ReorderBuffer,
    StreamingIngestionService,
    SyntheticFeedSource,
    WatermarkTracker,
)
from repro.synth.world import simulate_world
from repro.track import IoUTracker, TracktorTracker


def _roundtrip(state):
    """Force the pure-JSON contract the checkpoint store relies on."""
    return json.loads(json.dumps(state))


class TestWatermark:
    def test_trails_max_frame_by_lateness(self):
        wm = WatermarkTracker(allowed_lateness=3)
        assert wm.observe(10) == 7
        assert wm.observe(4) == 7  # late arrival does not regress it
        assert wm.observe(12) == 9

    def test_zero_lateness_tracks_max(self):
        wm = WatermarkTracker()
        assert wm.observe(0) == 0
        assert wm.observe(5) == 5

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            WatermarkTracker(allowed_lateness=-1)
        with pytest.raises(ValueError):
            WatermarkTracker().observe(-1)

    def test_state_roundtrip(self):
        wm = WatermarkTracker(allowed_lateness=2)
        wm.observe(9)
        clone = WatermarkTracker()
        clone.load_state_dict(_roundtrip(wm.state_dict()))
        assert clone.watermark == wm.watermark
        assert clone.observe(9) == wm.watermark


class TestReorderBuffer:
    def test_releases_in_order_with_gaps(self):
        buf = ReorderBuffer()
        assert buf.add(2, [])
        assert buf.add(0, [])
        released = buf.release(2)
        assert [frame for frame, _ in released] == [0, 1, 2]
        assert released[1][1] is None  # frame 1 never arrived

    def test_late_and_duplicate_shed(self):
        buf = ReorderBuffer()
        buf.add(0, [])
        buf.release(0)
        assert not buf.add(0, [])  # already released
        assert buf.add(3, [])
        assert not buf.add(3, [])  # duplicate of a pending frame

    def test_state_roundtrip(self):
        world = tiny_world(n_frames=4)
        detections = NoisyDetector().detect_video(world, seed=2)
        buf = ReorderBuffer()
        buf.add(1, detections[1])
        buf.add(0, detections[0])
        buf.release(0)
        clone = ReorderBuffer()
        clone.load_state_dict(_roundtrip(buf.state_dict()))
        assert clone.last_released == buf.last_released
        out = clone.release(1)
        assert out[0][0] == 1
        assert [d.to_dict() for d in out[0][1]] == [
            d.to_dict() for d in detections[1]
        ]


class TestBackpressurePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BackpressurePolicy(mode="bogus")
        with pytest.raises(ValueError):
            BackpressurePolicy(capacity=0)
        with pytest.raises(ValueError):
            BackpressurePolicy(latency_slo_ms=-1.0)

    def test_degrade_triggers(self):
        policy = BackpressurePolicy(
            mode="degrade", capacity=4, latency_slo_ms=100.0
        )
        assert not policy.should_degrade(4, 50.0)
        assert policy.should_degrade(5, 50.0)  # over capacity
        assert policy.should_degrade(0, 150.0)  # over SLO
        lossless = BackpressurePolicy(mode="block", capacity=4)
        assert not lossless.should_degrade(100, 1e9)


class TestIntakeQueue:
    def _event(self, frame):
        return FrameEvent(frame=frame, detections=[], arrival_ms=frame * 1.0)

    def test_block_refuses_at_capacity(self):
        queue = IntakeQueue(BackpressurePolicy(mode="block", capacity=2))
        assert queue.admit(self._event(0))
        assert queue.admit(self._event(1))
        assert not queue.admit(self._event(2))
        queue.pop()
        assert queue.admit(self._event(2))
        assert queue.n_shed == 0

    def test_drop_oldest_sheds_head(self):
        queue = IntakeQueue(
            BackpressurePolicy(mode="drop-oldest", capacity=2)
        )
        for frame in range(4):
            assert queue.admit(self._event(frame))
        assert queue.n_shed == 2
        assert queue.pop().frame == 2  # 0 and 1 were shed

    def test_state_roundtrip(self):
        queue = IntakeQueue(BackpressurePolicy(capacity=8))
        queue.admit(self._event(0))
        queue.admit(self._event(1))
        clone = IntakeQueue(BackpressurePolicy(capacity=8))
        clone.load_state_dict(_roundtrip(queue.state_dict()))
        assert clone.depth == 2
        assert clone.pop().frame == 0
        assert clone.peak_depth == queue.peak_depth


class TestFeedSource:
    @pytest.fixture(scope="class")
    def world(self):
        return tiny_world(n_frames=60, seed=13)

    def test_offset_replay_is_exact(self, world):
        source = SyntheticFeedSource(
            world, disorder_ms=80.0, disorder_seed=4
        )
        full = list(source.events())
        assert len(full) == source.n_events == 60
        for start in (0, 1, 17, 59, 60):
            tail = list(source.events(start=start))
            assert [e.to_dict() for e in tail] == [
                e.to_dict() for e in full[start:]
            ]

    def test_arrival_order_and_bounded_disorder(self, world):
        source = SyntheticFeedSource(
            world, disorder_ms=80.0, disorder_seed=4
        )
        events = list(source.events())
        arrivals = [e.arrival_ms for e in events]
        assert arrivals == sorted(arrivals)
        frames = [e.frame for e in events]
        assert frames != sorted(frames)  # jitter actually reorders
        assert sorted(frames) == list(range(60))
        # displacement is bounded by the jitter/interval ratio
        max_shift = max(abs(pos - frame) for pos, frame in enumerate(frames))
        assert max_shift <= 80.0 / source.frame_interval_ms + 1

    def test_payloads_match_offline_detector(self, world):
        detections = NoisyDetector().detect_video(world, seed=2)
        source = SyntheticFeedSource(world, detector_seed=2)
        for event in source.events():
            expected = detections[event.frame]
            assert [d.to_dict() for d in event.detections] == [
                d.to_dict() for d in expected
            ]


class TestLazyWindowSeeds:
    def test_single_window_seeds_match_batch_list(self):
        from repro.parallel.planner import single_window_seeds, window_seeds

        batch = window_seeds(reid_seed=7, n_windows=6)
        for c in (0, 3, 5):
            lazy = single_window_seeds(7, c)
            assert (
                lazy.model.generate_state(4).tolist()
                == batch[c].model.generate_state(4).tolist()
            )

    def test_fault_seams_match_batch_list(self):
        from repro.faults import fault_profile
        from repro.parallel.planner import single_window_seeds, window_seeds

        profile = fault_profile("flaky-reid", seed=11)
        batch = window_seeds(5, 4, profile)
        for c in (0, 2, 3):
            lazy = single_window_seeds(5, c, profile)
            for name in ("call", "corrupt", "crash"):
                a = getattr(lazy, name)
                b = getattr(batch[c], name)
                assert (
                    a.generate_state(4).tolist()
                    == b.generate_state(4).tolist()
                )


class TestWindowAt:
    def test_matches_partition(self):
        for length in (2, 10, 100, 101):
            windows = partition_windows(333, length)
            for w in windows:
                assert window_at(w.index, length) == w

    def test_validation(self):
        with pytest.raises(ValueError):
            window_at(-1, 10)
        with pytest.raises(ValueError):
            window_at(0, 1)


class TestTrackerStreamSessions:
    @pytest.mark.parametrize("tracker_cls", [TracktorTracker, IoUTracker])
    def test_checkpointed_session_matches_uninterrupted(self, tracker_cls):
        world = tiny_world(n_frames=80, seed=9)
        detections = NoisyDetector().detect_video(world, seed=3)
        tracker = tracker_cls()

        whole = tracker.stream()
        closed_whole = []
        for frame, dets in enumerate(detections):
            closed_whole.extend(whole.advance(frame, dets))
        closed_whole.extend(whole.flush())

        first = tracker.stream()
        closed_split = []
        for frame in range(40):
            closed_split.extend(first.advance(frame, detections[frame]))
        state = _roundtrip(first.state_dict())
        second = tracker.stream()
        second.load_state_dict(state)
        for frame in range(40, 80):
            closed_split.extend(second.advance(frame, detections[frame]))
        closed_split.extend(second.flush())

        assert [t.to_dict() for t in closed_split] == [
            t.to_dict() for t in closed_whole
        ]

    def test_earliest_open_frame(self):
        world = tiny_world(n_frames=30, seed=9)
        detections = NoisyDetector().detect_video(world, seed=3)
        stream = TracktorTracker().stream()
        for frame in range(10):
            stream.advance(frame, detections[frame])
        earliest = stream.earliest_open_frame()
        assert earliest is not None and 0 <= earliest < 10
        stream.flush()
        assert stream.earliest_open_frame() is None


def _service(store=None, *, tracker=None, profile=None, policy=None,
             workers=1, window_length=100, lateness=4, max_open=8):
    return StreamingIngestionService(
        tracker or TracktorTracker(),
        TMerge(k=0.1, tau_max=100, batch_size=10, seed=3),
        window_length=window_length,
        allowed_lateness=lateness,
        max_open_windows=max_open,
        policy=policy,
        workers=workers,
        parallel_backend="thread",
        fault_profile=profile,
        store=store,
    )


class TestStreamingService:
    @pytest.fixture(scope="class")
    def stream_world(self):
        return tiny_world(n_frames=240, seed=21, initial_objects=6,
                          max_objects=10, spawn_rate=0.03)

    def test_disorder_healed_within_lateness(self, stream_world):
        """Jitter within the allowed lateness never changes emissions."""
        ordered = SyntheticFeedSource(stream_world)
        jittered = SyntheticFeedSource(
            stream_world, disorder_ms=60.0, disorder_seed=3
        )
        a = _service().run(ordered)
        b = _service().run(jittered)

        def content(result):
            # lag_ms legitimately differs (it tracks arrival times);
            # everything the merge produced must not.
            return [
                {k: v for k, v in fp.items() if k != "lag_ms"}
                for fp in result.fingerprints()
            ]

        assert content(a) == content(b)
        assert b.counters.get("stream.frames_shed_late", 0.0) == 0.0

    def test_beyond_lateness_is_shed_and_counted(self, stream_world):
        jittered = SyntheticFeedSource(
            stream_world, disorder_ms=90.0, disorder_seed=3
        )
        result = _service(lateness=0).run(jittered)
        shed = result.counters["stream.frames_shed_late"]
        assert shed > 0
        assert result.counters["stream.frames_missing"] == shed
        assert (
            result.counters["stream.frames_in"]
            == stream_world.n_frames
        )

    def test_degrade_policy_marks_results(self, stream_world):
        policy = BackpressurePolicy(
            mode="degrade", capacity=4, latency_slo_ms=200.0
        )
        source = SyntheticFeedSource(stream_world)
        result = _service(policy=policy).run(source)
        degraded = [e for e in result.emissions if e.result.degraded]
        assert degraded
        assert (
            result.counters["stream.windows_degraded"] == len(degraded)
        )
        # degraded windows pay no simulated ReID cost
        assert all(
            e.result.simulated_seconds == 0.0 for e in degraded
        )

    def test_drop_oldest_sheds_events(self, stream_world):
        policy = BackpressurePolicy(mode="drop-oldest", capacity=2)
        source = SyntheticFeedSource(stream_world)
        result = _service(policy=policy).run(source)
        assert result.counters["stream.events_shed_queue"] > 0
        assert result.peak_queue_depth <= 2
        assert (
            result.counters["stream.frames_in"]
            + result.counters["stream.events_shed_queue"]
            == stream_world.n_frames
        )

    def test_policy_decisions_are_deterministic(self, stream_world):
        for mode, kwargs in (
            ("drop-oldest", dict(capacity=2)),
            ("degrade", dict(capacity=4, latency_slo_ms=200.0)),
        ):
            policy = BackpressurePolicy(mode=mode, **kwargs)
            source = SyntheticFeedSource(stream_world)
            a = _service(policy=policy).run(source)
            b = _service(policy=policy).run(source)
            assert a.fingerprints() == b.fingerprints()
            assert a.counters == b.counters

    def test_memory_bound_over_long_feed(self):
        """Peak resident windows stays ≤ the bound for a feed 10× longer."""
        bound = 4
        config = tiny_scene_config(
            min_track_length=5, max_track_length=20,
            initial_objects=4, max_objects=8, spawn_rate=0.05,
        )
        world = simulate_world(config, 900, seed=3)
        source = SyntheticFeedSource(world)
        service = _service(
            window_length=40, lateness=2, max_open=bound
        )
        result = service.run(source)
        n_windows = len(result.emissions)
        assert n_windows >= 10 * bound
        assert result.peak_open_windows <= bound

    def test_worker_count_invariance(self, stream_world):
        source = SyntheticFeedSource(
            stream_world, disorder_ms=50.0, disorder_seed=3
        )
        serial = _service(workers=1).run(source)
        fanned = _service(workers=4).run(source)
        assert serial.fingerprints() == fanned.fingerprints()
        assert serial.cost.state_dict() == fanned.cost.state_dict()

    def test_checkpoint_discarded_on_completion(self, stream_world):
        store = CheckpointStore()
        source = SyntheticFeedSource(stream_world)
        _service(store).run(source)
        assert store.load(["stream", "stream"]) is None

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            _service(window_length=1)
        with pytest.raises(ValueError):
            _service(max_open=0)
        with pytest.raises(ValueError):
            _service(workers=0)


class TestExampleSmoke:
    def test_streaming_example_runs_small(self, capsys):
        import importlib.util
        from pathlib import Path

        path = (
            Path(__file__).parent.parent
            / "examples"
            / "streaming_ingestion.py"
        )
        spec = importlib.util.spec_from_file_location("example_stream", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main(n_frames=240, window_length=120, kill_after=1)
        out = capsys.readouterr().out
        assert "bit-identical to uninterrupted run: True" in out


class TestServeCli:
    def test_serve_kill_resume(self, capsys):
        from repro.experiments.__main__ import main

        assert main([
            "serve", "--frames", "240", "--window-length", "120",
            "--kill-after", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "bit-identical to uninterrupted run" in out
        assert "Streaming service" in out
