"""The runtime contract layer: no-ops when disabled, raises when enabled."""

from __future__ import annotations

import numpy as np
import pytest

from repro import contracts
from repro.core.tmerge import TMerge
from repro.core.ulb import UlbPruner
from repro.core.windows import partition_windows

from helpers import planted_pairs, stub_scorer


@pytest.fixture
def contracts_on():
    """Enable contracts for the duration of one test."""
    previous = contracts.set_enabled(True)
    yield
    contracts.set_enabled(previous)


@pytest.fixture
def contracts_off():
    """Force contracts off for the duration of one test."""
    previous = contracts.set_enabled(False)
    yield
    contracts.set_enabled(previous)


CORRUPT_CALLS = [
    lambda: contracts.check_beta_params(
        np.array([1.0, 0.0]), np.array([1.0, 1.0])
    ),
    lambda: contracts.check_beta_params(
        np.array([1.0, np.nan]), np.array([1.0, 1.0])
    ),
    lambda: contracts.check_beta_params(np.array([1.0]), np.array([1.0, 1.0])),
    lambda: contracts.check_normalized_distance(1.5),
    lambda: contracts.check_normalized_distance(-0.1),
    lambda: contracts.check_normalized_distance(float("nan")),
    lambda: contracts.check_normalized_distance(np.array([0.5, 2.0])),
    lambda: contracts.check_top_k_budget(-1, 10),
    lambda: contracts.check_top_k_budget(11, 10),
    lambda: contracts.check_ulb_partition({1, 2}, {2, 3}, 10),
    lambda: contracts.check_ulb_partition({12}, set(), 10),
    lambda: contracts.check_window_length(100, 80),
    lambda: contracts.check_window_length(100, 0),
]

VALID_CALLS = [
    lambda: contracts.check_beta_params(
        np.array([1.0, 2.5]), np.array([1.0, 1.0])
    ),
    lambda: contracts.check_normalized_distance(0.0),
    lambda: contracts.check_normalized_distance(1.0),
    lambda: contracts.check_normalized_distance(np.array([0.2, 0.8])),
    lambda: contracts.check_top_k_budget(0, 0),
    lambda: contracts.check_top_k_budget(5, 10),
    lambda: contracts.check_ulb_partition({1}, {2, 3}, 10),
    lambda: contracts.check_window_length(160, 80),
]


class TestGate:
    @pytest.mark.parametrize("call", CORRUPT_CALLS)
    def test_disabled_checks_are_noops(self, contracts_off, call):
        call()  # must not raise

    @pytest.mark.parametrize("call", CORRUPT_CALLS)
    def test_enabled_checks_raise(self, contracts_on, call):
        with pytest.raises(contracts.ContractViolation):
            call()

    @pytest.mark.parametrize("call", VALID_CALLS)
    def test_enabled_checks_pass_valid_state(self, contracts_on, call):
        call()

    def test_violation_is_assertion_error(self):
        assert issubclass(contracts.ContractViolation, AssertionError)

    def test_refresh_from_env(self, monkeypatch):
        previous = contracts.ENABLED
        try:
            monkeypatch.setenv(contracts.ENV_VAR, "1")
            assert contracts.refresh_from_env() is True
            assert contracts.enabled() is True
            monkeypatch.setenv(contracts.ENV_VAR, "0")
            assert contracts.refresh_from_env() is False
            monkeypatch.delenv(contracts.ENV_VAR)
            assert contracts.refresh_from_env() is False
        finally:
            contracts.set_enabled(previous)

    def test_set_enabled_returns_previous(self):
        previous = contracts.set_enabled(True)
        try:
            assert contracts.set_enabled(False) is True
        finally:
            contracts.set_enabled(previous)


class TestWiring:
    """Contracts fire (or stay silent) at the real call sites."""

    def test_tmerge_runs_clean_under_contracts(self, contracts_on):
        pairs, planted = planted_pairs()
        result = TMerge(k=0.2, tau_max=300, seed=3).run(pairs, stub_scorer())
        assert planted in result.candidate_keys

    def test_tmerge_gaussian_runs_clean_under_contracts(self, contracts_on):
        pairs, planted = planted_pairs()
        result = TMerge(
            k=0.2, tau_max=300, posterior="gaussian", seed=3
        ).run(pairs, stub_scorer())
        assert planted in result.candidate_keys

    def test_ulb_pruner_checked_on_update(self, contracts_on):
        pruner = UlbPruner(n_arms=4, k_count=1, radius_scale=0.2)
        # Corrupt the state behind the pruner's back; the next update's
        # contract pass must catch the accepted/rejected overlap.
        pruner.accepted = {0}
        pruner.rejected = {0}
        means = np.array([0.1, 0.5, 0.6, 0.9])
        pulls = np.array([50, 50, 50, 50])
        with pytest.raises(contracts.ContractViolation):
            pruner.update(means, pulls, total_rounds=200)

    def test_partition_windows_enforces_l_max(self, contracts_on):
        with pytest.raises(contracts.ContractViolation):
            partition_windows(1000, 100, l_max=80)

    def test_partition_windows_accepts_valid_l_max(self, contracts_on):
        windows = partition_windows(1000, 200, l_max=100)
        assert windows[0].length == 200

    def test_partition_windows_ignores_l_max_when_disabled(
        self, contracts_off
    ):
        windows = partition_windows(1000, 100, l_max=80)
        assert windows  # constraint violated but contracts are off

    def test_tmerge_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            TMerge(ulb_scale=0.0)
        with pytest.raises(ValueError):
            TMerge(ulb_scale=-1.0)
        with pytest.raises(ValueError):
            TMerge(thr_s=-5.0)
