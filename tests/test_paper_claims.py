"""Integration tests of the paper's headline claims at small scale.

These run the real simulation stack (world → detector → Tracktor → ReID
model) rather than the stub scorer, and assert the *relationships* the
paper's evaluation establishes.  Scales are small, so thresholds are
conservative.
"""

import pytest

from helpers import tiny_world

from repro.core import (
    BaselineMerger,
    TMerge,
    WindowedTracks,
    build_track_pairs,
    partition_windows,
)
from repro.detect import NoisyDetector
from repro.metrics.matching import match_tracks_to_gt, polyonymous_pairs
from repro.metrics.recall import window_recall
from repro.reid import CostModel, ReidScorer, SimReIDModel
from repro.track import TracktorTracker


@pytest.fixture(scope="module")
def claim_setup():
    world = tiny_world(
        n_frames=300,
        seed=13,
        initial_objects=7,
        max_objects=12,
        spawn_rate=0.02,
        min_track_length=60,
        max_track_length=250,
        appearance_dim=64,
    )
    detections = NoisyDetector().detect_video(world, seed=113)
    tracks = TracktorTracker().run(detections)
    assignment = match_tracks_to_gt(tracks, world)
    windows = partition_windows(world.n_frames, 600)
    windowed = WindowedTracks.assign(tracks, windows)
    pairs = build_track_pairs(windowed.tracks_of(0))
    gt = polyonymous_pairs(pairs, assignment)
    return world, pairs, gt


def run_merger(world, pairs, merger):
    for pair in pairs:
        pair.reset_sampling()
    scorer = ReidScorer(SimReIDModel(world, seed=1), cost=CostModel())
    result = merger.run(pairs, scorer)
    return result, scorer.cost


class TestPaperClaims:
    def test_fragmentation_exists(self, claim_setup):
        """Trackers produce polyonymous pairs (the problem is real)."""
        _, pairs, gt = claim_setup
        assert len(pairs) > 20
        assert len(gt) >= 2

    def test_baseline_recall_high_at_small_k(self, claim_setup):
        """§III: a small K suffices for the exhaustive baseline."""
        world, pairs, gt = claim_setup
        result, _ = run_merger(world, pairs, BaselineMerger(k=0.1))
        assert window_recall(result.candidate_keys, gt) >= 0.75

    def test_tmerge_recall_grows_with_budget(self, claim_setup):
        """Figure 7: REC rises with τ_max toward the baseline's level."""
        world, pairs, gt = claim_setup
        recs = []
        for tau in (50, 500, 5000):
            result, _ = run_merger(
                world, pairs,
                TMerge(k=0.1, tau_max=tau, batch_size=20, seed=3),
            )
            recs.append(window_recall(result.candidate_keys, gt))
        assert recs[-1] >= recs[0]
        assert recs[-1] >= 0.7

    def test_tmerge_much_cheaper_than_baseline(self, claim_setup):
        """§V-D: TMerge reaches useful recall at a fraction of BL's cost."""
        world, pairs, gt = claim_setup
        bl_result, bl_cost = run_merger(world, pairs, BaselineMerger(k=0.1))
        tm_result, tm_cost = run_merger(
            world, pairs, TMerge(k=0.1, tau_max=1500, batch_size=50, seed=3)
        )
        assert tm_result.simulated_seconds < bl_result.simulated_seconds / 3
        tm_rec = window_recall(tm_result.candidate_keys, gt)
        bl_rec = window_recall(bl_result.candidate_keys, gt)
        assert tm_rec >= bl_rec - 0.34

    def test_batching_reduces_cost_at_equal_draws(self, claim_setup):
        """§IV-F: the batched variant spends less simulated time for the
        same number of pulls."""
        world, pairs, _ = claim_setup
        plain, _ = run_merger(
            world, pairs, TMerge(k=0.1, tau_max=1000, seed=3)
        )
        batched, _ = run_merger(
            world, pairs,
            TMerge(k=0.1, tau_max=100, batch_size=10, seed=3),
        )
        # Same ~1000 draws, batched pays far less.
        assert batched.simulated_seconds < plain.simulated_seconds

    def test_feature_reuse_caps_extractions(self, claim_setup):
        """§IV-B: extractions are bounded by the number of distinct BBoxes
        regardless of how many pairs are sampled."""
        world, pairs, _ = claim_setup
        _, cost = run_merger(
            world, pairs, TMerge(k=0.1, tau_max=5000, seed=3)
        )
        distinct_bboxes = len(
            {
                (t.track_id, i)
                for pair in pairs
                for t in (pair.track_a, pair.track_b)
                for i in range(len(t))
            }
        )
        assert cost.n_extractions <= distinct_bboxes
