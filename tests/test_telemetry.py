"""Telemetry layer: metrics semantics, spans on the simulated clock,
JSONL round-trips, the @profiled hook, and the bit-identity guarantee
(a pipeline run with telemetry injected produces exactly the same
merge results as one without)."""

import json
import math

import pytest
from helpers import tiny_world

from repro.core.pipeline import IngestionPipeline
from repro.core.tmerge import TMerge
from repro.reid import CostModel
from repro.telemetry import (
    MetricsRegistry,
    Profiler,
    Telemetry,
    Tracer,
    profiled,
)
from repro.telemetry.metrics import Histogram
from repro.telemetry.openmetrics import (
    metric_name,
    parse_openmetrics,
    render_openmetrics,
)
from repro.telemetry.tracing import (
    Span,
    load_spans_jsonl,
    spans_from_jsonl,
)
from repro.track import TracktorTracker


# ---------------------------------------------------------------------------
# Counters, gauges, histograms
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("reid.invocations")
        registry.inc("reid.invocations", 4)
        assert registry.value("reid.invocations") == 5.0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.inc("x", -1.0)

    def test_value_of_absent_metric_is_zero(self):
        assert MetricsRegistry().value("never.touched") == 0.0

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 3.0)
        registry.set_gauge("g", 1.5)
        assert registry.value("g") == 1.5

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (0.5, 2.0, 50.0):
            registry.observe("ms", value)
        h = registry.histogram("ms")
        assert h.count == 3
        assert h.total == pytest.approx(52.5)
        assert h.mean == pytest.approx(17.5)
        assert h.min_value == 0.5
        assert h.max_value == 50.0

    def test_histogram_bucketing(self):
        registry = MetricsRegistry()
        h = registry.histogram("ms", bounds=(1.0, 10.0))
        for value in (0.2, 0.9, 5.0, 1e9):
            h.observe(value)
        assert h.bucket_counts == [2, 1, 1]  # <=1, <=10, +inf

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", bounds=(2.0, 1.0))

    def test_snapshot_delta(self):
        registry = MetricsRegistry()
        registry.inc("a", 2)
        before = registry.counters_snapshot()
        registry.inc("a", 3)
        registry.inc("b")
        moved = MetricsRegistry.delta(registry.counters_snapshot(), before)
        assert moved == {"a": 3.0, "b": 1.0}

    def test_delta_drops_unmoved(self):
        registry = MetricsRegistry()
        registry.inc("quiet")
        snap = registry.counters_snapshot()
        assert MetricsRegistry.delta(snap, snap) == {}

    def test_report_lists_every_instrument(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 7)
        registry.observe("h", 3.0)
        report = registry.report()
        assert "c = 2" in report
        assert "g = 7 (gauge)" in report
        assert "h: count=1" in report


# ---------------------------------------------------------------------------
# Spans on the simulated clock
# ---------------------------------------------------------------------------
class TestTracing:
    def test_span_nesting_on_simulated_clock(self):
        cost = CostModel()
        tracer = Tracer(clock=cost)
        with tracer.span("outer", method="TMerge") as outer:
            cost.charge_extract(2)  # 10 simulated ms
            with tracer.span("inner") as inner:
                cost.charge_extract(1)  # 5 more
        assert outer.span_id == 1
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert outer.start_ms == 0.0
        assert inner.start_ms == pytest.approx(10.0)
        assert inner.end_ms == pytest.approx(15.0)
        assert outer.end_ms == pytest.approx(15.0)
        assert outer.duration_ms == pytest.approx(15.0)
        assert outer.attributes == {"method": "TMerge"}

    def test_spans_close_in_completion_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.spans] == ["b", "a"]
        assert tracer.current is None

    def test_unbound_clock_stamps_zero(self):
        tracer = Tracer()
        with tracer.span("free") as span:
            pass
        assert span.start_ms == 0.0 and span.end_ms == 0.0

    def test_span_survives_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.spans[0].end_ms is not None
        assert tracer.current is None

    def test_jsonl_round_trip(self):
        cost = CostModel()
        tracer = Tracer(clock=cost)
        with tracer.span("window", window_id=3):
            cost.charge_distance(100)
        restored = spans_from_jsonl(tracer.to_jsonl())
        assert [s.to_dict() for s in restored] == [
            s.to_dict() for s in sorted(tracer.spans, key=lambda s: s.span_id)
        ]

    def test_export_jsonl_file(self, tmp_path):
        cost = CostModel()
        tracer = Tracer(clock=cost)
        with tracer.span("a"):
            with tracer.span("b"):
                cost.charge_extract()
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(str(path)) == 2
        spans = load_spans_jsonl(str(path))
        assert [s.name for s in spans] == ["a", "b"]  # id order
        assert spans[1].parent_id == spans[0].span_id

    def test_open_span_round_trips_none_end(self):
        span = Span(span_id=1, parent_id=None, name="open", start_ms=2.0)
        assert Span.from_dict(span.to_dict()).end_ms is None


# ---------------------------------------------------------------------------
# @profiled
# ---------------------------------------------------------------------------
class _Widget:
    def __init__(self, telemetry=None):
        self.telemetry = telemetry

    @profiled
    def work(self, x):
        return x * 2

    @profiled(name="widget.slow")
    def named(self):
        return "ok"


class TestProfiling:
    def test_passthrough_without_telemetry(self):
        assert _Widget().work(21) == 42

    def test_records_with_telemetry(self):
        telemetry = Telemetry()
        widget = _Widget(telemetry)
        assert widget.work(1) == 2
        widget.work(2)
        stats = telemetry.profiler.hotspots()
        assert len(stats) == 1
        assert stats[0].name == "_Widget.work"
        assert stats[0].calls == 2
        assert stats[0].total_seconds >= 0.0

    def test_custom_label(self):
        telemetry = Telemetry()
        _Widget(telemetry).named()
        assert telemetry.profiler.hotspots()[0].name == "widget.slow"

    def test_hotspots_ranked_by_total_time(self):
        profiler = Profiler()
        profiler.record("cheap", 0.001)
        profiler.record("hot", 0.5)
        profiler.record("hot", 0.5)
        ranked = profiler.hotspots(top=2)
        assert [s.name for s in ranked] == ["hot", "cheap"]
        assert ranked[0].mean_seconds == pytest.approx(0.5)
        assert "hot" in profiler.report()

    def test_empty_report(self):
        assert "no profiled calls" in Profiler().report()


# ---------------------------------------------------------------------------
# Facade
# ---------------------------------------------------------------------------
class TestFacade:
    def test_shortcuts_hit_the_registry(self):
        telemetry = Telemetry()
        telemetry.count("c", 3)
        telemetry.set_gauge("g", 9)
        telemetry.observe("h", 1.0)
        assert telemetry.metrics.value("c") == 3.0
        assert telemetry.metrics.value("g") == 9.0
        assert telemetry.metrics.histogram("h").count == 1

    def test_bind_clock_reaches_spans(self):
        telemetry = Telemetry()
        cost = CostModel()
        telemetry.bind_clock(cost)
        assert telemetry.clock is cost
        cost.charge_extract()
        with telemetry.span("s") as span:
            pass
        assert span.start_ms == pytest.approx(5.0)

    def test_report_combines_metrics_and_hotspots(self):
        telemetry = Telemetry()
        telemetry.count("reid.invocations", 7)
        telemetry.profiler.record("f", 0.01)
        report = telemetry.report()
        assert "reid.invocations = 7" in report
        assert "hotspots" in report


# ---------------------------------------------------------------------------
# Pipeline integration: bit-identity and per-window metrics
# ---------------------------------------------------------------------------
def _pipeline(telemetry=None):
    return IngestionPipeline(
        tracker=TracktorTracker(),
        merger=TMerge(k=0.1, tau_max=400, batch_size=10, seed=3),
        window_length=300,
        telemetry=telemetry,
    )


class TestPipelineIntegration:
    @pytest.fixture(scope="class")
    def runs(self):
        world = tiny_world(n_frames=600, seed=4)
        plain = _pipeline().run(world)
        telemetry = Telemetry()
        observed = _pipeline(telemetry).run(world)
        return plain, observed, telemetry

    def test_bit_identical_with_telemetry(self, runs):
        plain, observed, _ = runs
        assert plain.selected_pairs == observed.selected_pairs
        assert [t.track_id for t in plain.merged_tracks] == [
            t.track_id for t in observed.merged_tracks
        ]
        assert plain.id_map == observed.id_map
        assert plain.cost.milliseconds == observed.cost.milliseconds
        for a, b in zip(plain.window_results, observed.window_results):
            assert a.scores == b.scores
            assert a.candidate_keys == b.candidate_keys

    def test_window_metrics_populated(self, runs):
        _, observed, _ = runs
        assert len(observed.window_metrics) == len(observed.windows)
        busy = [
            metrics
            for metrics, pairs in zip(
                observed.window_metrics, observed.window_pairs
            )
            if pairs
        ]
        assert busy, "expected at least one non-empty window"
        for metrics in busy:
            assert metrics.get("reid.invocations", 0.0) > 0
            assert metrics.get("cost.simulated_ms", 0.0) > 0

    def test_plain_run_records_no_window_metrics(self, runs):
        plain, _, _ = runs
        assert plain.window_metrics == []

    def test_counters_match_cost_model(self, runs):
        _, observed, telemetry = runs
        total_invocations = (
            observed.cost.n_extractions
            + observed.cost.n_batched_extractions
        )
        assert telemetry.metrics.value("reid.invocations") == float(
            total_invocations
        )
        assert telemetry.metrics.value("cost.simulated_ms") == pytest.approx(
            observed.cost.milliseconds
        )
        assert telemetry.metrics.value(
            "tmerge.thompson_draws"
        ) > 0

    def test_spans_cover_every_window(self, runs):
        _, observed, telemetry = runs
        spans = telemetry.tracer.spans
        ingest = [s for s in spans if s.name == "ingest"]
        windows = [s for s in spans if s.name == "window"]
        assert len(ingest) == 1
        assert len(windows) == len(observed.windows)
        assert all(s.parent_id == ingest[0].span_id for s in windows)
        assert sorted(
            s.attributes["window_id"] for s in windows
        ) == list(range(len(observed.windows)))
        for span in windows:
            assert span.end_ms >= span.start_ms
            assert math.isfinite(span.duration_ms)

    def test_merge_spans_nest_inside_windows(self, runs):
        _, _, telemetry = runs
        window_ids = {
            s.span_id
            for s in telemetry.tracer.spans
            if s.name == "window"
        }
        merges = [
            s for s in telemetry.tracer.spans if s.name == "tmerge.run"
        ]
        assert merges
        assert all(s.parent_id in window_ids for s in merges)


# ---------------------------------------------------------------------------
# Histogram percentiles, state merging, OpenMetrics exposition
# ---------------------------------------------------------------------------
class TestHistogramPercentiles:
    def test_extremes_are_exact(self):
        histogram = Histogram("t", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 8.0):
            histogram.observe(value)
        assert histogram.percentile(0.0) == 0.5
        assert histogram.percentile(1.0) == 8.0

    def test_degenerate_bucket_clamps_to_observed(self):
        histogram = Histogram("t", bounds=(10.0,))
        for _ in range(4):
            histogram.observe(5.0)
        assert histogram.percentile(0.5) == 5.0
        assert histogram.percentile(0.99) == 5.0

    def test_uniform_grid_lands_near_true_quantiles(self):
        histogram = Histogram(
            "t", bounds=(25.0, 50.0, 75.0, 100.0)
        )
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(0.50) == pytest.approx(50.0, abs=1.0)
        assert histogram.percentile(0.95) == pytest.approx(95.0, abs=1.0)
        assert histogram.percentile(0.99) == pytest.approx(99.0, abs=1.0)

    def test_empty_is_zero_and_bad_q_rejected(self):
        histogram = Histogram("t")
        assert histogram.percentile(0.5) == 0.0
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_summary_carries_percentiles(self):
        histogram = Histogram("t")
        histogram.observe(3.0)
        summary = histogram.summary()
        assert summary["p50"] == 3.0
        assert summary["p95"] == 3.0
        assert summary["p99"] == 3.0


class TestHistogramState:
    def test_merge_matches_direct_observation(self):
        left_values = [0.5, 3.0, 12.0, 700.0]
        right_values = [0.1, 9.0, 50.0]
        direct = Histogram("t")
        for value in left_values + right_values:
            direct.observe(value)
        left, right = Histogram("t"), Histogram("t")
        for value in left_values:
            left.observe(value)
        for value in right_values:
            right.observe(value)
        left.merge_state(right.state_dict())
        assert left.state_dict() == direct.state_dict()
        assert left.summary() == direct.summary()

    def test_state_is_pure_json(self):
        histogram = Histogram("t")
        histogram.observe(1.5)
        state = json.loads(json.dumps(histogram.state_dict()))
        clone = Histogram("t")
        clone.merge_state(state)
        assert clone.state_dict() == histogram.state_dict()

    def test_bounds_mismatch_refused(self):
        left = Histogram("t", bounds=(1.0, 2.0))
        right = Histogram("t", bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            left.merge_state(right.state_dict())

    def test_merging_empty_state_keeps_extremes(self):
        histogram = Histogram("t")
        histogram.observe(5.0)
        histogram.merge_state(Histogram("t").state_dict())
        assert histogram.count == 1
        assert histogram.min_value == 5.0
        assert histogram.max_value == 5.0

    def test_registry_snapshot_merge_round_trip(self):
        source = MetricsRegistry()
        source.observe("window.merge_ms", 3.0)
        source.observe("window.merge_ms", 40.0)
        target = MetricsRegistry()
        target.merge_histograms(source.histograms_snapshot())
        assert (
            target.histograms()["window.merge_ms"].state_dict()
            == source.histograms()["window.merge_ms"].state_dict()
        )


class TestOpenMetrics:
    def _registry(self):
        registry = MetricsRegistry()
        registry.inc("reid.invocations", 7)
        registry.set_gauge("stream.queue_depth", 3.5)
        registry.observe("window.merge_ms", 0.25)
        registry.observe("window.merge_ms", 123.456)
        return registry

    def test_render_has_types_totals_and_eof(self):
        text = render_openmetrics(self._registry())
        assert "# TYPE repro_reid_invocations counter" in text
        assert "repro_reid_invocations_total 7.0" in text
        assert "# TYPE repro_stream_queue_depth gauge" in text
        assert "# TYPE repro_window_merge_ms histogram" in text
        assert text.endswith("# EOF\n")

    def test_bucket_series_is_cumulative(self):
        samples = parse_openmetrics(
            render_openmetrics(self._registry())
        )
        buckets = [
            value
            for name, value in samples.items()
            if name.startswith("repro_window_merge_ms_bucket")
        ]
        assert buckets == sorted(buckets)
        assert samples['repro_window_merge_ms_bucket{le="+Inf"}'] == 2.0
        assert samples["repro_window_merge_ms_count"] == 2.0

    def test_round_trip_is_bit_exact(self):
        samples = parse_openmetrics(
            render_openmetrics(self._registry())
        )
        assert samples["repro_window_merge_ms_sum"] == 0.25 + 123.456
        assert samples["repro_stream_queue_depth"] == 3.5
        assert samples["repro_reid_invocations_total"] == 7.0

    def test_metric_name_sanitized(self):
        assert metric_name("reid.invocations") == "repro_reid_invocations"
        assert metric_name("a-b c", prefix="") == "a_b_c"

    def test_missing_eof_rejected(self):
        with pytest.raises(ValueError):
            parse_openmetrics("repro_x 1.0\n")

    def test_sample_after_eof_rejected(self):
        with pytest.raises(ValueError):
            parse_openmetrics("# EOF\nrepro_x 1.0\n")


# ---------------------------------------------------------------------------
# Parallel reassembly: counters AND histograms are worker-count exact
# ---------------------------------------------------------------------------
def _engine_pipeline(telemetry, workers):
    return IngestionPipeline(
        tracker=TracktorTracker(),
        merger=TMerge(k=0.1, tau_max=400, batch_size=10, seed=3),
        window_length=300,
        telemetry=telemetry,
        workers=workers,
        parallel_backend="thread",
    )


class TestParallelReassembly:
    """Regression: histograms used to be dropped at the pool seam."""

    @pytest.fixture(scope="class")
    def engine_runs(self):
        world = tiny_world(n_frames=600, seed=4)
        runs = {}
        for workers in (1, 2):
            telemetry = Telemetry()
            result = _engine_pipeline(telemetry, workers).run(world)
            runs[workers] = (result, telemetry)
        return runs

    def test_counters_exact_across_worker_counts(self, engine_runs):
        assert (
            engine_runs[2][1].metrics.counters_snapshot()
            == engine_runs[1][1].metrics.counters_snapshot()
        )

    def test_histograms_exact_across_worker_counts(self, engine_runs):
        states = {}
        for workers, (_, telemetry) in engine_runs.items():
            states[workers] = {
                name: histogram.state_dict()
                for name, histogram in telemetry.metrics.histograms().items()
            }
        assert states[2] == states[1]
        assert states[2], "expected run-level histograms under workers=2"

    def test_merge_latency_histogram_covers_every_window(self, engine_runs):
        result, telemetry = engine_runs[2]
        histogram = telemetry.metrics.histograms()["window.merge_ms"]
        assert histogram.count == len(result.windows)
        summary = histogram.summary()
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_window_metrics_match_across_worker_counts(self, engine_runs):
        assert (
            engine_runs[2][0].window_metrics
            == engine_runs[1][0].window_metrics
        )
