"""The scenario matrix: spec identity, axis composition, generator
determinism, behavioural effects of each axis, and the sweep harness's
smoke subset (the default test job's quick lane through
``repro.experiments.scenarios``)."""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments.__main__ import main
from repro.experiments.bench_summary import BenchSummary
from repro.experiments.scenarios import (
    SCHEMA_VERSION,
    format_matrix,
    load_matrix,
    merge_into_summary,
    sweep,
    write_matrix,
)
from repro.scenarios import (
    ID_HEX_CHARS,
    SCENARIO_MATRIX,
    SMOKE_FRAMES,
    SMOKE_SUBSET,
    DropoutAxis,
    ScenarioSpec,
    SurgeAxis,
    TailAxis,
    WeatherAxis,
    build_scenario,
    compact_scene,
    compose_fault_profile,
    compose_scene,
    derive_seeds,
    fault_parts,
    scenario_by_name,
    scenario_names,
    smoke_variant,
)

FIXTURES = Path(__file__).parent / "fixtures"

#: Representative scenarios whose ``Scenario.fingerprint()`` digests are
#: pinned in ``fixtures/scenario_golden.json`` — one clear run plus one
#: scenario per axis family, all at seed 0.
GOLDEN_PATH = FIXTURES / "scenario_golden.json"


class TestMatrix:
    def test_matrix_is_at_least_twenty_scenarios(self):
        assert len(SCENARIO_MATRIX) >= 20

    def test_names_are_unique(self):
        names = scenario_names()
        assert len(names) == len(set(names))

    def test_ids_are_injective_over_the_matrix(self):
        ids = [spec.scenario_id for spec in SCENARIO_MATRIX]
        assert len(ids) == len(set(ids))
        assert all(len(sid) == ID_HEX_CHARS for sid in ids)

    def test_every_axis_family_is_exercised(self):
        for axis in ("surge", "weather", "dropout", "tail"):
            assert any(
                axis in spec.active_axes for spec in SCENARIO_MATRIX
            ), f"no scenario exercises the {axis} axis"
        assert any(not spec.active_axes for spec in SCENARIO_MATRIX), (
            "the matrix needs at least one clear (axis-free) scenario"
        )

    def test_every_preset_is_exercised(self):
        presets = {spec.preset for spec in SCENARIO_MATRIX}
        assert presets == {"mot17", "kitti", "pathtrack"}

    def test_scenario_by_name_round_trips(self):
        for name in scenario_names():
            assert scenario_by_name(name).name == name

    def test_scenario_by_name_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="mot17-clear"):
            scenario_by_name("no-such-scenario")

    def test_smoke_subset_is_part_of_the_matrix(self):
        assert set(SMOKE_SUBSET) <= set(scenario_names())

    def test_smoke_variant_caps_frames_and_moves_the_id(self):
        spec = scenario_by_name("mot17-clear")
        smoke = smoke_variant(spec)
        assert smoke.n_frames == SMOKE_FRAMES < spec.n_frames
        assert smoke.scenario_id != spec.scenario_id

    def test_smoke_variant_is_a_noop_below_the_cap(self):
        spec = ScenarioSpec(name="tiny", preset="mot17", n_frames=100)
        assert smoke_variant(spec) == spec


class TestSpecIdentity:
    def test_id_is_stable_across_processes(self):
        # Pinned literals; the smoke-variant id also appears in the
        # committed scenario-matrix baseline (which runs at smoke scale).
        spec = scenario_by_name("chaos-baseline")
        assert spec.scenario_id == "c90f0e6a4f47"
        assert smoke_variant(spec).scenario_id == "4bd20d0fc4a4"

    def test_id_moves_with_every_field(self):
        base = scenario_by_name("mot17-clear")
        variants = [
            replace(base, name="renamed"),
            replace(base, preset="kitti"),
            replace(base, n_frames=base.n_frames + 1),
            replace(base, window_length=base.window_length + 1),
            replace(base, surge=SurgeAxis(max_objects_boost=1)),
            replace(base, weather=WeatherAxis(corrupt_rate=0.01)),
            replace(base, dropout=DropoutAxis(frame_drop_rate=0.01)),
            replace(base, tail=TailAxis(alpha=2.0)),
        ]
        ids = {base.scenario_id} | {v.scenario_id for v in variants}
        assert len(ids) == 1 + len(variants)

    def test_canonical_json_is_sorted_and_compact(self):
        blob = scenario_by_name("mot17-clear").canonical_json()
        decoded = json.loads(blob)
        assert blob == json.dumps(
            decoded, sort_keys=True, separators=(",", ":")
        )

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            ScenarioSpec(name="", preset="mot17")
        with pytest.raises(KeyError):
            ScenarioSpec(name="x", preset="no-such-preset")
        with pytest.raises(ValueError, match="n_frames"):
            ScenarioSpec(name="x", preset="mot17", n_frames=0)
        with pytest.raises(ValueError, match="window_length"):
            ScenarioSpec(name="x", preset="mot17", window_length=1)

    def test_axis_validation(self):
        with pytest.raises(ValueError, match="start <= end"):
            SurgeAxis(bursts=((0.8, 0.2, 2.0),))
        with pytest.raises(ValueError, match="corrupt_mode"):
            WeatherAxis(corrupt_rate=0.1, corrupt_mode="zero")
        with pytest.raises(ValueError, match="frame_drop_rate"):
            DropoutAxis(frame_drop_rate=1.5)
        with pytest.raises(ValueError, match="alpha"):
            TailAxis(alpha=0.0)

    def test_active_axes_of_the_perfect_storm(self):
        spec = scenario_by_name("mot17-perfect-storm")
        assert spec.active_axes == ("surge", "weather", "dropout", "tail")
        assert scenario_by_name("mot17-clear").active_axes == ()


class TestComposition:
    def test_clear_scene_is_the_compact_preset(self):
        spec = scenario_by_name("kitti-clear")
        assert compose_scene(spec) == compact_scene("kitti")

    def test_surge_becomes_an_absolute_frame_schedule(self):
        spec = scenario_by_name("mot17-rush-hour")
        scene = compose_scene(spec)
        base = compact_scene("mot17")
        (start, end, multiplier) = spec.surge.bursts[0]
        assert scene.spawn_rate_schedule == (
            (
                int(round(start * spec.n_frames)),
                int(round(end * spec.n_frames)),
                multiplier,
            ),
        )
        assert scene.max_objects == (
            base.max_objects + spec.surge.max_objects_boost
        )

    def test_weather_adjusts_the_glare_climate(self):
        spec = scenario_by_name("mot17-glare-storm")
        scene = compose_scene(spec)
        base = compact_scene("mot17")
        assert scene.glare_rate == pytest.approx(
            base.glare_rate + spec.weather.glare_rate_boost
        )
        assert scene.glare_strength == spec.weather.glare_strength

    def test_tail_switches_the_lifetime_draw(self):
        spec = scenario_by_name("mot17-longtail")
        scene = compose_scene(spec)
        assert scene.track_length_tail == spec.tail.alpha
        assert scene.max_track_length == max(
            compact_scene("mot17").max_track_length, spec.tail.max_length
        )

    def test_fault_seam_axes_do_not_touch_the_scene(self):
        spec = scenario_by_name("kitti-camera-dropout")
        assert compose_scene(spec) == compact_scene("kitti")

    def test_clear_scenarios_compose_no_fault_profile(self):
        spec = scenario_by_name("pathtrack-clear")
        assert fault_parts(spec) == []
        assert compose_fault_profile(spec, fault_seed=7) is None

    def test_composed_profile_carries_the_axis_rates(self):
        spec = scenario_by_name("mot17-perfect-storm")
        parts = fault_parts(spec)
        assert len(parts) == 2  # weather corruption + dropout bundles
        profile = compose_fault_profile(spec, fault_seed=7)
        assert profile.name == f"scenario:{spec.name}"
        assert profile.seed == 7
        assert profile.corrupt_rate == spec.weather.corrupt_rate
        assert profile.corrupt_mode == spec.weather.corrupt_mode
        assert profile.frame_drop_rate == spec.dropout.frame_drop_rate
        assert profile.window_crash_rate == spec.dropout.window_crash_rate


class TestAxisBehaviour:
    """The axes change what they claim to change, on simulated worlds."""

    def test_surge_raises_the_population(self):
        clear = build_scenario(scenario_by_name("mot17-clear"), seed=0)
        rush = build_scenario(scenario_by_name("mot17-rush-hour"), seed=0)
        assert len(rush.world.objects) > len(clear.world.objects)

    def test_tail_reaches_past_the_compact_lifetime_cap(self):
        clear = build_scenario(scenario_by_name("mot17-clear"), seed=0)
        longtail = build_scenario(
            scenario_by_name("mot17-longtail"), seed=0
        )
        cap = clear.scene.max_track_length
        lifetimes = [
            obj.lifetime for obj in longtail.world.objects.values()
        ]
        assert max(lifetimes) > cap

    def test_light_tail_shortens_lifetimes(self):
        clear = build_scenario(scenario_by_name("kitti-clear"), seed=0)
        short = build_scenario(
            scenario_by_name("kitti-shortlived"), seed=0
        )

        def mean_lifetime(scenario):
            lifetimes = [
                obj.lifetime for obj in scenario.world.objects.values()
            ]
            return sum(lifetimes) / len(lifetimes)

        assert mean_lifetime(short) < mean_lifetime(clear)


class TestGeneratorDeterminism:
    def test_equal_spec_and_seed_rebuild_bit_identically(self):
        spec = smoke_variant(scenario_by_name("mot17-perfect-storm"))
        assert (
            build_scenario(spec, seed=5).fingerprint()
            == build_scenario(spec, seed=5).fingerprint()
        )

    def test_seed_moves_the_scenario(self):
        spec = smoke_variant(scenario_by_name("mot17-clear"))
        assert (
            build_scenario(spec, seed=0).fingerprint()
            != build_scenario(spec, seed=1).fingerprint()
        )

    def test_spec_moves_the_scenario(self):
        a = smoke_variant(scenario_by_name("mot17-clear"))
        b = smoke_variant(scenario_by_name("kitti-clear"))
        assert (
            build_scenario(a, seed=0).fingerprint()
            != build_scenario(b, seed=0).fingerprint()
        )

    def test_derived_seeds_are_stable(self):
        spec = scenario_by_name("mot17-clear")
        first = derive_seeds(spec, seed=3)
        again = derive_seeds(spec, seed=3)
        assert (
            first.fault_seed,
            first.reid_seed,
            first.detector_seed,
            first.disorder_seed,
        ) == (
            again.fault_seed,
            again.reid_seed,
            again.detector_seed,
            again.disorder_seed,
        )


class TestGoldenFingerprints:
    """``(spec, seed=0)`` digests pinned for representative scenarios.

    Regenerate (after a conscious generator change) with::

        PYTHONPATH=src python tests/fixtures/make_scenario_golden.py
    """

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    def test_fixture_covers_five_scenarios(self, golden):
        assert len(golden) == 5

    @pytest.mark.parametrize(
        "name",
        json.loads(GOLDEN_PATH.read_text()).keys(),
    )
    def test_build_matches_golden(self, golden, name):
        spec = scenario_by_name(name)
        scenario = build_scenario(spec, seed=0)
        assert spec.scenario_id == golden[name]["scenario_id"]
        assert scenario.fingerprint() == golden[name]["fingerprint"]
        assert len(scenario.world.objects) == golden[name]["n_objects"]


@pytest.fixture(scope="module")
def smoke_document():
    """One sweep of the CI smoke subset (three scenarios, smoke scale)."""
    return sweep(seed=0, smoke=True, only=SMOKE_SUBSET)


class TestSweepSmoke:
    def test_document_shape(self, smoke_document):
        assert smoke_document["schema"] == SCHEMA_VERSION
        assert smoke_document["mode"] == "smoke"
        assert smoke_document["seed"] == 0
        assert set(smoke_document["scenarios"]) == set(SMOKE_SUBSET)

    def test_records_carry_both_legs(self, smoke_document):
        for record in smoke_document["scenarios"].values():
            assert 0.0 <= record["recall"] <= 1.0
            assert record["reid_budget"] > 0
            assert record["windows"] >= 1
            assert record["stream"]["emissions"] >= 1

    def test_sweep_is_deterministic(self, smoke_document):
        again = sweep(seed=0, smoke=True, only=SMOKE_SUBSET)
        assert again == smoke_document

    def test_write_load_round_trip_is_byte_stable(
        self, smoke_document, tmp_path
    ):
        first = write_matrix(smoke_document, tmp_path / "m.json")
        loaded = load_matrix(first)
        assert loaded == smoke_document
        second = write_matrix(loaded, tmp_path / "m2.json")
        assert first.read_bytes() == second.read_bytes()

    def test_load_rejects_foreign_schemas(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "scenarios": {}}))
        with pytest.raises(ValueError, match="schema 99"):
            load_matrix(path)

    def test_merge_into_summary_records_worst_case(
        self, smoke_document, tmp_path
    ):
        path = merge_into_summary(smoke_document, tmp_path / "s.json")
        summary = BenchSummary.load(path)
        record = summary.benchmarks["scenario_matrix"]
        scenarios = smoke_document["scenarios"].values()
        assert record["recall"] == min(r["recall"] for r in scenarios)
        assert record["reid_invocations"] == sum(
            r["reid_budget"] for r in scenarios
        )
        for name in SMOKE_SUBSET:
            assert f"{name}.recall" in record["extras"]

    def test_format_matrix_names_every_scenario(self, smoke_document):
        table = format_matrix(smoke_document)
        for name in SMOKE_SUBSET:
            assert name in table

    def test_cli_runs_the_smoke_subset(self, tmp_path, capsys):
        out = tmp_path / "matrix.json"
        status = main(
            [
                "scenarios",
                "--smoke",
                "--only",
                *SMOKE_SUBSET,
                "--matrix-out",
                str(out),
            ]
        )
        assert status == 0
        printed = capsys.readouterr().out
        assert "scenario matrix written to" in printed
        assert load_matrix(out)["mode"] == "smoke"
