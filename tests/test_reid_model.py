"""Unit tests for repro.reid.model (the simulated ReID network)."""

import numpy as np
import pytest

from helpers import make_detection, tiny_world

from repro.reid import ReidParams, SimReIDModel


@pytest.fixture(scope="module")
def reid_world():
    return tiny_world(n_frames=60, seed=1)


def detection_for(world, object_id, visibility=1.0):
    obj = world.objects[object_id]
    box = obj.bbox_at(obj.spawn_frame)
    return make_detection(
        box.x1, box.y1, box.width, box.height,
        source_id=object_id, visibility=visibility,
    )


class TestReidParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReidParams(base_noise=-0.1)
        with pytest.raises(ValueError):
            ReidParams(outlier_prob=1.5)
        with pytest.raises(ValueError):
            ReidParams(dim=1)

    def test_dim_mismatch_rejected(self, reid_world):
        with pytest.raises(ValueError):
            SimReIDModel(reid_world, params=ReidParams(dim=999))


class TestFeatureGeometry:
    def test_unit_norm(self, reid_world):
        model = SimReIDModel(reid_world, seed=0)
        oid = next(iter(reid_world.objects))
        feature = model.extract(detection_for(reid_world, oid))
        assert np.linalg.norm(feature) == pytest.approx(1.0)

    def test_same_object_closer_than_different(self, reid_world):
        model = SimReIDModel(reid_world, seed=0)
        ids = list(reid_world.objects)[:2]
        same, diff = [], []
        for _ in range(40):
            fa = model.extract(detection_for(reid_world, ids[0]))
            fb = model.extract(detection_for(reid_world, ids[0]))
            fc = model.extract(detection_for(reid_world, ids[1]))
            same.append(np.linalg.norm(fa - fb))
            diff.append(np.linalg.norm(fa - fc))
        assert np.mean(same) < np.mean(diff)

    def test_occlusion_increases_noise(self, reid_world):
        params = ReidParams(
            dim=reid_world.config.appearance_dim,
            quality_sigma=0.0,
            outlier_prob=0.0,
            occlusion_outlier=0.0,
            pose_scale=0.0,
        )
        model = SimReIDModel(reid_world, params=params, seed=0)
        oid = next(iter(reid_world.objects))
        latent = reid_world.objects[oid].appearance

        def mean_error(visibility):
            errors = []
            for _ in range(50):
                f = model.extract(
                    detection_for(reid_world, oid, visibility=visibility)
                )
                errors.append(np.linalg.norm(f - latent))
            return np.mean(errors)

        assert mean_error(0.2) > mean_error(1.0)

    def test_clutter_latent_is_stable(self, reid_world):
        params = ReidParams(
            dim=reid_world.config.appearance_dim,
            base_noise=0.0, occlusion_noise=0.0, quality_sigma=0.0,
            outlier_prob=0.0, occlusion_outlier=0.0, pose_scale=0.0,
        )
        model = SimReIDModel(reid_world, params=params, seed=0)
        clutter = make_detection(33.0, 44.0, 20.0, 40.0, source_id=None)
        f1 = model.extract(clutter)
        f2 = model.extract(clutter)
        assert np.allclose(f1, f2)

    def test_distinct_clutter_gets_distinct_latents(self, reid_world):
        params = ReidParams(
            dim=reid_world.config.appearance_dim,
            base_noise=0.0, occlusion_noise=0.0, quality_sigma=0.0,
            outlier_prob=0.0, occlusion_outlier=0.0, pose_scale=0.0,
        )
        model = SimReIDModel(reid_world, params=params, seed=0)
        f1 = model.extract(make_detection(10, 10, 20, 40, source_id=None))
        f2 = model.extract(make_detection(300, 50, 20, 40, source_id=None))
        assert np.linalg.norm(f1 - f2) > 0.5

    def test_zero_noise_returns_latent(self, reid_world):
        params = ReidParams(
            dim=reid_world.config.appearance_dim,
            base_noise=0.0, occlusion_noise=0.0, quality_sigma=0.0,
            outlier_prob=0.0, occlusion_outlier=0.0, pose_scale=0.0,
        )
        model = SimReIDModel(reid_world, params=params, seed=0)
        oid = next(iter(reid_world.objects))
        f = model.extract(detection_for(reid_world, oid))
        assert np.allclose(f, reid_world.objects[oid].appearance, atol=1e-9)

    def test_pose_creates_per_draw_scatter(self, reid_world):
        """With pose active, repeated same-object distances vary much more
        than with isotropic noise alone (the low-dimensional displacement
        does not concentrate)."""
        oid = next(iter(reid_world.objects))

        def draw_std(pose_scale):
            params = ReidParams(
                dim=reid_world.config.appearance_dim,
                base_noise=0.1, occlusion_noise=0.0, quality_sigma=0.0,
                outlier_prob=0.0, occlusion_outlier=0.0,
                pose_scale=pose_scale,
            )
            model = SimReIDModel(reid_world, params=params, seed=0)
            distances = []
            for _ in range(80):
                fa = model.extract(detection_for(reid_world, oid))
                fb = model.extract(detection_for(reid_world, oid))
                distances.append(np.linalg.norm(fa - fb))
            return np.std(distances)

        assert draw_std(0.8) > 2.0 * draw_std(0.0)

    def test_outliers_produce_bimodal_distances(self, reid_world):
        params = ReidParams(
            dim=reid_world.config.appearance_dim,
            base_noise=0.05, occlusion_noise=0.0, quality_sigma=0.0,
            outlier_prob=0.3, occlusion_outlier=0.0, outlier_noise=2.0,
            pose_scale=0.0,
        )
        model = SimReIDModel(reid_world, params=params, seed=0)
        oid = next(iter(reid_world.objects))
        distances = [
            np.linalg.norm(
                model.extract(detection_for(reid_world, oid))
                - model.extract(detection_for(reid_world, oid))
            )
            for _ in range(120)
        ]
        distances = np.array(distances)
        clean = (distances < 0.3).sum()
        garbage = (distances > 0.8).sum()
        assert clean > 20
        assert garbage > 20


class TestTrackerEmbedder:
    def test_noisier_than_main_model(self, reid_world):
        model = SimReIDModel(reid_world, seed=0)
        embed = model.tracker_embedder(noise_multiplier=3.0)
        oid = next(iter(reid_world.objects))
        latent = reid_world.objects[oid].appearance
        main_err = np.mean([
            np.linalg.norm(model.extract(detection_for(reid_world, oid)) - latent)
            for _ in range(40)
        ])
        embed_err = np.mean([
            np.linalg.norm(embed(detection_for(reid_world, oid)) - latent)
            for _ in range(40)
        ])
        assert embed_err > main_err

    def test_embedder_unit_norm(self, reid_world):
        model = SimReIDModel(reid_world, seed=0)
        embed = model.tracker_embedder()
        oid = next(iter(reid_world.objects))
        f = embed(detection_for(reid_world, oid))
        assert np.linalg.norm(f) == pytest.approx(1.0)
