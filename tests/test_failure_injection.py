"""Failure injection: degenerate inputs every public component must survive."""

import numpy as np
import pytest

from helpers import make_detection, make_track, stub_scorer, tiny_world

from repro.core import (
    BaselineMerger,
    EpsilonGreedyMerger,
    LcbMerger,
    ProportionalMerger,
    TMerge,
    build_track_pairs,
    merge_tracks,
    partition_windows,
    WindowedTracks,
)
from repro.core.pairs import TrackPair
from repro.detect import NoisyDetector
from repro.metrics.clearmot import evaluate_clearmot
from repro.metrics.identity import evaluate_identity
from repro.metrics.matching import match_tracks_to_gt
from repro.query import CoOccurrenceQuery, CountQuery, TrackStore
from repro.track import TracktorTracker
from repro.track.base import Track

ALL_MERGERS = [
    lambda: BaselineMerger(k=0.5),
    lambda: ProportionalMerger(eta=0.5, k=0.5, seed=0),
    lambda: LcbMerger(tau_max=50, k=0.5, seed=0),
    lambda: TMerge(k=0.5, tau_max=50, seed=0),
    lambda: TMerge(k=0.5, tau_max=20, batch_size=4, seed=0),
    lambda: EpsilonGreedyMerger(tau_max=50, k=0.5, seed=0),
]


@pytest.mark.parametrize("factory", ALL_MERGERS)
class TestDegenerateMergerInputs:
    def test_empty_pair_set(self, factory):
        result = factory().run([], stub_scorer())
        assert result.candidates == []
        assert result.n_pairs == 0

    def test_single_pair(self, factory):
        pairs = build_track_pairs(
            [make_track(0, [0, 1], source_id=1),
             make_track(1, [5, 6], source_id=2)]
        )
        result = factory().run(pairs, stub_scorer())
        assert len(result.candidates) == 1

    def test_single_bbox_tracks(self, factory):
        """Pairs with a 1x1 BBox-pair pool exhaust after one draw."""
        pairs = build_track_pairs(
            [
                make_track(0, [0], source_id=1),
                make_track(1, [5], source_id=2),
                make_track(2, [9], source_id=1),
            ]
        )
        result = factory().run(pairs, stub_scorer())
        assert result.candidates
        assert all(0.0 <= v <= 1.0 for v in result.scores.values())


class TestDegenerateStructures:
    def test_window_with_single_track_has_no_pairs(self):
        assert build_track_pairs([make_track(0, [0, 1])]) == []

    def test_tracker_on_clutter_only_stream(self):
        frames = [
            [make_detection(50.0 * i, 50.0, source_id=None)]
            for i in range(3)
        ] + [[] for _ in range(10)]
        tracks = TracktorTracker().run(frames)
        # Too short to survive min_length.
        assert tracks == []

    def test_metrics_on_empty_world_frames(self):
        world = tiny_world(n_frames=10, seed=0, initial_objects=0,
                           spawn_rate=0.0)
        assert evaluate_clearmot([], world).n_gt == 0
        assert evaluate_clearmot([], world).mota == 1.0
        identity = evaluate_identity([], world)
        assert identity.idf1 == 1.0

    def test_matching_with_no_tracks(self):
        world = tiny_world(n_frames=20, seed=1)
        assignment = match_tracks_to_gt([], world)
        assert assignment.identity == {}

    def test_merge_empty_everything(self):
        merged, id_map = merge_tracks([], [])
        assert merged == []
        assert id_map == {}

    def test_queries_on_empty_store(self):
        store = TrackStore()
        assert CountQuery(min_frames=10).evaluate(store).count == 0
        result = CoOccurrenceQuery(group_size=3, min_frames=10).evaluate(store)
        assert result.count == 0

    def test_windowing_single_frame_video(self):
        windows = partition_windows(1, 10)
        assert len(windows) == 1
        windowed = WindowedTracks.assign([], windows)
        assert windowed.tracks_of(0) == []

    def test_detector_on_empty_world(self):
        world = tiny_world(n_frames=5, seed=0, initial_objects=0,
                           spawn_rate=0.0)
        from repro.detect import DetectorConfig

        detections = NoisyDetector(
            DetectorConfig(clutter_rate=0.0)
        ).detect_video(world, seed=0)
        assert all(frame == [] for frame in detections)


class TestScoresStayNormalized:
    @pytest.mark.parametrize("factory", ALL_MERGERS)
    def test_scores_in_unit_interval_under_noise(self, factory):
        pairs = build_track_pairs(
            [make_track(i, [i * 10, i * 10 + 1], source_id=i)
             for i in range(5)]
        )
        result = factory().run(pairs, stub_scorer(noise=0.5, seed=9))
        assert all(0.0 <= v <= 1.0 for v in result.scores.values())
