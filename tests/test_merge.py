"""Unit tests for repro.core.merge (union-find and track merging)."""

import pytest
from hypothesis import given, settings, strategies as st

from helpers import make_track

from repro.core.merge import UnionFind, merge_tracks


class TestUnionFind:
    def test_singletons(self):
        dsu = UnionFind([1, 2, 3])
        assert dsu.find(1) == 1
        assert not dsu.connected(1, 2)

    def test_union_connects(self):
        dsu = UnionFind([1, 2, 3])
        dsu.union(1, 2)
        assert dsu.connected(1, 2)
        assert not dsu.connected(1, 3)

    def test_transitive(self):
        dsu = UnionFind([1, 2, 3, 4])
        dsu.union(1, 2)
        dsu.union(2, 3)
        assert dsu.connected(1, 3)
        assert not dsu.connected(1, 4)

    def test_union_idempotent(self):
        dsu = UnionFind([1, 2])
        root1 = dsu.union(1, 2)
        root2 = dsu.union(1, 2)
        assert root1 == root2

    def test_unknown_element(self):
        dsu = UnionFind([1])
        with pytest.raises(KeyError):
            dsu.find(99)

    def test_components(self):
        dsu = UnionFind([1, 2, 3, 4, 5])
        dsu.union(1, 2)
        dsu.union(4, 5)
        components = dsu.components()
        sizes = sorted(len(m) for m in components.values())
        assert sizes == [1, 2, 2]
        all_members = sorted(m for ms in components.values() for m in ms)
        assert all_members == [1, 2, 3, 4, 5]

    def test_add_after_construction(self):
        dsu = UnionFind()
        dsu.add(7)
        dsu.add(7)  # idempotent
        assert dsu.find(7) == 7


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 20),
    unions=st.lists(
        st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=30
    ),
)
def test_union_find_partition_property(n, unions):
    """Components always partition the element set; connectivity matches a
    reference graph reachability check."""
    import networkx as nx

    dsu = UnionFind(list(range(n)))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for a, b in unions:
        if a < n and b < n:
            dsu.union(a, b)
            graph.add_edge(a, b)
    expected = {frozenset(c) for c in nx.connected_components(graph)}
    actual = {frozenset(m) for m in dsu.components().values()}
    assert actual == expected


class TestMergeTracks:
    def test_no_pairs_identity(self):
        tracks = [make_track(0, [0, 1]), make_track(1, [5, 6])]
        merged, id_map = merge_tracks(tracks, [])
        assert len(merged) == 2
        assert id_map == {0: 0, 1: 1}

    def test_simple_merge(self):
        a = make_track(0, [0, 1, 2])
        b = make_track(1, [10, 11, 12])
        merged, id_map = merge_tracks([a, b], [(0, 1)])
        assert len(merged) == 1
        track = merged[0]
        assert track.track_id == 0
        assert track.frames == [0, 1, 2, 10, 11, 12]
        assert id_map == {0: 0, 1: 0}

    def test_transitive_merge(self):
        tracks = [
            make_track(0, [0, 1]),
            make_track(1, [10, 11]),
            make_track(2, [20, 21]),
        ]
        merged, id_map = merge_tracks(tracks, [(0, 1), (1, 2)])
        assert len(merged) == 1
        assert id_map == {0: 0, 1: 0, 2: 0}
        assert merged[0].frames == [0, 1, 10, 11, 20, 21]

    def test_new_id_is_smallest_member(self):
        tracks = [make_track(7, [0, 1]), make_track(3, [10, 11])]
        merged, id_map = merge_tracks(tracks, [(3, 7)])
        assert merged[0].track_id == 3
        assert id_map == {3: 3, 7: 3}

    def test_frame_collision_prefers_longer_fragment(self):
        long = make_track(0, [0, 1, 2, 3, 4], source_id=10)
        short = make_track(1, [4, 5], source_id=20)
        merged, _ = merge_tracks([long, short], [(0, 1)])
        track = merged[0]
        assert track.frames == [0, 1, 2, 3, 4, 5]
        # Frame 4 keeps the longer fragment's detection.
        frame4 = next(o for o in track.observations if o.frame == 4)
        assert frame4.detection.source_id == 10

    def test_unknown_pair_rejected(self):
        tracks = [make_track(0, [0, 1])]
        with pytest.raises(KeyError):
            merge_tracks(tracks, [(0, 99)])

    def test_duplicate_track_ids_rejected(self):
        tracks = [make_track(0, [0, 1]), make_track(0, [5, 6])]
        with pytest.raises(ValueError):
            merge_tracks(tracks, [])

    def test_output_sorted_by_first_frame(self):
        tracks = [
            make_track(0, [50, 51]),
            make_track(1, [0, 1]),
            make_track(2, [100, 101]),
        ]
        merged, _ = merge_tracks(tracks, [(0, 2)])
        assert [t.first_frame for t in merged] == sorted(
            t.first_frame for t in merged
        )

    def test_untouched_tracks_preserved(self):
        a = make_track(0, [0, 1])
        b = make_track(1, [5, 6])
        c = make_track(2, [9, 10])
        merged, id_map = merge_tracks([a, b, c], [(0, 1)])
        survivors = {t.track_id for t in merged}
        assert survivors == {0, 2}
        assert id_map[2] == 2


@settings(max_examples=30, deadline=None)
@given(
    n_tracks=st.integers(2, 8),
    pair_indices=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=10
    ),
)
def test_merge_preserves_observation_count_property(n_tracks, pair_indices):
    """Merging never loses frames when fragments are disjoint in time."""
    tracks = [
        make_track(i, [i * 100 + f for f in range(5)]) for i in range(n_tracks)
    ]
    pairs = [
        (a, b)
        for a, b in pair_indices
        if a < n_tracks and b < n_tracks and a != b
    ]
    merged, id_map = merge_tracks(tracks, pairs)
    total_before = sum(len(t) for t in tracks)
    total_after = sum(len(t) for t in merged)
    assert total_after == total_before
    assert set(id_map) == set(range(n_tracks))
