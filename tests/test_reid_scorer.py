"""Unit tests for repro.reid.scorer (caching, costs, batching)."""

import numpy as np
import pytest

from helpers import make_track, tiny_world

from repro.reid import (
    CostModel,
    CostParams,
    FeatureCache,
    ReidScorer,
    SimReIDModel,
    normalize_distance,
)


@pytest.fixture(scope="module")
def scorer_world():
    return tiny_world(n_frames=60, seed=2)


def make_scorer(world, **cost_overrides):
    params = CostParams(**cost_overrides) if cost_overrides else None
    return ReidScorer(
        SimReIDModel(world, seed=0), cost=CostModel(params)
    )


def tracks_for(world):
    ids = list(world.objects)[:2]
    return (
        make_track(0, list(range(8)), source_id=ids[0]),
        make_track(1, list(range(10, 18)), source_id=ids[1]),
    )


class TestNormalizeDistance:
    def test_bounds(self):
        assert normalize_distance(0.0) == 0.0
        assert normalize_distance(2.0) == 1.0
        assert normalize_distance(1.0) == 0.5

    def test_clipping(self):
        assert normalize_distance(5.0) == 1.0
        assert normalize_distance(-1.0) == 0.0


class TestFeatureCache:
    def test_roundtrip(self):
        cache = FeatureCache()
        key = (1, 2)
        assert key not in cache
        cache.put(key, np.ones(4))
        assert key in cache
        assert len(cache) == 1
        assert np.allclose(cache.get(key), 1.0)
        cache.clear()
        assert len(cache) == 0

    def test_unbounded_never_evicts(self):
        cache = FeatureCache()
        for i in range(1000):
            cache.put((0, i), np.full(2, float(i)))
        assert len(cache) == 1000
        assert cache.n_evictions == 0
        assert cache.stats()["max_entries"] == -1

    def test_bounded_evicts_least_recently_used(self):
        cache = FeatureCache(max_entries=2)
        cache.put((0, 0), np.zeros(2))
        cache.put((0, 1), np.ones(2))
        assert cache.get((0, 0)) is not None  # (0, 0) now most recent
        cache.put((0, 2), np.full(2, 2.0))  # evicts (0, 1)
        assert (0, 1) not in cache
        assert (0, 0) in cache and (0, 2) in cache
        assert cache.n_evictions == 1

    def test_put_refreshes_recency(self):
        cache = FeatureCache(max_entries=2)
        cache.put((0, 0), np.zeros(2))
        cache.put((0, 1), np.ones(2))
        cache.put((0, 0), np.full(2, 9.0))  # update, not insert
        cache.put((0, 2), np.full(2, 2.0))  # evicts (0, 1)
        assert (0, 0) in cache
        assert (0, 1) not in cache
        assert np.allclose(cache.get((0, 0)), 9.0)

    def test_stats_counters(self):
        cache = FeatureCache(max_entries=1)
        assert cache.get((0, 0)) is None
        cache.put((0, 0), np.zeros(2))
        cache.get((0, 0))
        cache.put((0, 1), np.ones(2))
        stats = cache.stats()
        assert stats == {
            "hits": 1,
            "misses": 1,
            "evictions": 1,
            "entries": 1,
            "max_entries": 1,
        }

    def test_discard(self):
        cache = FeatureCache()
        cache.put((0, 0), np.zeros(2))
        assert cache.discard((0, 0))
        assert not cache.discard((0, 0))
        assert (0, 0) not in cache

    def test_clear_keeps_counters(self):
        cache = FeatureCache(max_entries=1)
        cache.put((0, 0), np.zeros(2))
        cache.put((0, 1), np.ones(2))
        cache.clear()
        assert len(cache) == 0
        assert cache.n_evictions == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FeatureCache(max_entries=0)


class TestBoundedScorer:
    def test_scorer_correct_under_tiny_cache(self, scorer_world):
        """LRU eviction changes cost, never correctness: distances match
        an unbounded scorer's bit-for-bit on a noise-free model."""
        from helpers import StubReidModel

        track_a, track_b = tracks_for(scorer_world)
        unbounded = ReidScorer(StubReidModel(), cost=CostModel())
        bounded = ReidScorer(
            StubReidModel(),
            cost=CostModel(),
            cache=FeatureCache(max_entries=2),
        )
        requests = [
            (track_a, i, track_b, j) for i in range(4) for j in range(4)
        ]
        expected = [unbounded.distance(*r) for r in requests]
        actual = [bounded.distance(*r) for r in requests]
        assert actual == expected
        assert bounded.cache.n_evictions > 0
        assert bounded.cost.n_extractions >= unbounded.cost.n_extractions

    def test_nonfinite_distance_clamped_when_contracts_off(self, scorer_world):
        from repro import contracts

        scorer = make_scorer(scorer_world)
        previous = contracts.set_enabled(False)
        try:
            value = scorer._sanitize_distance(float("nan"), where="test")
        finally:
            contracts.set_enabled(previous)
        assert value == 2.0
        assert scorer.n_nonfinite_clamped == 1

    def test_nonfinite_distance_raises_under_contracts(self, scorer_world):
        from repro import contracts

        scorer = make_scorer(scorer_world)
        previous = contracts.set_enabled(True)
        try:
            with pytest.raises(contracts.ContractViolation):
                scorer._sanitize_distance(float("inf"), where="test")
        finally:
            contracts.set_enabled(previous)
        assert scorer.n_nonfinite_clamped == 0


class TestCachingBehaviour:
    def test_feature_extracted_once(self, scorer_world):
        scorer = make_scorer(scorer_world)
        track_a, _ = tracks_for(scorer_world)
        f1 = scorer.feature(track_a, 0)
        f2 = scorer.feature(track_a, 0)
        assert np.allclose(f1, f2)
        assert scorer.cost.n_extractions == 1

    def test_distance_reuses_features(self, scorer_world):
        scorer = make_scorer(scorer_world)
        track_a, track_b = tracks_for(scorer_world)
        scorer.distance(track_a, 0, track_b, 0)
        assert scorer.cost.n_extractions == 2
        scorer.distance(track_a, 0, track_b, 1)
        # Only one new feature extracted.
        assert scorer.cost.n_extractions == 3
        assert scorer.cost.n_distances == 2

    def test_distance_bounds(self, scorer_world):
        scorer = make_scorer(scorer_world)
        track_a, track_b = tracks_for(scorer_world)
        d = scorer.distance(track_a, 0, track_b, 0)
        assert 0.0 <= d <= 2.0
        assert 0.0 <= scorer.normalized_distance(track_a, 1, track_b, 1) <= 1.0

    def test_distance_fresh_always_extracts(self, scorer_world):
        scorer = make_scorer(scorer_world)
        track_a, track_b = tracks_for(scorer_world)
        scorer.distance_fresh(track_a, 0, track_b, 0)
        scorer.distance_fresh(track_a, 0, track_b, 0)
        assert scorer.cost.n_extractions == 4
        assert len(scorer.cache) == 0

    def test_cache_shared_between_paths(self, scorer_world):
        scorer = make_scorer(scorer_world)
        track_a, track_b = tracks_for(scorer_world)
        scorer.feature(track_a, 0)
        matrix = scorer.pair_distance_matrix(track_a, track_b)
        # 8 + 8 features total, one was already cached.
        assert scorer.cost.n_extractions == 16 - 1 + 1


class TestPairDistanceMatrix:
    def test_matches_elementwise_distance(self, scorer_world):
        scorer = make_scorer(scorer_world)
        track_a, track_b = tracks_for(scorer_world)
        matrix = scorer.pair_distance_matrix(track_a, track_b)
        assert matrix.shape == (len(track_a), len(track_b))
        # The same cached features drive the scalar path.
        for i in (0, 3):
            for j in (0, 5):
                assert matrix[i, j] == pytest.approx(
                    scorer.distance(track_a, i, track_b, j)
                )

    def test_cost_parity_with_scalar_path(self, scorer_world):
        track_a, track_b = tracks_for(scorer_world)
        bulk = make_scorer(scorer_world)
        bulk.pair_distance_matrix(track_a, track_b)
        scalar = make_scorer(scorer_world)
        for i in range(len(track_a)):
            for j in range(len(track_b)):
                scalar.distance(track_a, i, track_b, j)
        assert bulk.cost.n_extractions == scalar.cost.n_extractions
        assert bulk.cost.n_distances == scalar.cost.n_distances

    def test_batched_extraction_charged(self, scorer_world):
        scorer = make_scorer(scorer_world)
        track_a, track_b = tracks_for(scorer_world)
        scorer.pair_distance_matrix(track_a, track_b, batch_size=4)
        assert scorer.cost.n_extractions == 0
        assert scorer.cost.n_batched_extractions == 16


class TestBatchedDistances:
    def test_results_match_scalar(self, scorer_world):
        scorer = make_scorer(scorer_world)
        track_a, track_b = tracks_for(scorer_world)
        requests = [(track_a, i, track_b, i) for i in range(4)]
        batched = scorer.distances_batched(requests, batch_size=2)
        for (ta, ia, tb, ib), value in zip(requests, batched):
            assert value == pytest.approx(scorer.distance(ta, ia, tb, ib))

    def test_deduplicates_extractions(self, scorer_world):
        scorer = make_scorer(scorer_world)
        track_a, track_b = tracks_for(scorer_world)
        requests = [
            (track_a, 0, track_b, 0),
            (track_a, 0, track_b, 1),
            (track_a, 1, track_b, 0),
        ]
        scorer.distances_batched(requests, batch_size=10)
        # 4 distinct features, not 6.
        assert scorer.cost.n_batched_extractions == 4
        assert scorer.cost.n_distances == 3

    def test_fresh_variant_charges_everything(self, scorer_world):
        scorer = make_scorer(scorer_world)
        track_a, track_b = tracks_for(scorer_world)
        requests = [(track_a, 0, track_b, 0), (track_a, 0, track_b, 1)]
        scorer.distances_batched_fresh(requests, batch_size=10)
        assert scorer.cost.n_batched_extractions == 4
        assert len(scorer.cache) == 0

    def test_empty_requests(self, scorer_world):
        scorer = make_scorer(scorer_world)
        assert scorer.distances_batched([], batch_size=5) == []
        assert scorer.distances_batched_fresh([], batch_size=5) == []

    def test_invalid_batch_size(self, scorer_world):
        scorer = make_scorer(scorer_world)
        track_a, track_b = tracks_for(scorer_world)
        with pytest.raises(ValueError):
            scorer.distances_batched(
                [(track_a, 0, track_b, 0)], batch_size=0
            )

    def test_normalized_batched(self, scorer_world):
        scorer = make_scorer(scorer_world)
        track_a, track_b = tracks_for(scorer_world)
        values = scorer.normalized_distances_batched(
            [(track_a, 0, track_b, 0)], batch_size=1
        )
        assert len(values) == 1
        assert 0.0 <= values[0] <= 1.0
