"""Unit tests for repro.analysis.correlations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from helpers import make_track, planted_pairs, stub_scorer

from repro.analysis import (
    pair_signal_correlations,
    pearson,
    temporal_distance,
)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_uncorrelated_constant(self):
        assert pearson([1, 2, 3], [5, 5, 5]) == 0.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(size=50).tolist()
        ys = (np.array(xs) * 0.5 + rng.normal(size=50)).tolist()
        expected = float(np.corrcoef(xs, ys)[0, 1])
        assert pearson(xs, ys) == pytest.approx(expected, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            pearson([1.0], [2.0])
        with pytest.raises(ValueError):
            pearson([1.0, 2.0], [1.0])


class TestTemporalDistance:
    def test_gap(self):
        a = make_track(0, [0, 1, 2])
        b = make_track(1, [10, 11])
        assert temporal_distance(a, b) == 8.0
        assert temporal_distance(b, a) == 8.0

    def test_overlapping_tracks_negative(self):
        a = make_track(0, [0, 1, 2, 3])
        b = make_track(1, [2, 3, 4])
        assert temporal_distance(a, b) == -1.0


class TestPairSignalCorrelations:
    def test_structure(self):
        pairs, _ = planted_pairs()
        corr = pair_signal_correlations(pairs, stub_scorer())
        assert corr.n_pairs == len(pairs)
        assert -1.0 <= corr.spatial <= 1.0
        assert -1.0 <= corr.temporal <= 1.0

    def test_requires_two_pairs(self):
        pairs, _ = planted_pairs(n_distinct=2, track_len=2)
        with pytest.raises(ValueError):
            pair_signal_correlations(pairs[:1], stub_scorer())


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n=st.integers(3, 40),
)
def test_pearson_bounded(seed, n):
    rng = np.random.default_rng(seed)
    xs = rng.normal(size=n).tolist()
    ys = rng.normal(size=n).tolist()
    value = pearson(xs, ys)
    assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9
