"""The resilience layer: retry, breaker, resilient scorer, degradation,
checkpoint/resume.

The two load-bearing guarantees tested here:

* **Bit-transparency** — with no faults injected, every path through the
  resilience layer (scorer wrapper, pipeline, checkpointed TMerge) is
  byte-identical to the plain path: same candidates, same simulated
  seconds.
* **Bit-exact resume** — a window killed mid-run and resumed from its
  checkpoint reproduces the uninterrupted run exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from helpers import StubReidModel, make_track, planted_pairs

from repro import contracts
from repro.core import TMerge, run_resilient_window
from repro.core.pipeline import IngestionPipeline
from repro.faults import (
    ArmedCrash,
    FaultProfile,
    ReidFaultError,
    ReidTimeoutError,
    fault_profile,
)
from repro.metrics.recall import window_recall
from repro.reid import CostModel, ReidScorer
from repro.resilience import (
    BreakerPolicy,
    CheckpointStore,
    CircuitBreaker,
    CircuitOpenError,
    ReidUnavailableError,
    ResilienceConfig,
    ResilientReidScorer,
    RetriesExhaustedError,
    RetryPolicy,
    capture_scorer_state,
    restore_scorer_state,
    retry_call,
)
from repro.track import TracktorTracker


def offline_scorer(**retry_overrides) -> ResilientReidScorer:
    """A resilient scorer whose ReID dependency always fails."""
    profile = fault_profile("reid-offline", seed=0)
    model = profile.wrap_model(StubReidModel())
    return ResilientReidScorer(
        ReidScorer(model, cost=CostModel()),
        retry=RetryPolicy(**retry_overrides) if retry_overrides else None,
    )


class TestRetryCall:
    def test_first_success_charges_nothing(self):
        clock = CostModel()
        assert retry_call(lambda: 42, RetryPolicy(), clock) == 42
        assert clock.seconds == 0.0

    def test_backoff_accrues_on_simulated_clock(self):
        clock = CostModel()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ReidFaultError("transient")
            return "ok"

        policy = RetryPolicy(
            max_attempts=3, backoff_base_ms=50.0, backoff_multiplier=2.0
        )
        assert retry_call(flaky, policy, clock) == "ok"
        # Two failures: backoff 50 then 100 simulated ms, zero wall time.
        assert clock.wait_ms == pytest.approx(150.0)

    def test_timeout_penalty_charged(self):
        clock = CostModel()

        def times_out():
            raise ReidTimeoutError("slow", penalty_ms=75.0)

        policy = RetryPolicy(max_attempts=2, backoff_base_ms=10.0)
        with pytest.raises(RetriesExhaustedError):
            retry_call(times_out, policy, clock)
        # 2 penalties + 1 backoff (none after the final attempt).
        assert clock.wait_ms == pytest.approx(75.0 + 75.0 + 10.0)

    def test_exhaustion_chains_last_failure(self):
        def fails():
            raise ReidFaultError("down")

        with pytest.raises(RetriesExhaustedError) as excinfo:
            retry_call(fails, RetryPolicy(max_attempts=2), CostModel())
        assert isinstance(excinfo.value.__cause__, ReidFaultError)

    def test_non_transient_propagates_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            retry_call(broken, RetryPolicy(max_attempts=5), CostModel())
        assert len(calls) == 1

    def test_on_failure_observer_sees_each_fault(self):
        seen = []

        def fails():
            raise ReidFaultError("down")

        with pytest.raises(RetriesExhaustedError):
            retry_call(
                fails,
                RetryPolicy(max_attempts=3, backoff_base_ms=0.0),
                CostModel(),
                on_failure=seen.append,
            )
        assert len(seen) == 3

    def test_backoff_schedule_is_exponential(self):
        policy = RetryPolicy(backoff_base_ms=50.0, backoff_multiplier=3.0)
        assert policy.backoff_ms(1) == 50.0
        assert policy.backoff_ms(2) == 150.0
        assert policy.backoff_ms(3) == 450.0

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(retry_on=())


class TestCircuitBreaker:
    def make(self, clock=None, **overrides) -> CircuitBreaker:
        policy = BreakerPolicy(
            failure_threshold=3, recovery_timeout_ms=100.0, **overrides
        )
        return CircuitBreaker(policy, clock or CostModel())

    def test_trips_after_consecutive_failures(self):
        breaker = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_recovery_on_simulated_clock(self):
        clock = CostModel()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.charge_wait(99.0)
        assert not breaker.allow()
        clock.charge_wait(1.0)
        assert breaker.allow()
        assert breaker.state == "half_open"

    def test_half_open_success_closes(self):
        clock = CostModel()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.charge_wait(100.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.n_closes == 1

    def test_half_open_failure_reopens(self):
        clock = CostModel()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.charge_wait(100.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.n_opens == 2

    def test_state_dict_roundtrip(self):
        clock = CostModel()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        saved = breaker.state_dict()
        other = self.make(clock)
        other.load_state_dict(saved)
        assert other.state == "open"
        assert other.state_dict() == saved

    def test_transitions_validated_under_contracts(self):
        previous = contracts.set_enabled(True)
        try:
            with pytest.raises(contracts.ContractViolation):
                contracts.check_breaker_transition(
                    "closed", "half_open", where="test"
                )
            # The machine itself only ever takes legal edges.
            clock = CostModel()
            breaker = self.make(clock)
            for _ in range(3):
                breaker.record_failure()
            clock.charge_wait(100.0)
            breaker.allow()
            breaker.record_success()
            assert breaker.state == "closed"
        finally:
            contracts.set_enabled(previous)


class TestResilientScorer:
    def test_fault_free_is_bit_transparent(self):
        pairs, _ = planted_pairs()
        track_a, track_b = pairs[0].track_a, pairs[0].track_b

        plain = ReidScorer(StubReidModel(), cost=CostModel())
        wrapped = ResilientReidScorer(
            ReidScorer(StubReidModel(), cost=CostModel())
        )
        d_plain = plain.normalized_distance(track_a, 0, track_b, 0)
        d_wrapped = wrapped.normalized_distance(track_a, 0, track_b, 0)
        assert d_plain == d_wrapped
        assert plain.cost.seconds == wrapped.cost.seconds
        assert wrapped.cost.wait_ms == 0.0
        assert wrapped.stats()["transient_faults"] == 0.0

    def test_transient_faults_retried(self):
        profile = FaultProfile(reid_failure_rate=0.3, seed=5)
        model = profile.wrap_model(StubReidModel())
        scorer = ResilientReidScorer(
            ReidScorer(model, cost=CostModel()),
            retry=RetryPolicy(max_attempts=8, backoff_base_ms=1.0),
            breaker_policy=BreakerPolicy(failure_threshold=50),
        )
        pairs, _ = planted_pairs()
        values = [
            scorer.normalized_distance(p.track_a, 0, p.track_b, 0)
            for p in pairs
        ]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert scorer.n_transient_faults > 0
        assert scorer.cost.wait_ms > 0.0

    def test_corrupt_feature_detected_and_reextracted(self):
        profile = FaultProfile(corrupt_rate=1.0, corrupt_mode="nan", seed=0)
        injector = profile.wrap_model(StubReidModel()).corruption_injector
        injector.rate = 0.0  # re-armed per call below

        class OneShotCorrupt:
            """Corrupts exactly the first extraction, then heals."""

            def __init__(self, model):
                self.model = model
                self.remaining = 1

            def extract(self, detection):
                feature = self.model.extract(detection)
                if self.remaining > 0:
                    self.remaining -= 1
                    return np.full_like(feature, np.nan)
                return feature

        scorer = ResilientReidScorer(
            ReidScorer(OneShotCorrupt(StubReidModel()), cost=CostModel())
        )
        pairs, _ = planted_pairs()
        d = scorer.normalized_distance(
            pairs[0].track_a, 0, pairs[0].track_b, 0
        )
        assert np.isfinite(d) and 0.0 <= d <= 1.0
        assert scorer.n_corruptions_detected == 1
        # The poisoned entry was evicted and re-extracted cleanly.
        assert all(
            np.all(np.isfinite(feature))
            for _, feature in scorer.cache.items()
        )

    def test_full_outage_raises_unavailable_then_breaker_opens(self):
        scorer = offline_scorer(max_attempts=3, backoff_base_ms=1.0)
        pairs, _ = planted_pairs()
        with pytest.raises(ReidUnavailableError):
            scorer.normalized_distance(
                pairs[0].track_a, 0, pairs[0].track_b, 0
            )
        # Keep calling: the breaker trips and fails fast.
        with pytest.raises((ReidUnavailableError, CircuitOpenError)):
            scorer.normalized_distance(
                pairs[0].track_a, 0, pairs[0].track_b, 0
            )
        assert scorer.breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            scorer.normalized_distance(
                pairs[0].track_a, 0, pairs[0].track_b, 0
            )

    def test_crash_injector_tick_propagates(self):
        scorer = ResilientReidScorer(
            ReidScorer(StubReidModel(), cost=CostModel())
        )
        scorer.crash_injector = ArmedCrash(calls_left=0, window_index=0)
        pairs, _ = planted_pairs()
        from repro.faults import WindowCrashError

        with pytest.raises(WindowCrashError):
            scorer.normalized_distance(
                pairs[0].track_a, 0, pairs[0].track_b, 0
            )


class TestDegradedMerge:
    def test_tmerge_degrades_on_outage(self):
        pairs, planted = planted_pairs()
        merger = TMerge(k=0.2, tau_max=100, seed=3)
        result = merger.run(pairs, offline_scorer(backoff_base_ms=1.0))
        assert result.degraded
        assert len(result.candidates) > 0
        assert all(0.0 <= v <= 1.0 for v in result.scores.values())

    def test_degraded_recall_matches_spatial_baseline(self):
        """A fully-offline TMerge window equals the spatial-prior floor."""
        from repro.core.pipeline import spatial_fallback_result

        pairs, planted = planted_pairs()
        merger = TMerge(k=0.2, tau_max=100, seed=3)
        degraded = merger.run(pairs, offline_scorer(backoff_base_ms=1.0))
        baseline = spatial_fallback_result(merger, pairs, elapsed=0.0)
        rec_degraded = window_recall(degraded.candidate_keys, {planted})
        rec_baseline = window_recall(baseline.candidate_keys, {planted})
        assert rec_degraded >= rec_baseline

    @settings(max_examples=20, deadline=None)
    @given(
        n_distinct=st.integers(3, 10),
        track_len=st.integers(2, 8),
        k=st.floats(0.1, 1.0),
        seed=st.integers(0, 1000),
    )
    def test_offline_window_always_valid(self, n_distinct, track_len, k, seed):
        """Property: a ReID-fully-offline window still yields a valid
        MergeResult whose recall is no worse than the spatial-prior-only
        baseline."""
        from repro.core.pipeline import spatial_fallback_result
        from repro.core.results import top_k_count

        pairs, planted = planted_pairs(
            n_distinct=n_distinct, track_len=track_len
        )
        merger = TMerge(k=k, tau_max=50, seed=seed)
        result = merger.run(
            pairs, offline_scorer(max_attempts=2, backoff_base_ms=1.0)
        )
        assert result.degraded
        assert len(result.candidates) == top_k_count(len(pairs), k)
        assert set(result.scores) == {p.key for p in pairs}
        assert all(0.0 <= v <= 1.0 for v in result.scores.values())
        baseline = spatial_fallback_result(merger, pairs, elapsed=0.0)
        rec = window_recall(result.candidate_keys, {planted})
        rec_floor = window_recall(baseline.candidate_keys, {planted})
        assert rec >= rec_floor


def run_pipeline(world, profile=None, resilience=None, merger=None):
    pipeline = IngestionPipeline(
        tracker=TracktorTracker(),
        merger=merger or TMerge(k=0.1, tau_max=300, batch_size=10, seed=3),
        window_length=300,
        fault_profile=profile,
        resilience=resilience,
    )
    return pipeline.run(world)


class TestPipelineResilience:
    def test_fault_free_bit_identical_with_and_without(self, chaos_world):
        plain = run_pipeline(chaos_world)
        resilient = run_pipeline(
            chaos_world, resilience=ResilienceConfig()
        )
        for a, b in zip(plain.window_results, resilient.window_results):
            assert a.candidate_keys == b.candidate_keys
            assert a.simulated_seconds == b.simulated_seconds
            assert not b.degraded
        assert plain.cost.seconds == resilient.cost.seconds
        assert resilient.resilience_stats["transient_faults"] == 0.0

    def test_flaky_reid_completes_end_to_end(self, chaos_world):
        profile = fault_profile("flaky-reid", seed=7)
        result = run_pipeline(chaos_world, profile=profile)
        assert len(result.window_results) == len(result.windows)
        assert result.resilience_stats["transient_faults"] > 0
        for window_result in result.window_results:
            assert all(
                0.0 <= v <= 1.0 for v in window_result.scores.values()
            )

    def test_reid_offline_marks_every_window_degraded(self, chaos_world):
        profile = fault_profile("reid-offline", seed=7)
        result = run_pipeline(chaos_world, profile=profile)
        nonempty = [
            c for c, pairs in enumerate(result.window_pairs) if pairs
        ]
        assert result.degraded_windows == nonempty
        assert result.resilience_stats["breaker_opens"] >= 1

    def test_window_crash_recovers_bit_exactly(self, chaos_world):
        baseline = run_pipeline(chaos_world)
        profile = fault_profile("window-crash", seed=7)
        crashed = run_pipeline(
            chaos_world,
            profile=profile,
            merger=TMerge(
                k=0.1,
                tau_max=300,
                batch_size=10,
                seed=3,
                checkpoint_interval=20,
                checkpoint_store=CheckpointStore(),
            ),
        )
        for a, b in zip(baseline.window_results, crashed.window_results):
            assert a.candidate_keys == b.candidate_keys
            assert a.simulated_seconds == b.simulated_seconds

    def test_dropped_frames_still_ingest(self, chaos_world):
        profile = fault_profile("drop-frames", seed=7)
        result = run_pipeline(chaos_world, profile=profile)
        assert len(result.detections) == chaos_world.n_frames
        assert any(frame == [] for frame in result.detections)


class TestCheckpointStore:
    def test_json_roundtrip(self):
        store = CheckpointStore()
        payload = {"tau": 3, "rng": {"state": [1, 2, 3]}, "x": 0.5}
        store.save([[0, 1], [2, 3]], payload)
        loaded = store.load([[0, 1], [2, 3]])
        assert loaded == payload
        assert loaded is not payload
        assert len(store) == 1

    def test_missing_key_returns_none(self):
        assert CheckpointStore().load([[9, 9]]) is None

    def test_discard(self):
        store = CheckpointStore()
        store.save("w", {"tau": 1})
        store.discard("w")
        assert store.load("w") is None
        assert len(store) == 0

    def test_file_mirror(self, tmp_path):
        store = CheckpointStore(path=str(tmp_path))
        store.save("w", {"tau": 2})
        # A fresh store over the same directory recovers from disk.
        recovered = CheckpointStore(path=str(tmp_path))
        assert recovered.load("w") == {"tau": 2}

    def test_scorer_state_roundtrip(self):
        scorer = ReidScorer(StubReidModel(), cost=CostModel())
        pairs, _ = planted_pairs()
        before = scorer.normalized_distance(
            pairs[0].track_a, 0, pairs[0].track_b, 0
        )
        saved = capture_scorer_state(scorer)
        other = ReidScorer(StubReidModel(), cost=CostModel())
        restore_scorer_state(other, saved)
        assert other.cost.seconds == scorer.cost.seconds
        assert len(other.cache) == len(scorer.cache)
        after = other.normalized_distance(
            pairs[0].track_a, 0, pairs[0].track_b, 0
        )
        assert after == before


class TestKilledThenResumed:
    def test_resumed_window_reproduces_uninterrupted_run(self):
        """The subsystem's acceptance test: kill a window mid-run, resume
        from the checkpoint, get the uninterrupted result bit-exactly."""
        pairs_a, _ = planted_pairs(n_distinct=8, track_len=6)
        pairs_b, _ = planted_pairs(n_distinct=8, track_len=6)

        def make_scorer():
            return ReidScorer(StubReidModel(noise=0.3, seed=4),
                              cost=CostModel())

        uninterrupted = TMerge(k=0.2, tau_max=120, seed=3).run(
            pairs_a, make_scorer()
        )

        store = CheckpointStore()
        merger = TMerge(
            k=0.2,
            tau_max=120,
            seed=3,
            checkpoint_interval=10,
            checkpoint_store=store,
        )
        scorer = ResilientReidScorer(make_scorer())
        crash = ArmedCrash(calls_left=40, window_index=0)
        resumed = run_resilient_window(
            merger, 0, pairs_b, scorer, scorer.cost,
            ResilienceConfig(),
            crasher=_PreArmed(crash),
        )
        assert crash.fired, "the injected crash must actually fire"
        assert resumed.candidate_keys == uninterrupted.candidate_keys
        assert resumed.simulated_seconds == uninterrupted.simulated_seconds
        assert resumed.scores == uninterrupted.scores
        # The completed window's snapshot was discarded.
        assert len(store) == 0


class _PreArmed:
    """A crash injector stub that arms one predetermined countdown."""

    def __init__(self, armed: ArmedCrash) -> None:
        self._armed = armed

    def arm(self, window_index: int) -> ArmedCrash:
        return self._armed
