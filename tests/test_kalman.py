"""Unit tests for repro.track.kalman."""

import numpy as np
import pytest

from repro.geometry import BBox
from repro.track.kalman import KalmanBoxTracker, KalmanFilter


def make_1d_filter(q=0.01, r=1.0):
    """A 1-D constant-velocity filter for controlled tests."""
    return KalmanFilter(
        x=np.array([0.0, 0.0]),
        P=np.eye(2) * 10.0,
        F=np.array([[1.0, 1.0], [0.0, 1.0]]),
        H=np.array([[1.0, 0.0]]),
        Q=np.eye(2) * q,
        R=np.array([[r]]),
    )


class TestKalmanFilter:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            KalmanFilter(
                x=np.zeros(2),
                P=np.eye(3),
                F=np.eye(2),
                H=np.eye(1, 2),
                Q=np.eye(2),
                R=np.eye(1),
            )

    def test_predict_advances_state(self):
        kf = make_1d_filter()
        kf.x = np.array([1.0, 2.0])
        kf.predict()
        assert kf.x[0] == pytest.approx(3.0)
        assert kf.x[1] == pytest.approx(2.0)

    def test_predict_grows_uncertainty(self):
        kf = make_1d_filter()
        before = kf.P.trace()
        kf.predict()
        assert kf.P.trace() > before

    def test_update_shrinks_uncertainty(self):
        kf = make_1d_filter()
        before = kf.P[0, 0]
        kf.update(np.array([0.5]))
        assert kf.P[0, 0] < before

    def test_converges_to_linear_motion(self):
        kf = make_1d_filter()
        rng = np.random.default_rng(0)
        # True motion: position = 3t, with unit observation noise.
        for t in range(1, 60):
            kf.predict()
            kf.update(np.array([3.0 * t + rng.normal(0, 0.5)]))
        assert kf.x[0] == pytest.approx(3.0 * 59, abs=2.0)
        assert kf.x[1] == pytest.approx(3.0, abs=0.5)

    def test_innovation_does_not_mutate(self):
        kf = make_1d_filter()
        x_before = kf.x.copy()
        y, S = kf.innovation(np.array([4.0]))
        assert np.allclose(kf.x, x_before)
        assert y.shape == (1,)
        assert S.shape == (1, 1)
        assert S[0, 0] > 0


class TestKalmanBoxTracker:
    def test_initial_box_roundtrip(self):
        box = BBox.from_center(100, 200, 40, 80)
        tracker = KalmanBoxTracker(box)
        current = tracker.current_box()
        assert current.center[0] == pytest.approx(100)
        assert current.center[1] == pytest.approx(200)
        assert current.width == pytest.approx(40, rel=1e-3)
        assert current.height == pytest.approx(80, rel=1e-3)

    def test_tracks_constant_velocity(self):
        tracker = KalmanBoxTracker(BBox.from_center(0, 50, 20, 40))
        for t in range(1, 30):
            tracker.predict()
            tracker.update(BBox.from_center(5.0 * t, 50, 20, 40))
        predicted = tracker.predict()
        assert predicted.center[0] == pytest.approx(5.0 * 30, abs=3.0)

    def test_miss_counter(self):
        tracker = KalmanBoxTracker(BBox.from_center(0, 0, 10, 10))
        assert tracker.time_since_update == 0
        tracker.predict()
        tracker.predict()
        assert tracker.time_since_update == 2
        tracker.update(BBox.from_center(1, 1, 10, 10))
        assert tracker.time_since_update == 0
        assert tracker.hits == 2

    def test_prediction_without_updates_extrapolates(self):
        tracker = KalmanBoxTracker(BBox.from_center(10, 10, 10, 10))
        for t in range(1, 10):
            tracker.predict()
            tracker.update(BBox.from_center(10 + 2 * t, 10, 10, 10))
        # Now coast without updates; center keeps moving right.
        coast1 = tracker.predict().center[0]
        coast2 = tracker.predict().center[0]
        assert coast2 > coast1

    def test_area_never_negative(self):
        tracker = KalmanBoxTracker(BBox.from_center(10, 10, 4, 4))
        # Shrinking observations push area velocity negative; the guard
        # keeps predictions valid.
        for t in range(1, 20):
            tracker.predict()
            size = max(4.0 - 0.4 * t, 0.5)
            tracker.update(BBox.from_center(10, 10, size, size))
        for _ in range(20):
            box = tracker.predict()
            assert box.area >= 0.0
