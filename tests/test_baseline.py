"""Unit tests for Algorithm 1 (BL / BL-B)."""

import pytest

from helpers import planted_pairs, stub_scorer

from repro.core.baseline import BaselineMerger
from repro.core.results import top_k_count


class TestTopKCount:
    def test_ceiling(self):
        assert top_k_count(100, 0.05) == 5
        assert top_k_count(101, 0.05) == 6

    def test_bounds(self):
        assert top_k_count(10, 0.0) == 0
        assert top_k_count(10, 1.0) == 10
        assert top_k_count(0, 0.5) == 0

    def test_never_exceeds_n(self):
        assert top_k_count(3, 0.99) == 3


class TestBaselineMerger:
    def test_finds_planted_pair(self):
        pairs, planted = planted_pairs()
        result = BaselineMerger(k=1.0 / len(pairs)).run(pairs, stub_scorer())
        assert len(result.candidates) == 1
        assert result.candidates[0].key == planted

    def test_planted_pair_has_lowest_score(self):
        pairs, planted = planted_pairs()
        result = BaselineMerger(k=1.0).run(pairs, stub_scorer())
        best = min(result.scores, key=result.scores.get)
        assert best == planted
        assert result.scores[planted] == pytest.approx(0.0, abs=1e-6)

    def test_candidate_budget(self):
        pairs, _ = planted_pairs()
        result = BaselineMerger(k=0.2).run(pairs, stub_scorer())
        expected = top_k_count(len(pairs), 0.2)
        assert len(result.candidates) == expected

    def test_k_zero_returns_nothing(self):
        pairs, _ = planted_pairs()
        result = BaselineMerger(k=0.0).run(pairs, stub_scorer())
        assert result.candidates == []

    def test_candidates_sorted_by_score(self):
        pairs, _ = planted_pairs()
        result = BaselineMerger(k=0.5).run(pairs, stub_scorer(noise=0.05))
        scores = [result.scores[p.key] for p in result.candidates]
        assert scores == sorted(scores)

    def test_all_scores_computed(self):
        pairs, _ = planted_pairs()
        result = BaselineMerger(k=0.1).run(pairs, stub_scorer())
        assert set(result.scores) == {p.key for p in pairs}

    def test_simulated_cost_charged(self):
        pairs, _ = planted_pairs()
        scorer = stub_scorer()
        result = BaselineMerger(k=0.1).run(pairs, scorer)
        total_bbox_pairs = sum(p.n_bbox_pairs for p in pairs)
        assert scorer.cost.n_distances == total_bbox_pairs
        assert result.simulated_seconds > 0

    def test_batched_charges_batch_law(self):
        pairs, _ = planted_pairs()
        scorer = stub_scorer()
        BaselineMerger(k=0.1, batch_size=10).run(pairs, scorer)
        assert scorer.cost.n_extractions == 0
        assert scorer.cost.n_batched_extractions > 0

    def test_batched_same_ranking_as_unbatched(self):
        pairs, _ = planted_pairs()
        plain = BaselineMerger(k=0.3).run(pairs, stub_scorer())
        for pair in pairs:
            pair.reset_sampling()
        batched = BaselineMerger(k=0.3, batch_size=7).run(
            pairs, stub_scorer()
        )
        assert plain.candidate_keys == batched.candidate_keys

    def test_name(self):
        assert BaselineMerger().name == "BL"
        assert BaselineMerger(batch_size=10).name == "BL-B10"

    def test_validation(self):
        with pytest.raises(ValueError):
            BaselineMerger(k=1.5)
        with pytest.raises(ValueError):
            BaselineMerger(batch_size=0)

    def test_empty_pairs(self):
        result = BaselineMerger(k=0.1).run([], stub_scorer())
        assert result.candidates == []
        assert result.n_pairs == 0
