"""Unit tests for the PS and LCB competitors."""

import math

import pytest

from helpers import planted_pairs, stub_scorer

from repro.core.lcb import LcbMerger
from repro.core.proportional import ProportionalMerger


class TestProportionalMerger:
    def test_finds_planted_pair_with_modest_eta(self):
        pairs, planted = planted_pairs()
        result = ProportionalMerger(eta=0.2, k=1.0 / len(pairs)).run(
            pairs, stub_scorer()
        )
        assert result.candidates[0].key == planted

    def test_draw_counts_match_eta(self):
        pairs, _ = planted_pairs(track_len=10)  # pools of 100
        scorer = stub_scorer()
        result = ProportionalMerger(eta=0.1, k=0.1).run(pairs, scorer)
        expected = sum(
            max(1, math.ceil(0.1 * p.n_bbox_pairs)) for p in pairs
        )
        assert result.iterations == expected
        assert scorer.cost.n_distances == expected

    def test_minimum_one_draw_per_pair(self):
        pairs, _ = planted_pairs(track_len=3)
        scorer = stub_scorer()
        result = ProportionalMerger(eta=1e-6, k=0.1).run(pairs, scorer)
        assert result.iterations == len(pairs)

    def test_fresh_extraction_by_default(self):
        pairs, _ = planted_pairs()
        scorer = stub_scorer()
        ProportionalMerger(eta=0.05, k=0.1).run(pairs, scorer)
        # No cache reuse: two extractions per draw.
        assert scorer.cost.n_extractions == 2 * scorer.cost.n_distances

    def test_reuse_flag_uses_cache(self):
        pairs, _ = planted_pairs()
        scorer = stub_scorer()
        ProportionalMerger(eta=0.3, k=0.1, reuse_features=True).run(
            pairs, scorer
        )
        assert scorer.cost.n_extractions < 2 * scorer.cost.n_distances

    def test_batched_charges_batched(self):
        pairs, _ = planted_pairs()
        scorer = stub_scorer()
        ProportionalMerger(eta=0.05, k=0.1, batch_size=16).run(pairs, scorer)
        assert scorer.cost.n_extractions == 0
        assert scorer.cost.n_batched_extractions > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ProportionalMerger(eta=0.0)
        with pytest.raises(ValueError):
            ProportionalMerger(eta=0.1, k=2.0)
        with pytest.raises(ValueError):
            ProportionalMerger(batch_size=0)

    def test_name(self):
        assert ProportionalMerger().name == "PS"
        assert ProportionalMerger(batch_size=100).name == "PS-B100"


class TestLcbMerger:
    def test_finds_planted_pair(self):
        pairs, planted = planted_pairs()
        result = LcbMerger(tau_max=len(pairs) * 4, k=1.0 / len(pairs)).run(
            pairs, stub_scorer()
        )
        assert result.candidates[0].key == planted

    def test_explores_every_arm_first(self):
        pairs, _ = planted_pairs()
        scorer = stub_scorer()
        result = LcbMerger(tau_max=len(pairs), k=0.1).run(pairs, scorer)
        # With exactly |P_c| iterations and unpulled arms having -inf LCB,
        # every arm is pulled exactly once.
        assert result.extra["total_draws"] == len(pairs)
        assert scorer.cost.n_distances == len(pairs)

    def test_iteration_budget_respected(self):
        pairs, _ = planted_pairs()
        result = LcbMerger(tau_max=37, k=0.1).run(pairs, stub_scorer())
        assert result.iterations == 37

    def test_stops_when_all_exhausted(self):
        pairs, _ = planted_pairs(n_distinct=3, track_len=2)
        total = sum(p.n_bbox_pairs for p in pairs)
        result = LcbMerger(tau_max=10 * total, k=0.5).run(
            pairs, stub_scorer()
        )
        assert result.extra["total_draws"] == total

    def test_fresh_extraction_by_default(self):
        pairs, _ = planted_pairs()
        scorer = stub_scorer()
        LcbMerger(tau_max=50, k=0.1).run(pairs, scorer)
        assert scorer.cost.n_extractions == 100

    def test_batched_draws_from_single_arm(self):
        pairs, _ = planted_pairs(track_len=8)
        scorer = stub_scorer()
        result = LcbMerger(tau_max=20, k=0.1, batch_size=5).run(pairs, scorer)
        # 20 iterations x 5 draws each.
        assert result.extra["total_draws"] == 100
        assert scorer.cost.n_batched_extractions == 200

    def test_validation(self):
        with pytest.raises(ValueError):
            LcbMerger(tau_max=0)
        with pytest.raises(ValueError):
            LcbMerger(k=-0.1)

    def test_name(self):
        assert LcbMerger().name == "LCB"
        assert LcbMerger(batch_size=10).name == "LCB-B10"

    def test_empty_pairs(self):
        result = LcbMerger(tau_max=10, k=0.1).run([], stub_scorer())
        assert result.candidates == []
