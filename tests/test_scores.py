"""Unit tests for repro.core.scores."""

import numpy as np
import pytest

from helpers import make_track, stub_scorer

from repro.core.pairs import TrackPair
from repro.core.scores import (
    PairScoreEstimate,
    exact_normalized_score,
    exact_pair_score,
)


class TestExactPairScore:
    def test_same_source_zero(self):
        pair = TrackPair(
            make_track(0, [0, 1], source_id=5),
            make_track(1, [10, 11], source_id=5),
        )
        assert exact_pair_score(pair, stub_scorer()) == pytest.approx(0.0, abs=1e-6)

    def test_matches_manual_average(self):
        pair = TrackPair(
            make_track(0, [0, 1, 2], source_id=1),
            make_track(1, [10, 11], source_id=2),
        )
        scorer = stub_scorer(noise=0.1, seed=3)
        score = exact_pair_score(pair, scorer)
        manual = np.mean(
            [
                scorer.distance(pair.track_a, ia, pair.track_b, ib)
                for ia, ib in pair.all_bbox_index_pairs()
            ]
        )
        assert score == pytest.approx(manual)

    def test_normalized_in_unit_interval(self):
        pair = TrackPair(
            make_track(0, [0, 1], source_id=1),
            make_track(1, [10, 11], source_id=2),
        )
        value = exact_normalized_score(pair, stub_scorer())
        assert 0.0 <= value <= 1.0


class TestPairScoreEstimate:
    def test_initial_uninformative(self):
        assert PairScoreEstimate().mean == 0.5

    def test_running_mean(self):
        est = PairScoreEstimate()
        est.record(0.2)
        est.record(0.4)
        assert est.count == 2
        assert est.mean == pytest.approx(0.3)

    def test_range_validation(self):
        est = PairScoreEstimate()
        with pytest.raises(ValueError):
            est.record(1.5)
        with pytest.raises(ValueError):
            est.record(-0.1)
