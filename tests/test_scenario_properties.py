"""Property-based invariants of the scenario generator: purity of
``(spec, seed) → scenario``, identity-hash stability, and composed
fault schedules never exceeding their axis-spec'd rates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import FaultProfile, compose_profiles
from repro.scenarios import (
    DropoutAxis,
    ScenarioSpec,
    SurgeAxis,
    TailAxis,
    WeatherAxis,
    build_scenario,
    compose_fault_profile,
    compose_scene,
    derive_seeds,
    fault_parts,
)

rates = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


@st.composite
def surge_axes(draw):
    n_bursts = draw(st.integers(min_value=0, max_value=2))
    bursts = []
    for _ in range(n_bursts):
        start = draw(st.floats(min_value=0.0, max_value=1.0))
        end = draw(st.floats(min_value=start, max_value=1.0))
        multiplier = draw(st.floats(min_value=0.0, max_value=6.0))
        bursts.append((start, end, multiplier))
    boost = draw(st.integers(min_value=0, max_value=8))
    return SurgeAxis(bursts=tuple(bursts), max_objects_boost=boost)


@st.composite
def weather_axes(draw):
    return WeatherAxis(
        glare_rate_boost=draw(st.floats(min_value=0.0, max_value=8.0)),
        glare_strength=draw(
            st.none() | st.floats(min_value=0.0, max_value=1.0)
        ),
        corrupt_rate=draw(rates),
        corrupt_mode=draw(st.sampled_from(["nan", "swap"])),
    )


@st.composite
def dropout_axes(draw):
    return DropoutAxis(
        frame_drop_rate=draw(rates),
        window_crash_rate=draw(rates),
    )


@st.composite
def tail_axes(draw):
    return TailAxis(
        alpha=draw(st.none() | st.floats(min_value=0.5, max_value=4.0)),
        max_length=draw(st.none() | st.integers(min_value=40, max_value=300)),
    )


@st.composite
def specs(draw, n_frames=st.integers(min_value=40, max_value=90)):
    """Small arbitrary scenario specs (short videos keep builds fast)."""
    return ScenarioSpec(
        name=draw(st.sampled_from(["prop-a", "prop-b", "prop-c"])),
        preset=draw(st.sampled_from(["mot17", "kitti", "pathtrack"])),
        n_frames=draw(n_frames),
        window_length=draw(st.integers(min_value=10, max_value=40)),
        surge=draw(surge_axes()),
        weather=draw(weather_axes()),
        dropout=draw(dropout_axes()),
        tail=draw(tail_axes()),
    )


class TestGeneratorPurity:
    @settings(max_examples=10, deadline=None)
    @given(spec=specs(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_build_is_bit_identical_for_equal_inputs(self, spec, seed):
        first = build_scenario(spec, seed)
        again = build_scenario(spec, seed)
        assert first.fingerprint() == again.fingerprint()
        assert first.scene == again.scene
        assert first.profile == again.profile
        assert first.seeds.reid_seed == again.seeds.reid_seed

    @settings(max_examples=15, deadline=None)
    @given(spec=specs(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_derived_seeds_are_a_pure_function(self, spec, seed):
        first = derive_seeds(spec, seed)
        again = derive_seeds(spec, seed)
        assert first.fault_seed == again.fault_seed
        assert first.reid_seed == again.reid_seed
        assert first.detector_seed == again.detector_seed
        assert first.disorder_seed == again.disorder_seed


class TestIdentityHash:
    @settings(max_examples=25, deadline=None)
    @given(spec=specs())
    def test_id_depends_only_on_the_spec_value(self, spec):
        clone = ScenarioSpec(**{
            field: getattr(spec, field)
            for field in (
                "name", "preset", "n_frames", "window_length",
                "surge", "weather", "dropout", "tail",
            )
        })
        assert clone.scenario_id == spec.scenario_id
        assert clone.canonical_json() == spec.canonical_json()

    @settings(max_examples=25, deadline=None)
    @given(spec=specs(), bump=st.integers(min_value=1, max_value=1000))
    def test_any_frame_count_change_moves_the_id(self, spec, bump):
        import dataclasses

        moved = dataclasses.replace(spec, n_frames=spec.n_frames + bump)
        assert moved.scenario_id != spec.scenario_id


class TestFaultComposition:
    @settings(max_examples=25, deadline=None)
    @given(spec=specs(), fault_seed=st.integers(min_value=0, max_value=2**31))
    def test_composed_rates_never_exceed_the_axis_rates(
        self, spec, fault_seed
    ):
        profile = compose_fault_profile(spec, fault_seed)
        if profile is None:
            # Clean scenario: no axis asked for any fault.
            assert spec.weather.corrupt_rate == 0.0
            assert not spec.dropout.active
            return
        assert profile.corrupt_rate == spec.weather.corrupt_rate
        assert profile.frame_drop_rate == spec.dropout.frame_drop_rate
        assert profile.window_crash_rate == spec.dropout.window_crash_rate
        assert profile.reid_failure_rate == 0.0
        assert profile.seed == fault_seed

    @settings(max_examples=25, deadline=None)
    @given(
        part_rates=st.lists(
            st.tuples(rates, rates, rates), min_size=0, max_size=4
        )
    )
    def test_compose_profiles_caps_at_the_sum_of_parts(self, part_rates):
        parts = [
            FaultProfile(
                name=f"part-{index}",
                corrupt_rate=corrupt,
                frame_drop_rate=drop,
                window_crash_rate=crash,
            )
            for index, (corrupt, drop, crash) in enumerate(part_rates)
        ]
        composed = compose_profiles("composite", parts, seed=0)
        for field in ("corrupt_rate", "frame_drop_rate", "window_crash_rate"):
            value = getattr(composed, field)
            total = sum(getattr(p, field) for p in parts)
            assert 0.0 <= value <= 1.0
            assert value == min(1.0, total)
            for part in parts:
                assert value >= getattr(part, field) or value == 1.0

    def test_conflicting_corruption_modes_are_rejected(self):
        parts = [
            FaultProfile(name="a", corrupt_rate=0.1, corrupt_mode="nan"),
            FaultProfile(name="b", corrupt_rate=0.1, corrupt_mode="swap"),
        ]
        with pytest.raises(ValueError, match="conflicting corruption modes"):
            compose_profiles("composite", parts)


class TestSceneComposition:
    @settings(max_examples=25, deadline=None)
    @given(spec=specs())
    def test_schedule_stays_inside_the_video(self, spec):
        scene = compose_scene(spec)
        for start, end, multiplier in scene.spawn_rate_schedule:
            assert 0 <= start <= end <= spec.n_frames
            assert multiplier >= 0

    @settings(max_examples=25, deadline=None)
    @given(spec=specs(), frame=st.integers(min_value=0, max_value=200))
    def test_spawn_multiplier_is_the_product_of_active_bursts(
        self, spec, frame
    ):
        scene = compose_scene(spec)
        expected = 1.0
        for start, end, multiplier in scene.spawn_rate_schedule:
            if start <= frame < end:
                expected *= multiplier
        assert scene.spawn_multiplier_at(frame) == pytest.approx(expected)

    @settings(max_examples=25, deadline=None)
    @given(spec=specs())
    def test_fault_parts_mirror_exactly_the_active_fault_axes(self, spec):
        names = [part.name for part in fault_parts(spec)]
        expected = []
        if spec.weather.corrupt_rate > 0:
            expected.append(f"{spec.name}:weather")
        if spec.dropout.active:
            expected.append(f"{spec.name}:dropout")
        assert names == expected
