"""Regenerate ``scenario_golden.json`` — pinned scenario fingerprints.

Run from the repo root after a *conscious* scenario-generator change::

    PYTHONPATH=src python tests/fixtures/make_scenario_golden.py

The fixture pins ``Scenario.fingerprint()`` at seed 0 for one clear
scenario plus one per regime-axis family, so an accidental change to
world simulation, fault composition or seed derivation fails
``tests/test_scenarios.py::TestGoldenFingerprints`` instead of silently
shifting every committed baseline.
"""

import json
from pathlib import Path

from repro.scenarios import build_scenario, scenario_by_name

#: One clear scenario plus one representative per axis family.
GOLDEN_SCENARIOS = (
    "mot17-clear",
    "mot17-rush-hour",
    "kitti-sun-glare",
    "kitti-camera-dropout",
    "pathtrack-longtail",
)

OUT = Path(__file__).parent / "scenario_golden.json"


def build_golden() -> dict:
    golden = {}
    for name in GOLDEN_SCENARIOS:
        spec = scenario_by_name(name)
        scenario = build_scenario(spec, seed=0)
        golden[name] = {
            "scenario_id": spec.scenario_id,
            "fingerprint": scenario.fingerprint(),
            "n_objects": len(scenario.world.objects),
        }
    return golden


if __name__ == "__main__":
    OUT.write_text(json.dumps(build_golden(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT}")
