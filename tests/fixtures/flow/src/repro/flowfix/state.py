"""GLOBAL_MUTATE fixture."""

_CACHE: dict = {}


def remember(key: str, value: float) -> None:
    """Writes module-level state — flagged."""
    _CACHE[key] = value
