"""WALL_CLOCK fixture."""

import time


def stamp() -> float:
    """Reads the real clock — the analysis must flag this."""
    return time.perf_counter()
