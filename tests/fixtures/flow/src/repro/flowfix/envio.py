"""ENV_READ and FILE_IO fixtures."""

import os


def env_flag() -> str:
    """Reads the process environment — flagged."""
    return os.getenv("FLOWFIX_FLAG", "")


def load(path: str) -> str:
    """Opens a file — flagged."""
    with open(path, encoding="utf-8") as handle:
        return handle.read()
