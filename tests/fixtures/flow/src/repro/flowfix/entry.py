"""Contract roots for the fixture package."""

import numpy as np

from repro.flowfix import clean, envio, iteration, rng, state, wall


def clean_entry(generator: np.random.Generator) -> float:
    """Root whose closure is effect-free (seam-exempt RNG included)."""
    value = clean.scale(clean.draw(generator))
    exempt = rng.seeded(7)
    return value + float(exempt.random())


def dirty_entry(seed: int) -> float:
    """Root that reaches every effect class, one call deep."""
    state.remember("t0", wall.stamp())
    generator = rng.ambient()
    _ = rng.constant_seeded()
    _ = envio.env_flag()
    _ = envio.load("features.bin")
    _ = iteration.first_arm({1, 2, 3})
    return float(generator.random())
