"""RNG_CREATE fixture, with the seam-exempted counterpart."""

import numpy as np


def ambient() -> np.random.Generator:
    """Unseeded construction — ambient randomness, flagged."""
    return np.random.default_rng()


def constant_seeded() -> np.random.Generator:
    """Constant-seeded construction — still ambient, flagged."""
    return np.random.default_rng(1234)


def seeded(seed: int) -> np.random.Generator:
    """Seam-exempt: the seed flows in through a parameter."""
    return np.random.default_rng(seed)
