"""Golden fixture package for the whole-program flow analysis.

One module per effect class plus a clean module and seam-exempted
cases; ``entry`` defines the contract roots the tests check against.
"""
