"""UNORDERED_ITER fixture."""


def first_arm(arms: set) -> int:
    """Iterates a set in hash order — flagged."""
    for arm in arms:
        return arm
    return -1


def sorted_arms(arms: set) -> list:
    """Sorting first makes the order deterministic — clean."""
    return [arm for arm in sorted(arms)]
