"""Effect-free helpers: nothing here should ever be flagged."""

import numpy as np


def draw(rng: np.random.Generator) -> float:
    """One uniform draw from the injected generator."""
    return float(rng.random())


def scale(x: float) -> float:
    """Pure arithmetic."""
    return 2.0 * x
