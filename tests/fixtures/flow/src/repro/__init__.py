"""Synthetic ``repro`` root for the flow-analysis golden fixtures."""
