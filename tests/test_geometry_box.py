"""Unit tests for repro.geometry.box."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import BBox, center_distance, clip_bbox


class TestBBoxConstruction:
    def test_corner_constructor(self):
        box = BBox(1.0, 2.0, 4.0, 8.0)
        assert box.width == 3.0
        assert box.height == 6.0
        assert box.area == 18.0

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            BBox(5.0, 0.0, 1.0, 10.0)
        with pytest.raises(ValueError):
            BBox(0.0, 5.0, 10.0, 1.0)

    def test_zero_size_allowed(self):
        box = BBox(1.0, 1.0, 1.0, 1.0)
        assert box.area == 0.0

    def test_from_center(self):
        box = BBox.from_center(10.0, 20.0, 4.0, 6.0)
        assert box.to_xyxy() == (8.0, 17.0, 12.0, 23.0)
        assert box.center == (10.0, 20.0)

    def test_from_center_negative_size_raises(self):
        with pytest.raises(ValueError):
            BBox.from_center(0, 0, -1.0, 5.0)

    def test_from_tlwh(self):
        box = BBox.from_tlwh(1.0, 2.0, 3.0, 4.0)
        assert box.to_tlwh() == (1.0, 2.0, 3.0, 4.0)
        assert box.to_xyxy() == (1.0, 2.0, 4.0, 6.0)

    def test_from_tlwh_negative_raises(self):
        with pytest.raises(ValueError):
            BBox.from_tlwh(0, 0, 5.0, -2.0)


class TestBBoxProperties:
    def test_aspect_ratio(self):
        assert BBox.from_tlwh(0, 0, 10, 20).aspect_ratio == 0.5

    def test_aspect_ratio_zero_height(self):
        assert BBox(0, 0, 10, 0).aspect_ratio == math.inf

    def test_translated(self):
        box = BBox(0, 0, 2, 2).translated(3, -1)
        assert box.to_xyxy() == (3.0, -1.0, 5.0, 1.0)

    def test_scaled_preserves_center(self):
        box = BBox.from_center(5, 5, 2, 4).scaled(2.0)
        assert box.center == (5.0, 5.0)
        assert box.width == 4.0
        assert box.height == 8.0

    def test_scaled_negative_raises(self):
        with pytest.raises(ValueError):
            BBox(0, 0, 1, 1).scaled(-1.0)

    def test_contains_point(self):
        box = BBox(0, 0, 10, 10)
        assert box.contains_point(5, 5)
        assert box.contains_point(0, 10)
        assert not box.contains_point(11, 5)


class TestIntersection:
    def test_overlapping(self):
        a = BBox(0, 0, 10, 10)
        b = BBox(5, 5, 15, 15)
        inter = a.intersection(b)
        assert inter is not None
        assert inter.to_xyxy() == (5.0, 5.0, 10.0, 10.0)

    def test_disjoint(self):
        assert BBox(0, 0, 1, 1).intersection(BBox(2, 2, 3, 3)) is None

    def test_touching_edges_is_none(self):
        assert BBox(0, 0, 1, 1).intersection(BBox(1, 0, 2, 1)) is None

    def test_contained(self):
        outer = BBox(0, 0, 10, 10)
        inner = BBox(2, 2, 4, 4)
        assert outer.intersection(inner).to_xyxy() == inner.to_xyxy()


class TestCenterDistance:
    def test_same_box_zero(self):
        box = BBox(0, 0, 4, 4)
        assert center_distance(box, box) == 0.0

    def test_pythagorean(self):
        a = BBox.from_center(0, 0, 2, 2)
        b = BBox.from_center(3, 4, 2, 2)
        assert center_distance(a, b) == pytest.approx(5.0)


class TestClipBBox:
    def test_inside_unchanged(self):
        box = BBox(10, 10, 20, 20)
        assert clip_bbox(box, 100, 100).to_xyxy() == box.to_xyxy()

    def test_partial_clip(self):
        box = BBox(-5, -5, 10, 10)
        clipped = clip_bbox(box, 100, 100)
        assert clipped.to_xyxy() == (0.0, 0.0, 10.0, 10.0)

    def test_fully_outside_returns_none(self):
        assert clip_bbox(BBox(200, 200, 300, 300), 100, 100) is None

    def test_outside_left(self):
        assert clip_bbox(BBox(-30, 10, -10, 20), 100, 100) is None


@given(
    cx=st.floats(-1e3, 1e3),
    cy=st.floats(-1e3, 1e3),
    w=st.floats(0.0, 1e3),
    h=st.floats(0.0, 1e3),
)
def test_from_center_roundtrip(cx, cy, w, h):
    """Center/size survive a from_center round trip (up to float error)."""
    box = BBox.from_center(cx, cy, w, h)
    rcx, rcy = box.center
    assert rcx == pytest.approx(cx, abs=1e-6)
    assert rcy == pytest.approx(cy, abs=1e-6)
    assert box.width == pytest.approx(w, abs=1e-6)
    assert box.height == pytest.approx(h, abs=1e-6)


@given(
    x1=st.floats(-100, 100), y1=st.floats(-100, 100),
    dx=st.floats(0, 100), dy=st.floats(0, 100),
    tx=st.floats(-50, 50), ty=st.floats(-50, 50),
)
def test_translation_preserves_area(x1, y1, dx, dy, tx, ty):
    box = BBox(x1, y1, x1 + dx, y1 + dy)
    assert box.translated(tx, ty).area == pytest.approx(box.area, rel=1e-9, abs=1e-6)
