"""Differential tests: the parallel engine is bit-identical to serial.

The engine's core guarantee (DESIGN.md §9) is that a window's result is
a pure function of ``(seed, window index)``, so any worker count,
backend and scheduling order must reproduce the ``n_workers=1`` inline
run exactly — candidates, scores, degraded flags, the simulated clock,
resilience counters and merged telemetry deltas, all bit-for-bit.  These
tests assert exactly that, across worker counts × seeds × fault
profiles, and also run inside CI's chaos matrix (every shipped profile).
"""

import pytest

from repro.faults import fault_profile
from repro.telemetry import Telemetry

SEEDS = (1, 5)
WORKER_COUNTS = (2, 4)
PROFILES = (None, "flaky-reid", "window-crash")
FAULT_SEED = 11


@pytest.fixture(scope="module")
def tracked(chaos_world):
    """Detections and tracks computed once; the merge stage re-runs."""
    from repro.detect import NoisyDetector
    from repro.track import TracktorTracker

    detections = NoisyDetector().detect_video(chaos_world, seed=2)
    tracks = TracktorTracker().run(detections)
    return detections, tracks


def _profile(name):
    return None if name is None else fault_profile(name, seed=FAULT_SEED)


def _run(make_pipeline, chaos_world, tracked, *, workers, seed,
         profile=None, backend="process", telemetry=None):
    detections, tracks = tracked
    pipeline = make_pipeline(
        window_length=100,
        reid_seed=seed,
        workers=workers,
        parallel_backend=backend,
        fault_profile=_profile(profile),
        telemetry=telemetry,
    )
    return pipeline.run_on_tracks(chaos_world, detections, tracks)


def fingerprint(result):
    """Everything the engine promises to reproduce, exactly."""
    return {
        "candidates": [
            tuple(sorted(r.candidate_keys)) for r in result.window_results
        ],
        "scores": [
            tuple(sorted(r.scores.items())) for r in result.window_results
        ],
        "degraded": [r.degraded for r in result.window_results],
        "iterations": [r.iterations for r in result.window_results],
        "simulated_seconds": [
            r.simulated_seconds for r in result.window_results
        ],
        "cost": result.cost.state_dict(),
        "resilience": dict(result.resilience_stats),
        "id_map": dict(result.id_map),
        "merged_ids": sorted(t.track_id for t in result.merged_tracks),
    }


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_matches_serial(
    make_pipeline, chaos_world, tracked, workers, seed, profile
):
    serial = _run(
        make_pipeline, chaos_world, tracked,
        workers=1, seed=seed, profile=profile,
    )
    parallel = _run(
        make_pipeline, chaos_world, tracked,
        workers=workers, seed=seed, profile=profile,
    )
    assert fingerprint(parallel) == fingerprint(serial)


@pytest.mark.parametrize("profile", (None, "flaky-reid"))
def test_thread_backend_matches_process(
    make_pipeline, chaos_world, tracked, profile
):
    process = _run(
        make_pipeline, chaos_world, tracked,
        workers=2, seed=1, profile=profile, backend="process",
    )
    thread = _run(
        make_pipeline, chaos_world, tracked,
        workers=2, seed=1, profile=profile, backend="thread",
    )
    assert fingerprint(thread) == fingerprint(process)


def test_telemetry_merges_identically(make_pipeline, chaos_world, tracked):
    """Merged counters and per-window deltas are worker-count invariant."""
    snapshots = {}
    for workers in (1, 2, 4):
        telemetry = Telemetry()
        result = _run(
            make_pipeline, chaos_world, tracked,
            workers=workers, seed=1, telemetry=telemetry,
        )
        snapshots[workers] = (
            telemetry.metrics.counters_snapshot(),
            result.window_metrics,
        )
    assert snapshots[2] == snapshots[1]
    assert snapshots[4] == snapshots[1]


def test_shard_spans_recorded(make_pipeline, chaos_world, tracked):
    telemetry = Telemetry()
    result = _run(
        make_pipeline, chaos_world, tracked,
        workers=2, seed=1, telemetry=telemetry,
    )
    shard_spans = [
        s for s in telemetry.tracer.spans if s.name == "parallel.shard"
    ]
    assert len(shard_spans) == 2
    covered = sorted(
        index
        for span in shard_spans
        for index in span.attributes["window_ids"]
    )
    busy = [
        c for c, pairs in enumerate(result.window_pairs) if pairs
    ]
    assert covered == busy
    window_spans = [
        s for s in telemetry.tracer.spans if s.name == "window"
    ]
    assert len(window_spans) == len(busy)


def test_workers_one_builds_no_pool(
    make_pipeline, chaos_world, tracked, monkeypatch
):
    """The serial fallback never constructs a pool."""
    import repro.parallel.executor as executor_module

    def explode(*args, **kwargs):
        raise AssertionError("pool constructed on the workers=1 path")

    monkeypatch.setattr(
        executor_module, "ProcessPoolExecutor", explode
    )
    monkeypatch.setattr(
        executor_module, "ThreadPoolExecutor", explode
    )
    result = _run(
        make_pipeline, chaos_world, tracked, workers=1, seed=1,
    )
    assert result.window_results


def test_workers_none_keeps_legacy_path(
    make_pipeline, chaos_world, tracked, monkeypatch
):
    """``workers=None`` must never reach the sharded engine."""
    import repro.core.pipeline as pipeline_module

    def explode(self, *args, **kwargs):
        raise AssertionError("workers=None entered the sharded path")

    monkeypatch.setattr(
        pipeline_module.IngestionPipeline, "_run_sharded", explode
    )
    detections, tracks = tracked
    result = make_pipeline(window_length=100).run_on_tracks(
        chaos_world, detections, tracks
    )
    assert result.window_results


def test_sweeps_workers_matches_serial(chaos_world):
    """``evaluate_merger(workers=...)`` is exact across worker counts."""
    from repro.core.baseline import BaselineMerger
    from repro.experiments.prep import prepare_dataset
    from repro.experiments.sweeps import evaluate_merger

    videos = prepare_dataset("mot17", 1, seed=0, n_frames=300)

    def factory():
        return BaselineMerger(k=0.05)

    serial = evaluate_merger(factory, videos, workers=1)
    parallel = evaluate_merger(factory, videos, workers=3)
    # MethodPoint is frozen: equality compares every field exactly.
    assert parallel == serial
