"""Micro-scale smoke tests of the per-figure experiment functions.

These run each figure's code path on tiny inputs so regressions in the
experiment harness are caught by the fast suite, not only by the (slow)
benchmark run.
"""

import pytest

from repro.experiments import figures
from repro.experiments.prep import prepare_dataset


@pytest.fixture(scope="module")
def micro_videos():
    return prepare_dataset("kitti", 1, seed=0, n_frames=300)


class TestFigureFunctions:
    def test_fig3_structure(self, micro_videos):
        curves = figures.fig3_rec_k(
            {"kitti": micro_videos}, ks=(0.05, 0.2)
        )
        assert set(curves) == {"kitti"}
        assert [k for k, _ in curves["kitti"]] == [0.05, 0.2]
        for _, rec in curves["kitti"]:
            assert 0.0 <= rec <= 1.0

    def test_fig4_structure(self):
        rows = figures.fig4_runtime_scaling(
            lengths=(200, 400), preset="kitti", window_length=400
        )
        assert len(rows) == 2
        assert rows[0][0] == 200
        assert rows[1][2] > rows[0][2]

    def test_fig6_structure(self, micro_videos):
        results = figures.fig6_batched(
            micro_videos,
            batch_sizes=(5,),
            batch_taus=(50, 100),
            etas=(0.001,),
        )
        assert set(results) == {"BL-B5", "PS-B5", "LCB-B5", "TMerge-B5"}
        assert len(results["TMerge-B5"]) == 2

    def test_fig7_structure(self, micro_videos):
        rows = figures.fig7_tau_sweep(
            micro_videos, taus=(50, 200), batch_size=5
        )
        assert len(rows) == 2
        assert rows[1][1] >= rows[0][1]  # runtime grows

    def test_fig8_structure(self, micro_videos):
        results = figures.fig8_ablation(
            micro_videos, taus=(50, 100), batch_size=5
        )
        assert set(results) == {
            "TMerge",
            "TMerge w/o BetaInit",
            "TMerge w/o ULB",
        }

    def test_fig10_structure(self, micro_videos):
        results = figures.fig10_thr_s(
            micro_videos, thresholds=(None, 150.0), taus=(50,), batch_size=5
        )
        assert set(results) == {"no BetaInit", "thr_S=150"}

    def test_fig11_rows(self):
        rows = figures.fig11_polyonymous_rate(
            preset="kitti", n_videos=1, n_frames=300
        )
        names = [r[0] for r in rows]
        assert names == ["Tracktor", "DeepSORT", "UMA"]
        for _, without, with_tmerge in rows:
            assert 0.0 <= with_tmerge <= without <= 1.0

    def test_fig12_rows(self):
        rows = figures.fig12_identity_metrics(
            preset="kitti", n_videos=1, n_frames=300
        )
        values = {name: (b, a) for name, b, a in rows}
        assert set(values) == {"IDF1", "IDP", "IDR"}
        for before, after in values.values():
            assert 0.0 <= before <= 1.0
            assert 0.0 <= after <= 1.0
            assert after >= before - 1e-9

    def test_fig13_rows(self):
        rows = figures.fig13_query_recall(
            preset="kitti",
            n_videos=1,
            n_frames=300,
            count_min_frames=100,
            cooccur_min_frames=30,
        )
        values = {name: (b, a) for name, b, a in rows}
        assert set(values) == {"Count", "Co-occurrence"}
        for before, after in values.values():
            assert after >= before - 1e-9

    def test_table2_formatting(self, micro_videos):
        from repro.experiments.sweeps import rec_fps_sweep

        sweeps = figures.method_sweeps(taus=(50,), etas=(0.001,))
        unbatched = {
            name: rec_fps_sweep(factories, micro_videos)
            for name, factories in sweeps.items()
        }
        rows = figures.table2_fps(unbatched, {}, rec_targets=(0.5,))
        assert [r[0] for r in rows] == ["BL", "PS", "LCB", "TMerge"]
        assert all(len(r) == 2 for r in rows)
