"""Unit tests for the window-sharded parallel engine's building blocks.

The differential layer (``test_parallel_equivalence.py``) proves the
end-to-end guarantee; this module pins down each component in isolation:
shard planning, seed-substream derivation, the shard-cover contract, and
the delta-merge seams (cost clock, metric counters, trace spans) the
aggregation stage relies on.
"""

import numpy as np
import pytest

from repro import contracts
from repro.core.results import MergeResult
from repro.experiments.bench_summary import (
    BenchSummary,
    compare_summaries,
)
from repro.io.results import merge_result_to_dict
from repro.parallel import ShardPlanner, window_seeds
from repro.reid.cost import CostModel
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Span, Tracer


class TestShardPlanner:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ShardPlanner(0)

    def test_rejects_duplicate_windows(self):
        with pytest.raises(ValueError):
            ShardPlanner(2).plan([0, 1, 1])

    def test_plan_is_deterministic(self):
        first = ShardPlanner(3).plan([5, 2, 8, 0, 3])
        second = ShardPlanner(3).plan([3, 0, 8, 2, 5])
        assert first == second

    def test_plan_partitions_input(self):
        plan = ShardPlanner(3).plan(range(10))
        covered = plan.covered_indices()
        assert sorted(covered) == list(range(10))
        assert len(covered) == len(set(covered))

    def test_round_robin_assignment(self):
        plan = ShardPlanner(2).plan([0, 1, 2, 3, 4])
        assert plan.shards[0].window_indices == (0, 2, 4)
        assert plan.shards[1].window_indices == (1, 3)

    def test_empty_shards_dropped(self):
        plan = ShardPlanner(8).plan([0, 1])
        assert len(plan.shards) == 2
        assert all(shard.window_indices for shard in plan.shards)

    def test_empty_input(self):
        plan = ShardPlanner(4).plan([])
        assert plan.shards == ()
        assert plan.covered_indices() == []


class TestWindowSeeds:
    def test_deterministic(self):
        first = window_seeds(7, 4)
        second = window_seeds(7, 4)
        for a, b in zip(first, second):
            assert a.model.entropy == b.model.entropy
            assert a.model.spawn_key == b.model.spawn_key

    def test_windows_independent(self):
        seeds = window_seeds(7, 4)
        draws = [
            np.random.default_rng(s.model).random() for s in seeds
        ]
        assert len(set(draws)) == len(draws)

    def test_prefix_stable(self):
        """Window c's substream does not depend on the window count."""
        short = window_seeds(7, 3)
        long = window_seeds(7, 6)
        for a, b in zip(short, long):
            assert a.model.spawn_key == b.model.spawn_key

    def test_no_profile_leaves_fault_seams_unset(self):
        seeds = window_seeds(7, 2)
        assert all(
            s.call is None and s.corrupt is None and s.crash is None
            for s in seeds
        )

    def test_profile_fills_fault_seams(self):
        from repro.faults import fault_profile

        seeds = window_seeds(7, 3, fault_profile("flaky-reid", seed=11))
        assert all(
            s.call is not None and s.corrupt is not None
            and s.crash is not None
            for s in seeds
        )
        crash_keys = {s.crash.spawn_key for s in seeds}
        assert len(crash_keys) == 3

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            window_seeds(7, -1)


class TestShardCoverContract:
    def setup_method(self):
        self._previous = contracts.set_enabled(True)

    def teardown_method(self):
        contracts.set_enabled(self._previous)

    def test_exact_cover_passes(self):
        contracts.check_shard_cover([2, 0, 1], [0, 1, 2])

    def test_duplicate_fails(self):
        with pytest.raises(contracts.ContractViolation, match="more than one"):
            contracts.check_shard_cover([0, 1, 1], [0, 1])

    def test_missing_fails(self):
        with pytest.raises(contracts.ContractViolation, match="missing"):
            contracts.check_shard_cover([0], [0, 1])

    def test_extra_fails(self):
        with pytest.raises(contracts.ContractViolation, match="unexpected"):
            contracts.check_shard_cover([0, 1, 5], [0, 1])

    def test_disabled_is_noop(self):
        contracts.set_enabled(False)
        contracts.check_shard_cover([0, 0], [9])


class TestCostMergeState:
    def test_merge_sums_all_fields(self):
        left = CostModel()
        left.charge_overhead()
        right = CostModel()
        right.charge_overhead()
        right.charge_overhead()
        total = CostModel()
        total.merge_state(left.state_dict())
        total.merge_state(right.state_dict())
        assert total.n_overheads == 3
        assert total.milliseconds == pytest.approx(
            left.milliseconds + right.milliseconds
        )

    def test_merge_empty_state_is_identity(self):
        cost = CostModel()
        cost.charge_overhead()
        before = cost.state_dict()
        cost.merge_state(CostModel().state_dict())
        assert cost.state_dict() == before


class TestMetricsMergeDelta:
    def test_merge_increments_counters(self):
        registry = MetricsRegistry()
        registry.inc("reid.invocations", 2)
        registry.merge_delta({"reid.invocations": 3.0, "cache.hits": 1.0})
        assert registry.value("reid.invocations") == 5.0
        assert registry.value("cache.hits") == 1.0

    def test_zero_amounts_create_nothing(self):
        registry = MetricsRegistry()
        registry.merge_delta({"reid.invocations": 0.0})
        assert "reid.invocations" not in registry.counters_snapshot()


class TestTracerAbsorb:
    def _worker_spans(self):
        worker = Tracer()
        with worker.span("window", window_id=3):
            with worker.span("merge"):
                pass
        return sorted(worker.spans, key=lambda s: s.span_id)

    def test_absorb_remaps_ids_and_parents(self):
        host = Tracer()
        with host.span("ingest"):
            adopted = host.absorb(self._worker_spans())
        window, merge = sorted(adopted, key=lambda s: s.span_id)
        ingest = next(s for s in host.spans if s.name == "ingest")
        assert window.parent_id == ingest.span_id
        assert merge.parent_id == window.span_id
        assert len({s.span_id for s in host.spans}) == len(host.spans)

    def test_absorb_outside_any_span_makes_roots(self):
        host = Tracer()
        adopted = host.absorb(self._worker_spans())
        window = next(s for s in adopted if s.name == "window")
        assert window.parent_id is None

    def test_absorb_keeps_timestamps_and_attributes(self):
        spans = self._worker_spans()
        host = Tracer()
        adopted = host.absorb(spans)
        by_name = {s.name: s for s in adopted}
        for original in spans:
            copy = by_name[original.name]
            assert copy.start_ms == original.start_ms
            assert copy.end_ms == original.end_ms
            assert copy.attributes == original.attributes

    def test_absorb_roundtrips_through_dicts(self):
        payloads = [s.to_dict() for s in self._worker_spans()]
        host = Tracer()
        adopted = host.absorb([Span.from_dict(p) for p in payloads])
        assert [s.name for s in adopted] == ["window", "merge"]


class TestBenchSummaryExtras:
    def _summary(self, extras=None):
        summary = BenchSummary()
        summary.add(
            "fig3_parallel_speedup",
            recall=0.9,
            reid_invocations=100.0,
            simulated_ms=5.0,
            extras=extras,
        )
        return summary

    def test_extras_roundtrip(self):
        extras = {"parallel_speedup": 2.5, "workers": 4.0}
        summary = self._summary(extras)
        rebuilt = BenchSummary.from_dict(summary.to_dict())
        record = rebuilt.benchmarks["fig3_parallel_speedup"]
        assert record["extras"] == extras

    def test_extras_ignored_by_gate(self):
        baseline = self._summary({"parallel_speedup": 4.0})
        current = self._summary({"parallel_speedup": 0.4})
        assert compare_summaries(current, baseline) == []

    def test_no_extras_key_when_omitted(self):
        record = self._summary().benchmarks["fig3_parallel_speedup"]
        assert "extras" not in record


class TestMergeResultExtraWidening:
    def test_accepts_non_numeric_diagnostics(self):
        result = MergeResult(
            method="BL",
            candidates=[],
            scores={},
            n_pairs=0,
            k=0.1,
            simulated_seconds=0.0,
            extra={
                "pruned": 3,
                "fallback": True,
                "label": "spatial-prior",
                "per_round": [1, 2, 3],
            },
        )
        assert result.extra["label"] == "spatial-prior"

    def test_serializes_through_io_layer(self):
        result = MergeResult(
            method="BL",
            candidates=[],
            scores={},
            n_pairs=0,
            k=0.1,
            simulated_seconds=0.0,
            extra={"fallback": True, "label": "x"},
        )
        payload = merge_result_to_dict(result)
        assert payload["extra"] == {"fallback": True, "label": "x"}
