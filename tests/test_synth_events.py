"""Unit tests for repro.synth.events."""

import numpy as np
import pytest

from repro.geometry import BBox
from repro.synth.events import (
    GlareInterval,
    StaticOccluder,
    glare_factor,
    occlusion_fractions,
    schedule_glare,
)


class TestStaticOccluder:
    def test_full_coverage(self):
        occluder = StaticOccluder(BBox(0, 0, 100, 100))
        assert occluder.coverage(BBox(10, 10, 20, 20)) == pytest.approx(1.0)

    def test_partial_coverage(self):
        occluder = StaticOccluder(BBox(0, 0, 10, 10))
        # Box half inside the occluder.
        assert occluder.coverage(BBox(5, 0, 15, 10)) == pytest.approx(0.5)

    def test_no_coverage(self):
        occluder = StaticOccluder(BBox(0, 0, 10, 10))
        assert occluder.coverage(BBox(20, 20, 30, 30)) == 0.0


class TestGlare:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            GlareInterval(10, 5, 0.5)
        with pytest.raises(ValueError):
            GlareInterval(0, 10, 1.5)

    def test_active_at(self):
        interval = GlareInterval(10, 20, 0.1)
        assert interval.active_at(10)
        assert interval.active_at(20)
        assert not interval.active_at(21)

    def test_factor_multiplies(self):
        intervals = [GlareInterval(0, 10, 0.5), GlareInterval(5, 15, 0.4)]
        assert glare_factor(7, intervals) == pytest.approx(0.2)
        assert glare_factor(12, intervals) == pytest.approx(0.4)
        assert glare_factor(20, intervals) == 1.0

    def test_schedule_respects_rate_zero(self):
        rng = np.random.default_rng(0)
        assert schedule_glare(1000, 0.0, (5, 10), 0.1, rng) == []

    def test_schedule_bounds(self):
        rng = np.random.default_rng(1)
        intervals = schedule_glare(500, 20.0, (5, 10), 0.1, rng)
        assert intervals  # expected ~10 events
        for interval in intervals:
            assert 0 <= interval.start < 500
            assert interval.end <= 499
            assert interval.strength == 0.1

    def test_schedule_invalid_duration(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            schedule_glare(100, 5.0, (10, 5), 0.1, rng)


class TestOcclusionFractions:
    def test_no_overlap_no_occlusion(self):
        boxes = [BBox(0, 0, 10, 10), BBox(50, 50, 60, 60)]
        assert occlusion_fractions(boxes, []) == [0.0, 0.0]

    def test_closer_object_occludes_farther(self):
        # Box B sits lower in the image (bigger y2) => closer => occludes A.
        far = BBox(0, 0, 10, 10)
        near = BBox(0, 5, 10, 15)
        fractions = occlusion_fractions([far, near], [])
        assert fractions[0] == pytest.approx(0.5)  # half of A hidden
        assert fractions[1] == 0.0  # the closer object is unobstructed

    def test_static_occluder_contributes(self):
        boxes = [BBox(0, 0, 10, 10)]
        occluders = [StaticOccluder(BBox(0, 0, 5, 10))]
        assert occlusion_fractions(boxes, occluders) == [pytest.approx(0.5)]

    def test_max_of_sources(self):
        # Object occluded 50% by another object and 80% by an occluder:
        # the larger value wins.
        far = BBox(0, 0, 10, 10)
        near = BBox(0, 5, 10, 15)
        occluders = [StaticOccluder(BBox(0, 0, 8, 10))]
        fractions = occlusion_fractions([far, near], occluders)
        assert fractions[0] == pytest.approx(0.8)

    def test_empty(self):
        assert occlusion_fractions([], []) == []
