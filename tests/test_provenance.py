"""Unit tests for the merge-decision provenance layer.

Covers the ledger container (bounded capacity, window stamping, absorb
re-sequencing, state round-trip, JSONL export/import), the event schema
validation, and the decision-chain reconstruction (`explain_pair`) over
hand-built event logs where every verdict branch is known exactly.  The
end-to-end bit-transparency and checkpoint guarantees live in
``tests/test_provenance_equivalence.py``.
"""

import json

import pytest

from repro.provenance import (
    EVENT_FINAL,
    EVENT_KINDS,
    EVENT_SAMPLE,
    EVENT_ULB,
    EVENT_WINDOW,
    VERDICT_CANDIDATE,
    VERDICT_NOT_SELECTED,
    VERDICT_ULB_ACCEPTED,
    VERDICT_ULB_REJECTED,
    DecisionEvent,
    DecisionLedger,
    events_from_jsonl,
    explain_pair,
    load_events_jsonl,
    windows_containing,
)


class TestDecisionEvent:
    def test_round_trip(self):
        event = DecisionEvent(
            seq=3, kind=EVENT_SAMPLE, window=1, tau=7,
            data={"arms": [0, 2], "theta": [0.5, 0.25]},
        )
        clone = DecisionEvent.from_dict(event.to_dict())
        assert clone == event

    def test_to_dict_is_pure_json(self):
        event = DecisionEvent(seq=0, kind=EVENT_WINDOW, window=0)
        json.dumps(event.to_dict())  # must not raise

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DecisionEvent(seq=0, kind="telepathy", window=0)

    def test_kinds_registry_complete(self):
        assert EVENT_WINDOW in EVENT_KINDS
        assert EVENT_FINAL in EVENT_KINDS


class TestDecisionLedger:
    def test_record_stamps_window_and_seq(self):
        ledger = DecisionLedger()
        ledger.begin_window(4)
        first = ledger.record(EVENT_WINDOW, n_pairs=3)
        second = ledger.record(EVENT_SAMPLE, tau=1, arms=[0])
        assert (first.seq, second.seq) == (0, 1)
        assert first.window == second.window == 4
        assert second.tau == 1

    def test_capacity_drops_oldest(self):
        ledger = DecisionLedger(max_events=3)
        for tau in range(5):
            ledger.record(EVENT_SAMPLE, tau=tau)
        assert len(ledger) == 3
        assert ledger.n_recorded == 5
        assert ledger.n_dropped == 2
        assert [e.tau for e in ledger] == [2, 3, 4]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            DecisionLedger(max_events=0)

    def test_events_for_window(self):
        ledger = DecisionLedger()
        ledger.begin_window(0)
        ledger.record(EVENT_WINDOW)
        ledger.begin_window(1)
        ledger.record(EVENT_WINDOW)
        ledger.record(EVENT_FINAL, chosen=[])
        assert len(ledger.events_for_window(0)) == 1
        assert len(ledger.events_for_window(1)) == 2

    def test_absorb_reassigns_seq_keeps_windows(self):
        worker = DecisionLedger()
        worker.begin_window(2)
        worker.record(EVENT_WINDOW, n_pairs=1)
        worker.record(EVENT_FINAL, chosen=[0])

        main = DecisionLedger()
        main.record(EVENT_SAMPLE, tau=0)
        main.absorb(worker.to_dicts())
        assert [e.seq for e in main] == [0, 1, 2]
        assert [e.window for e in main] == [None, 2, 2]
        assert [e.kind for e in main] == [
            EVENT_SAMPLE, EVENT_WINDOW, EVENT_FINAL,
        ]

    def test_state_round_trip_is_wholesale(self):
        ledger = DecisionLedger(max_events=10)
        ledger.begin_window(1)
        ledger.record(EVENT_WINDOW, n_pairs=2)
        snapshot = ledger.state_dict()
        json.dumps(snapshot)  # checkpoint payloads must be pure JSON

        # Post-snapshot divergence must be wiped by the restore.
        ledger.record(EVENT_FINAL, chosen=[9])
        ledger.load_state_dict(snapshot)
        assert len(ledger) == 1
        assert ledger.n_recorded == 1
        assert ledger.current_window == 1
        assert ledger.state_dict() == snapshot

    def test_jsonl_round_trip(self, tmp_path):
        ledger = DecisionLedger()
        ledger.begin_window(0)
        ledger.record(EVENT_WINDOW, pairs=[[1, 2]], n_pairs=1)
        ledger.record(
            EVENT_SAMPLE, tau=1, arms=[0], theta=[0.125],
            observed=[0], d_norm=[0.5],
            posterior_before=[[1, 1]], posterior_after=[[1, 2]],
        )
        path = tmp_path / "ledger.jsonl"
        assert ledger.export_jsonl(str(path)) == 2
        loaded = load_events_jsonl(str(path))
        assert loaded == ledger.events
        assert events_from_jsonl(ledger.to_jsonl()) == ledger.events


def _synthetic_window_events():
    """A hand-built single-window log with every verdict represented.

    Four pairs: arm 0 is chosen via ULB acceptance, arm 1 is ULB
    rejected, arm 2 is chosen by final posterior ranking, arm 3 loses.
    """
    ledger = DecisionLedger()
    ledger.begin_window(0)
    ledger.record(
        EVENT_WINDOW,
        pairs=[[10, 11], [10, 12], [11, 12], [12, 13]],
        n_pairs=4, budget=2, batch=1, posterior="beta", seed=3,
    )
    ledger.record(
        EVENT_SAMPLE, tau=1, arms=[0], theta=[0.2],
        observed=[0], d_norm=[0.1],
        posterior_before=[[1.0, 1.0]], posterior_after=[[1.0, 2.0]],
    )
    ledger.record(
        EVENT_SAMPLE, tau=2, arms=[1], theta=[0.4],
        observed=[1], d_norm=[0.9],
        posterior_before=[[1.0, 1.0]], posterior_after=[[2.0, 1.0]],
    )
    ledger.record(
        EVENT_ULB, tau=3, accepted=[0], rejected=[1],
        radius={"0": 0.05, "1": 0.04}, k_count=2,
    )
    ledger.record(
        EVENT_FINAL, chosen=[0, 2], means=[0.2, 0.9, 0.3, 0.8],
        ulb_accepted=[0], ulb_rejected=[1],
        n_pairs=4, iterations=3, degraded=False,
    )
    return ledger.events


class TestExplain:
    def test_windows_containing_is_order_insensitive(self):
        events = _synthetic_window_events()
        assert windows_containing(events, (12, 10)) == [0]
        assert windows_containing(events, (99, 100)) == []

    def test_ulb_accepted_chain(self):
        chain = explain_pair(_synthetic_window_events(), (10, 11))
        assert chain.window == 0
        assert chain.arm == 0
        assert chain.verdict == VERDICT_ULB_ACCEPTED
        assert chain.final_score == 0.2
        assert chain.n_observations == 1
        kinds = [step.kind for step in chain.steps]
        assert kinds == [EVENT_WINDOW, EVENT_SAMPLE, EVENT_ULB, EVENT_FINAL]
        assert "ULB accepted" in chain.steps[2].summary
        assert "verdict" in chain.render()

    def test_ulb_rejected_chain(self):
        chain = explain_pair(_synthetic_window_events(), (10, 12))
        assert chain.verdict == VERDICT_ULB_REJECTED
        assert "ULB rejected" in chain.steps[2].summary

    def test_plain_candidate_and_loser(self):
        events = _synthetic_window_events()
        assert explain_pair(events, (11, 12)).verdict == VERDICT_CANDIDATE
        assert explain_pair(events, (12, 13)).verdict == VERDICT_NOT_SELECTED

    def test_unknown_pair_raises_key_error(self):
        with pytest.raises(KeyError):
            explain_pair(_synthetic_window_events(), (1, 2))

    def test_ambiguous_window_requires_explicit_choice(self):
        events = _synthetic_window_events()
        shifted = []
        for event in _synthetic_window_events():
            clone = DecisionEvent.from_dict(event.to_dict())
            clone.window = 1
            shifted.append(clone)
        both = events + shifted
        with pytest.raises(ValueError):
            explain_pair(both, (10, 11))
        chain = explain_pair(both, (10, 11), window=1)
        assert chain.window == 1

    def test_wrong_window_raises_key_error(self):
        with pytest.raises(KeyError):
            explain_pair(_synthetic_window_events(), (10, 11), window=5)


class TestExampleScript:
    def test_decision_provenance_example_runs(self, capsys):
        import importlib.util
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "examples"
            / "decision_provenance.py"
        )
        spec = importlib.util.spec_from_file_location(
            "decision_provenance_example", path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main(n_frames=300)
        out = capsys.readouterr().out
        assert "ACCEPTED" in out and "PRUNED" in out
        assert "verdict" in out
