"""Behavioural tests for all six trackers.

Uses scripted detection streams where ground truth is unambiguous: a
steadily moving object must keep one TID; a long detection gap must split
the track for short-memory trackers.
"""

import numpy as np
import pytest

from helpers import make_detection

from repro.detect import Detection
from repro.geometry import BBox
from repro.track import (
    CenterTrackTracker,
    DeepSortTracker,
    IoUTracker,
    SortTracker,
    Tracker,
    TracktorTracker,
    UmaTracker,
)

ALL_TRACKERS = [
    IoUTracker,
    SortTracker,
    DeepSortTracker,
    TracktorTracker,
    UmaTracker,
    CenterTrackTracker,
]


def moving_object_stream(
    n_frames: int, gap: tuple[int, int] | None = None, speed: float = 4.0
) -> list[list[Detection]]:
    """One object moving right; optionally absent during ``gap`` frames."""
    frames = []
    for t in range(n_frames):
        if gap and gap[0] <= t < gap[1]:
            frames.append([])
            continue
        frames.append(
            [make_detection(100 + speed * t, 200, 50, 100, source_id=1)]
        )
    return frames


def two_objects_stream(n_frames: int) -> list[list[Detection]]:
    """Two well-separated objects moving in parallel."""
    frames = []
    for t in range(n_frames):
        frames.append(
            [
                make_detection(100 + 4 * t, 100, 50, 100, source_id=1),
                make_detection(100 + 4 * t, 600, 50, 100, source_id=2),
            ]
        )
    return frames


@pytest.mark.parametrize("tracker_cls", ALL_TRACKERS)
class TestAllTrackers:
    def test_single_object_single_track(self, tracker_cls):
        tracks = tracker_cls().run(moving_object_stream(40))
        assert len(tracks) == 1
        assert len(tracks[0]) >= 35

    def test_two_objects_two_tracks(self, tracker_cls):
        tracks = tracker_cls().run(two_objects_stream(40))
        assert len(tracks) == 2
        sources = sorted(t.dominant_source() for t in tracks)
        assert sources == [1, 2]

    def test_long_gap_fragments_short_memory(self, tracker_cls):
        # Gap of 60 frames exceeds every tracker's memory.
        tracks = tracker_cls().run(
            moving_object_stream(120, gap=(40, 100))
        )
        assert len(tracks) == 2
        assert all(t.dominant_source() == 1 for t in tracks)

    def test_min_length_filter(self, tracker_cls):
        # A 3-frame object is below the default min_length of 5.
        frames = [
            [make_detection(100 + 4 * t, 200)] if t < 3 else []
            for t in range(20)
        ]
        tracks = tracker_cls().run(frames)
        assert tracks == []

    def test_low_confidence_ignored(self, tracker_cls):
        frames = [
            [make_detection(100 + 4 * t, 200, confidence=0.1)]
            for t in range(20)
        ]
        assert tracker_cls().run(frames) == []

    def test_track_ids_dense_from_zero(self, tracker_cls):
        tracks = tracker_cls().run(two_objects_stream(30))
        assert sorted(t.track_id for t in tracks) == list(range(len(tracks)))

    def test_empty_stream(self, tracker_cls):
        assert tracker_cls().run([[] for _ in range(10)]) == []

    def test_observations_strictly_increasing(self, tracker_cls):
        tracks = tracker_cls().run(moving_object_stream(30))
        for track in tracks:
            frames = track.frames
            assert frames == sorted(frames)
            assert len(set(frames)) == len(frames)


class TestMemoryDifferences:
    def test_short_gap_bridged_by_long_memory_only(self):
        """A 6-frame gap kills IoU/CenterTrack tracks but Tracktor
        (regression with patience) and DeepSORT-with-appearance bridge it."""
        stream = moving_object_stream(60, gap=(30, 36), speed=2.0)
        assert len(IoUTracker().run(stream)) == 2
        assert len(CenterTrackTracker().run(stream)) == 2
        assert len(TracktorTracker().run(stream)) == 1

        rng = np.random.default_rng(0)
        latent = rng.normal(size=8)

        def embedder(detection):
            return latent + rng.normal(0, 0.05, size=8)

        deep = DeepSortTracker(embedder=embedder, max_age=20)
        assert len(deep.run(stream)) == 1

    def test_deepsort_appearance_reassociation(self):
        """With an embedder keyed to source identity, DeepSORT re-links
        across a gap that defeats pure-motion matching (object jumps)."""
        rng = np.random.default_rng(0)
        latents = {1: rng.normal(size=8), 2: rng.normal(size=8)}

        def embedder(detection):
            base = latents[detection.source_id]
            return base + rng.normal(0, 0.05, size=8)

        frames = []
        for t in range(30):
            frames.append([make_detection(100 + 4 * t, 100, source_id=1)])
        for t in range(30, 36):
            frames.append([])
        # Object reappears displaced (teleport: motion match fails).
        for t in range(36, 60):
            frames.append([make_detection(600 + 4 * t, 400, source_id=1)])
        tracker = DeepSortTracker(embedder=embedder, max_age=20)
        tracks = tracker.run(frames)
        # Appearance may or may not bridge a teleport depending on the
        # cascade; what must hold is that all tracks trace back to object 1.
        assert all(t.dominant_source() == 1 for t in tracks)
        assert 1 <= len(tracks) <= 2


class TestTracktorSpecifics:
    def test_suppresses_overlapping_new_tracks(self):
        # Two detections of the same spot: only one track is created.
        frames = []
        for t in range(20):
            frames.append(
                [
                    make_detection(100 + 4 * t, 200, source_id=1),
                    make_detection(102 + 4 * t, 202, source_id=1,
                                   confidence=0.95),
                ]
            )
        tracks = TracktorTracker().run(frames)
        assert len(tracks) == 1

    def test_velocity_extrapolation_bridges_motion(self):
        # During a short gap the track coasts with its velocity, so it can
        # reclaim the object when it reappears further along.
        stream = moving_object_stream(60, gap=(30, 35), speed=6.0)
        tracks = TracktorTracker(patience=8).run(stream)
        assert len(tracks) == 1


class TestFinalize:
    def test_renumbering_sorted_by_first_frame(self):
        from repro.track.base import Track

        t1 = Track(10)
        t1.append(5, make_detection(0, 0))
        for f in range(6, 12):
            t1.append(f, make_detection(0, 0))
        t2 = Track(3)
        for f in range(0, 7):
            t2.append(f, make_detection(100, 100))
        result = Tracker.finalize([t1, t2], min_length=5)
        assert [t.track_id for t in result] == [0, 1]
        assert result[0].first_frame == 0
