"""Unit tests for the ε-greedy extension merger."""

import pytest

from helpers import planted_pairs, stub_scorer

from repro.core.epsilon import EpsilonGreedyMerger


class TestEpsilonGreedy:
    def test_finds_planted_pair(self):
        pairs, planted = planted_pairs()
        result = EpsilonGreedyMerger(
            epsilon=0.1, tau_max=500, k=1.0 / len(pairs), seed=0
        ).run(pairs, stub_scorer())
        assert result.candidates[0].key == planted

    def test_initial_sweep_covers_all_arms(self):
        pairs, _ = planted_pairs()
        EpsilonGreedyMerger(epsilon=0.0, tau_max=len(pairs), seed=0).run(
            pairs, stub_scorer()
        )
        assert all(p.n_sampled >= 1 for p in pairs)

    def test_pure_greedy_focuses_after_sweep(self):
        pairs, planted = planted_pairs(track_len=12)
        EpsilonGreedyMerger(
            epsilon=0.0, tau_max=len(pairs) + 100, seed=0
        ).run(pairs, stub_scorer())
        by_key = {p.key: p for p in pairs}
        # With zero noise and zero exploration, all post-sweep pulls hit
        # the planted (lowest-mean) arm: 1 sweep pull + 100 greedy pulls.
        assert by_key[planted].n_sampled == 101

    def test_validation(self):
        with pytest.raises(ValueError):
            EpsilonGreedyMerger(epsilon=1.5)
        with pytest.raises(ValueError):
            EpsilonGreedyMerger(tau_max=0)
        with pytest.raises(ValueError):
            EpsilonGreedyMerger(k=-1.0)

    def test_name(self):
        assert EpsilonGreedyMerger(epsilon=0.25).name == "EpsGreedy(0.25)"

    def test_empty_pairs(self):
        result = EpsilonGreedyMerger().run([], stub_scorer())
        assert result.candidates == []

    def test_deterministic(self):
        pairs, _ = planted_pairs()
        a = EpsilonGreedyMerger(tau_max=200, seed=4).run(pairs, stub_scorer())
        for pair in pairs:
            pair.reset_sampling()
        b = EpsilonGreedyMerger(tau_max=200, seed=4).run(pairs, stub_scorer())
        assert a.candidate_keys == b.candidate_keys
