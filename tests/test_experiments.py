"""Tests for the experiment harness (prep, sweeps, reporting, figures)."""

import pytest

from repro.core.baseline import BaselineMerger
from repro.core.tmerge import TMerge
from repro.experiments import (
    MethodPoint,
    evaluate_merger,
    format_table,
    prepare_video,
    rec_fps_sweep,
)
from repro.experiments.sweeps import fps_at_rec
from repro.synth.datasets import DatasetPreset
from helpers import tiny_scene_config


@pytest.fixture(scope="module")
def tiny_preset():
    return DatasetPreset(
        name="tiny",
        config=tiny_scene_config(max_track_length=100),
        n_videos=2,
        video_frames=150,
        default_window=200,
    )


@pytest.fixture(scope="module")
def prepared(tiny_preset):
    return [prepare_video(tiny_preset, seed=s) for s in (0, 1)]


class TestPrepareVideo:
    def test_structure(self, prepared):
        video = prepared[0]
        assert video.n_frames == 150
        assert len(video.window_pairs) == len(video.windows)
        assert len(video.window_gt) == len(video.windows)
        for pairs, gt in zip(video.window_pairs, video.window_gt):
            keys = {p.key for p in pairs}
            assert gt <= keys

    def test_reset_sampling(self, prepared):
        import numpy as np

        video = prepared[0]
        pair = next(p for pairs in video.window_pairs for p in pairs)
        pair.sample_bbox_pair(np.random.default_rng(0))
        video.reset_sampling()
        assert pair.n_sampled == 0

    def test_preset_by_name_path(self):
        video = prepare_video("kitti", seed=0, n_frames=60, window_length=100)
        assert video.n_frames == 60


class TestEvaluateMerger:
    def test_baseline_point(self, prepared):
        point = evaluate_merger(lambda: BaselineMerger(k=0.2), prepared)
        assert point.method == "BL"
        assert 0.0 <= point.rec <= 1.0
        assert point.fps > 0
        assert point.simulated_seconds > 0

    def test_sweep_returns_points(self, prepared):
        points = rec_fps_sweep(
            [
                (100, lambda: TMerge(k=0.2, tau_max=100, seed=3)),
                (400, lambda: TMerge(k=0.2, tau_max=400, seed=3)),
            ],
            prepared,
        )
        assert len(points) == 2
        assert points[0].parameter == 100
        # Larger budgets cost more simulated time.
        assert points[1].simulated_seconds >= points[0].simulated_seconds


class TestFpsAtRec:
    def test_interpolation(self):
        points = [
            MethodPoint("X", rec=0.5, fps=100.0, simulated_seconds=1.0),
            MethodPoint("X", rec=0.9, fps=20.0, simulated_seconds=5.0),
        ]
        value = fps_at_rec(points, 0.7)
        assert value == pytest.approx(60.0)

    def test_unreachable_target(self):
        points = [MethodPoint("X", rec=0.5, fps=100.0, simulated_seconds=1.0)]
        assert fps_at_rec(points, 0.9) is None

    def test_exact_point(self):
        points = [MethodPoint("X", rec=0.8, fps=42.0, simulated_seconds=1.0)]
        assert fps_at_rec(points, 0.8) == 42.0


class TestFormatTable:
    def test_renders(self):
        text = format_table(
            ["method", "fps"],
            [["BL", 1.234567], ["TMerge", None]],
            title="Table II",
        )
        assert "Table II" in text
        assert "1.235" in text
        assert "-" in text
        lines = text.splitlines()
        assert len(lines) == 5

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestRewindow:
    def test_rewindow_preserves_tracks(self, prepared):
        from repro.experiments.prep import rewindow

        video = prepared[0]
        rewound = rewindow(video, 100)
        assert rewound.tracks is video.tracks
        assert rewound.assignment is video.assignment
        assert len(rewound.windows) > len(video.windows)
        total_before = sum(len(b) for b in video.window_pairs)
        # Every track is still owned exactly once.
        owned = sum(
            1
            for pairs in rewound.window_pairs
            for _ in pairs
        )
        assert owned >= 0  # structural smoke; ownership checked below
        from repro.core.windows import WindowedTracks

        windowed = WindowedTracks.assign(video.tracks, rewound.windows)
        assert sum(len(b) for b in windowed.assignments) == len(video.tracks)


class TestVideoPolyonymousKeys:
    def test_video_level_pairs(self):
        from helpers import make_track
        from repro.metrics.matching import (
            match_tracks_by_source,
            video_polyonymous_keys,
        )

        tracks = [
            make_track(0, [0, 1], source_id=7),
            make_track(1, [100, 101], source_id=7),
            make_track(2, [5000, 5001], source_id=7),  # far away fragment
            make_track(3, [0, 1], source_id=8),
        ]
        assignment = match_tracks_by_source(tracks)
        keys = video_polyonymous_keys(tracks, assignment)
        assert keys == {(0, 1), (0, 2), (1, 2)}
