"""Differential restart tests: kill + resume is bit-identical.

The streaming service's headline robustness guarantee: a service
SIGKILLed at a window boundary and rebuilt from its
:class:`~repro.resilience.CheckpointStore` emits exactly what an
uninterrupted run would have — candidates, scores, degraded flags,
simulated clock, lifetime counters, all bit-for-bit — across ReID
seeds × fault profiles, repeated crashes, a real process-restart
simulation (fresh store reading the disk mirror), and worker-count
changes across the crash.  Runs inside CI's chaos matrix.
"""

import os

import pytest

from helpers import tiny_world

from repro.core.tmerge import TMerge
from repro.faults import fault_profile
from repro.resilience import CheckpointStore
from repro.streaming import StreamingIngestionService, SyntheticFeedSource
from repro.track import TracktorTracker

SEEDS = (1, 5)
PROFILES = (None, "flaky-reid", "window-crash")
FAULT_SEED = 11


@pytest.fixture(scope="module")
def stream_world():
    return tiny_world(n_frames=240, seed=21, initial_objects=6,
                      max_objects=10, spawn_rate=0.03)


def _profile(name):
    return None if name is None else fault_profile(name, seed=FAULT_SEED)


def _source(world, profile):
    return SyntheticFeedSource(
        world, disorder_ms=50.0, disorder_seed=3, fault_profile=profile
    )


def _service(store, *, seed=1, profile=None, workers=1):
    # CI chaos-matrix seam: REPRO_BATCH_SIZE re-runs every restart test
    # at a forced batch size (1 = scalar path, 8 = batched).
    env_batch = os.environ.get("REPRO_BATCH_SIZE")
    return StreamingIngestionService(
        TracktorTracker(),
        TMerge(k=0.1, tau_max=100, batch_size=10, seed=3),
        window_length=100,
        allowed_lateness=4,
        max_open_windows=8,
        reid_seed=seed,
        workers=workers,
        parallel_backend="thread",
        fault_profile=profile,
        store=store,
        batch_size=int(env_batch) if env_batch else None,
    )


def _final_digest(result):
    """Lifetime state that must match however many crashes happened."""
    return {
        "counters": result.counters,
        "cost": result.cost.state_dict(),
        "resilience": result.resilience_stats,
        "watermark": result.watermark,
        "position": result.position,
    }


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("profile_name", PROFILES)
def test_kill_resume_bit_identical(stream_world, seed, profile_name):
    profile = _profile(profile_name)
    source = _source(stream_world, profile)
    reference = _service(
        CheckpointStore(), seed=seed, profile=profile
    ).run(source)
    assert not reference.stopped
    assert len(reference.emissions) >= 4

    store = CheckpointStore()
    first = _service(store, seed=seed, profile=profile).run(
        source, stop_after_windows=2
    )
    assert first.stopped
    assert len(first.emissions) == 2
    resumed = _service(store, seed=seed, profile=profile).run(source)
    assert not resumed.stopped

    stitched = first.fingerprints() + resumed.fingerprints()
    assert stitched == reference.fingerprints()
    assert _final_digest(resumed) == _final_digest(reference)


def test_repeated_crashes_still_identical(stream_world):
    """Crashing after every single window changes nothing."""
    source = _source(stream_world, None)
    reference = _service(CheckpointStore()).run(source)

    store = CheckpointStore()
    fingerprints = []
    for _ in range(len(reference.emissions) + 1):
        result = _service(store).run(source, stop_after_windows=1)
        fingerprints.extend(result.fingerprints())
        if not result.stopped:
            break
    assert fingerprints == reference.fingerprints()
    assert _final_digest(result) == _final_digest(reference)


def test_disk_backed_process_restart(stream_world, tmp_path):
    """A brand-new store over the same directory = a new process."""
    source = _source(stream_world, _profile("flaky-reid"))
    reference = _service(
        CheckpointStore(), profile=_profile("flaky-reid")
    ).run(source)

    ckpt_dir = str(tmp_path / "ckpts")
    first = _service(
        CheckpointStore(path=ckpt_dir), profile=_profile("flaky-reid")
    ).run(source, stop_after_windows=2)
    # the "process" dies here; only the files survive
    resumed = _service(
        CheckpointStore(path=ckpt_dir), profile=_profile("flaky-reid")
    ).run(source)
    stitched = first.fingerprints() + resumed.fingerprints()
    assert stitched == reference.fingerprints()
    assert _final_digest(resumed) == _final_digest(reference)


def test_worker_count_change_across_crash(stream_world):
    """Resuming with a different fan-out must not change results."""
    source = _source(stream_world, None)
    reference = _service(CheckpointStore()).run(source)

    store = CheckpointStore()
    first = _service(store, workers=1).run(source, stop_after_windows=2)
    resumed = _service(store, workers=3).run(source)
    stitched = first.fingerprints() + resumed.fingerprints()
    assert stitched == reference.fingerprints()
    assert _final_digest(resumed) == _final_digest(reference)


def test_fresh_store_means_fresh_start(stream_world):
    """No snapshot → the service starts from offset 0, by design."""
    source = _source(stream_world, None)
    killed = _service(CheckpointStore()).run(source, stop_after_windows=1)
    assert killed.stopped and killed.position < stream_world.n_frames
    fresh = _service(CheckpointStore()).run(source)
    assert fresh.emissions[0].fingerprint() == killed.emissions[0].fingerprint()
    assert fresh.position == stream_world.n_frames
