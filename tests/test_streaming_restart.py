"""Differential restart tests: kill + resume is bit-identical.

The streaming service's headline robustness guarantee: a service
SIGKILLed at a window boundary and rebuilt from its
:class:`~repro.resilience.CheckpointStore` emits exactly what an
uninterrupted run would have — candidates, scores, degraded flags,
simulated clock, lifetime counters, all bit-for-bit — across ReID
seeds × fault profiles, repeated crashes, a real process-restart
simulation (fresh store reading the disk mirror), and worker-count
changes across the crash.  Runs inside CI's chaos matrix.
"""

import os

import pytest

from repro.core.tmerge import TMerge
from repro.faults import fault_profile
from repro.resilience import CheckpointStore
from repro.streaming import StreamingIngestionService, SyntheticFeedSource
from repro.telemetry import Telemetry
from repro.track import TracktorTracker

SEEDS = (1, 5)
PROFILES = (None, "flaky-reid", "window-crash")
FAULT_SEED = 11


def _profile(name):
    return None if name is None else fault_profile(name, seed=FAULT_SEED)


def _source(world, profile):
    return SyntheticFeedSource(
        world, disorder_ms=50.0, disorder_seed=3, fault_profile=profile
    )


def _service(store, *, seed=1, profile=None, workers=1, telemetry=None):
    # CI chaos-matrix seam: REPRO_BATCH_SIZE re-runs every restart test
    # at a forced batch size (1 = scalar path, 8 = batched).
    env_batch = os.environ.get("REPRO_BATCH_SIZE")
    return StreamingIngestionService(
        TracktorTracker(),
        TMerge(k=0.1, tau_max=100, batch_size=10, seed=3),
        window_length=100,
        allowed_lateness=4,
        max_open_windows=8,
        reid_seed=seed,
        workers=workers,
        parallel_backend="thread",
        fault_profile=profile,
        store=store,
        batch_size=int(env_batch) if env_batch else None,
        telemetry=telemetry,
    )


def _final_digest(result):
    """Lifetime state that must match however many crashes happened."""
    return {
        "counters": result.counters,
        "cost": result.cost.state_dict(),
        "resilience": result.resilience_stats,
        "watermark": result.watermark,
        "position": result.position,
    }


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("profile_name", PROFILES)
def test_kill_resume_bit_identical(scenario_world, seed, profile_name):
    profile = _profile(profile_name)
    source = _source(scenario_world, profile)
    reference = _service(
        CheckpointStore(), seed=seed, profile=profile
    ).run(source)
    assert not reference.stopped
    assert len(reference.emissions) >= 4

    store = CheckpointStore()
    first = _service(store, seed=seed, profile=profile).run(
        source, stop_after_windows=2
    )
    assert first.stopped
    assert len(first.emissions) == 2
    resumed = _service(store, seed=seed, profile=profile).run(source)
    assert not resumed.stopped

    stitched = first.fingerprints() + resumed.fingerprints()
    assert stitched == reference.fingerprints()
    assert _final_digest(resumed) == _final_digest(reference)


def test_repeated_crashes_still_identical(scenario_world):
    """Crashing after every single window changes nothing."""
    source = _source(scenario_world, None)
    reference = _service(CheckpointStore()).run(source)

    store = CheckpointStore()
    fingerprints = []
    for _ in range(len(reference.emissions) + 1):
        result = _service(store).run(source, stop_after_windows=1)
        fingerprints.extend(result.fingerprints())
        if not result.stopped:
            break
    assert fingerprints == reference.fingerprints()
    assert _final_digest(result) == _final_digest(reference)


def test_disk_backed_process_restart(scenario_world, tmp_path):
    """A brand-new store over the same directory = a new process."""
    source = _source(scenario_world, _profile("flaky-reid"))
    reference = _service(
        CheckpointStore(), profile=_profile("flaky-reid")
    ).run(source)

    ckpt_dir = str(tmp_path / "ckpts")
    first = _service(
        CheckpointStore(path=ckpt_dir), profile=_profile("flaky-reid")
    ).run(source, stop_after_windows=2)
    # the "process" dies here; only the files survive
    resumed = _service(
        CheckpointStore(path=ckpt_dir), profile=_profile("flaky-reid")
    ).run(source)
    stitched = first.fingerprints() + resumed.fingerprints()
    assert stitched == reference.fingerprints()
    assert _final_digest(resumed) == _final_digest(reference)


def test_worker_count_change_across_crash(scenario_world):
    """Resuming with a different fan-out must not change results."""
    source = _source(scenario_world, None)
    reference = _service(CheckpointStore()).run(source)

    store = CheckpointStore()
    first = _service(store, workers=1).run(source, stop_after_windows=2)
    resumed = _service(store, workers=3).run(source)
    stitched = first.fingerprints() + resumed.fingerprints()
    assert stitched == reference.fingerprints()
    assert _final_digest(resumed) == _final_digest(reference)


def test_fresh_store_means_fresh_start(scenario_world):
    """No snapshot → the service starts from offset 0, by design."""
    source = _source(scenario_world, None)
    killed = _service(CheckpointStore()).run(source, stop_after_windows=1)
    assert killed.stopped and killed.position < scenario_world.n_frames
    fresh = _service(CheckpointStore()).run(source)
    assert fresh.emissions[0].fingerprint() == killed.emissions[0].fingerprint()
    assert fresh.position == scenario_world.n_frames


def test_window_metrics_stitch_across_restart(scenario_world):
    """Per-emission counter deltas neither double-count nor drop.

    ``StreamRunResult.window_metrics`` holds one delta per emission; a
    kill + resume must partition the reference list exactly — the
    resumed service re-records nothing for windows already emitted and
    skips nothing for windows still pending.
    """
    source = _source(scenario_world, None)
    reference = _service(
        CheckpointStore(), telemetry=Telemetry()
    ).run(source)
    assert len(reference.window_metrics) == len(reference.emissions)

    store = CheckpointStore()
    first = _service(store, telemetry=Telemetry()).run(
        source, stop_after_windows=2
    )
    resumed = _service(store, telemetry=Telemetry()).run(source)
    assert len(first.window_metrics) == len(first.emissions)
    stitched = first.window_metrics + resumed.window_metrics
    assert stitched == reference.window_metrics


def test_absorbed_spans_stitch_across_restart(scenario_world):
    """Tracer.absorb across a restart covers each window exactly once."""
    source = _source(scenario_world, None)
    ref_telemetry = Telemetry()
    reference = _service(
        CheckpointStore(), telemetry=ref_telemetry
    ).run(source)

    store = CheckpointStore()
    first_telemetry = Telemetry()
    _service(store, telemetry=first_telemetry).run(
        source, stop_after_windows=2
    )
    resumed_telemetry = Telemetry()
    _service(store, telemetry=resumed_telemetry).run(source)

    def window_ids(telemetry):
        return [
            s.attributes["window_id"]
            for s in telemetry.tracer.spans
            if s.name == "stream.window"
        ]

    first_ids = window_ids(first_telemetry)
    resumed_ids = window_ids(resumed_telemetry)
    assert not set(first_ids) & set(resumed_ids)
    assert sorted(first_ids + resumed_ids) == sorted(
        window_ids(ref_telemetry)
    )
    assert sorted(window_ids(ref_telemetry)) == [
        e.index for e in reference.emissions
    ]

    def name_counts(telemetry):
        counts = {}
        for span in telemetry.tracer.spans:
            if span.name == "stream.run":
                continue  # one per run() call by construction
            counts[span.name] = counts.get(span.name, 0) + 1
        return counts

    stitched = name_counts(first_telemetry)
    for name, count in name_counts(resumed_telemetry).items():
        stitched[name] = stitched.get(name, 0) + count
    assert stitched == name_counts(ref_telemetry)


def test_telemetry_counters_stitch_across_restart(scenario_world):
    """Registry counters over both halves sum to the reference run's."""
    source = _source(scenario_world, None)
    ref_telemetry = Telemetry()
    _service(CheckpointStore(), telemetry=ref_telemetry).run(source)
    ref_counters = ref_telemetry.metrics.counters_snapshot()

    store = CheckpointStore()
    first_telemetry = Telemetry()
    _service(store, telemetry=first_telemetry).run(
        source, stop_after_windows=2
    )
    resumed_telemetry = Telemetry()
    _service(store, telemetry=resumed_telemetry).run(source)

    stitched = dict(first_telemetry.metrics.counters_snapshot())
    for name, value in (
        resumed_telemetry.metrics.counters_snapshot().items()
    ):
        stitched[name] = stitched.get(name, 0.0) + value
    assert set(stitched) == set(ref_counters)
    for name, value in ref_counters.items():
        # approx: the split re-associates float accumulation order
        assert stitched[name] == pytest.approx(value), name
