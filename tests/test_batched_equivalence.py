"""Differential tests for the vectorized batched sampler (DESIGN.md §13).

Three guarantees are enforced here:

* **Golden bit-identity** — the vectorized inner loop reproduces
  pre-vectorization fingerprints (``tests/fixtures/tmerge_golden.json``,
  captured before the rewrite) exactly, on both the scalar and the
  batched path, for both posteriors, with and without ULB/regret.
* **B=1 ≡ scalar** — ``batch_size=1`` degenerates to the scalar
  algorithm bit-for-bit, across seeds × fault profiles × worker counts
  (the pipeline-level knob threads end to end).
* **Checkpoint compatibility** — a v1 (pre-batch) snapshot
  (``tests/fixtures/checkpoint_v1.json``) still loads and completes on
  the scalar path bit-identically; a batched run checkpointed mid-window
  resumes bit-identically; mismatched batch sizes or unknown versions
  refuse loudly.

The underlying RNG draw-order contract (one ``rng.random(m)`` call
consumes the PCG64 stream exactly like ``m`` scalar calls) is asserted
directly, so a numpy behaviour change fails here first with a clear
message rather than as an opaque fingerprint diff.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from helpers import planted_pairs, stub_scorer

from repro.core.baseline import BaselineMerger
from repro.core.pipeline import merger_with_batch_size
from repro.core.tmerge import CHECKPOINT_VERSION, TMerge
from repro.faults import fault_profile
from repro.resilience import CheckpointStore

FIXTURES = Path(__file__).parent / "fixtures"

#: The exact configurations the golden fixtures were captured with
#: (pre-vectorization code, numpy Generator streams, seeds pinned).
GOLDEN_CONFIGS = {
    "scalar_beta_s0": dict(k=0.2, tau_max=300, seed=0),
    "scalar_beta_s5": dict(k=0.2, tau_max=300, seed=5),
    "scalar_gauss_s0": dict(k=0.2, tau_max=300, seed=0, posterior="gaussian"),
    "scalar_noulb_s2": dict(k=0.2, tau_max=250, seed=2, use_ulb=False),
    "scalar_regret_s1": dict(k=0.2, tau_max=200, seed=1, s_min=0.0),
    "scalar_tight_ulb_s0": dict(
        k=0.2, tau_max=400, seed=0, ulb_scale=0.3, ulb_interval=10
    ),
    "batched_b10_s0": dict(k=0.2, tau_max=300, seed=0, batch_size=10),
    "batched_b10_s5": dict(k=0.2, tau_max=300, seed=5, batch_size=10),
    "batched_b4_gauss_s3": dict(
        k=0.2, tau_max=300, seed=3, batch_size=4, posterior="gaussian"
    ),
    "batched_b8_tight_ulb_s1": dict(
        k=0.2, tau_max=400, seed=1, batch_size=8,
        ulb_scale=0.3, ulb_interval=10,
    ),
}

FAULT_SEED = 11


def _workload():
    pairs, _ = planted_pairs(n_distinct=8, track_len=6)
    return pairs, stub_scorer(noise=0.05, seed=9)


def _merge_fingerprint(result, scorer):
    """JSON-normalized digest matching the golden capture script."""
    return json.loads(json.dumps({
        "candidates": [list(k) for k in result.candidate_keys],
        "scores": sorted((list(k), v) for k, v in result.scores.items()),
        "iterations": result.iterations,
        "simulated_seconds": result.simulated_seconds,
        "cost": scorer.cost.state_dict(),
        "extra": dict(result.extra),
    }))


# ----------------------------------------------------------------------
# RNG draw-order contract
# ----------------------------------------------------------------------
class TestDrawOrderContract:
    def test_vector_random_matches_scalar_sequence(self):
        """rng.random(m) consumes the stream exactly like m scalar calls."""
        for seed in (0, 1, 17):
            vec = np.random.default_rng(seed).random(64)
            rng = np.random.default_rng(seed)
            scalars = np.array([rng.random() for _ in range(64)])
            assert np.array_equal(vec, scalars)

    def test_generator_state_identical_after_batch_draw(self):
        """Downstream draws agree, so batches can interleave freely."""
        a = np.random.default_rng(5)
        b = np.random.default_rng(5)
        a.random(10)
        for _ in range(10):
            b.random()
        assert a.bit_generator.state == b.bit_generator.state


# ----------------------------------------------------------------------
# Golden bit-identity vs the pre-vectorization implementation
# ----------------------------------------------------------------------
class TestGoldenFingerprints:
    @pytest.fixture(scope="class")
    def golden(self):
        with open(FIXTURES / "tmerge_golden.json") as fh:
            return json.load(fh)

    @pytest.mark.parametrize("name", sorted(GOLDEN_CONFIGS))
    def test_matches_prevectorization_run(self, golden, name):
        pairs, scorer = _workload()
        result = TMerge(**GOLDEN_CONFIGS[name]).run(pairs, scorer)
        assert _merge_fingerprint(result, scorer) == golden[name]

    @pytest.mark.parametrize(
        "name", [n for n in sorted(GOLDEN_CONFIGS) if n.startswith("scalar")]
    )
    def test_batch_size_one_is_the_scalar_path(self, golden, name):
        """B=1 reproduces the pre-vectorization *scalar* fingerprints."""
        pairs, scorer = _workload()
        result = TMerge(**GOLDEN_CONFIGS[name], batch_size=1).run(
            pairs, scorer
        )
        assert _merge_fingerprint(result, scorer) == golden[name]

    def test_batch_size_one_charges_no_batched_extractions(self):
        pairs, scorer = _workload()
        TMerge(k=0.2, tau_max=100, seed=0, batch_size=1).run(pairs, scorer)
        state = scorer.cost.state_dict()
        assert state["n_batch_calls"] == 0
        assert state["n_batched_extractions"] == 0
        assert state["n_extractions"] > 0


# ----------------------------------------------------------------------
# B=1 ≡ scalar through the pipeline, across the chaos dimensions
# ----------------------------------------------------------------------
def _pipeline_fingerprint(result):
    return {
        "candidates": [
            tuple(sorted(r.candidate_keys)) for r in result.window_results
        ],
        "scores": [
            tuple(sorted(r.scores.items())) for r in result.window_results
        ],
        "degraded": [r.degraded for r in result.window_results],
        "iterations": [r.iterations for r in result.window_results],
        "simulated_seconds": [
            r.simulated_seconds for r in result.window_results
        ],
        "cost": result.cost.state_dict(),
        "resilience": dict(result.resilience_stats),
        "id_map": dict(result.id_map),
        "merged_ids": sorted(t.track_id for t in result.merged_tracks),
    }


@pytest.fixture(scope="module")
def tracked(chaos_world):
    from repro.detect import NoisyDetector
    from repro.track import TracktorTracker

    detections = NoisyDetector().detect_video(chaos_world, seed=2)
    tracks = TracktorTracker().run(detections)
    return detections, tracks


@pytest.mark.parametrize("profile", (None, "flaky-reid", "window-crash"))
@pytest.mark.parametrize("seed", (1, 5))
@pytest.mark.parametrize("workers", (None, 2))
def test_pipeline_batch_one_matches_scalar(
    make_pipeline, chaos_world, tracked, profile, seed, workers
):
    """The run-level B=1 override is bit-identical to a scalar merger."""
    detections, tracks = tracked

    def run(**overrides):
        pipeline = make_pipeline(
            window_length=100,
            reid_seed=seed,
            workers=workers,
            parallel_backend="thread",
            fault_profile=(
                None if profile is None
                else fault_profile(profile, seed=FAULT_SEED)
            ),
            **overrides,
        )
        return pipeline.run_on_tracks(chaos_world, detections, tracks)

    scalar = run(
        merger=TMerge(k=0.1, tau_max=300, batch_size=None, seed=3),
        batch_size=None,
    )
    # The default merger is batched (B=10); the knob forces it scalar.
    batch_one = run(batch_size=1)
    assert _pipeline_fingerprint(batch_one) == _pipeline_fingerprint(scalar)


def test_merger_override_copies_instead_of_mutating():
    merger = TMerge(k=0.2, batch_size=10, seed=0)
    clone = merger_with_batch_size(merger, 4)
    assert clone is not merger
    assert clone.batch_size == 4
    assert merger.batch_size == 10
    assert merger_with_batch_size(merger, None) is merger


def test_merger_override_accepts_every_shipped_merger():
    """All §III/§IV competitors expose the batch knob (BL included)."""
    assert merger_with_batch_size(BaselineMerger(k=0.1), 8).batch_size == 8


def test_merger_override_rejects_unbatchable_merger():
    class NoBatch:
        name = "no-batch"

        def run(self, pairs, scorer):
            raise NotImplementedError

    with pytest.raises(TypeError):
        merger_with_batch_size(NoBatch(), 8)
    with pytest.raises(ValueError):
        merger_with_batch_size(TMerge(), 0)


def test_make_pipeline_env_seam(make_pipeline, monkeypatch):
    monkeypatch.setenv("REPRO_BATCH_SIZE", "8")
    assert make_pipeline().batch_size == 8
    # An explicit override still wins over the environment.
    assert make_pipeline(batch_size=2).batch_size == 2


# ----------------------------------------------------------------------
# Checkpoint forward/backward compatibility
# ----------------------------------------------------------------------
class TestCheckpointCompat:
    @pytest.fixture(scope="class")
    def v1_fixture(self):
        with open(FIXTURES / "checkpoint_v1.json") as fh:
            return json.load(fh)

    def test_v1_checkpoint_resumes_scalar_bit_identically(self, v1_fixture):
        """A pre-batch snapshot completes exactly as the original run."""
        pairs, scorer = _workload()
        store = CheckpointStore()
        store.save([list(p.key) for p in pairs], v1_fixture["payload"])
        result = TMerge(
            checkpoint_store=store, **v1_fixture["config"]
        ).run(pairs, scorer)
        got = _merge_fingerprint(result, scorer)
        del got["extra"]
        assert got == v1_fixture["reference"]

    def test_v1_checkpoint_refused_on_batched_path(self, v1_fixture):
        pairs, scorer = _workload()
        store = CheckpointStore()
        store.save([list(p.key) for p in pairs], v1_fixture["payload"])
        with pytest.raises(ValueError, match="scalar path"):
            TMerge(
                checkpoint_store=store,
                batch_size=8,
                **v1_fixture["config"],
            ).run(pairs, scorer)

    def _captured_payload(self, *, batch_size, capture_tau, **kwargs):
        """Run once uninterrupted, spying out one mid-window snapshot."""
        pairs, scorer = _workload()
        store = CheckpointStore()
        captured = {}
        orig_save = store.save

        def spy(key, state):
            if state["tau"] == capture_tau:
                captured["payload"] = json.loads(json.dumps(state))
            orig_save(key, state)

        store.save = spy
        result = TMerge(
            checkpoint_store=store, batch_size=batch_size, **kwargs
        ).run(pairs, scorer)
        assert "payload" in captured
        return captured["payload"], _merge_fingerprint(result, scorer)

    def test_batched_mid_window_resume_bit_identical(self):
        """A B=8 run killed mid-window resumes to the exact same result."""
        config = dict(
            k=0.2, tau_max=300, seed=4, checkpoint_interval=40
        )
        payload, reference = self._captured_payload(
            batch_size=8, capture_tau=120, **config
        )
        assert payload["version"] == CHECKPOINT_VERSION
        assert payload["batch"] == 8

        pairs, scorer = _workload()
        store = CheckpointStore()
        store.save([list(p.key) for p in pairs], payload)
        resumed = TMerge(
            checkpoint_store=store, batch_size=8, **config
        ).run(pairs, scorer)
        assert _merge_fingerprint(resumed, scorer) == reference

    def test_batch_mismatch_refused(self):
        payload, _ = self._captured_payload(
            batch_size=8, capture_tau=80,
            k=0.2, tau_max=200, seed=4, checkpoint_interval=40,
        )
        pairs, scorer = _workload()
        store = CheckpointStore()
        store.save([list(p.key) for p in pairs], payload)
        with pytest.raises(ValueError, match="batch"):
            TMerge(
                checkpoint_store=store, batch_size=4,
                k=0.2, tau_max=200, seed=4, checkpoint_interval=40,
            ).run(pairs, scorer)

    def test_newer_version_refused(self):
        pairs, scorer = _workload()
        store = CheckpointStore()
        merger = TMerge(
            k=0.2, tau_max=200, seed=4,
            checkpoint_interval=40, checkpoint_store=store,
        )
        payload = {"version": CHECKPOINT_VERSION + 1, "tau": 10}
        store.save([list(p.key) for p in pairs], payload)
        with pytest.raises(ValueError, match="newer"):
            merger.run(pairs, scorer)

    def test_none_and_one_share_scalar_checkpoints(self):
        """batch_size=None and =1 are the same regime: snapshots swap."""
        config = dict(k=0.2, tau_max=300, seed=4, checkpoint_interval=40)
        payload, reference = self._captured_payload(
            batch_size=None, capture_tau=120, **config
        )
        assert payload["batch"] is None
        pairs, scorer = _workload()
        store = CheckpointStore()
        store.save([list(p.key) for p in pairs], payload)
        resumed = TMerge(
            checkpoint_store=store, batch_size=1, **config
        ).run(pairs, scorer)
        assert _merge_fingerprint(resumed, scorer) == reference
