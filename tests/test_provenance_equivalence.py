"""Differential tests: the decision ledger is bit-transparent.

The provenance layer's contract (DESIGN.md §14) mirrors telemetry's:
attaching a :class:`~repro.provenance.DecisionLedger` never changes a
single merged bit — candidates, scores, iterations, the simulated
clock — across seeds × fault profiles × worker counts × batch sizes
(the CI chaos matrix re-runs this file at ``REPRO_BATCH_SIZE`` 1 and 8).
On top of transparency, the ledger itself must be deterministic: the
merged log is worker-count invariant, and a streaming service killed at
a window boundary and resumed from its checkpoint reconstructs the
bit-identical event log an uninterrupted run would have written.
Checkpoint-schema compatibility rules (TMerge v3, streaming v2) are
enforced here too.
"""

import json

import pytest

from helpers import planted_pairs, stub_scorer

from repro.core.tmerge import TMerge
from repro.faults import fault_profile
from repro.provenance import DecisionLedger
from repro.resilience import CheckpointStore
from repro.streaming import StreamingIngestionService, SyntheticFeedSource
from repro.track import TracktorTracker

SEEDS = (1, 5)
PROFILES = (None, "flaky-reid", "window-crash")
FAULT_SEED = 11


def _profile(name):
    return None if name is None else fault_profile(name, seed=FAULT_SEED)


def _workload(noise: float = 0.05):
    pairs, _ = planted_pairs(n_distinct=8, track_len=6)
    return pairs, stub_scorer(noise=noise, seed=9)


def _merge_fingerprint(result, scorer):
    return json.loads(json.dumps({
        "candidates": [list(k) for k in result.candidate_keys],
        "scores": sorted((list(k), v) for k, v in result.scores.items()),
        "iterations": result.iterations,
        "simulated_seconds": result.simulated_seconds,
        "cost": scorer.cost.state_dict(),
    }))


class TestMergerTransparency:
    """Ledger on/off bit-identity at the TMerge level (fast path)."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("batch_size", (1, 8))
    def test_ledger_does_not_change_results(self, seed, batch_size):
        config = dict(
            k=0.2, tau_max=300, seed=seed, batch_size=batch_size,
            ulb_scale=0.3, ulb_interval=10,
        )
        pairs, scorer = _workload()
        plain = TMerge(**config).run(pairs, scorer)
        plain_print = _merge_fingerprint(plain, scorer)

        pairs, scorer = _workload()
        ledger = DecisionLedger()
        observed = TMerge(ledger=ledger, **config).run(pairs, scorer)
        assert _merge_fingerprint(observed, scorer) == plain_print
        kinds = {event.kind for event in ledger}
        assert "window" in kinds and "sample" in kinds and "final" in kinds

    def test_gaussian_posterior_transparent(self):
        config = dict(k=0.2, tau_max=200, seed=3, posterior="gaussian")
        pairs, scorer = _workload()
        plain_print = _merge_fingerprint(
            TMerge(**config).run(pairs, scorer), scorer
        )
        pairs, scorer = _workload()
        ledger = DecisionLedger()
        observed = TMerge(ledger=ledger, **config).run(pairs, scorer)
        assert _merge_fingerprint(observed, scorer) == plain_print
        sample = next(e for e in ledger if e.kind == "sample")
        assert len(sample.data["posterior_after"][0]) == 2


@pytest.fixture(scope="module")
def tracked(chaos_world):
    from repro.detect import NoisyDetector
    from repro.track import TracktorTracker as Tracker

    detections = NoisyDetector().detect_video(chaos_world, seed=2)
    tracks = Tracker().run(detections)
    return detections, tracks


def _run_pipeline(make_pipeline, world, tracked, *, workers, seed,
                  profile=None, ledger=None):
    detections, tracks = tracked
    pipeline = make_pipeline(
        window_length=100,
        reid_seed=seed,
        workers=workers,
        parallel_backend="thread",
        fault_profile=_profile(profile),
        ledger=ledger,
    )
    return pipeline.run_on_tracks(world, detections, tracks)


def _pipeline_fingerprint(result):
    return {
        "candidates": [
            tuple(sorted(r.candidate_keys)) for r in result.window_results
        ],
        "scores": [
            tuple(sorted(r.scores.items())) for r in result.window_results
        ],
        "degraded": [r.degraded for r in result.window_results],
        "simulated_seconds": [
            r.simulated_seconds for r in result.window_results
        ],
        "cost": result.cost.state_dict(),
        "resilience": dict(result.resilience_stats),
    }


class TestPipelineTransparency:
    """Ledger on/off bit-identity through the sharded engine."""

    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_ledger_transparent_under_faults(
        self, make_pipeline, chaos_world, tracked, seed, profile
    ):
        plain = _run_pipeline(
            make_pipeline, chaos_world, tracked,
            workers=2, seed=seed, profile=profile,
        )
        ledger = DecisionLedger()
        observed = _run_pipeline(
            make_pipeline, chaos_world, tracked,
            workers=2, seed=seed, profile=profile, ledger=ledger,
        )
        assert _pipeline_fingerprint(observed) == _pipeline_fingerprint(
            plain
        )
        assert len(ledger) > 0

    def test_ledger_worker_count_invariant(
        self, make_pipeline, chaos_world, tracked
    ):
        """The absorbed log is identical for any worker count."""
        logs = {}
        for workers in (1, 2, 4):
            ledger = DecisionLedger()
            _run_pipeline(
                make_pipeline, chaos_world, tracked,
                workers=workers, seed=1, profile="window-crash",
                ledger=ledger,
            )
            logs[workers] = [event.to_dict() for event in ledger]
        assert logs[2] == logs[1]
        assert logs[4] == logs[1]
        kinds = {event["kind"] for event in logs[1]}
        assert "fault" in kinds  # the crash profile leaves fault events

    def test_serial_path_transparent(
        self, make_pipeline, chaos_world, tracked
    ):
        """The inline (workers=None) path is transparent too."""
        detections, tracks = tracked
        plain = make_pipeline(window_length=100).run_on_tracks(
            chaos_world, detections, tracks
        )
        ledger = DecisionLedger()
        observed = make_pipeline(
            window_length=100, ledger=ledger
        ).run_on_tracks(chaos_world, detections, tracks)
        assert _pipeline_fingerprint(observed) == _pipeline_fingerprint(
            plain
        )
        # The ledger stamps exactly the windows that had pairs to merge
        # (empty windows never reach the merger).
        windows = {e.window for e in ledger if e.kind == "window"}
        assert windows == {
            c for c, pairs in enumerate(plain.window_pairs) if pairs
        }


class TestScenarioTransparency:
    """Ledger bit-transparency holds under every regime the scenario
    matrix throws at the pipeline — surges, corruption, dropouts and
    compound storms, not just the friendly fixture world."""

    SCENARIOS = (
        "mot17-clear",
        "kitti-camera-dropout",
        "mot17-perfect-storm",
    )

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_ledger_transparent_under_scenario(self, name):
        from repro.core.pipeline import IngestionPipeline
        from repro.scenarios import (
            build_scenario,
            scenario_by_name,
            smoke_variant,
        )

        spec = smoke_variant(scenario_by_name(name))
        scenario = build_scenario(spec, seed=0)

        def run(ledger=None):
            pipeline = IngestionPipeline(
                tracker=TracktorTracker(),
                merger=TMerge(k=0.1, tau_max=80, batch_size=10, seed=3),
                window_length=spec.window_length,
                reid_seed=scenario.seeds.reid_seed,
                detector_seed=scenario.seeds.detector_seed,
                fault_profile=scenario.profile,
                workers=1,
                parallel_backend="thread",
                ledger=ledger,
            )
            return pipeline.run(scenario.world)

        plain = run()
        ledger = DecisionLedger()
        observed = run(ledger=ledger)
        assert _pipeline_fingerprint(observed) == _pipeline_fingerprint(
            plain
        )
        assert len(ledger) > 0


def _service(store, *, ledger=None, seed=1, profile=None):
    return StreamingIngestionService(
        TracktorTracker(),
        TMerge(k=0.1, tau_max=100, batch_size=10, seed=3),
        window_length=100,
        allowed_lateness=4,
        max_open_windows=8,
        reid_seed=seed,
        workers=1,
        parallel_backend="thread",
        fault_profile=profile,
        store=store,
        ledger=ledger,
    )


def _source(world, profile=None):
    return SyntheticFeedSource(
        world, disorder_ms=50.0, disorder_seed=3, fault_profile=profile
    )


class TestStreamingLedger:
    """Kill+resume reconstructs a bit-identical ledger; emissions stay
    transparent; checkpoint-schema compat rules hold."""

    @pytest.mark.parametrize("profile_name", (None, "window-crash"))
    def test_kill_resume_ledger_bit_identical(
        self, chaos_world, profile_name
    ):
        profile = _profile(profile_name)
        source = _source(chaos_world, profile)
        reference_ledger = DecisionLedger()
        reference = _service(
            CheckpointStore(), ledger=reference_ledger, profile=profile
        ).run(source)
        assert not reference.stopped and len(reference.emissions) >= 4

        store = CheckpointStore()
        first = _service(
            store, ledger=DecisionLedger(), profile=profile
        ).run(source, stop_after_windows=2)
        assert first.stopped
        resumed_ledger = DecisionLedger()
        resumed = _service(
            store, ledger=resumed_ledger, profile=profile
        ).run(source)

        stitched = first.fingerprints() + resumed.fingerprints()
        assert stitched == reference.fingerprints()
        assert [e.to_dict() for e in resumed_ledger] == [
            e.to_dict() for e in reference_ledger
        ]

    def test_emissions_transparent(self, chaos_world):
        plain = _service(CheckpointStore()).run(
            _source(chaos_world)
        )
        observed = _service(
            CheckpointStore(), ledger=DecisionLedger()
        ).run(_source(chaos_world))
        assert observed.fingerprints() == plain.fingerprints()
        assert observed.counters == plain.counters

    def test_v1_snapshot_refused_with_ledger(self, chaos_world):
        """Pre-provenance snapshots cannot resume into a ledger run."""
        source = _source(chaos_world)
        store = CheckpointStore()
        _service(store).run(source, stop_after_windows=2)
        payload = store.load(["stream", "stream"])
        payload = json.loads(json.dumps(payload))
        payload["version"] = 1
        payload.pop("ledger", None)
        payload.pop("bp_active", None)
        store.save(["stream", "stream"], payload)
        with pytest.raises(ValueError, match="ledger"):
            _service(store, ledger=DecisionLedger()).run(source)

    def test_v1_snapshot_fine_without_ledger(self, chaos_world):
        source = _source(chaos_world)
        reference = _service(CheckpointStore()).run(source)

        store = CheckpointStore()
        first = _service(store).run(source, stop_after_windows=2)
        payload = json.loads(json.dumps(store.load(["stream", "stream"])))
        payload["version"] = 1
        payload.pop("ledger", None)
        payload.pop("bp_active", None)
        store.save(["stream", "stream"], payload)
        resumed = _service(store).run(source)
        stitched = first.fingerprints() + resumed.fingerprints()
        assert stitched == reference.fingerprints()

    def test_future_version_refused(self, chaos_world):
        source = _source(chaos_world)
        store = CheckpointStore()
        _service(store).run(source, stop_after_windows=1)
        payload = json.loads(json.dumps(store.load(["stream", "stream"])))
        payload["version"] = 99
        store.save(["stream", "stream"], payload)
        with pytest.raises(ValueError, match="not supported"):
            _service(store).run(source)

    def test_ledger_state_rides_in_checkpoint(self, chaos_world):
        source = _source(chaos_world)
        store = CheckpointStore()
        ledger = DecisionLedger()
        _service(store, ledger=ledger).run(source, stop_after_windows=2)
        payload = store.load(["stream", "stream"])
        assert payload["version"] == 2
        assert payload["ledger"] is not None
        assert payload["ledger"]["events"] == ledger.to_dicts()


class TestTMergeCheckpointCompat:
    """TMerge v3 schema: ledger state rides along; a snapshot without
    it refuses to resume into a ledger-attached run.

    These tests use a *noiseless* scorer: TMerge checkpoints never
    capture the caller-owned scorer's RNG, so after a resume the raw
    observed distances would differ with feature noise (results stay
    bit-identical — the quantized outcomes match — but the ledger
    records ``d_norm`` verbatim).  With noise off, ``d_norm`` is a pure
    function of the pair and the whole event log is bit-comparable."""

    def _captured_payload(self, *, ledger=None):
        pairs, scorer = _workload(noise=0.0)
        store = CheckpointStore()
        captured = {}
        orig_save = store.save

        def spy(key, state):
            if state["tau"] == 120 and "payload" not in captured:
                captured["payload"] = json.loads(json.dumps(state))
            orig_save(key, state)

        store.save = spy
        result = TMerge(
            k=0.2, tau_max=300, seed=4, checkpoint_interval=40,
            checkpoint_store=store, ledger=ledger,
        ).run(pairs, scorer)
        assert "payload" in captured
        return captured["payload"], _merge_fingerprint(result, scorer)

    def test_ledger_payload_round_trips(self):
        ledger = DecisionLedger()
        payload, reference = self._captured_payload(ledger=ledger)
        assert payload["ledger"] is not None

        pairs, scorer = _workload(noise=0.0)
        store = CheckpointStore()
        store.save([list(p.key) for p in pairs], payload)
        resumed_ledger = DecisionLedger()
        resumed = TMerge(
            k=0.2, tau_max=300, seed=4, checkpoint_interval=40,
            checkpoint_store=store, ledger=resumed_ledger,
        ).run(pairs, scorer)
        assert _merge_fingerprint(resumed, scorer) == reference
        assert [e.to_dict() for e in resumed_ledger] == [
            e.to_dict() for e in ledger
        ]

    def test_ledgerless_payload_refused_with_ledger(self):
        payload, _ = self._captured_payload(ledger=None)
        assert payload["ledger"] is None

        pairs, scorer = _workload(noise=0.0)
        store = CheckpointStore()
        store.save([list(p.key) for p in pairs], payload)
        with pytest.raises(ValueError, match="ledger"):
            TMerge(
                k=0.2, tau_max=300, seed=4, checkpoint_interval=40,
                checkpoint_store=store, ledger=DecisionLedger(),
            ).run(pairs, scorer)

    def test_ledger_payload_fine_without_ledger(self):
        ledger = DecisionLedger()
        payload, reference = self._captured_payload(ledger=ledger)
        pairs, scorer = _workload(noise=0.0)
        store = CheckpointStore()
        store.save([list(p.key) for p in pairs], payload)
        resumed = TMerge(
            k=0.2, tau_max=300, seed=4, checkpoint_interval=40,
            checkpoint_store=store,
        ).run(pairs, scorer)
        assert _merge_fingerprint(resumed, scorer) == reference
