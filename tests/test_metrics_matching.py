"""Unit tests for repro.metrics.matching and recall."""

import pytest

from helpers import make_track, tiny_world

from repro.core.pairs import TrackPair, build_track_pairs
from repro.detect import NoisyDetector
from repro.metrics.matching import (
    match_tracks_by_source,
    match_tracks_to_gt,
    polyonymous_pairs,
    polyonymous_rate,
)
from repro.metrics.recall import average_recall, rec_k_curve, window_recall
from repro.track import TracktorTracker


class TestSourceMatching:
    def test_dominant_source_wins(self):
        track = make_track(0, [0, 1, 2], source_id=5)
        assignment = match_tracks_by_source([track])
        assert assignment.gt_of(0) == 5
        assert assignment.matched_fraction[0] == 1.0

    def test_clutter_track_unassigned(self):
        track = make_track(0, [0, 1], source_id=None)
        assignment = match_tracks_by_source([track])
        assert assignment.gt_of(0) is None

    def test_coverage_threshold(self):
        from repro.track.base import Track
        from helpers import make_detection

        track = Track(0)
        track.append(0, make_detection(source_id=1))
        track.append(1, make_detection(source_id=2))
        track.append(2, make_detection(source_id=3))
        assignment = match_tracks_by_source([track], min_coverage=0.5)
        assert assignment.gt_of(0) is None


class TestGeometricMatching:
    def test_agrees_with_source_matching(self, world, detections, tracks):
        geometric = match_tracks_to_gt(tracks, world)
        by_source = match_tracks_by_source(tracks)
        common = set(geometric.identity) & set(by_source.identity)
        assert common, "expected assigned tracks"
        agree = sum(
            1
            for tid in common
            if geometric.identity[tid] == by_source.identity[tid]
        )
        assert agree / len(common) > 0.95

    def test_fractions_in_unit_interval(self, world, tracks):
        assignment = match_tracks_to_gt(tracks, world)
        assert all(
            0.0 < f <= 1.0 for f in assignment.matched_fraction.values()
        )


class TestPolyonymousPairs:
    def test_detects_shared_identity(self):
        tracks = [
            make_track(0, [0, 1], source_id=7),
            make_track(1, [10, 11], source_id=7),
            make_track(2, [0, 1], source_id=8),
        ]
        pairs = build_track_pairs(tracks)
        assignment = match_tracks_by_source(tracks)
        assert polyonymous_pairs(pairs, assignment) == {(0, 1)}

    def test_unassigned_tracks_never_polyonymous(self):
        tracks = [
            make_track(0, [0, 1], source_id=None),
            make_track(1, [10, 11], source_id=None),
        ]
        pairs = build_track_pairs(tracks)
        assignment = match_tracks_by_source(tracks)
        assert polyonymous_pairs(pairs, assignment) == set()

    def test_rate_and_resolution(self):
        tracks = [
            make_track(0, [0, 1], source_id=7),
            make_track(1, [10, 11], source_id=7),
            make_track(2, [0, 1], source_id=8),
            make_track(3, [0, 1], source_id=9),
        ]
        pairs = build_track_pairs(tracks)
        assignment = match_tracks_by_source(tracks)
        rate = polyonymous_rate([pairs], assignment)
        assert rate == pytest.approx(1 / 6)
        resolved = polyonymous_rate([pairs], assignment, resolved={(0, 1)})
        assert resolved == 0.0


class TestRecall:
    def test_window_recall(self):
        assert window_recall({(0, 1)}, {(0, 1), (2, 3)}) == 0.5
        assert window_recall(set(), {(0, 1)}) == 0.0
        assert window_recall({(0, 1)}, set()) is None

    def test_average_recall_skips_empty_windows(self):
        per_window = [
            ({(0, 1)}, {(0, 1)}),
            (set(), set()),  # no GT pairs: excluded
            (set(), {(5, 6)}),
        ]
        assert average_recall(per_window) == pytest.approx(0.5)

    def test_average_recall_all_empty(self):
        assert average_recall([(set(), set())]) == 1.0

    def test_rec_k_curve_monotone(self):
        tracks = [make_track(i, [0, 1], source_id=i) for i in range(6)]
        tracks.append(make_track(6, [10, 11], source_id=0))
        pairs = build_track_pairs(tracks)
        assignment = match_tracks_by_source(tracks)
        gt = polyonymous_pairs(pairs, assignment)
        scores = {p.key: (0.0 if p.key in gt else 0.9) for p in pairs}
        curve = rec_k_curve(pairs, scores, gt, [0.01, 0.1, 0.5, 1.0])
        values = [rec for _, rec in curve]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_rec_k_invalid_k(self):
        tracks = [make_track(0, [0, 1]), make_track(1, [5, 6])]
        pairs = build_track_pairs(tracks)
        with pytest.raises(ValueError):
            rec_k_curve(pairs, {p.key: 0.0 for p in pairs}, set(), [1.5])
