"""Unit tests for Algorithm 4 (ULB pruning)."""

import numpy as np
import pytest

from repro.core.ulb import UlbPruner


class TestUlbPruner:
    def test_validation(self):
        with pytest.raises(ValueError):
            UlbPruner(-1, 1)
        with pytest.raises(ValueError):
            UlbPruner(5, -1)

    def test_no_arms_noop(self):
        pruner = UlbPruner(0, 0)
        assert pruner.update(np.array([]), np.array([]), 10) == (set(), set())

    def test_unsampled_arms_never_pruned(self):
        pruner = UlbPruner(3, 1)
        means = np.array([0.1, 0.5, 0.9])
        pulls = np.array([0, 0, 0])
        accepted, rejected = pruner.update(means, pulls, 100)
        assert accepted == set()
        assert rejected == set()

    def test_clear_separation_accepts_best(self):
        # Arm 0 is far below everyone with many pulls: certain top-1.
        pruner = UlbPruner(4, 1)
        means = np.array([0.05, 0.8, 0.85, 0.9])
        pulls = np.array([5000, 5000, 5000, 5000])
        accepted, rejected = pruner.update(means, pulls, 5000)
        assert 0 in accepted

    def test_clear_separation_rejects_worst(self):
        pruner = UlbPruner(4, 1)
        means = np.array([0.05, 0.08, 0.85, 0.9])
        pulls = np.array([5000, 5000, 5000, 5000])
        accepted, rejected = pruner.update(means, pulls, 5000)
        # Arms 2 and 3 have at least one arm certainly better than them...
        # rejection needs k_count=1 arms certainly better.
        assert {2, 3} <= rejected

    def test_wide_bounds_prune_nothing(self):
        pruner = UlbPruner(4, 1)
        means = np.array([0.05, 0.5, 0.6, 0.9])
        pulls = np.array([1, 1, 1, 1])  # radius ~ sqrt(2 ln 10) ≈ 2.1
        accepted, rejected = pruner.update(means, pulls, 10)
        assert accepted == set()
        assert rejected == set()

    def test_unsampled_rival_blocks_acceptance(self):
        # Arm 0 dominates the sampled arms, but an unsampled arm could
        # still be anywhere, so with k_count=1 acceptance must not fire.
        pruner = UlbPruner(3, 1)
        means = np.array([0.05, 0.9, 0.5])
        pulls = np.array([5000, 5000, 0])
        accepted, _ = pruner.update(means, pulls, 5000)
        assert accepted == set()

    def test_acceptance_capacity(self):
        # Only k_count arms can ever be accepted.
        pruner = UlbPruner(5, 2)
        means = np.array([0.01, 0.02, 0.03, 0.9, 0.95])
        pulls = np.array([10_000] * 5)
        accepted, _ = pruner.update(means, pulls, 10_000)
        assert len(accepted) <= 2
        # The accepted ones are the lowest-mean arms.
        assert accepted <= {0, 1, 2}

    def test_pruned_union(self):
        pruner = UlbPruner(4, 1)
        means = np.array([0.05, 0.8, 0.85, 0.9])
        pulls = np.array([5000] * 4)
        pruner.update(means, pulls, 5000)
        assert pruner.pruned == pruner.accepted | pruner.rejected

    def test_idempotent_across_calls(self):
        pruner = UlbPruner(4, 1)
        means = np.array([0.05, 0.8, 0.85, 0.9])
        pulls = np.array([5000] * 4)
        first_accepted, first_rejected = pruner.update(means, pulls, 5000)
        again_accepted, again_rejected = pruner.update(means, pulls, 5000)
        # Already-pruned arms are not re-reported.
        assert again_accepted.isdisjoint(first_accepted)
        assert again_rejected.isdisjoint(first_rejected)

    def test_k_zero_prunes_nothing(self):
        pruner = UlbPruner(3, 0)
        means = np.array([0.1, 0.5, 0.9])
        pulls = np.array([1000] * 3)
        assert pruner.update(means, pulls, 1000) == (set(), set())


class TestNonFiniteMeans:
    def test_clamped_and_counted_when_contracts_off(self):
        from repro import contracts

        pruner = UlbPruner(3, 1)
        means = np.array([0.05, np.nan, 0.9])
        pulls = np.array([5000] * 3)
        previous = contracts.set_enabled(False)
        try:
            accepted, rejected = pruner.update(means, pulls, 5000)
        finally:
            contracts.set_enabled(previous)
        assert pruner.n_nonfinite_clamped == 1
        # The corrupted arm behaves as maximally distant: never accepted.
        assert 1 not in accepted

    def test_raises_under_contracts(self):
        from repro import contracts

        pruner = UlbPruner(3, 1)
        means = np.array([0.05, np.inf, 0.9])
        pulls = np.array([5000] * 3)
        previous = contracts.set_enabled(True)
        try:
            with pytest.raises(contracts.ContractViolation):
                pruner.update(means, pulls, 5000)
        finally:
            contracts.set_enabled(previous)

    def test_unsampled_nan_means_ignored(self):
        """Arms never pulled may carry NaN means without tripping the
        guard (their evidence is never consulted)."""
        pruner = UlbPruner(3, 1)
        means = np.array([0.05, np.nan, 0.9])
        pulls = np.array([5000, 0, 5000])
        pruner.update(means, pulls, 5000)
        assert pruner.n_nonfinite_clamped == 0


class TestStateDict:
    def test_roundtrip(self):
        pruner = UlbPruner(4, 1)
        means = np.array([0.05, 0.8, 0.85, 0.9])
        pulls = np.array([5000] * 4)
        pruner.update(means, pulls, 5000)
        saved = pruner.state_dict()
        other = UlbPruner(4, 1)
        other.load_state_dict(saved)
        assert other.accepted == pruner.accepted
        assert other.rejected == pruner.rejected
        assert other.state_dict() == saved
