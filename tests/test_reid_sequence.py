"""Unit tests for the sequence-input ReID scorer (footnote 2)."""

import numpy as np
import pytest

from helpers import make_track, tiny_world

from repro.reid import (
    CostModel,
    ReidScorer,
    SequenceReidScorer,
    SimReIDModel,
)


@pytest.fixture(scope="module")
def seq_world():
    return tiny_world(n_frames=60, seed=5)


def make_seq_scorer(world, k=4):
    return SequenceReidScorer(
        SimReIDModel(world, seed=0), cost=CostModel(), snippet_length=k
    )


def seq_tracks(world):
    ids = list(world.objects)[:2]
    return (
        make_track(0, list(range(10)), source_id=ids[0]),
        make_track(1, list(range(20, 30)), source_id=ids[1]),
    )


class TestSequenceScorer:
    def test_validation(self, seq_world):
        with pytest.raises(ValueError):
            make_seq_scorer(seq_world, k=0)

    def test_length_one_matches_plain_scorer(self, seq_world):
        track_a, track_b = seq_tracks(seq_world)
        seq = make_seq_scorer(seq_world, k=1)
        plain = ReidScorer(SimReIDModel(seq_world, seed=0), cost=CostModel())
        assert seq.distance(track_a, 2, track_b, 3) == pytest.approx(
            plain.distance(track_a, 2, track_b, 3)
        )

    def test_snippet_clamped_at_track_end(self, seq_world):
        track_a, track_b = seq_tracks(seq_world)
        scorer = make_seq_scorer(seq_world, k=4)
        # Anchor at the last index still pools a full 4-crop snippet.
        d = scorer.distance(track_a, len(track_a) - 1, track_b, 0)
        assert 0.0 <= d <= 2.0
        # Crops 6..9 of track_a were extracted.
        assert (track_a.track_id, 9) in scorer.cache
        assert (track_a.track_id, 6) in scorer.cache

    def test_short_track_uses_whole_track(self, seq_world):
        short = make_track(0, [0, 1], source_id=list(seq_world.objects)[0])
        other = make_track(1, [5, 6], source_id=list(seq_world.objects)[1])
        scorer = make_seq_scorer(seq_world, k=10)
        d = scorer.distance(short, 0, other, 0)
        assert 0.0 <= d <= 2.0

    def test_charges_per_crop_with_caching(self, seq_world):
        track_a, track_b = seq_tracks(seq_world)
        scorer = make_seq_scorer(seq_world, k=4)
        scorer.distance(track_a, 0, track_b, 0)
        assert scorer.cost.n_extractions == 8
        # Overlapping snippet reuses 3 cached crops per side.
        scorer.distance(track_a, 1, track_b, 1)
        assert scorer.cost.n_extractions == 10

    def test_pooling_reduces_same_object_distance_variance(self, seq_world):
        """Snippets of the same object vary less than single crops."""
        oid = list(seq_world.objects)[0]
        track_a = make_track(0, list(range(12)), source_id=oid)
        track_b = make_track(1, list(range(20, 32)), source_id=oid)

        def draw_std(k):
            scorer = make_seq_scorer(seq_world, k=k)
            rng = np.random.default_rng(0)
            values = [
                scorer.distance(
                    track_a, int(rng.integers(0, 12)),
                    track_b, int(rng.integers(0, 12)),
                )
                for _ in range(60)
            ]
            return np.std(values)

        assert draw_std(6) < draw_std(1)

    def test_batched_matches_scalar(self, seq_world):
        track_a, track_b = seq_tracks(seq_world)
        scorer = make_seq_scorer(seq_world, k=3)
        requests = [(track_a, i, track_b, i) for i in range(4)]
        batched = scorer.distances_batched(requests, batch_size=2)
        for (ta, ia, tb, ib), value in zip(requests, batched):
            assert value == pytest.approx(scorer.distance(ta, ia, tb, ib))

    def test_batched_charges_batch_law(self, seq_world):
        track_a, track_b = seq_tracks(seq_world)
        scorer = make_seq_scorer(seq_world, k=3)
        scorer.distances_batched([(track_a, 0, track_b, 0)], batch_size=5)
        assert scorer.cost.n_extractions == 0
        assert scorer.cost.n_batched_extractions == 6

    def test_works_inside_tmerge(self, seq_world):
        from repro.core import TMerge, build_track_pairs

        ids = list(seq_world.objects)
        tracks = [
            make_track(0, list(range(8)), source_id=ids[0]),
            make_track(1, list(range(20, 28)), source_id=ids[0]),
            make_track(2, list(range(8)), source_id=ids[1]),
        ]
        pairs = build_track_pairs(tracks)
        scorer = make_seq_scorer(seq_world, k=3)
        result = TMerge(k=0.34, tau_max=200, seed=0).run(pairs, scorer)
        assert result.candidates[0].key == (0, 1)
