"""Tests for the python -m repro.experiments CLI."""

import pytest

from repro.experiments.__main__ import main, _RUNNERS


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in _RUNNERS:
            assert name in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_every_figure_registered(self):
        expected = {f"fig{i}" for i in range(3, 14)} | {
            "faults",
            "telemetry",
            "parallel",
            "serve",
        }
        assert set(_RUNNERS) == expected
