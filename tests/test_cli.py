"""Tests for the python -m repro.experiments CLI."""

import pytest

from repro.experiments.__main__ import main, _RUNNERS


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in _RUNNERS:
            assert name in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_every_figure_registered(self):
        expected = {f"fig{i}" for i in range(3, 14)} | {
            "faults",
            "telemetry",
            "parallel",
            "serve",
        }
        assert set(_RUNNERS) == expected


class TestObservabilityCli:
    """serve export flags, explain, and monitor subcommands."""

    @pytest.fixture(scope="class")
    def exports(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("cli-exports")
        ledger = directory / "ledger.jsonl"
        metrics = directory / "metrics.prom"
        status = main([
            "serve", "--frames", "300", "--window-length", "100",
            "--ledger-out", str(ledger), "--metrics-out", str(metrics),
        ])
        assert status == 0
        return ledger, metrics

    def test_serve_exports_ledger_jsonl(self, exports):
        from repro.provenance import load_events_jsonl

        ledger, _ = exports
        events = load_events_jsonl(str(ledger))
        assert events
        kinds = {event.kind for event in events}
        assert "window" in kinds and "final" in kinds

    def test_serve_exports_parseable_openmetrics(self, exports):
        from repro.telemetry import parse_openmetrics

        _, metrics = exports
        samples = parse_openmetrics(metrics.read_text())
        assert samples
        assert any(name.startswith("repro_stream") for name in samples)

    def test_explain_renders_chain(self, exports, capsys):
        from repro.provenance import load_events_jsonl

        ledger, _ = exports
        events = load_events_jsonl(str(ledger))
        window_event = next(
            e for e in events if e.kind == "window" and e.data["pairs"]
        )
        a, b = window_event.data["pairs"][0]
        status = main([
            "explain", "--ledger", str(ledger),
            "--pair", str(a), str(b),
            "--window", str(window_event.window),
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert f"{a}-{b}" in out or f"({a}, {b})" in out

    def test_explain_unknown_pair_fails(self, exports, capsys):
        ledger, _ = exports
        status = main([
            "explain", "--ledger", str(ledger),
            "--pair", "999991", "999992",
        ])
        assert status == 1
        assert "not found" in capsys.readouterr().err

    def test_explain_requires_ledger_and_pair(self):
        with pytest.raises(SystemExit):
            main(["explain"])

    def test_monitor_renders_dashboard(self, capsys):
        status = main([
            "monitor", "--frames", "200", "--window-length", "100",
            "--steps", "2",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "watermark" in out
        assert "p50" in out
