"""Integration tests for the end-to-end ingestion pipeline."""

from repro.core.pipeline import IngestionPipeline
from repro.core.tmerge import TMerge
from repro.core.baseline import BaselineMerger
from repro.metrics.matching import match_tracks_to_gt, polyonymous_pairs
from repro.metrics.recall import average_recall
from repro.track import TracktorTracker


class TestIngestionPipeline:
    def test_end_to_end_shapes(self, chaos_world):
        pipeline = IngestionPipeline(
            tracker=TracktorTracker(),
            merger=TMerge(k=0.1, tau_max=400, batch_size=10, seed=3),
            window_length=300,
        )
        result = pipeline.run(chaos_world)
        assert len(result.detections) == chaos_world.n_frames
        assert len(result.windows) == len(result.window_pairs)
        assert len(result.windows) == len(result.window_results)
        assert result.tracks, "expected tracks"
        assert len(result.merged_tracks) <= len(result.tracks)
        assert result.fps > 0

    def test_merging_only_applies_candidates(self, chaos_world):
        pipeline = IngestionPipeline(
            tracker=TracktorTracker(),
            merger=TMerge(k=0.05, tau_max=300, batch_size=10, seed=3),
            window_length=300,
        )
        result = pipeline.run(chaos_world)
        n_selected = len(set(result.selected_pairs))
        assert len(result.tracks) - len(result.merged_tracks) <= n_selected

    def test_id_map_covers_all_tracks(self, chaos_world):
        pipeline = IngestionPipeline(
            tracker=TracktorTracker(),
            merger=TMerge(k=0.05, tau_max=200, batch_size=10, seed=3),
            window_length=300,
        )
        result = pipeline.run(chaos_world)
        assert set(result.id_map) == {t.track_id for t in result.tracks}
        merged_ids = {t.track_id for t in result.merged_tracks}
        assert set(result.id_map.values()) == merged_ids

    def test_cost_accumulates_across_windows(self, chaos_world):
        pipeline = IngestionPipeline(
            tracker=TracktorTracker(),
            merger=BaselineMerger(k=0.05),
            window_length=150,
        )
        result = pipeline.run(chaos_world)
        assert result.cost.seconds > 0
        assert result.total_simulated_seconds <= result.cost.seconds + 1e-9

    def test_run_on_tracks_reuses_tracker_output(self, chaos_world):
        from repro.detect import NoisyDetector

        detections = NoisyDetector().detect_video(chaos_world, seed=2)
        tracks = TracktorTracker().run(detections)
        pipeline = IngestionPipeline(
            tracker=TracktorTracker(),
            merger=TMerge(k=0.05, tau_max=200, batch_size=10, seed=3),
            window_length=300,
        )
        result = pipeline.run_on_tracks(chaos_world, detections, tracks)
        assert result.tracks is tracks

    def test_baseline_pipeline_recall_high(self, chaos_world):
        """The exhaustive baseline through the pipeline finds most true
        polyonymous pairs at K=0.1."""
        pipeline = IngestionPipeline(
            tracker=TracktorTracker(),
            merger=BaselineMerger(k=0.1),
            window_length=300,
        )
        result = pipeline.run(chaos_world)
        assignment = match_tracks_to_gt(result.tracks, chaos_world)
        per_window = []
        for pairs, window_result in zip(
            result.window_pairs, result.window_results
        ):
            gt = polyonymous_pairs(pairs, assignment)
            per_window.append((window_result.candidate_keys, gt))
        assert average_recall(per_window) >= 0.5


class TestMergeScoreThreshold:
    def test_threshold_limits_merging(self, chaos_world):
        permissive = IngestionPipeline(
            tracker=TracktorTracker(),
            merger=TMerge(k=0.2, tau_max=300, batch_size=10, seed=3),
            window_length=300,
        )
        strict = IngestionPipeline(
            tracker=TracktorTracker(),
            merger=TMerge(k=0.2, tau_max=300, batch_size=10, seed=3),
            window_length=300,
            merge_score_threshold=0.0,  # nothing is confident enough
        )
        merged_all = permissive.run(chaos_world)
        merged_none = strict.run(chaos_world)
        assert len(merged_none.merged_tracks) == len(merged_none.tracks)
        assert len(merged_all.merged_tracks) <= len(merged_none.merged_tracks)
