"""Unit tests for CLEAR-MOT and identity metrics."""

import numpy as np
import pytest

from helpers import make_detection, tiny_scene_config

from repro.core.merge import merge_tracks
from repro.geometry import BBox
from repro.metrics.clearmot import evaluate_clearmot
from repro.metrics.identity import evaluate_identity
from repro.synth.motion import ConstantVelocity
from repro.synth.objects import GroundTruthObject, ObjectClass
from repro.synth.world import simulate_world
from repro.track.base import Track


def scripted_world(n_frames=40, n_objects=2):
    """A deterministic world: objects parked far apart, no occlusion."""
    config = tiny_scene_config(
        initial_objects=0, spawn_rate=0.0, n_static_occluders=0,
        glare_rate=0.0,
    )
    objects = []
    for i in range(n_objects):
        objects.append(
            GroundTruthObject(
                object_id=i,
                object_class=ObjectClass.PERSON,
                spawn_frame=0,
                lifetime=n_frames,
                size=(40.0, 80.0),
                motion=ConstantVelocity((120.0 + 200.0 * i, 240.0), (0.0, 0.0)),
                appearance=np.eye(config.appearance_dim)[i % 16],
            )
        )
    return simulate_world(config, n_frames, seed=0, extra_objects=objects)


def perfect_tracks(world):
    """Tracks that copy the ground truth exactly."""
    tracks = []
    for oid in sorted(world.objects):
        track = Track(oid)
        for frame, state in world.states_for(oid):
            track.append(
                frame,
                make_detection(
                    state.bbox.x1, state.bbox.y1,
                    state.bbox.width, state.bbox.height,
                    source_id=oid,
                ),
            )
        tracks.append(track)
    return tracks


class TestClearMot:
    def test_perfect_tracking(self):
        world = scripted_world()
        result = evaluate_clearmot(perfect_tracks(world), world)
        assert result.misses == 0
        assert result.false_positives == 0
        assert result.id_switches == 0
        assert result.fragmentations == 0
        assert result.mota == pytest.approx(1.0)

    def test_no_tracks_all_misses(self):
        world = scripted_world()
        result = evaluate_clearmot([], world)
        assert result.misses == result.n_gt
        assert result.mota <= 0.0

    def test_false_positives_counted(self):
        world = scripted_world(n_objects=1)
        tracks = perfect_tracks(world)
        ghost = Track(99)
        for f in range(world.n_frames):
            ghost.append(f, make_detection(500.0, 50.0, source_id=None))
        result = evaluate_clearmot(tracks + [ghost], world)
        assert result.false_positives == world.n_frames
        assert result.misses == 0

    def test_id_switch_detected(self):
        world = scripted_world(n_objects=1, n_frames=40)
        [full] = perfect_tracks(world)
        first = Track(0)
        second = Track(1)
        for obs in full.observations:
            if obs.frame < 20:
                first.append(obs.frame, obs.detection)
            else:
                second.append(obs.frame, obs.detection)
        result = evaluate_clearmot([first, second], world)
        assert result.id_switches == 1
        assert result.misses == 0

    def test_fragmentation_counted(self):
        world = scripted_world(n_objects=1, n_frames=40)
        [full] = perfect_tracks(world)
        gappy = Track(0)
        for obs in full.observations:
            if not 15 <= obs.frame < 25:
                gappy.append(obs.frame, obs.detection)
        result = evaluate_clearmot([gappy], world)
        assert result.fragmentations == 1
        assert result.misses == 10


class TestIdentityMetrics:
    def test_perfect_tracking(self):
        world = scripted_world()
        result = evaluate_identity(perfect_tracks(world), world)
        assert result.idf1 == pytest.approx(1.0)
        assert result.idp == pytest.approx(1.0)
        assert result.idr == pytest.approx(1.0)

    def test_empty_tracks(self):
        world = scripted_world()
        result = evaluate_identity([], world)
        assert result.idf1 == 0.0
        assert result.idfn > 0

    def test_fragmentation_lowers_idf1(self):
        world = scripted_world(n_objects=1, n_frames=40)
        [full] = perfect_tracks(world)
        first = Track(0)
        second = Track(1)
        for obs in full.observations:
            (first if obs.frame < 20 else second).append(
                obs.frame, obs.detection
            )
        fragmented = evaluate_identity([first, second], world)
        perfect = evaluate_identity([full], world)
        assert fragmented.idf1 < perfect.idf1
        # One fragment matches the GT trajectory (IDTP=20); the other's
        # 20 frames count as IDFP and the uncovered 20 GT frames as IDFN:
        # IDF1 = 2*20 / (2*20 + 20 + 20) = 0.5.
        assert fragmented.idf1 == pytest.approx(0.5, abs=0.05)

    def test_merging_restores_idf1(self):
        world = scripted_world(n_objects=1, n_frames=40)
        [full] = perfect_tracks(world)
        first = Track(0)
        second = Track(1)
        for obs in full.observations:
            (first if obs.frame < 20 else second).append(
                obs.frame, obs.detection
            )
        before = evaluate_identity([first, second], world)
        merged, _ = merge_tracks([first, second], [(0, 1)])
        after = evaluate_identity(merged, world)
        assert after.idf1 > before.idf1
        assert after.idf1 == pytest.approx(1.0)

    def test_idp_idr_tradeoff_with_clutter(self):
        world = scripted_world(n_objects=1)
        tracks = perfect_tracks(world)
        ghost = Track(99)
        for f in range(world.n_frames):
            ghost.append(f, make_detection(500.0, 50.0, source_id=None))
        result = evaluate_identity(tracks + [ghost], world)
        assert result.idp < 1.0  # clutter hurts precision
        assert result.idr == pytest.approx(1.0)  # recall unaffected
