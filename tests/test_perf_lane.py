"""Tests for the bench-perf lane (repro.experiments.perf + CLI).

The lane's wall-clock *ratio* gate only makes sense on a quiet CI
machine at the real smoke scale, so these tests pin down everything
else: summary schema, observation accounting, the failure predicate,
trend-file append semantics, and the CLI exit codes — with the
workload shrunk far below smoke scale to keep tier-1 fast.
"""

import json

import pytest

from repro.experiments import perf
from repro.experiments.__main__ import main as experiments_main

TINY_WORKLOAD = dict(preset="mot17", n_videos=1, seed=0, n_frames=80)
TINY_TAU = 64


@pytest.fixture
def tiny_perf(monkeypatch):
    """Shrink the perf workload so run_perf completes in ~a second."""
    monkeypatch.setattr(perf, "SMOKE_WORKLOAD", TINY_WORKLOAD)
    monkeypatch.setattr(perf, "SMOKE_SCALAR_TAU", TINY_TAU)


def _fabricated(speedup):
    side = {
        "wall_s": 0.1,
        "observations": 100.0,
        "ms_per_obs": 1.0,
        "recall": 0.5,
        "reid_invocations": 200.0,
        "simulated_seconds": 2.0,
    }
    return {
        "schema": perf.SCHEMA_VERSION,
        "unix_time": 0.0,
        "python": "3.x",
        "numpy": "2.x",
        "workload": {"preset": "mot17", "n_videos": 1, "seed": 0,
                     "n_frames": 80, "scalar_tau": 64, "smoke": True},
        "batch_size": perf.BATCH_SIZE,
        "repeats": 1,
        "scalar": dict(side),
        "batched": {**side, "ms_per_obs": 1.0 / speedup},
        "speedup": speedup,
    }


def test_run_perf_summary_schema(tiny_perf):
    summary = perf.run_perf(smoke=True, repeats=1)
    assert summary["schema"] == perf.SCHEMA_VERSION
    assert summary["batch_size"] == perf.BATCH_SIZE
    assert summary["workload"]["smoke"] is True
    assert summary["workload"]["scalar_tau"] == TINY_TAU
    for side in ("scalar", "batched"):
        stats = summary[side]
        assert stats["observations"] > 0
        assert stats["wall_s"] > 0
        assert stats["ms_per_obs"] > 0
    # Matched observation budget: tau_scalar = B * tau_batched, one
    # observation per iteration on both paths.
    assert (
        abs(summary["batched"]["observations"]
            - summary["scalar"]["observations"])
        <= 0.15 * summary["scalar"]["observations"]
    )
    assert summary["speedup"] > 0
    # The record must be JSON-serializable as written (CI artifact).
    json.dumps(summary)


def test_run_perf_rejects_bad_repeats(tiny_perf):
    with pytest.raises(ValueError, match="repeats"):
        perf.run_perf(smoke=True, repeats=0)


def test_check_summary_accepts_speedup():
    assert perf.check_summary(_fabricated(2.0)) == []


def test_check_summary_flags_slowdown():
    failures = perf.check_summary(_fabricated(0.8))
    assert len(failures) == 1
    assert "slower than scalar" in failures[0]


def test_check_summary_flags_zero_observations():
    summary = _fabricated(2.0)
    summary["scalar"]["observations"] = 0.0
    failures = perf.check_summary(summary)
    assert any("zero ReID observations" in f for f in failures)


def test_append_trend_roundtrip(tmp_path):
    trend = tmp_path / "trend.jsonl"
    perf.append_trend(_fabricated(2.0), trend)
    perf.append_trend(_fabricated(1.5), trend)
    records = [json.loads(line) for line in trend.read_text().splitlines()]
    assert [r["speedup"] for r in records] == [2.0, 1.5]
    assert all(r["batch_size"] == perf.BATCH_SIZE for r in records)


def test_format_summary_renders_both_variants():
    text = perf.format_summary(_fabricated(2.0))
    assert "TMerge (scalar)" in text
    assert f"TMerge-B{perf.BATCH_SIZE}" in text
    assert "2.00x" in text


def test_cli_perf_passes_and_writes_outputs(tiny_perf, tmp_path, capsys):
    out = tmp_path / "perf_summary.json"
    trend = tmp_path / "trend.jsonl"
    status = experiments_main([
        "perf", "--smoke", "--repeats", "1",
        "--output", str(out), "--trend", str(trend),
    ])
    captured = capsys.readouterr().out
    summary = json.loads(out.read_text())
    assert summary["schema"] == perf.SCHEMA_VERSION
    assert len(trend.read_text().splitlines()) == 1
    # The tiny workload is too noisy to promise a speedup, so accept
    # either verdict — but the exit status must match the printed one.
    if status == 0:
        assert "bench-perf: OK" in captured
    else:
        assert "bench-perf: FAIL" in captured


def test_cli_perf_fails_on_slowdown(tiny_perf, tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(perf, "run_perf",
                        lambda smoke, repeats: _fabricated(0.5))
    status = experiments_main(
        ["perf", "--output", str(tmp_path / "s.json")]
    )
    assert status == 1
    assert "bench-perf: FAIL" in capsys.readouterr().out
