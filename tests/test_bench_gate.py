"""The CI benchmark-regression gate: summary round-trips, the 5%
recall/ReID-invocation thresholds, and the acceptance tamper test (a
synthetic 10% ReID-invocation regression must fail the gate)."""

import json
from pathlib import Path

import pytest

from repro.experiments.__main__ import main
from repro.experiments.bench_summary import (
    SCHEMA_VERSION,
    BenchSummary,
    compare_summaries,
    gate_summary_files,
)

BASELINE_PATH = (
    Path(__file__).parent.parent
    / "benchmarks"
    / "results"
    / "baseline_summary.json"
)


def _summary(**overrides) -> BenchSummary:
    summary = BenchSummary()
    metrics = dict(recall=0.90, reid_invocations=1000.0, simulated_ms=5e4)
    metrics.update(overrides)
    summary.add("bench", **metrics)
    return summary


class TestBenchSummary:
    def test_round_trip(self, tmp_path):
        summary = _summary()
        path = summary.write(tmp_path / "s.json")
        restored = BenchSummary.load(path)
        assert restored.benchmarks == summary.benchmarks

    def test_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            BenchSummary.from_dict({"schema": SCHEMA_VERSION + 1})

    def test_rejects_missing_metrics(self):
        document = {
            "schema": SCHEMA_VERSION,
            "benchmarks": {"b": {"recall": 0.5}},
        }
        with pytest.raises(ValueError, match="missing metrics"):
            BenchSummary.from_dict(document)

    def test_readd_overwrites(self):
        summary = _summary()
        summary.add(
            "bench", recall=0.5, reid_invocations=1.0, simulated_ms=1.0
        )
        assert summary.benchmarks["bench"]["recall"] == 0.5


class TestCompareSummaries:
    def test_identical_passes(self):
        assert compare_summaries(_summary(), _summary()) == []

    def test_small_drift_within_tolerance_passes(self):
        current = _summary(recall=0.87, reid_invocations=1040.0)
        assert compare_summaries(current, _summary()) == []

    def test_recall_drop_fails(self):
        current = _summary(recall=0.80)
        failures = compare_summaries(current, _summary())
        assert len(failures) == 1
        assert "recall regressed" in failures[0]

    def test_invocation_growth_fails(self):
        current = _summary(reid_invocations=1100.0)  # +10%
        failures = compare_summaries(current, _summary())
        assert len(failures) == 1
        assert "reid_invocations regressed" in failures[0]

    def test_simulated_ms_not_gated(self):
        current = _summary(simulated_ms=5e6)
        assert compare_summaries(current, _summary()) == []

    def test_missing_benchmark_fails(self):
        failures = compare_summaries(BenchSummary(), _summary())
        assert failures and "missing from this run" in failures[0]

    def test_new_benchmark_passes(self):
        current = _summary()
        current.add(
            "fresh", recall=0.1, reid_invocations=9e9, simulated_ms=1.0
        )
        assert compare_summaries(current, _summary()) == []

    def test_tolerance_validated(self):
        with pytest.raises(ValueError, match="tolerance"):
            compare_summaries(_summary(), _summary(), tolerance=1.5)

    def test_custom_tolerance(self):
        current = _summary(reid_invocations=1040.0)  # +4%
        assert compare_summaries(current, _summary(), tolerance=0.01)


class TestGateAgainstCommittedBaseline:
    """The acceptance criterion: tampering with the committed baseline's
    metrics by 10% must flip the gate from OK to FAIL."""

    def test_committed_baseline_gates_itself(self):
        failures = gate_summary_files(BASELINE_PATH, BASELINE_PATH)
        assert failures == []

    def _tampered(self, tmp_path, factor: float, metric: str) -> Path:
        document = json.loads(BASELINE_PATH.read_text())
        for metrics in document["benchmarks"].values():
            metrics[metric] *= factor
        tampered = tmp_path / "tampered_summary.json"
        tampered.write_text(json.dumps(document))
        return tampered

    def test_ten_percent_invocation_regression_fails(self, tmp_path):
        tampered = self._tampered(tmp_path, 1.10, "reid_invocations")
        failures = gate_summary_files(tampered, BASELINE_PATH)
        assert failures
        assert all("reid_invocations" in f for f in failures)

    def test_ten_percent_recall_drop_fails(self, tmp_path):
        tampered = self._tampered(tmp_path, 0.90, "recall")
        failures = gate_summary_files(tampered, BASELINE_PATH)
        assert failures
        assert all("recall" in f for f in failures)

    def test_cli_exit_codes(self, tmp_path, capsys):
        ok = main(
            [
                "gate",
                "--current",
                str(BASELINE_PATH),
                "--baseline",
                str(BASELINE_PATH),
            ]
        )
        assert ok == 0
        assert "bench gate: OK" in capsys.readouterr().out

        tampered = self._tampered(tmp_path, 1.10, "reid_invocations")
        fail = main(
            [
                "gate",
                "--current",
                str(tampered),
                "--baseline",
                str(BASELINE_PATH),
            ]
        )
        assert fail == 1
        assert "bench gate: FAIL" in capsys.readouterr().out
