"""Unit tests for the ASCII plot renderer."""

import pytest

from repro.experiments.ascii_plot import ascii_plot, rec_fps_plot
from repro.experiments.sweeps import MethodPoint


class TestAsciiPlot:
    def test_basic_render(self):
        text = ascii_plot(
            {"a": [(1, 0.1), (2, 0.5), (3, 0.9)]},
            width=20,
            height=6,
            x_label="x",
            y_label="y",
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "o" in text  # first glyph
        assert "a" in lines[-1]  # legend

    def test_multiple_series_distinct_glyphs(self):
        text = ascii_plot(
            {"one": [(1, 1.0)], "two": [(2, 2.0)]},
            width=20,
            height=6,
        )
        assert "o one" in text
        assert "x two" in text
        assert text.count("o") >= 2  # glyph plus legend entry

    def test_log_axis(self):
        text = ascii_plot(
            {"a": [(1, 0.0), (1000, 1.0)]},
            width=20,
            height=6,
            log_x=True,
        )
        assert "(log)" in text

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": [(0.0, 1.0)]}, log_x=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": []})

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": [(1, 1)]}, width=4, height=2)

    def test_constant_series_ok(self):
        text = ascii_plot({"a": [(1, 5.0), (2, 5.0)]}, width=20, height=6)
        assert "|" in text

    def test_extreme_values_stay_on_grid(self):
        text = ascii_plot(
            {"a": [(1, -100.0), (2, 100.0)]}, width=20, height=6
        )
        for line in text.splitlines():
            assert len(line) <= 30


class TestRecFpsPlot:
    def test_renders_method_points(self):
        curves = {
            "TMerge": [
                MethodPoint("TMerge", 0.5, 100.0, 1.0, 1000),
                MethodPoint("TMerge", 0.9, 40.0, 3.0, 4000),
            ],
            "BL": [MethodPoint("BL", 1.0, 5.0, 60.0)],
        }
        text = rec_fps_plot(curves, title="Figure 5")
        assert "Figure 5" in text
        assert "FPS" in text
        assert "REC" in text
        assert "TMerge" in text

    def test_drops_zero_fps_points(self):
        curves = {
            "weird": [
                MethodPoint("weird", 0.5, 0.0, 1.0),
                MethodPoint("weird", 0.9, 10.0, 1.0),
            ],
        }
        text = rec_fps_plot(curves)
        assert "weird" in text
