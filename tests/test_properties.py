"""Cross-cutting property-based tests on algorithm invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from helpers import make_track, stub_scorer

from repro.core import (
    BaselineMerger,
    LcbMerger,
    ProportionalMerger,
    TMerge,
    build_track_pairs,
)
from repro.core.results import top_k_count
from repro.core.windows import WindowedTracks, partition_windows
from repro.metrics.recall import window_recall
from repro.parallel import ShardPlanner


def _random_pairs(n_tracks: int, track_len: int, n_sources: int, seed: int):
    """Random track population with a controlled number of GT sources."""
    rng = np.random.default_rng(seed)
    tracks = []
    for i in range(n_tracks):
        source = int(rng.integers(0, n_sources))
        start = int(rng.integers(0, 500))
        tracks.append(
            make_track(
                i,
                list(range(start, start + track_len)),
                positions=[
                    (float(rng.uniform(0, 1000)), float(rng.uniform(0, 500)))
                    for _ in range(track_len)
                ],
                source_id=source,
            )
        )
    return build_track_pairs(tracks)


MERGER_FACTORIES = [
    lambda k, seed: BaselineMerger(k=k),
    lambda k, seed: ProportionalMerger(eta=0.3, k=k, seed=seed),
    lambda k, seed: LcbMerger(tau_max=120, k=k, seed=seed),
    lambda k, seed: TMerge(k=k, tau_max=120, seed=seed),
]


@settings(max_examples=15, deadline=None)
@given(
    n_tracks=st.integers(3, 8),
    k=st.floats(0.05, 1.0),
    seed=st.integers(0, 100),
    merger_index=st.integers(0, len(MERGER_FACTORIES) - 1),
)
def test_candidate_budget_invariant(n_tracks, k, seed, merger_index):
    """Every merger returns exactly ⌈K·|P_c|⌉ candidates, all from P_c,
    with no duplicates."""
    pairs = _random_pairs(n_tracks, track_len=3, n_sources=4, seed=seed)
    merger = MERGER_FACTORIES[merger_index](k, seed)
    result = merger.run(pairs, stub_scorer(noise=0.2, seed=seed))
    assert len(result.candidates) == top_k_count(len(pairs), k)
    keys = [p.key for p in result.candidates]
    assert len(set(keys)) == len(keys)
    assert set(keys) <= {p.key for p in pairs}


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 50))
def test_full_k_gives_perfect_recall(seed):
    """K = 1 returns every pair, so REC = 1 whatever the estimates."""
    pairs = _random_pairs(6, track_len=3, n_sources=3, seed=seed)
    from repro.metrics.matching import match_tracks_by_source, polyonymous_pairs

    tracks = list({p.track_a.track_id: p.track_a for p in pairs}.values())
    tracks += list({p.track_b.track_id: p.track_b for p in pairs}.values())
    unique = list({t.track_id: t for t in tracks}.values())
    gt = polyonymous_pairs(pairs, match_tracks_by_source(unique))
    result = TMerge(k=1.0, tau_max=50, seed=seed).run(
        pairs, stub_scorer(noise=0.2, seed=seed)
    )
    rec = window_recall(result.candidate_keys, gt)
    assert rec is None or rec == 1.0


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 50),
    batch=st.integers(1, 8),
)
def test_batched_tmerge_same_invariants(seed, batch):
    """The batched variant preserves the budget and key invariants."""
    pairs = _random_pairs(6, track_len=4, n_sources=3, seed=seed)
    result = TMerge(k=0.3, tau_max=40, batch_size=batch, seed=seed).run(
        pairs, stub_scorer(noise=0.2, seed=seed)
    )
    assert len(result.candidates) == top_k_count(len(pairs), 0.3)
    assert all(0.0 <= v <= 1.0 for v in result.scores.values())


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100), n_sources=st.integers(1, 6))
def test_draws_never_exceed_pools(seed, n_sources):
    """No merger ever samples more BBox pairs than a pair's pool holds."""
    pairs = _random_pairs(6, track_len=2, n_sources=n_sources, seed=seed)
    TMerge(k=0.5, tau_max=500, seed=seed).run(
        pairs, stub_scorer(noise=0.1, seed=seed)
    )
    for pair in pairs:
        assert pair.n_sampled <= pair.n_bbox_pairs


@settings(max_examples=50, deadline=None)
@given(
    n_frames=st.integers(1, 600),
    window_length=st.integers(2, 200),
)
def test_window_ownership_is_a_partition(n_frames, window_length):
    """Every frame falls in exactly one window's ownership region."""
    windows = partition_windows(n_frames, window_length)
    owners_per_frame = [
        sum(1 for w in windows if w.start <= frame < w.ownership_end)
        for frame in range(n_frames)
    ]
    assert all(count == 1 for count in owners_per_frame)


@settings(max_examples=25, deadline=None)
@given(
    n_tracks=st.integers(1, 12),
    track_len=st.integers(1, 20),
    window_length=st.integers(4, 60),
    seed=st.integers(0, 100),
)
def test_pairs_unique_across_windows(n_tracks, track_len, window_length, seed):
    """Eq. 1: every unordered track pair appears in at most one window."""
    rng = np.random.default_rng(seed)
    horizon = 3 * window_length
    tracks = []
    for i in range(n_tracks):
        start = int(rng.integers(0, horizon))
        tracks.append(
            make_track(i, list(range(start, start + track_len)))
        )
    n_frames = max(t.last_frame for t in tracks) + 1
    windows = partition_windows(n_frames, window_length)
    windowed = WindowedTracks.assign(tracks, windows)
    keys = []
    for c in range(len(windows)):
        pairs = build_track_pairs(
            windowed.tracks_of(c), windowed.previous_tracks_of(c)
        )
        keys.extend(pair.key for pair in pairs)
    assert len(keys) == len(set(keys))


@settings(max_examples=50, deadline=None)
@given(n_pairs=st.integers(0, 500), k=st.floats(0.0, 1.0))
def test_top_k_count_bounds(n_pairs, k):
    """0 ≤ ⌈K·n⌉ ≤ n for every K in [0, 1]."""
    count = top_k_count(n_pairs, k)
    assert 0 <= count <= n_pairs


@settings(max_examples=50, deadline=None)
@given(
    n_pairs=st.integers(0, 300),
    k_low=st.floats(0.0, 1.0),
    k_high=st.floats(0.0, 1.0),
    extra=st.integers(0, 50),
)
def test_top_k_count_monotone(n_pairs, k_low, k_high, extra):
    """The budget is monotone in both K and the pair count."""
    if k_low > k_high:
        k_low, k_high = k_high, k_low
    assert top_k_count(n_pairs, k_low) <= top_k_count(n_pairs, k_high)
    assert top_k_count(n_pairs, k_low) <= top_k_count(n_pairs + extra, k_low)


@settings(max_examples=50, deadline=None)
@given(
    n_windows=st.integers(0, 60),
    n_workers=st.integers(1, 12),
    seed=st.integers(0, 100),
)
def test_shard_plan_is_a_partition(n_windows, n_workers, seed):
    """Every busy window lands in exactly one shard, none invented."""
    rng = np.random.default_rng(seed)
    indices = [
        c for c in range(n_windows) if rng.random() < 0.7
    ]
    plan = ShardPlanner(n_workers).plan(indices)
    covered = plan.covered_indices()
    assert sorted(covered) == sorted(indices)
    assert len(covered) == len(set(covered))
    assert len(plan.shards) <= n_workers
    assert all(shard.window_indices for shard in plan.shards)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 50))
def test_cost_monotone_in_work(seed):
    """More iterations never cost less simulated time."""
    pairs = _random_pairs(6, track_len=5, n_sources=3, seed=seed)
    small = TMerge(k=0.2, tau_max=20, seed=seed).run(
        pairs, stub_scorer(seed=seed)
    )
    for pair in pairs:
        pair.reset_sampling()
    large = TMerge(k=0.2, tau_max=200, seed=seed).run(
        pairs, stub_scorer(seed=seed)
    )
    assert large.simulated_seconds >= small.simulated_seconds
