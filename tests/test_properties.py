"""Cross-cutting property-based tests on algorithm invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from helpers import make_track, stub_scorer

from repro.core import (
    BaselineMerger,
    LcbMerger,
    ProportionalMerger,
    TMerge,
    build_track_pairs,
)
from repro.core.results import top_k_count
from repro.metrics.recall import window_recall


def _random_pairs(n_tracks: int, track_len: int, n_sources: int, seed: int):
    """Random track population with a controlled number of GT sources."""
    rng = np.random.default_rng(seed)
    tracks = []
    for i in range(n_tracks):
        source = int(rng.integers(0, n_sources))
        start = int(rng.integers(0, 500))
        tracks.append(
            make_track(
                i,
                list(range(start, start + track_len)),
                positions=[
                    (float(rng.uniform(0, 1000)), float(rng.uniform(0, 500)))
                    for _ in range(track_len)
                ],
                source_id=source,
            )
        )
    return build_track_pairs(tracks)


MERGER_FACTORIES = [
    lambda k, seed: BaselineMerger(k=k),
    lambda k, seed: ProportionalMerger(eta=0.3, k=k, seed=seed),
    lambda k, seed: LcbMerger(tau_max=120, k=k, seed=seed),
    lambda k, seed: TMerge(k=k, tau_max=120, seed=seed),
]


@settings(max_examples=15, deadline=None)
@given(
    n_tracks=st.integers(3, 8),
    k=st.floats(0.05, 1.0),
    seed=st.integers(0, 100),
    merger_index=st.integers(0, len(MERGER_FACTORIES) - 1),
)
def test_candidate_budget_invariant(n_tracks, k, seed, merger_index):
    """Every merger returns exactly ⌈K·|P_c|⌉ candidates, all from P_c,
    with no duplicates."""
    pairs = _random_pairs(n_tracks, track_len=3, n_sources=4, seed=seed)
    merger = MERGER_FACTORIES[merger_index](k, seed)
    result = merger.run(pairs, stub_scorer(noise=0.2, seed=seed))
    assert len(result.candidates) == top_k_count(len(pairs), k)
    keys = [p.key for p in result.candidates]
    assert len(set(keys)) == len(keys)
    assert set(keys) <= {p.key for p in pairs}


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 50))
def test_full_k_gives_perfect_recall(seed):
    """K = 1 returns every pair, so REC = 1 whatever the estimates."""
    pairs = _random_pairs(6, track_len=3, n_sources=3, seed=seed)
    from repro.metrics.matching import match_tracks_by_source, polyonymous_pairs

    tracks = list({p.track_a.track_id: p.track_a for p in pairs}.values())
    tracks += list({p.track_b.track_id: p.track_b for p in pairs}.values())
    unique = list({t.track_id: t for t in tracks}.values())
    gt = polyonymous_pairs(pairs, match_tracks_by_source(unique))
    result = TMerge(k=1.0, tau_max=50, seed=seed).run(
        pairs, stub_scorer(noise=0.2, seed=seed)
    )
    rec = window_recall(result.candidate_keys, gt)
    assert rec is None or rec == 1.0


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 50),
    batch=st.integers(1, 8),
)
def test_batched_tmerge_same_invariants(seed, batch):
    """The batched variant preserves the budget and key invariants."""
    pairs = _random_pairs(6, track_len=4, n_sources=3, seed=seed)
    result = TMerge(k=0.3, tau_max=40, batch_size=batch, seed=seed).run(
        pairs, stub_scorer(noise=0.2, seed=seed)
    )
    assert len(result.candidates) == top_k_count(len(pairs), 0.3)
    assert all(0.0 <= v <= 1.0 for v in result.scores.values())


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100), n_sources=st.integers(1, 6))
def test_draws_never_exceed_pools(seed, n_sources):
    """No merger ever samples more BBox pairs than a pair's pool holds."""
    pairs = _random_pairs(6, track_len=2, n_sources=n_sources, seed=seed)
    TMerge(k=0.5, tau_max=500, seed=seed).run(
        pairs, stub_scorer(noise=0.1, seed=seed)
    )
    for pair in pairs:
        assert pair.n_sampled <= pair.n_bbox_pairs


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 50))
def test_cost_monotone_in_work(seed):
    """More iterations never cost less simulated time."""
    pairs = _random_pairs(6, track_len=5, n_sources=3, seed=seed)
    small = TMerge(k=0.2, tau_max=20, seed=seed).run(
        pairs, stub_scorer(seed=seed)
    )
    for pair in pairs:
        pair.reset_sampling()
    large = TMerge(k=0.2, tau_max=200, seed=seed).run(
        pairs, stub_scorer(seed=seed)
    )
    assert large.simulated_seconds >= small.simulated_seconds
