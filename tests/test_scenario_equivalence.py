"""Differential determinism over named scenarios: a scenario run is
bit-identical across worker counts (within each batch size) and across
reruns, through both the batch pipeline and the streaming service.

Batch sizes are separate algorithm variants (B=1 is the scalar path,
B=8 the batched sampler), so the contract is worker-invariance *within*
each batch size — never cross-batch identity.
"""

import pytest

from repro.core.pipeline import IngestionPipeline
from repro.core.tmerge import TMerge
from repro.scenarios import build_scenario, scenario_by_name, smoke_variant
from repro.streaming import StreamingIngestionService, SyntheticFeedSource
from repro.track.tracktor import TracktorTracker

#: Named scenarios with distinct fault make-ups: clean, dropout-heavy,
#: and every axis at once.
SCENARIOS = ("mot17-clear", "kitti-camera-dropout", "mot17-perfect-storm")

BATCH_SIZES = (1, 8)
WORKER_COUNTS = (2, 4)


@pytest.fixture(scope="module", params=SCENARIOS)
def scenario(request):
    """One smoke-scale instantiation per named scenario (read-only)."""
    spec = smoke_variant(scenario_by_name(request.param))
    return build_scenario(spec, seed=0)


def _run_batch(scenario, workers, batch_size):
    pipeline = IngestionPipeline(
        tracker=TracktorTracker(),
        merger=TMerge(k=0.1, tau_max=80, batch_size=batch_size, seed=3),
        window_length=scenario.spec.window_length,
        reid_seed=scenario.seeds.reid_seed,
        detector_seed=scenario.seeds.detector_seed,
        fault_profile=scenario.profile,
        workers=workers,
        parallel_backend="thread",
    )
    return pipeline.run(scenario.world)


def _batch_fingerprint(result):
    return {
        "candidates": [
            tuple(sorted(r.candidate_keys)) for r in result.window_results
        ],
        "scores": [
            tuple(sorted(r.scores.items())) for r in result.window_results
        ],
        "degraded": [r.degraded for r in result.window_results],
        "simulated_seconds": [
            r.simulated_seconds for r in result.window_results
        ],
        "cost": result.cost.state_dict(),
        "resilience": dict(result.resilience_stats),
    }


def _run_stream(scenario, workers):
    source = SyntheticFeedSource(
        scenario.world,
        detector_seed=scenario.seeds.detector_seed,
        disorder_ms=50.0,
        disorder_seed=scenario.seeds.disorder_seed,
        fault_profile=scenario.profile,
    )
    service = StreamingIngestionService(
        TracktorTracker(),
        TMerge(k=0.1, tau_max=80, batch_size=10, seed=3),
        window_length=scenario.spec.window_length,
        allowed_lateness=4,
        reid_seed=scenario.seeds.reid_seed,
        workers=workers,
        parallel_backend="thread",
        fault_profile=scenario.profile,
    )
    return service.run(source)


class TestBatchPipelineWorkerInvariance:
    @pytest.fixture(scope="class")
    def references(self, scenario):
        """The single-worker fingerprint per batch size."""
        return {
            batch_size: _batch_fingerprint(
                _run_batch(scenario, workers=1, batch_size=batch_size)
            )
            for batch_size in BATCH_SIZES
        }

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_workers_do_not_move_the_result(
        self, scenario, references, workers, batch_size
    ):
        observed = _run_batch(
            scenario, workers=workers, batch_size=batch_size
        )
        assert _batch_fingerprint(observed) == references[batch_size]

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_rerun_is_bit_identical(self, scenario, references, batch_size):
        observed = _run_batch(scenario, workers=1, batch_size=batch_size)
        assert _batch_fingerprint(observed) == references[batch_size]


class TestStreamingWorkerInvariance:
    def test_workers_do_not_move_the_emissions(self, scenario):
        reference = _run_stream(scenario, workers=1)
        assert len(reference.emissions) >= 1
        observed = _run_stream(scenario, workers=2)
        assert observed.fingerprints() == reference.fingerprints()
        assert observed.watermark == reference.watermark
