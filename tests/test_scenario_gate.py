"""The CI scenario-sweep gate: per-scenario recall/ReID-budget
thresholds against the committed ``scenario_matrix.json`` baseline,
definition-drift detection, and the acceptance tamper test (a synthetic
10% single-scenario regression must fail the gate)."""

import json
from pathlib import Path

import pytest

from repro.experiments.__main__ import main
from repro.experiments.scenarios import (
    gate_matrix,
    gate_matrix_files,
    load_matrix,
)

BASELINE_PATH = (
    Path(__file__).parent.parent
    / "benchmarks"
    / "results"
    / "scenario_matrix.json"
)


def _document(**overrides) -> dict:
    record = dict(
        scenario_id="abc123def456",
        recall=0.80,
        reid_budget=1000,
    )
    record.update(overrides)
    return {
        "schema": 1,
        "mode": "smoke",
        "seed": 0,
        "scenarios": {"s": record},
    }


class TestGateMatrix:
    def test_identical_documents_pass(self):
        assert gate_matrix(_document(), _document()) == []

    def test_recall_within_tolerance_passes(self):
        assert gate_matrix(_document(recall=0.77), _document()) == []

    def test_recall_regression_fails(self):
        failures = gate_matrix(_document(recall=0.72), _document())
        assert len(failures) == 1
        assert "s: recall regressed" in failures[0]

    def test_budget_growth_within_tolerance_passes(self):
        assert gate_matrix(_document(reid_budget=1040), _document()) == []

    def test_budget_regression_fails(self):
        failures = gate_matrix(_document(reid_budget=1100), _document())
        assert len(failures) == 1
        assert "s: reid_budget regressed" in failures[0]

    def test_missing_scenario_fails(self):
        current = _document()
        current["scenarios"] = {}
        failures = gate_matrix(current, _document())
        assert failures == ["s: present in baseline but missing from this run"]

    def test_new_scenario_passes(self):
        current = _document()
        current["scenarios"]["brand-new"] = dict(
            scenario_id="0123456789ab", recall=0.1, reid_budget=10**6
        )
        assert gate_matrix(current, _document()) == []

    def test_definition_drift_fails_without_comparing_metrics(self):
        # The id moved AND the metrics tanked: only drift is reported —
        # comparing metrics across definitions would be meaningless.
        current = _document(
            scenario_id="feedfacefeed", recall=0.0, reid_budget=10**6
        )
        failures = gate_matrix(current, _document())
        assert len(failures) == 1
        assert "definition drift" in failures[0]
        assert "refresh the baseline" in failures[0]

    def test_mode_mismatch_fails_the_whole_comparison(self):
        current = _document()
        current["mode"] = "full"
        failures = gate_matrix(current, _document())
        assert len(failures) == 1
        assert "mode mismatch" in failures[0]

    def test_seed_mismatch_fails_the_whole_comparison(self):
        current = _document()
        current["seed"] = 99
        failures = gate_matrix(current, _document())
        assert "seed mismatch" in failures[0]

    def test_tolerance_validation(self):
        with pytest.raises(ValueError, match="tolerance"):
            gate_matrix(_document(), _document(), tolerance=1.5)

    def test_zero_tolerance_is_exact(self):
        nudged = _document(recall=0.80 - 1e-9)
        assert gate_matrix(nudged, _document(), tolerance=0.0) != []


class TestGateAgainstCommittedBaseline:
    """The acceptance tamper test, against the real committed matrix."""

    def test_committed_baseline_gates_itself(self):
        assert gate_matrix_files(BASELINE_PATH, BASELINE_PATH) == []

    def _tampered(
        self, tmp_path, factor, metric, name="mot17-clear"
    ) -> Path:
        document = json.loads(BASELINE_PATH.read_text())
        document["scenarios"][name][metric] *= factor
        path = tmp_path / "tampered_matrix.json"
        path.write_text(json.dumps(document))
        return path

    def test_ten_percent_recall_drop_in_one_scenario_fails(self, tmp_path):
        tampered = self._tampered(tmp_path, 0.90, "recall")
        failures = gate_matrix_files(tampered, BASELINE_PATH)
        assert len(failures) == 1
        assert "mot17-clear: recall regressed" in failures[0]

    def test_ten_percent_budget_growth_in_one_scenario_fails(self, tmp_path):
        tampered = self._tampered(tmp_path, 1.10, "reid_budget")
        failures = gate_matrix_files(tampered, BASELINE_PATH)
        assert len(failures) == 1
        assert "mot17-clear: reid_budget regressed" in failures[0]

    def test_three_percent_drift_passes(self, tmp_path):
        tampered = self._tampered(tmp_path, 0.97, "recall")
        assert gate_matrix_files(tampered, BASELINE_PATH) == []

    def test_scenario_id_drift_fails(self, tmp_path):
        document = json.loads(BASELINE_PATH.read_text())
        document["scenarios"]["mot17-clear"]["scenario_id"] = "deadbeef0000"
        path = tmp_path / "drifted_matrix.json"
        path.write_text(json.dumps(document))
        failures = gate_matrix_files(path, BASELINE_PATH)
        assert len(failures) == 1
        assert "definition drift" in failures[0]

    def test_baseline_is_at_smoke_scale(self):
        # CI regenerates the matrix with --smoke; the committed baseline
        # must be comparable or every sweep would fail on mode mismatch.
        document = load_matrix(BASELINE_PATH)
        assert document["mode"] == "smoke"
        assert document["seed"] == 0
        assert len(document["scenarios"]) >= 20


class TestGateCli:
    """End-to-end exit codes of ``scenarios --gate`` on a one-scenario
    sweep (kept tiny: each invocation really runs the sweep)."""

    ONLY = ("mot17-clear",)

    @pytest.fixture(scope="class")
    def mini_baseline(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("gate") / "mini_baseline.json"
        status = main(
            [
                "scenarios",
                "--smoke",
                "--only",
                *self.ONLY,
                "--matrix-out",
                str(path),
            ]
        )
        assert status == 0
        return path

    def test_cli_gate_passes_against_its_own_baseline(
        self, mini_baseline, tmp_path, capsys
    ):
        status = main(
            [
                "scenarios",
                "--smoke",
                "--only",
                *self.ONLY,
                "--matrix-out",
                str(tmp_path / "current.json"),
                "--matrix-baseline",
                str(mini_baseline),
                "--gate",
            ]
        )
        assert status == 0
        assert "scenario gate: OK" in capsys.readouterr().out

    def test_cli_gate_fails_against_a_tampered_baseline(
        self, mini_baseline, tmp_path, capsys
    ):
        document = json.loads(mini_baseline.read_text())
        record = document["scenarios"][self.ONLY[0]]
        record["recall"] = min(1.0, record["recall"]) * 1.25
        tampered = tmp_path / "tampered_baseline.json"
        tampered.write_text(json.dumps(document))
        status = main(
            [
                "scenarios",
                "--smoke",
                "--only",
                *self.ONLY,
                "--matrix-out",
                str(tmp_path / "current.json"),
                "--matrix-baseline",
                str(tampered),
                "--gate",
            ]
        )
        assert status == 1
        printed = capsys.readouterr().out
        assert "scenario gate: FAIL" in printed
        assert "recall regressed" in printed
