"""Unit tests for repro.io (MOTChallenge interchange and JSON results)."""

import pytest

from helpers import make_track, stub_scorer, planted_pairs, tiny_world

from repro.core.baseline import BaselineMerger
from repro.experiments.sweeps import MethodPoint
from repro.io import (
    load_points_json,
    merge_result_to_dict,
    read_detections_mot,
    read_tracks_mot,
    save_points_json,
    world_to_mot_gt,
    write_detections_mot,
    write_tracks_mot,
)


class TestTrackRoundtrip:
    def test_roundtrip_preserves_geometry(self, tmp_path):
        tracks = [
            make_track(3, [0, 1, 2], positions=[(10, 20), (14, 20), (18, 20)]),
            make_track(7, [5, 6], positions=[(100, 50), (104, 50)]),
        ]
        path = tmp_path / "tracks.txt"
        write_tracks_mot(tracks, path)
        loaded = read_tracks_mot(path)
        assert [t.track_id for t in loaded] == [3, 7]
        assert loaded[0].frames == [0, 1, 2]
        for original, restored in zip(tracks, loaded):
            for obs_a, obs_b in zip(
                original.observations, restored.observations
            ):
                assert obs_a.bbox.to_tlwh() == pytest.approx(
                    obs_b.bbox.to_tlwh(), abs=0.01
                )

    def test_read_strips_simulation_attributes(self, tmp_path):
        tracks = [make_track(0, [0, 1], source_id=5)]
        path = tmp_path / "tracks.txt"
        write_tracks_mot(tracks, path)
        loaded = read_tracks_mot(path)
        assert loaded[0].observations[0].detection.source_id is None
        assert loaded[0].observations[0].detection.visibility == 1.0

    def test_duplicate_lines_tolerated(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text(
            "1,0,10,10,5,5,0.9,-1,-1,-1\n1,0,10,10,5,5,0.9,-1,-1,-1\n"
        )
        loaded = read_tracks_mot(path)
        assert len(loaded) == 1
        assert len(loaded[0]) == 1

    def test_frames_one_based_in_file(self, tmp_path):
        tracks = [make_track(0, [0])]
        path = tmp_path / "tracks.txt"
        write_tracks_mot(tracks, path)
        first_field = path.read_text().split(",")[0]
        assert first_field == "1"


class TestDetectionRoundtrip:
    def test_roundtrip(self, tmp_path):
        from helpers import make_detection

        detections = [
            [make_detection(10, 10), make_detection(50, 50)],
            [],
            [make_detection(20, 20, confidence=0.4)],
        ]
        path = tmp_path / "det.txt"
        write_detections_mot(detections, path)
        loaded = read_detections_mot(path)
        assert len(loaded) == 3
        assert len(loaded[0]) == 2
        assert loaded[1] == []
        assert loaded[2][0].confidence == pytest.approx(0.4, abs=1e-3)

    def test_tracks_runnable_after_read(self, tmp_path):
        """External detections feed the trackers like simulated ones."""
        from repro.track import IoUTracker
        from helpers import make_detection

        detections = [
            [make_detection(100 + 4 * t, 200)] for t in range(20)
        ]
        path = tmp_path / "det.txt"
        write_detections_mot(detections, path)
        loaded = read_detections_mot(path)
        tracks = IoUTracker().run(loaded)
        assert len(tracks) == 1


class TestGtExport:
    def test_world_gt_lines(self, tmp_path):
        world = tiny_world(n_frames=20, seed=3)
        path = tmp_path / "gt.txt"
        world_to_mot_gt(world, path)
        lines = path.read_text().strip().splitlines()
        total_states = sum(len(f) for f in world.frames)
        assert len(lines) == total_states
        first = lines[0].split(",")
        assert len(first) == 9
        assert float(first[8]) <= 1.0  # visibility column


class TestJsonResults:
    def test_merge_result_serializes(self):
        pairs, _ = planted_pairs(n_distinct=3)
        result = BaselineMerger(k=0.5).run(pairs, stub_scorer())
        payload = merge_result_to_dict(result)
        import json

        text = json.dumps(payload)
        assert result.method in text
        assert payload["n_pairs"] == len(pairs)
        assert len(payload["candidates"]) == len(result.candidates)

    def test_points_roundtrip(self, tmp_path):
        points = [
            MethodPoint("TMerge", 0.9, 42.0, 3.5, parameter=1000),
            MethodPoint("BL", 1.0, 5.0, 100.0),
        ]
        path = tmp_path / "points.json"
        save_points_json(points, path)
        loaded = load_points_json(path)
        assert loaded == points
