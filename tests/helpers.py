"""Shared test utilities: compact builders for tracks, detections, worlds."""

from __future__ import annotations

import numpy as np

from repro.detect import Detection
from repro.geometry import BBox
from repro.synth import SceneConfig, simulate_world
from repro.synth.world import VideoGroundTruth
from repro.track.base import Track


def make_detection(
    x: float = 0.0,
    y: float = 0.0,
    w: float = 50.0,
    h: float = 100.0,
    confidence: float = 0.9,
    source_id: int | None = 0,
    visibility: float = 1.0,
) -> Detection:
    """A detection with a box at top-left (x, y)."""
    return Detection(
        BBox.from_tlwh(x, y, w, h), confidence, source_id, visibility
    )


def make_track(
    track_id: int,
    frames: list[int],
    positions: list[tuple[float, float]] | None = None,
    source_id: int | None = 0,
    size: tuple[float, float] = (50.0, 100.0),
) -> Track:
    """A track with one observation per frame.

    Args:
        track_id: the TID.
        frames: observation frames (strictly increasing).
        positions: top-left corner per frame (default: drifting right).
        source_id: GT source recorded on every detection.
        size: box size.
    """
    if positions is None:
        positions = [(10.0 * f, 20.0) for f in frames]
    track = Track(track_id)
    for frame, (x, y) in zip(frames, positions):
        track.append(
            frame,
            make_detection(
                x, y, size[0], size[1], source_id=source_id
            ),
        )
    return track


def tiny_scene_config(**overrides) -> SceneConfig:
    """A small, fast scene for unit tests."""
    defaults = dict(
        width=640.0,
        height=480.0,
        spawn_rate=0.02,
        initial_objects=4,
        max_objects=8,
        min_track_length=30,
        max_track_length=120,
        person_size=(40.0, 80.0),
        n_static_occluders=1,
        occluder_size=(60.0, 200.0),
        glare_rate=1.0,
        appearance_dim=16,
        appearance_clusters=3,
    )
    defaults.update(overrides)
    return SceneConfig(**defaults)


def tiny_world(n_frames: int = 120, seed: int = 0, **overrides) -> VideoGroundTruth:
    """Simulate a small world for unit tests."""
    return simulate_world(tiny_scene_config(**overrides), n_frames, seed=seed)


class StubReidModel:
    """A controllable stand-in for SimReIDModel in algorithm tests.

    Features are deterministic functions of the detection's source id:
    same-source BBoxes map to identical (or mildly noisy) vectors, so
    same-source pairs have distance ~0 and different-source pairs ~sqrt(2).
    """

    def __init__(self, dim: int = 8, noise: float = 0.0, seed: int = 0):
        self.dim = dim
        self.noise = noise
        self._rng = np.random.default_rng(seed)
        self._latents: dict[object, np.ndarray] = {}

    def _latent(self, source_id) -> np.ndarray:
        if source_id not in self._latents:
            # Seed derived arithmetically (not via hash(), which is
            # randomized per process) so tests are fully deterministic.
            numeric = -1 if source_id is None else int(source_id)
            local = np.random.default_rng(90_001 + numeric * 7919)
            vec = local.normal(size=self.dim)
            self._latents[source_id] = vec / np.linalg.norm(vec)
        return self._latents[source_id]

    def extract(self, detection) -> np.ndarray:
        latent = self._latent(detection.source_id)
        if self.noise == 0.0:
            return latent.copy()
        noisy = latent + self._rng.normal(0, self.noise, size=self.dim)
        return noisy / np.linalg.norm(noisy)


def stub_scorer(noise: float = 0.0, seed: int = 0):
    """A ReidScorer over a StubReidModel with a fresh cost clock."""
    from repro.reid import CostModel, ReidScorer

    return ReidScorer(StubReidModel(noise=noise, seed=seed), cost=CostModel())


def planted_pairs(n_distinct: int = 8, track_len: int = 6):
    """A pair set with exactly one polyonymous pair planted.

    Tracks 0..n-1 view distinct sources; track n re-views source 0 after a
    temporal gap.  Returns (pairs, planted_key).
    """
    from repro.core.pairs import build_track_pairs

    tracks = [
        make_track(
            i,
            list(range(track_len)),
            positions=[(100.0 * i + 5 * f, 50.0) for f in range(track_len)],
            source_id=i,
        )
        for i in range(n_distinct)
    ]
    fragment = make_track(
        n_distinct,
        list(range(track_len + 3, 2 * track_len + 3)),
        positions=[(30.0 + 5 * f, 52.0) for f in range(track_len)],
        source_id=0,
    )
    tracks.append(fragment)
    pairs = build_track_pairs(tracks)
    return pairs, (0, n_distinct)
