"""Unit tests for repro.core.pairs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from helpers import make_track

from repro.core.pairs import TrackPair, build_track_pairs, spatial_distance


class TestTrackPair:
    def test_canonical_ordering(self):
        a = make_track(5, [0, 1, 2])
        b = make_track(2, [10, 11])
        pair = TrackPair(a, b)
        assert pair.key == (2, 5)
        assert pair.track_a.track_id == 2

    def test_self_pair_rejected(self):
        a = make_track(1, [0, 1])
        b = make_track(1, [5, 6])
        with pytest.raises(ValueError):
            TrackPair(a, b)

    def test_empty_track_rejected(self):
        from repro.track.base import Track

        with pytest.raises(ValueError):
            TrackPair(make_track(0, [0, 1]), Track(1))

    def test_n_bbox_pairs(self):
        pair = TrackPair(make_track(0, [0, 1, 2]), make_track(1, [5, 6]))
        assert pair.n_bbox_pairs == 6

    def test_all_bbox_index_pairs(self):
        pair = TrackPair(make_track(0, [0, 1]), make_track(1, [5, 6, 7]))
        pairs = pair.all_bbox_index_pairs()
        assert len(pairs) == 6
        assert len(set(pairs)) == 6
        assert all(0 <= ia < 2 and 0 <= ib < 3 for ia, ib in pairs)


class TestSamplingWithoutReplacement:
    def test_exhaustive_coverage(self):
        pair = TrackPair(make_track(0, [0, 1, 2]), make_track(1, [5, 6]))
        rng = np.random.default_rng(0)
        drawn = {pair.sample_bbox_pair(rng) for _ in range(6)}
        assert drawn == set(pair.all_bbox_index_pairs())
        assert pair.exhausted

    def test_exhausted_raises(self):
        pair = TrackPair(make_track(0, [0]), make_track(1, [5]))
        rng = np.random.default_rng(0)
        pair.sample_bbox_pair(rng)
        with pytest.raises(RuntimeError):
            pair.sample_bbox_pair(rng)

    def test_bulk_sampling_stops_at_pool(self):
        pair = TrackPair(make_track(0, [0, 1]), make_track(1, [5, 6]))
        rng = np.random.default_rng(0)
        draws = pair.sample_bbox_pairs(100, rng)
        assert len(draws) == 4
        assert pair.exhausted

    def test_bulk_negative_rejected(self):
        pair = TrackPair(make_track(0, [0]), make_track(1, [5]))
        with pytest.raises(ValueError):
            pair.sample_bbox_pairs(-1, np.random.default_rng(0))

    def test_reset(self):
        pair = TrackPair(make_track(0, [0]), make_track(1, [5]))
        rng = np.random.default_rng(0)
        pair.sample_bbox_pair(rng)
        pair.reset_sampling()
        assert pair.n_sampled == 0
        assert not pair.exhausted
        pair.sample_bbox_pair(rng)


class TestSpatialDistance:
    def test_earlier_exit_to_later_entry(self):
        # Track A ends at (100, 20); track B starts at (140, 50).
        a = make_track(0, [0, 1], positions=[(0, 20), (100, 20)])
        b = make_track(1, [10, 11], positions=[(140, 50), (200, 50)])
        expected = np.hypot(40.0, 30.0)
        assert spatial_distance(a, b) == pytest.approx(expected)

    def test_symmetric_in_argument_order(self):
        a = make_track(0, [0, 1], positions=[(0, 0), (10, 0)])
        b = make_track(1, [5, 6], positions=[(50, 0), (60, 0)])
        assert spatial_distance(a, b) == spatial_distance(b, a)

    def test_pair_property(self):
        a = make_track(0, [0, 1], positions=[(0, 0), (10, 0)])
        b = make_track(1, [5, 6], positions=[(10, 0), (20, 0)])
        assert TrackPair(a, b).spatial_distance == pytest.approx(0.0)


class TestBuildTrackPairs:
    def test_eq1_counts(self):
        current = [make_track(i, [i, i + 1]) for i in range(4)]
        previous = [make_track(10 + i, [0, 1]) for i in range(3)]
        pairs = build_track_pairs(current, previous)
        # C(4,2) intra + 4*3 cross = 6 + 12.
        assert len(pairs) == 18
        keys = {p.key for p in pairs}
        assert len(keys) == 18

    def test_no_previous(self):
        current = [make_track(i, [0, 1]) for i in range(3)]
        assert len(build_track_pairs(current)) == 3

    def test_no_previous_previous_pairs(self):
        current = [make_track(0, [0, 1])]
        previous = [make_track(1, [0, 1]), make_track(2, [0, 1])]
        pairs = build_track_pairs(current, previous)
        keys = {p.key for p in pairs}
        # Pairs among previous tracks only are NOT included (they were
        # already considered in the previous window).
        assert (1, 2) not in keys
        assert keys == {(0, 1), (0, 2)}

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            build_track_pairs([make_track(0, [0, 1]), make_track(0, [2, 3])])

    def test_shared_ids_across_windows_rejected(self):
        with pytest.raises(ValueError):
            build_track_pairs(
                [make_track(0, [0, 1])], [make_track(0, [5, 6])]
            )

    def test_empty_current(self):
        assert build_track_pairs([], [make_track(0, [0, 1])]) == []


@settings(max_examples=30, deadline=None)
@given(
    n_a=st.integers(1, 8),
    n_b=st.integers(1, 8),
    seed=st.integers(0, 1000),
)
def test_sampling_yields_every_pair_exactly_once(n_a, n_b, seed):
    pair = TrackPair(
        make_track(0, list(range(n_a))),
        make_track(1, list(range(100, 100 + n_b))),
    )
    rng = np.random.default_rng(seed)
    draws = pair.sample_bbox_pairs(n_a * n_b + 10, rng)
    assert len(draws) == n_a * n_b
    assert len(set(draws)) == n_a * n_b
