"""Unit tests for repro.synth.motion."""

import math

import numpy as np
import pytest

from repro.synth.motion import ConstantVelocity, RandomWalk, WaypointPath


class TestConstantVelocity:
    def test_positions(self):
        motion = ConstantVelocity((10.0, 20.0), (2.0, -1.0))
        assert motion.position(0) == (10.0, 20.0)
        assert motion.position(5) == (20.0, 15.0)

    def test_zero_velocity(self):
        motion = ConstantVelocity((3.0, 4.0), (0.0, 0.0))
        assert motion.position(100) == (3.0, 4.0)


class TestRandomWalk:
    def test_generate_starts_at_start(self):
        walk = RandomWalk.generate(
            (5.0, 6.0), steps=50, rng=np.random.default_rng(0)
        )
        assert walk.position(0) == (5.0, 6.0)

    def test_length_and_clamping(self):
        walk = RandomWalk.generate(
            (0.0, 0.0), steps=10, rng=np.random.default_rng(1)
        )
        assert len(walk.path) == 10
        # Querying past the horizon holds the last position.
        assert walk.position(100) == walk.path[-1]
        # Negative steps clamp to the start.
        assert walk.position(-5) == walk.path[0]

    def test_reproducible_with_seed(self):
        a = RandomWalk.generate((0, 0), 20, np.random.default_rng(42))
        b = RandomWalk.generate((0, 0), 20, np.random.default_rng(42))
        assert a.path == b.path

    def test_step_scale_controls_spread(self):
        slow = RandomWalk.generate(
            (0, 0), 200, np.random.default_rng(3), step_scale=0.5
        )
        fast = RandomWalk.generate(
            (0, 0), 200, np.random.default_rng(3), step_scale=10.0
        )
        def spread(walk):
            xs = [p[0] for p in walk.path]
            ys = [p[1] for p in walk.path]
            return max(xs) - min(xs) + max(ys) - min(ys)
        assert spread(fast) > spread(slow)

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            RandomWalk.generate((0, 0), 0, np.random.default_rng(0))


class TestWaypointPath:
    def test_endpoint_interpolation(self):
        path = WaypointPath(((0.0, 0.0), (10.0, 0.0)), speed=1.0)
        assert path.position(0) == (0.0, 0.0)
        assert path.position(5) == (5.0, 0.0)
        assert path.position(10) == (10.0, 0.0)
        # Past the last waypoint the object parks there.
        assert path.position(50) == (10.0, 0.0)

    def test_multi_segment(self):
        path = WaypointPath(
            ((0.0, 0.0), (3.0, 4.0), (3.0, 14.0)), speed=1.0
        )
        # First segment has length 5; position at step 5 is its end.
        assert path.position(5) == pytest.approx((3.0, 4.0))
        # Step 10 is 5 units into the second (vertical) segment.
        assert path.position(10) == pytest.approx((3.0, 9.0))

    def test_speed_scales_progress(self):
        slow = WaypointPath(((0.0, 0.0), (100.0, 0.0)), speed=1.0)
        fast = WaypointPath(((0.0, 0.0), (100.0, 0.0)), speed=4.0)
        assert fast.position(10)[0] == pytest.approx(4 * slow.position(10)[0])

    def test_requires_two_waypoints(self):
        with pytest.raises(ValueError):
            WaypointPath(((0.0, 0.0),), speed=1.0)

    def test_requires_positive_speed(self):
        with pytest.raises(ValueError):
            WaypointPath(((0.0, 0.0), (1.0, 1.0)), speed=0.0)
