"""Unit tests for repro.track.base data structures."""

import pytest

from helpers import make_detection, make_track

from repro.track.base import Track, TrackObservation


class TestTrack:
    def test_append_increasing_frames(self):
        track = Track(0)
        track.append(3, make_detection())
        track.append(5, make_detection())
        assert track.frames == [3, 5]

    def test_append_non_increasing_rejected(self):
        track = Track(0)
        track.append(3, make_detection())
        with pytest.raises(ValueError):
            track.append(3, make_detection())
        with pytest.raises(ValueError):
            track.append(2, make_detection())

    def test_empty_track_properties_raise(self):
        track = Track(0)
        with pytest.raises(ValueError):
            _ = track.first_frame
        with pytest.raises(ValueError):
            _ = track.last_frame

    def test_len_and_bboxes(self):
        track = make_track(0, [0, 1, 2])
        assert len(track) == 3
        assert len(track.bboxes) == 3

    def test_dominant_source_majority(self):
        track = Track(0)
        track.append(0, make_detection(source_id=1))
        track.append(1, make_detection(source_id=2))
        track.append(2, make_detection(source_id=2))
        assert track.dominant_source() == 2

    def test_dominant_source_majority_clutter_is_none(self):
        """Clutter participates in the vote: a mostly-false-positive track
        has no credible GT identity."""
        track = Track(0)
        track.append(0, make_detection(source_id=None))
        track.append(1, make_detection(source_id=None))
        track.append(2, make_detection(source_id=4))
        assert track.dominant_source() is None

    def test_dominant_source_real_plurality_wins(self):
        track = Track(0)
        track.append(0, make_detection(source_id=None))
        track.append(1, make_detection(source_id=4))
        track.append(2, make_detection(source_id=4))
        assert track.dominant_source() == 4

    def test_dominant_source_all_clutter(self):
        track = Track(0)
        track.append(0, make_detection(source_id=None))
        assert track.dominant_source() is None

    def test_dominant_source_empty(self):
        assert Track(0).dominant_source() is None

    def test_overlaps_frames(self):
        a = make_track(0, [0, 1, 2, 3])
        b = make_track(1, [3, 4])
        c = make_track(2, [10, 11])
        assert a.overlaps_frames(b)
        assert b.overlaps_frames(a)
        assert not a.overlaps_frames(c)


class TestTrackObservation:
    def test_bbox_shortcut(self):
        detection = make_detection(10, 20, 30, 40)
        obs = TrackObservation(5, detection)
        assert obs.bbox is detection.bbox
        assert obs.frame == 5
