"""Unit tests for repro.reid.cost."""

import pytest
from hypothesis import given, strategies as st

from repro.reid import CostModel, CostParams


class TestCostParams:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostParams(extract_ms=-1.0)
        with pytest.raises(ValueError):
            CostParams(distance_ms=-0.1)


class TestCostModel:
    def test_starts_at_zero(self):
        cost = CostModel()
        assert cost.seconds == 0.0
        assert cost.n_extractions == 0

    def test_extract_charges(self):
        cost = CostModel(CostParams(extract_ms=5.0))
        cost.charge_extract(10)
        assert cost.milliseconds == pytest.approx(50.0)
        assert cost.n_extractions == 10

    def test_distance_charges(self):
        cost = CostModel(CostParams(distance_ms=0.5))
        cost.charge_distance(100)
        assert cost.milliseconds == pytest.approx(50.0)
        assert cost.n_distances == 100

    def test_overhead_charges(self):
        cost = CostModel(CostParams(overhead_ms=0.1))
        cost.charge_overhead(10)
        assert cost.milliseconds == pytest.approx(1.0)

    def test_batched_amortization(self):
        params = CostParams(batch_launch_ms=4.0, batch_item_ms=0.5)
        cost = CostModel(params)
        cost.charge_extract_batched(100, batch_size=20)
        # 5 launches + 100 items
        assert cost.milliseconds == pytest.approx(5 * 4.0 + 100 * 0.5)
        assert cost.n_batch_calls == 5
        assert cost.n_batched_extractions == 100

    def test_batched_partial_batch(self):
        cost = CostModel(CostParams(batch_launch_ms=4.0, batch_item_ms=0.5))
        cost.charge_extract_batched(7, batch_size=20)
        assert cost.n_batch_calls == 1
        assert cost.milliseconds == pytest.approx(4.0 + 7 * 0.5)

    def test_batched_cheaper_than_unbatched_at_scale(self):
        params = CostParams()
        single = CostModel(params)
        single.charge_extract(1000)
        batched = CostModel(params)
        batched.charge_extract_batched(1000, batch_size=100)
        assert batched.seconds < single.seconds

    def test_batched_zero_count_free(self):
        cost = CostModel()
        cost.charge_extract_batched(0, batch_size=10)
        assert cost.seconds == 0.0
        assert cost.n_batch_calls == 0

    def test_invalid_args(self):
        cost = CostModel()
        with pytest.raises(ValueError):
            cost.charge_extract(-1)
        with pytest.raises(ValueError):
            cost.charge_extract_batched(5, batch_size=0)
        with pytest.raises(ValueError):
            cost.charge_distance(-2)

    def test_reset(self):
        cost = CostModel()
        cost.charge_extract(5)
        cost.charge_distance(5)
        cost.reset()
        assert cost.seconds == 0.0
        assert cost.n_extractions == 0
        assert cost.n_distances == 0

    def test_snapshot_keys(self):
        cost = CostModel()
        cost.charge_extract(1)
        snap = cost.snapshot()
        assert set(snap) == {
            "seconds",
            "extractions",
            "batched_extractions",
            "batch_calls",
            "distances",
            "waits",
            "wait_ms",
        }


@given(
    count=st.integers(0, 10_000),
    batch=st.integers(1, 512),
)
def test_batch_call_count_is_ceiling(count, batch):
    cost = CostModel()
    cost.charge_extract_batched(count, batch_size=batch)
    expected_calls = -(-count // batch) if count else 0
    assert cost.n_batch_calls == expected_calls
