"""Unit tests for repro.synth.world and repro.synth.datasets."""

import numpy as np
import pytest

from helpers import tiny_scene_config, tiny_world

from repro.synth import (
    make_dataset,
    mot17_like,
    kitti_like,
    pathtrack_like,
    simulate_world,
)
from repro.synth.datasets import preset_by_name
from repro.synth.motion import ConstantVelocity
from repro.synth.objects import GroundTruthObject, ObjectClass
from repro.synth.world import simulate_world as _simulate


class TestSimulateWorld:
    def test_frame_count(self):
        world = tiny_world(n_frames=50)
        assert world.n_frames == 50
        assert len(world.frames) == 50

    def test_states_within_image(self):
        world = tiny_world(n_frames=100, seed=3)
        for states in world.frames:
            for state in states:
                assert 0 <= state.bbox.x1 <= state.bbox.x2 <= world.config.width
                assert 0 <= state.bbox.y1 <= state.bbox.y2 <= world.config.height

    def test_visibility_in_unit_interval(self):
        world = tiny_world(n_frames=100, seed=4)
        for states in world.frames:
            for state in states:
                assert 0.0 <= state.visibility <= 1.0

    def test_deterministic_with_seed(self):
        a = tiny_world(n_frames=60, seed=9)
        b = tiny_world(n_frames=60, seed=9)
        assert len(a.objects) == len(b.objects)
        for frame_a, frame_b in zip(a.frames, b.frames):
            assert [s.object_id for s in frame_a] == [
                s.object_id for s in frame_b
            ]

    def test_different_seeds_differ(self):
        a = tiny_world(n_frames=60, seed=1)
        b = tiny_world(n_frames=60, seed=2)
        assert len(a.objects) != len(b.objects) or any(
            [s.object_id for s in fa] != [s.object_id for s in fb]
            for fa, fb in zip(a.frames, b.frames)
        )

    def test_invalid_frames(self):
        with pytest.raises(ValueError):
            simulate_world(tiny_scene_config(), 0)

    def test_extra_objects_appear(self):
        config = tiny_scene_config(initial_objects=0, spawn_rate=0.0)
        rng = np.random.default_rng(0)
        extra = GroundTruthObject(
            object_id=500,
            object_class=ObjectClass.PERSON,
            spawn_frame=0,
            lifetime=40,
            size=(40.0, 80.0),
            motion=ConstantVelocity((300.0, 300.0), (0.0, 0.0)),
            appearance=np.ones(config.appearance_dim)
            / np.sqrt(config.appearance_dim),
        )
        world = simulate_world(config, 40, seed=0, extra_objects=[extra])
        seen = {s.object_id for frame in world.frames for s in frame}
        assert seen == {500}

    def test_duplicate_extra_object_rejected(self):
        config = tiny_scene_config(initial_objects=1, spawn_rate=0.0)
        base = simulate_world(config, 5, seed=0)
        existing_id = next(iter(base.objects))
        dup = base.objects[existing_id]
        with pytest.raises(ValueError):
            simulate_world(config, 5, seed=0, extra_objects=[dup])

    def test_gt_track_spans(self):
        world = tiny_world(n_frames=80, seed=5)
        spans = world.gt_track_spans()
        for oid, (first, last) in spans.items():
            assert 0 <= first <= last < world.n_frames
            # Object appears at both endpoints.
            assert any(s.object_id == oid for s in world.frames[first])
            assert any(s.object_id == oid for s in world.frames[last])

    def test_states_for(self):
        world = tiny_world(n_frames=80, seed=6)
        oid = next(iter(world.objects))
        entries = world.states_for(oid)
        frames = [f for f, _ in entries]
        assert frames == sorted(frames)
        assert all(s.object_id == oid for _, s in entries)

    def test_population_respects_cap(self):
        world = tiny_world(n_frames=150, seed=8, max_objects=5, spawn_rate=0.5)
        for states in world.frames:
            assert len(states) <= 5 + 0  # cap applies to alive objects


class TestDatasets:
    def test_presets_exist(self):
        for factory in (mot17_like, kitti_like, pathtrack_like):
            preset = factory()
            assert preset.video_frames > 0
            assert preset.default_window >= 2 * 0
            # Window constraint from §II: L >= 2 * L_max is respected by
            # mot17 and kitti defaults.
        assert mot17_like().default_window >= 2 * mot17_like().config.l_max

    def test_preset_by_name(self):
        assert preset_by_name("mot17").name == "mot17"
        with pytest.raises(KeyError):
            preset_by_name("imagenet")

    def test_make_dataset_scaled(self):
        videos = make_dataset("kitti", n_videos=2, video_frames=40, seed=5)
        assert len(videos) == 2
        assert all(v.n_frames == 40 for v in videos)
        # Different seeds => different worlds.
        assert len(videos[0].objects) != len(videos[1].objects) or any(
            [s.object_id for s in fa] != [s.object_id for s in fb]
            for fa, fb in zip(videos[0].frames, videos[1].frames)
        )
