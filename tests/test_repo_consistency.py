"""Meta-tests: the documentation's claims about the repository hold.

These guard against docs drifting from code: every bench DESIGN.md's
experiment index references must exist, every README example must exist
and be runnable-looking, and the public API exports everything __all__
promises.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestDesignDocument:
    def test_referenced_benches_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        benches = set(re.findall(r"benchmarks/(test_\w+\.py)", text))
        assert benches, "DESIGN.md should reference bench files"
        for bench in benches:
            assert (REPO / "benchmarks" / bench).exists(), bench

    def test_paper_match_confirmed(self):
        text = (REPO / "DESIGN.md").read_text()
        assert "matches the target paper" in text


class TestReadme:
    def test_examples_exist(self):
        text = (REPO / "README.md").read_text()
        scripts = set(re.findall(r"`(\w+\.py)`", text))
        example_files = {p.name for p in (REPO / "examples").glob("*.py")}
        referenced_examples = scripts & example_files | {
            s for s in scripts if (REPO / "examples" / s).exists()
        }
        assert "quickstart.py" in referenced_examples
        # Every example on disk is documented.
        for name in example_files:
            assert name in text, f"{name} missing from README"

    def test_bench_table_complete(self):
        text = (REPO / "README.md").read_text()
        for bench in (REPO / "benchmarks").glob("test_*.py"):
            assert bench.name in text, f"{bench.name} missing from README"


class TestPublicApi:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        import importlib

        for package in (
            "repro.geometry",
            "repro.synth",
            "repro.detect",
            "repro.track",
            "repro.reid",
            "repro.bandit",
            "repro.core",
            "repro.metrics",
            "repro.query",
            "repro.experiments",
            "repro.io",
            "repro.analysis",
            "repro.lint",
            "repro.parallel",
            "repro.provenance",
            "repro.streaming",
        ):
            module = importlib.import_module(package)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{package}.{name}"

    def test_public_callables_documented(self):
        """Every public class/function in the top-level API has a docstring."""
        import repro

        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj):
                assert obj.__doc__, f"{name} lacks a docstring"


class TestNoCompiledArtifacts:
    """Compiled/caching artifacts must never be committed (PR 6 tracked
    87 ``.pyc`` files by accident; this is the regression stop)."""

    BANNED = ("__pycache__", ".pyc", ".pyo", ".pytest_cache", ".hypothesis")

    def _tracked_files(self):
        import subprocess

        try:
            out = subprocess.run(
                ["git", "ls-files"],
                cwd=REPO,
                capture_output=True,
                text=True,
                check=True,
            ).stdout
        except (OSError, subprocess.CalledProcessError):
            pytest.skip("git unavailable")
        return out.splitlines()

    def test_no_compiled_artifacts_tracked(self):
        offenders = [
            path
            for path in self._tracked_files()
            if any(marker in path for marker in self.BANNED)
        ]
        assert not offenders, (
            f"compiled artifacts tracked by git: {offenders[:5]} "
            f"(+{max(0, len(offenders) - 5)} more) — "
            "remove them and keep .gitignore covering them"
        )

    def test_gitignore_covers_artifacts(self):
        text = (REPO / ".gitignore").read_text()
        for pattern in ("__pycache__/", ".pytest_cache/", ".hypothesis/",
                        ".benchmarks/"):
            assert pattern in text, f".gitignore missing {pattern}"
        assert "*.py[cod]" in text or "*.pyc" in text


class TestLinter:
    """The repo's own linter passes on the repo's own code."""

    def test_src_repro_is_lint_clean(self):
        from repro.lint import lint_paths

        report = lint_paths([REPO / "src" / "repro"])
        rendered = "\n".join(v.render() for v in report.violations)
        assert report.ok, f"lint violations in src/repro:\n{rendered}"
        assert report.files_checked > 50

    def test_tests_and_benchmarks_are_lint_clean(self):
        from repro.lint import lint_paths

        report = lint_paths([REPO / "tests", REPO / "benchmarks"])
        rendered = "\n".join(v.render() for v in report.violations)
        assert report.ok, f"lint violations:\n{rendered}"


class TestExperimentsDocument:
    def test_every_figure_covered(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for fig in range(3, 14):
            assert f"Figure {fig}" in text, f"Figure {fig} missing"
        assert "Table II" in text
