"""Chaos smoke for the CI fault-injection matrix.

The workflow's ``chaos`` job runs this module once per shipped fault
profile with ``REPRO_FAULT_PROFILE=<name>`` (and runtime contracts on);
locally it defaults to ``flaky-reid``.  The assertion is deliberately
coarse — the pipeline must *complete* end to end under the profile and
produce structurally valid output — because the precise behaviours
(retry accounting, bit-exact resume, degradation floors) are pinned down
in ``test_resilience.py``.
"""

import os

import pytest

from repro.core.pipeline import IngestionPipeline
from repro.core.tmerge import TMerge
from repro.faults import fault_profile
from repro.resilience import CheckpointStore
from repro.track import TracktorTracker

PROFILE_NAME = os.environ.get("REPRO_FAULT_PROFILE", "flaky-reid")


def test_pipeline_survives_profile(scenario_world):
    profile = fault_profile(PROFILE_NAME, seed=13)
    pipeline = IngestionPipeline(
        tracker=TracktorTracker(),
        merger=TMerge(
            k=0.1,
            tau_max=300,
            batch_size=10,
            seed=3,
            checkpoint_interval=25,
            checkpoint_store=CheckpointStore(),
        ),
        window_length=300,
        fault_profile=profile,
    )
    result = pipeline.run(scenario_world)

    assert len(result.detections) == scenario_world.n_frames
    assert len(result.window_results) == len(result.windows)
    for window_result in result.window_results:
        assert all(0.0 <= v <= 1.0 for v in window_result.scores.values())
        assert len(window_result.candidates) <= window_result.n_pairs
    assert set(result.id_map) == {t.track_id for t in result.tracks}
    assert result.cost.seconds >= 0.0


def test_profile_run_is_reproducible(scenario_world):
    def run():
        pipeline = IngestionPipeline(
            tracker=TracktorTracker(),
            merger=TMerge(k=0.1, tau_max=200, batch_size=10, seed=3),
            window_length=300,
            fault_profile=fault_profile(PROFILE_NAME, seed=13),
        )
        result = pipeline.run(scenario_world)
        return (
            [r.candidate_keys for r in result.window_results],
            result.cost.seconds,
        )

    assert run() == run()
