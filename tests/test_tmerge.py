"""Unit tests for Algorithm 2 (TMerge) and Algorithm 3 (BetaInit)."""

import numpy as np
import pytest

from helpers import make_track, planted_pairs, stub_scorer

from repro.core.beta_init import beta_init
from repro.core.pairs import TrackPair, build_track_pairs
from repro.core.results import top_k_count
from repro.core.tmerge import TMerge


class TestBetaInit:
    def test_disabled_gives_uniform_priors(self):
        pairs, _ = planted_pairs()
        successes, failures = beta_init(pairs, None)
        assert (successes == 1.0).all()
        assert (failures == 1.0).all()

    def test_near_pairs_get_lower_prior_mean(self):
        close_a = make_track(0, [0, 1], positions=[(0, 0), (10, 0)])
        close_b = make_track(1, [5, 6], positions=[(15, 0), (25, 0)])
        far_c = make_track(2, [5, 6], positions=[(900, 0), (910, 0)])
        pairs = build_track_pairs([close_a, close_b, far_c])
        successes, failures = beta_init(pairs, thr_s=100.0)
        by_key = {p.key: i for i, p in enumerate(pairs)}
        assert failures[by_key[(0, 1)]] == 2.0  # spatially close
        assert failures[by_key[(0, 2)]] == 1.0  # far
        assert (successes == 1.0).all()

    def test_negative_threshold_rejected(self):
        pairs, _ = planted_pairs()
        with pytest.raises(ValueError):
            beta_init(pairs, thr_s=-5.0)

    def test_empty_pairs(self):
        successes, failures = beta_init([], 100.0)
        assert successes.shape == (0,)


class TestTMergeValidation:
    def test_parameter_checks(self):
        with pytest.raises(ValueError):
            TMerge(k=2.0)
        with pytest.raises(ValueError):
            TMerge(tau_max=0)
        with pytest.raises(ValueError):
            TMerge(batch_size=0)
        with pytest.raises(ValueError):
            TMerge(posterior="dirichlet")
        with pytest.raises(ValueError):
            TMerge(ulb_interval=0)

    def test_names(self):
        assert TMerge().name == "TMerge"
        assert TMerge(batch_size=10).name == "TMerge-B10"
        assert TMerge(posterior="gaussian").name == "TMerge-G"
        assert TMerge(posterior="gaussian", batch_size=5).name == "TMerge-G-B5"


class TestTMergeBehaviour:
    def test_finds_planted_pair(self):
        pairs, planted = planted_pairs()
        result = TMerge(
            k=1.0 / len(pairs), tau_max=600, seed=0
        ).run(pairs, stub_scorer())
        assert result.candidates[0].key == planted

    def test_deterministic_with_seed(self):
        pairs, _ = planted_pairs()
        a = TMerge(k=0.2, tau_max=300, seed=5).run(pairs, stub_scorer())
        for pair in pairs:
            pair.reset_sampling()
        b = TMerge(k=0.2, tau_max=300, seed=5).run(pairs, stub_scorer())
        assert a.candidate_keys == b.candidate_keys
        assert a.scores == b.scores

    def test_candidate_budget(self):
        pairs, _ = planted_pairs()
        result = TMerge(k=0.25, tau_max=200, seed=0).run(pairs, stub_scorer())
        assert len(result.candidates) == top_k_count(len(pairs), 0.25)

    def test_iteration_budget(self):
        pairs, _ = planted_pairs()
        result = TMerge(k=0.1, tau_max=123, seed=0).run(pairs, stub_scorer())
        assert result.iterations == 123

    def test_focuses_sampling_on_planted_pair(self):
        pairs, planted = planted_pairs(track_len=12)  # pools of 144
        TMerge(k=0.1, tau_max=500, seed=1, use_ulb=False).run(
            pairs, stub_scorer()
        )
        by_key = {p.key: p for p in pairs}
        planted_draws = by_key[planted].n_sampled
        others = [p.n_sampled for p in pairs if p.key != planted]
        assert planted_draws == max(p.n_sampled for p in pairs)
        assert planted_draws > 3 * np.mean(others)

    def test_exhausted_pairs_stop_being_sampled(self):
        pairs, _ = planted_pairs(n_distinct=3, track_len=2)
        total_pool = sum(p.n_bbox_pairs for p in pairs)
        result = TMerge(k=0.5, tau_max=10 * total_pool, seed=0).run(
            pairs, stub_scorer()
        )
        assert all(p.n_sampled <= p.n_bbox_pairs for p in pairs)
        # Loop terminates early once every arm is exhausted or pruned.
        assert result.iterations <= 10 * total_pool

    def test_batched_selects_distinct_arms(self):
        pairs, planted = planted_pairs()
        scorer = stub_scorer()
        result = TMerge(
            k=1.0 / len(pairs), tau_max=60, batch_size=8, seed=0
        ).run(pairs, scorer)
        assert result.candidates[0].key == planted
        assert scorer.cost.n_batched_extractions > 0
        assert scorer.cost.n_extractions == 0

    def test_gaussian_posterior_variant(self):
        pairs, planted = planted_pairs()
        result = TMerge(
            k=1.0 / len(pairs), tau_max=400, posterior="gaussian", seed=0
        ).run(pairs, stub_scorer())
        assert result.candidates[0].key == planted

    def test_regret_tracking(self):
        pairs, _ = planted_pairs()
        result = TMerge(k=0.1, tau_max=200, seed=0, s_min=0.0).run(
            pairs, stub_scorer()
        )
        assert "average_regret" in result.extra
        assert result.extra["average_regret"] >= 0.0

    def test_regret_decreases_with_budget(self):
        # Pools must be large enough that the best arm is not exhausted
        # (the §IV-E analysis assumes an unlimited observation stream).
        pairs, _ = planted_pairs(track_len=25)  # pools of 625
        short = TMerge(k=0.1, tau_max=80, seed=2, s_min=0.0).run(
            pairs, stub_scorer()
        )
        for pair in pairs:
            pair.reset_sampling()
        long = TMerge(k=0.1, tau_max=500, seed=2, s_min=0.0).run(
            pairs, stub_scorer()
        )
        assert (
            long.extra["average_regret"] <= short.extra["average_regret"]
        )

    def test_ablation_flags_run(self):
        pairs, planted = planted_pairs()
        no_init = TMerge(
            k=1.0 / len(pairs), tau_max=600, thr_s=None, seed=0
        ).run(pairs, stub_scorer())
        for pair in pairs:
            pair.reset_sampling()
        no_ulb = TMerge(
            k=1.0 / len(pairs), tau_max=600, use_ulb=False, seed=0
        ).run(pairs, stub_scorer())
        assert no_init.candidates[0].key == planted
        assert no_ulb.candidates[0].key == planted
        assert no_ulb.extra["ulb_accepted"] == 0.0

    def test_ulb_prunes_on_clean_separation(self):
        # ULB acceptance needs EVERY rival's lower bound above the best
        # arm's upper bound, so it only fires when rivals are few and all
        # well-sampled: a 3-arm instance with large pools and zero noise.
        pairs, planted = planted_pairs(n_distinct=2, track_len=20)
        assert len(pairs) == 3
        result = TMerge(
            k=1.0 / len(pairs),
            tau_max=3000,
            seed=0,
            ulb_interval=10,
        ).run(pairs, stub_scorer())
        assert result.extra["ulb_accepted"] >= 1.0
        assert result.candidates[0].key == planted

    def test_empty_pairs(self):
        result = TMerge(k=0.1, tau_max=10).run([], stub_scorer())
        assert result.candidates == []
        assert result.n_pairs == 0

    def test_scores_cover_all_pairs(self):
        pairs, _ = planted_pairs()
        result = TMerge(k=0.1, tau_max=100, seed=0).run(pairs, stub_scorer())
        assert set(result.scores) == {p.key for p in pairs}
        assert all(0.0 <= v <= 1.0 for v in result.scores.values())
