"""Whole-program flow analysis: fixtures, kernel properties, contracts.

Covers the four layers of ``repro.lint.flow`` plus the CLI:

* golden tests over the ``tests/fixtures/flow`` mini-package (one
  module per effect class, seam-exempted cases, clean/dirty roots);
* the :func:`repro.lint.flow.propagate` kernel — hand cases plus the
  hypothesis property that adding a call edge never *removes* inferred
  effects (monotonicity);
* chain rendering and baseline round-trips;
* the seeded regression: a ``time.time()`` planted three calls below
  ``run_windows`` must surface with the full call chain;
* the repo-wide guarantee that ``--flow src`` is clean modulo the
  committed baseline.
"""

from __future__ import annotations

import ast
import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.lint.cli import main as lint_main
from repro.lint.engine import SKIP_DIRS, iter_python_files
from repro.lint.flow import (
    ALL_EFFECTS,
    DEFAULT_BASELINE_PATH,
    DIAGNOSTICS,
    Baseline,
    ContractSpec,
    EffectOrigin,
    FlowAnalysis,
    FlowViolation,
    check_contracts,
    propagate,
    split_by_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE_SRC = REPO_ROOT / "tests" / "fixtures" / "flow" / "src"

DIRTY_ROOT = "repro.flowfix.entry.dirty_entry"
CLEAN_ROOT = "repro.flowfix.entry.clean_entry"


@pytest.fixture(scope="module")
def fixture_analysis() -> FlowAnalysis:
    """The fixture mini-package, analyzed once per test module."""
    return FlowAnalysis.build([FIXTURE_SRC])


class TestFixtureEffects:
    """Golden direct-effect expectations, one module per effect class."""

    @pytest.mark.parametrize(
        ("qualname", "effect", "detail"),
        [
            ("repro.flowfix.wall.stamp", "WALL_CLOCK", "time.perf_counter"),
            (
                "repro.flowfix.rng.ambient",
                "RNG_CREATE",
                "np.random.default_rng()",
            ),
            (
                "repro.flowfix.rng.constant_seeded",
                "RNG_CREATE",
                "np.random.default_rng(<constant seed>)",
            ),
            ("repro.flowfix.state.remember", "GLOBAL_MUTATE", "_CACHE store"),
            ("repro.flowfix.envio.env_flag", "ENV_READ", "os.environ"),
            ("repro.flowfix.envio.load", "FILE_IO", "open"),
            (
                "repro.flowfix.iteration.first_arm",
                "UNORDERED_ITER",
                "iter(set)",
            ),
        ],
    )
    def test_direct_effect(
        self,
        fixture_analysis: FlowAnalysis,
        qualname: str,
        effect: str,
        detail: str,
    ) -> None:
        """Each fixture function carries exactly its designed effect."""
        unit = fixture_analysis.functions[qualname]
        assert [(o.effect, o.detail) for o in unit.direct_effects] == [
            (effect, detail)
        ]

    @pytest.mark.parametrize(
        "qualname",
        [
            "repro.flowfix.clean.draw",
            "repro.flowfix.clean.scale",
            "repro.flowfix.rng.seeded",
            "repro.flowfix.iteration.sorted_arms",
        ],
    )
    def test_clean_functions(
        self, fixture_analysis: FlowAnalysis, qualname: str
    ) -> None:
        """Clean and seam-exempted fixtures infer no effects at all."""
        assert fixture_analysis.functions[qualname].direct_effects == []
        assert fixture_analysis.effects_of(qualname) == frozenset()

    def test_dirty_root_transitively_collects_every_class(
        self, fixture_analysis: FlowAnalysis
    ) -> None:
        """The dirty entry point inherits all six effect classes."""
        assert fixture_analysis.effects_of(DIRTY_ROOT) == frozenset(
            ALL_EFFECTS
        )

    def test_clean_root_stays_clean(
        self, fixture_analysis: FlowAnalysis
    ) -> None:
        """The clean entry point (incl. seam-exempt RNG) infers nothing."""
        assert fixture_analysis.effects_of(CLEAN_ROOT) == frozenset()


class TestFixtureContracts:
    """Contract checking over the fixture roots."""

    def test_dirty_contract_reports_all_six_diagnostics(
        self, fixture_analysis: FlowAnalysis
    ) -> None:
        """One REPRO1xx id per effect class, attributed to the root."""
        report = check_contracts(
            fixture_analysis,
            (ContractSpec(name="fixture", roots=(DIRTY_ROOT,)),),
        )
        assert {v.rule_id for v in report.violations} == {
            DIAGNOSTICS[effect].rule_id for effect in ALL_EFFECTS
        }
        assert all(v.root == DIRTY_ROOT for v in report.violations)
        assert all(
            v.chain[0] == DIRTY_ROOT and len(v.chain) == 2
            for v in report.violations
        )

    def test_clean_contract_is_empty(
        self, fixture_analysis: FlowAnalysis
    ) -> None:
        """A clean root yields neither violations nor missing roots."""
        report = check_contracts(
            fixture_analysis,
            (ContractSpec(name="clean", roots=(CLEAN_ROOT,)),),
        )
        assert report.violations == []
        assert report.missing_roots == []

    def test_missing_root_is_surfaced(
        self, fixture_analysis: FlowAnalysis
    ) -> None:
        """A renamed/missing root is reported, never silently skipped."""
        report = check_contracts(
            fixture_analysis,
            (
                ContractSpec(
                    name="ghost", roots=("repro.flowfix.entry.gone",)
                ),
            ),
        )
        assert report.missing_roots == [
            ("ghost", "repro.flowfix.entry.gone")
        ]

    def test_allowed_effects_are_tolerated(
        self, fixture_analysis: FlowAnalysis
    ) -> None:
        """``allowed_effects`` drops that class but keeps the others."""
        report = check_contracts(
            fixture_analysis,
            (
                ContractSpec(
                    name="fixture",
                    roots=(DIRTY_ROOT,),
                    allowed_effects=frozenset({"FILE_IO", "ENV_READ"}),
                ),
            ),
        )
        effects = {v.origin.effect for v in report.violations}
        assert "FILE_IO" not in effects and "ENV_READ" not in effects
        assert "WALL_CLOCK" in effects


class TestPropagateKernel:
    """Hand cases and the hypothesis monotonicity property."""

    def test_linear_chain(self) -> None:
        """Effects flow backwards through a → b → c."""
        effects = propagate(
            {"c": frozenset({"WALL_CLOCK"})},
            {"a": ["b"], "b": ["c"]},
        )
        assert effects["a"] == frozenset({"WALL_CLOCK"})
        assert effects["b"] == frozenset({"WALL_CLOCK"})

    def test_cycle_terminates_and_unions(self) -> None:
        """Mutual recursion reaches the fixed point with both effects."""
        effects = propagate(
            {
                "a": frozenset({"FILE_IO"}),
                "b": frozenset({"ENV_READ"}),
            },
            {"a": ["b"], "b": ["a"]},
        )
        both = frozenset({"FILE_IO", "ENV_READ"})
        assert effects["a"] == both and effects["b"] == both

    def test_edge_only_nodes_default_empty(self) -> None:
        """Nodes appearing only as edge endpoints start from ⊥."""
        effects = propagate({}, {"a": ["b"]})
        assert effects == {"a": frozenset(), "b": frozenset()}

    _nodes = st.integers(min_value=0, max_value=7).map(lambda i: f"n{i}")
    _direct = st.dictionaries(
        _nodes,
        st.frozensets(st.sampled_from(sorted(ALL_EFFECTS)), max_size=3),
        max_size=8,
    )
    _edges = st.dictionaries(
        _nodes, st.lists(_nodes, max_size=4, unique=True), max_size=8
    )

    @settings(max_examples=150, deadline=None)
    @given(direct=_direct, edges=_edges, extra=st.tuples(_nodes, _nodes))
    def test_adding_an_edge_never_removes_effects(
        self,
        direct: dict[str, frozenset[str]],
        edges: dict[str, list[str]],
        extra: tuple[str, str],
    ) -> None:
        """Monotonicity: a grown graph infers a superset everywhere."""
        before = propagate(direct, edges)
        grown = {node: list(targets) for node, targets in edges.items()}
        source, target = extra
        grown.setdefault(source, []).append(target)
        after = propagate(direct, grown)
        for node, effects in before.items():
            assert effects <= after[node]

    @settings(max_examples=100, deadline=None)
    @given(direct=_direct, edges=_edges)
    def test_fixed_point_contains_direct_effects(
        self,
        direct: dict[str, frozenset[str]],
        edges: dict[str, list[str]],
    ) -> None:
        """Soundness floor: no node ever loses its own direct effects."""
        solved = propagate(direct, edges)
        for node, effects in direct.items():
            assert effects <= solved[node]


class TestChainRendering:
    """Violation rendering and stable baseline keys."""

    def _violation(self) -> FlowViolation:
        return FlowViolation(
            rule_id="REPRO101",
            contract="parallel-engine",
            root="repro.parallel.executor.run_windows",
            chain=(
                "repro.parallel.executor.run_windows",
                "repro.parallel.executor.execute_shard",
                "repro.reid.scorer.ReidScorer.distance",
            ),
            origin=EffectOrigin(
                effect="WALL_CLOCK",
                path="src/repro/reid/scorer.py",
                line=42,
                col=8,
                detail="time.perf_counter",
            ),
        )

    def test_render_chain_reads_like_a_callstack(self) -> None:
        """Arrow-joined short names ending at the effectful primitive."""
        assert self._violation().render_chain() == (
            "parallel.executor.run_windows → parallel.executor.execute_shard"
            " → reid.scorer.ReidScorer.distance → time.perf_counter"
        )

    def test_render_includes_location_rule_and_chain(self) -> None:
        """The multi-line diagnostic carries every navigation anchor."""
        rendered = self._violation().render()
        assert "src/repro/reid/scorer.py:42:8" in rendered
        assert "REPRO101" in rendered
        assert "parallel-engine" in rendered
        assert "→ time.perf_counter" in rendered

    def test_key_is_line_number_independent(self) -> None:
        """Unrelated edits must not invalidate baseline suppressions."""
        moved = FlowViolation(
            rule_id="REPRO101",
            contract="parallel-engine",
            root=self._violation().root,
            chain=self._violation().chain,
            origin=EffectOrigin(
                effect="WALL_CLOCK",
                path="src/repro/reid/scorer.py",
                line=999,
                col=0,
                detail="time.perf_counter",
            ),
        )
        assert moved.key == self._violation().key


class TestBaseline:
    """Round-trips and partitioning against the suppression file."""

    def test_round_trip_and_split(self, tmp_path: Path) -> None:
        """Write → load → split: suppressed, new and stale all land."""
        violation = TestChainRendering()._violation()
        baseline = Baseline(
            suppressions={
                violation.key: "profiler wall clock is by design",
                "REPRO105 gone -> gone [open]": "stale entry",
            }
        )
        path = baseline.write(tmp_path / "baseline.json")
        loaded = Baseline.load(path)
        split = split_by_baseline([violation], loaded)
        assert split.suppressed == [violation]
        assert split.new == []
        assert split.stale_keys == ["REPRO105 gone -> gone [open]"]

    def test_missing_rationale_is_rejected(self, tmp_path: Path) -> None:
        """An unexplained suppression is a bug, not a convenience."""
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"schema": 1, "suppressions": [{"key": "K"}]})
        )
        with pytest.raises(ValueError, match="rationale"):
            Baseline.load(path)

    def test_schema_mismatch_is_rejected(self, tmp_path: Path) -> None:
        """Future-format files fail loudly instead of silently passing."""
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": 99, "suppressions": []}))
        with pytest.raises(ValueError, match="schema"):
            Baseline.load(path)


PLANT_ANCHOR = "telemetry = Telemetry() if shard.with_telemetry else None"

PLANTED_HELPERS = textwrap.dedent(
    """

    import time


    def _planted_l1() -> float:
        \"\"\"Planted level 1.\"\"\"
        return _planted_l2()


    def _planted_l2() -> float:
        \"\"\"Planted level 2.\"\"\"
        return _planted_l3()


    def _planted_l3() -> float:
        \"\"\"Planted level 3.\"\"\"
        return time.time()
    """
)


class TestPlantedWallClockRegression:
    """The acceptance scenario: a smuggled ``time.time()`` three calls
    below ``run_windows`` must surface with its full call chain."""

    def test_planted_time_time_is_caught_with_full_chain(
        self, tmp_path: Path
    ) -> None:
        """Copy ``src/repro``, plant the leak, analyze, assert chain."""
        shutil.copytree(
            REPO_ROOT / "src" / "repro", tmp_path / "src" / "repro"
        )
        executor = tmp_path / "src" / "repro" / "parallel" / "executor.py"
        source = executor.read_text(encoding="utf-8")
        assert PLANT_ANCHOR in source
        patched = source.replace(
            PLANT_ANCHOR, PLANT_ANCHOR + "\n    _planted_l1()", 1
        )
        executor.write_text(patched + PLANTED_HELPERS, encoding="utf-8")
        ast.parse(executor.read_text(encoding="utf-8"))

        analysis = FlowAnalysis.build([tmp_path / "src"])
        report = check_contracts(analysis)
        planted = [
            v
            for v in report.violations
            if v.origin.detail == "time.time"
            and v.contract == "parallel-engine"
        ]
        assert planted, "the planted wall-clock read was not detected"
        violation = planted[0]
        assert violation.rule_id == "REPRO101"
        assert violation.chain[-3:] == (
            "repro.parallel.executor._planted_l1",
            "repro.parallel.executor._planted_l2",
            "repro.parallel.executor._planted_l3",
        )
        assert "repro.parallel.executor._run_window_task" in violation.chain
        chain_text = violation.render_chain()
        assert chain_text.endswith(
            "parallel.executor._planted_l1 → parallel.executor._planted_l2"
            " → parallel.executor._planted_l3 → time.time"
        )
        # The leak is reachable from `run_windows` itself, with the full
        # chain reconstructible from that root too.
        run_windows = "repro.parallel.executor.run_windows"
        leaf = "repro.parallel.executor._planted_l3"
        assert leaf in analysis.reachable_from(run_windows)
        chain = analysis.shortest_chain(run_windows, leaf)
        assert chain is not None and chain[0] == run_windows
        assert chain[-3:] == [
            "repro.parallel.executor._planted_l1",
            "repro.parallel.executor._planted_l2",
            leaf,
        ]
        assert "WALL_CLOCK" in analysis.effects_of(run_windows)

    def test_unpatched_tree_has_no_planted_violation(self) -> None:
        """Control: the pristine tree never reports ``time.time``."""
        analysis = FlowAnalysis.build([REPO_ROOT / "src"])
        report = check_contracts(analysis)
        assert not any(
            v.origin.detail == "time.time" for v in report.violations
        )


class TestRepoIsClean:
    """``--flow src`` must stay clean modulo the committed baseline."""

    def test_src_has_no_new_violations(self) -> None:
        """Every real violation is either fixed or baselined."""
        analysis = FlowAnalysis.build([REPO_ROOT / "src"])
        report = check_contracts(analysis)
        baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_PATH)
        split = split_by_baseline(report.violations, baseline)
        assert split.new == [], "\n".join(v.render() for v in split.new)
        assert split.stale_keys == []
        assert report.missing_roots == []

    def test_contract_roots_reach_real_code(self) -> None:
        """The parallel-engine contract is not vacuously satisfied."""
        analysis = FlowAnalysis.build([REPO_ROOT / "src"])
        reachable = analysis.reachable_from(
            "repro.parallel.executor.run_windows"
        )
        assert "repro.parallel.executor._run_window_task" in reachable
        assert len(reachable) > 20


class TestFlowCli:
    """``python -m repro.lint --flow`` behaviour."""

    def test_clean_fixture_root_exits_zero(
        self, capsys: pytest.CaptureFixture
    ) -> None:
        """Analyzing the repo with its baseline from the repo root."""
        code = lint_main(
            ["--flow", "--baseline", str(REPO_ROOT / DEFAULT_BASELINE_PATH),
             str(REPO_ROOT / "src")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 new violation(s)" in out

    def test_json_format_and_output_file(
        self, tmp_path: Path, capsys: pytest.CaptureFixture
    ) -> None:
        """``--format json --output`` emits the same document twice."""
        out_file = tmp_path / "flow.json"
        code = lint_main(
            [
                "--flow",
                "--no-baseline",
                "--format",
                "json",
                "--output",
                str(out_file),
                str(FIXTURE_SRC),
            ]
        )
        # The fixture package lacks the default contract roots, so the
        # run is clean (exit 0) but reports them as missing.
        assert code == 0
        stdout_doc = json.loads(capsys.readouterr().out)
        file_doc = json.loads(out_file.read_text())
        assert stdout_doc == file_doc
        assert stdout_doc["schema"] == 1
        assert stdout_doc["stats"]["n_functions"] > 0
        # The fixture package has no default-contract roots, so the
        # missing roots are reported rather than silently ignored.
        assert stdout_doc["missing_roots"]

    def test_missing_baseline_path_is_a_usage_error(self) -> None:
        """An explicitly named but absent baseline exits 2."""
        code = lint_main(
            ["--flow", "--baseline", "does-not-exist.json", "src"]
        )
        assert code == 2

    def test_list_rules_includes_flow_diagnostics(
        self, capsys: pytest.CaptureFixture
    ) -> None:
        """REPRO001–010 and REPRO101–106 share one registry listing."""
        code = lint_main(["--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for rule_id in ("REPRO001", "REPRO010", "REPRO101", "REPRO106"):
            assert rule_id in out

    def test_check_docs_accepts_design_md(
        self, capsys: pytest.CaptureFixture, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        """The committed DESIGN.md names every shipped rule id."""
        monkeypatch.chdir(REPO_ROOT)
        code = lint_main(["--list-rules", "--check-docs", "DESIGN.md"])
        assert code == 0, capsys.readouterr().out

    def test_check_docs_flags_drift(
        self, tmp_path: Path, capsys: pytest.CaptureFixture
    ) -> None:
        """A doc missing a shipped id (or citing a ghost id) fails."""
        doc = tmp_path / "doc.md"
        doc.write_text("Only REPRO001 and the ghost REPRO999 here.")
        code = lint_main(["--list-rules", "--check-docs", str(doc)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REPRO101" in out  # reported missing
        assert "REPRO999" in out  # reported unknown

    def test_select_conflicts_with_flow(self) -> None:
        """``--select`` only applies to per-file rules."""
        with pytest.raises(SystemExit):
            lint_main(["--flow", "--select", "REPRO001", "src"])

    def test_module_invocation_runs_flow(self) -> None:
        """End-to-end ``python -m repro.lint --flow`` from the repo."""
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--flow", "src"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr


class TestIterPythonFilesSkips:
    """The engine walk fix: directly-passed skip dirs stay skipped."""

    def test_directly_passed_skip_dir_is_not_walked(
        self, tmp_path: Path
    ) -> None:
        """Passing ``__pycache__``/hidden dirs directly yields nothing."""
        for name in ("__pycache__", ".hidden", "fixtures"):
            bad = tmp_path / name
            bad.mkdir()
            (bad / "mod.py").write_text("x = 1\n")
            assert list(iter_python_files([bad])) == []

    def test_directly_passed_file_inside_skip_dir_is_honoured(
        self, tmp_path: Path
    ) -> None:
        """Naming a concrete ``*.py`` file is an explicit request."""
        bad = tmp_path / "fixtures"
        bad.mkdir()
        target = bad / "mod.py"
        target.write_text("x = 1\n")
        assert list(iter_python_files([target])) == [target]

    def test_overlapping_paths_dedupe_via_resolved_paths(
        self, tmp_path: Path
    ) -> None:
        """The same file reached twice is yielded once."""
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("x = 1\n")
        found = list(iter_python_files([tmp_path, pkg, pkg / "mod.py"]))
        assert len(found) == 1

    def test_fixtures_is_a_skip_dir(self) -> None:
        """Repo-wide lint walks must not descend into fixture trees."""
        assert "fixtures" in SKIP_DIRS
        walked = list(iter_python_files([REPO_ROOT / "tests"]))
        assert not any("fixtures" in str(path) for path in walked)
