"""Unit tests for the repro.bandit package."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.bandit import (
    BetaPosterior,
    GaussianPosterior,
    RegretTracker,
    ThompsonSampler,
    hoeffding_radius,
    lcb_index,
    ucb_index,
)


class TestBetaPosterior:
    def test_prior_mean(self):
        assert BetaPosterior().mean == pytest.approx(0.5)
        assert BetaPosterior(1, 2).mean == pytest.approx(1 / 3)

    def test_update_success(self):
        post = BetaPosterior()
        post.update(1)
        assert post.successes == 2.0
        assert post.mean == pytest.approx(2 / 3)

    def test_update_failure(self):
        post = BetaPosterior()
        post.update(0)
        assert post.failures == 2.0
        assert post.mean == pytest.approx(1 / 3)

    def test_invalid_outcome(self):
        with pytest.raises(ValueError):
            BetaPosterior().update(2)

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            BetaPosterior(0, 1)

    def test_pulls(self):
        post = BetaPosterior()
        assert post.pulls == 0
        post.update(1)
        post.update(0)
        assert post.pulls == 2

    def test_sample_in_unit_interval(self):
        post = BetaPosterior(3, 5)
        rng = np.random.default_rng(0)
        samples = [post.sample(rng) for _ in range(100)]
        assert all(0.0 <= s <= 1.0 for s in samples)

    def test_mean_converges_to_true_rate(self):
        post = BetaPosterior()
        rng = np.random.default_rng(1)
        for _ in range(2000):
            post.update(int(rng.random() < 0.3))
        assert post.mean == pytest.approx(0.3, abs=0.03)

    def test_variance_shrinks_with_data(self):
        post = BetaPosterior()
        v0 = post.variance
        for _ in range(50):
            post.update(1)
            post.update(0)
        assert post.variance < v0

    def test_copy_is_independent(self):
        post = BetaPosterior(2, 3)
        clone = post.copy()
        clone.update(1)
        assert post.successes == 2


class TestGaussianPosterior:
    def test_update_moves_toward_observation(self):
        post = GaussianPosterior(mean=0.5, variance=0.25, obs_variance=0.05)
        post.update(0.1)
        assert post.mean < 0.5
        assert post.variance < 0.25

    def test_converges(self):
        post = GaussianPosterior()
        for _ in range(200):
            post.update(0.2)
        assert post.mean == pytest.approx(0.2, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianPosterior(variance=0.0)


class TestThompsonSampler:
    def test_requires_arms(self):
        with pytest.raises(ValueError):
            ThompsonSampler({}, np.random.default_rng(0))

    def test_biases_toward_low_mean_arm(self):
        rng = np.random.default_rng(0)
        posteriors = {
            "low": BetaPosterior(2, 20),   # mean ~0.09
            "high": BetaPosterior(20, 2),  # mean ~0.91
        }
        sampler = ThompsonSampler(posteriors, rng)
        picks = [sampler.select_min() for _ in range(200)]
        assert picks.count("low") > 180

    def test_eligible_restriction(self):
        rng = np.random.default_rng(1)
        posteriors = {
            "a": BetaPosterior(1, 100),
            "b": BetaPosterior(100, 1),
        }
        sampler = ThompsonSampler(posteriors, rng)
        assert sampler.select_min(eligible=["b"]) == "b"

    def test_empty_eligible_raises(self):
        sampler = ThompsonSampler(
            {"a": BetaPosterior()}, np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            sampler.select_min(eligible=[])

    def test_batch_selection_size(self):
        rng = np.random.default_rng(2)
        posteriors = {i: BetaPosterior() for i in range(10)}
        sampler = ThompsonSampler(posteriors, rng)
        assert len(sampler.select_min_batch(4)) == 4
        assert len(sampler.select_min_batch(20)) == 10
        with pytest.raises(ValueError):
            sampler.select_min_batch(0)

    def test_batch_selection_distinct(self):
        rng = np.random.default_rng(3)
        posteriors = {i: BetaPosterior() for i in range(30)}
        sampler = ThompsonSampler(posteriors, rng)
        batch = sampler.select_min_batch(10)
        assert len(set(batch)) == 10

    def test_update_routes_to_arm(self):
        posteriors = {"a": BetaPosterior(), "b": BetaPosterior()}
        sampler = ThompsonSampler(posteriors, np.random.default_rng(0))
        sampler.update("a", 1)
        assert sampler.posteriors["a"].successes == 2
        assert sampler.posteriors["b"].successes == 1

    def test_posterior_means(self):
        posteriors = {"a": BetaPosterior(1, 3)}
        sampler = ThompsonSampler(posteriors, np.random.default_rng(0))
        assert sampler.posterior_means() == {"a": pytest.approx(0.25)}


class TestConfidenceBounds:
    def test_radius_shrinks_with_pulls(self):
        assert hoeffding_radius(100, 10) < hoeffding_radius(100, 2)

    def test_radius_infinite_for_unpulled(self):
        assert math.isinf(hoeffding_radius(10, 0))

    def test_radius_formula(self):
        assert hoeffding_radius(100, 4) == pytest.approx(
            math.sqrt(2 * math.log(100) / 4)
        )

    def test_radius_validation(self):
        with pytest.raises(ValueError):
            hoeffding_radius(0, 1)
        with pytest.raises(ValueError):
            hoeffding_radius(10, -1)

    def test_lcb_below_ucb(self):
        assert lcb_index(0.5, 100, 5) < ucb_index(0.5, 100, 5)

    def test_lcb_unpulled_is_minus_infinity(self):
        assert lcb_index(0.5, 100, 0) == -math.inf

    def test_tau_one_gives_zero_radius(self):
        assert hoeffding_radius(1, 5) == 0.0


class TestRegretTracker:
    def test_accumulation(self):
        tracker = RegretTracker(s_min=0.2)
        tracker.record(0.5)
        tracker.record(0.2)
        assert tracker.rounds == 2
        assert tracker.cumulative == pytest.approx(0.3)
        assert tracker.average == pytest.approx(0.15)

    def test_empty_average(self):
        assert RegretTracker(0.1).average == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RegretTracker(1.5)

    def test_bound_decreases_in_rounds(self):
        early = RegretTracker.theoretical_bound(100, 10)
        late = RegretTracker.theoretical_bound(100, 100_000)
        assert late < early

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            RegretTracker.theoretical_bound(0, 10)
        with pytest.raises(ValueError):
            RegretTracker.theoretical_bound(10, 0)


@given(
    successes=st.integers(1, 200),
    failures=st.integers(1, 200),
)
def test_beta_mean_in_open_interval(successes, failures):
    post = BetaPosterior(float(successes), float(failures))
    assert 0.0 < post.mean < 1.0
    assert post.variance > 0.0


@given(
    outcomes=st.lists(st.integers(0, 1), min_size=1, max_size=100),
)
def test_beta_update_counts(outcomes):
    post = BetaPosterior()
    post_successes = sum(outcomes)
    for outcome in outcomes:
        post.update(outcome)
    assert post.successes == 1 + post_successes
    assert post.failures == 1 + len(outcomes) - post_successes
    assert post.pulls == len(outcomes)
