"""The repro.lint framework: every rule, the engine, and the CLI."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    ALL_RULES,
    RULES_BY_ID,
    context_for_path,
    lint_paths,
    lint_source,
    main,
)

RULE_IDS = sorted(RULES_BY_ID)


def run_rule(rule_id: str, source: str, path: str | None = None):
    """Lint ``source`` with exactly one rule under its fixture path."""
    rule = RULES_BY_ID[rule_id]
    return lint_source(source, path or rule.example_path, rules=[rule])


class TestRuleFixtures:
    """Each rule fires on its violating fixture and passes its clean one."""

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_violating_example_fires(self, rule_id):
        rule = RULES_BY_ID[rule_id]
        violations = run_rule(rule_id, rule.violating_example)
        assert violations, f"{rule_id} did not fire on its violating fixture"
        assert all(v.rule_id == rule_id for v in violations)

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_clean_example_passes(self, rule_id):
        rule = RULES_BY_ID[rule_id]
        assert run_rule(rule_id, rule.clean_example) == []

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_clean_example_passes_full_rule_set(self, rule_id):
        """Clean fixtures are clean under *every* rule, not just their own."""
        rule = RULES_BY_ID[rule_id]
        assert lint_source(rule.clean_example, rule.example_path) == []

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_rule_metadata_complete(self, rule_id):
        rule = RULES_BY_ID[rule_id]
        assert rule.title and rule.rationale
        assert rule.violating_example and rule.clean_example


class TestRuleScoping:
    def test_generator_construction_allowed(self):
        source = textwrap.dedent(
            """\
            \"\"\"M.\"\"\"
            import numpy as np

            def make(seed: int) -> np.random.Generator:
                \"\"\"Make.\"\"\"
                return np.random.default_rng(seed)
            """
        )
        assert run_rule("REPRO001", source) == []

    def test_np_random_seed_flagged(self):
        source = '"""M."""\nimport numpy as np\nnp.random.seed(0)\n'
        assert len(run_rule("REPRO001", source)) == 1

    def test_randomness_rule_skips_tests(self):
        source = "import random\n"
        assert run_rule("REPRO001", source, "tests/test_x.py") == []

    def test_wallclock_only_on_cost_path(self):
        source = '"""M."""\nimport time\n_ = time.time()\n'
        assert len(run_rule("REPRO002", source, "src/repro/core/x.py")) == 1
        assert run_rule("REPRO002", source, "src/repro/synth/x.py") == []

    def test_print_exempt_in_cli_modules(self):
        source = '"""M."""\nprint("hi")\n'
        assert len(run_rule("REPRO004", source, "src/repro/core/x.py")) == 1
        assert run_rule("REPRO004", source, "src/repro/core/__main__.py") == []
        assert run_rule("REPRO004", source, "src/repro/lint/cli.py") == []

    def test_float_eq_only_core_and_bandit(self):
        source = '"""M."""\nOK = 1.0 == 2.0\n'
        assert len(run_rule("REPRO006", source, "src/repro/bandit/x.py")) == 1
        assert run_rule("REPRO006", source, "src/repro/metrics/x.py") == []

    def test_int_equality_not_flagged(self):
        source = '"""M."""\nOK = 1 == 2\n'
        assert run_rule("REPRO006", source, "src/repro/core/x.py") == []

    def test_protocol_stub_exempt_from_docs(self):
        source = textwrap.dedent(
            """\
            \"\"\"M.\"\"\"

            class P:
                \"\"\"P.\"\"\"

                def run(self) -> None: ...
            """
        )
        assert run_rule("REPRO007", source) == []

    def test_private_names_exempt_from_docs(self):
        source = '"""M."""\n\ndef _helper(x):\n    return x\n'
        assert run_rule("REPRO007", source) == []

    def test_all_duplicate_flagged(self):
        source = '"""M."""\nX = 1\n__all__ = ["X", "X"]\n'
        violations = run_rule("REPRO008", source)
        assert len(violations) == 1
        assert "duplicate" in violations[0].message

    def test_mutable_default_in_tests_flagged(self):
        source = "def f(xs=[]):\n    return xs\n"
        assert len(run_rule("REPRO003", source, "tests/test_x.py")) == 1


class TestContextClassification:
    def test_library_cost_path(self):
        ctx = context_for_path("src/repro/core/tmerge.py")
        assert ctx.is_library and ctx.is_cost_path and not ctx.is_test
        assert ctx.subpackage == "core"
        assert ctx.module_parts == ("repro", "core", "tmerge")

    def test_non_cost_library(self):
        ctx = context_for_path("src/repro/synth/world.py")
        assert ctx.is_library and not ctx.is_cost_path

    def test_tests_and_benchmarks(self):
        assert context_for_path("tests/test_tmerge.py").is_test
        assert context_for_path("benchmarks/test_fig3_rec_k.py").is_test
        assert not context_for_path("tests/test_tmerge.py").is_library

    def test_outside_everything(self):
        ctx = context_for_path("examples/quickstart.py")
        assert not ctx.is_library and not ctx.is_test

    def test_cli_and_init_flags(self):
        assert context_for_path("src/repro/lint/__main__.py").is_cli
        assert context_for_path("src/repro/core/__init__.py").is_init


class TestEngine:
    def test_lint_source_syntax_error_raises(self):
        with pytest.raises(SyntaxError):
            lint_source("def broken(:", "src/repro/core/x.py")

    def test_lint_paths_reports_parse_errors(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        report = lint_paths([tmp_path])
        assert not report.ok
        assert len(report.parse_errors) == 1

    def test_lint_paths_skips_caches(self, tmp_path):
        cache = tmp_path / "__pycache__" / "junk.py"
        cache.parent.mkdir()
        cache.write_text("from os import *\n")
        report = lint_paths([tmp_path])
        assert report.files_checked == 0

    def test_overlapping_paths_deduplicated(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("from os import *\n")
        report = lint_paths([tmp_path, target])
        assert report.files_checked == 1
        assert len(report.violations) == 1


@pytest.fixture
def fixture_tree(tmp_path):
    """A tmp tree with every rule's fixtures under src/repro paths."""

    def build(kind: str) -> Path:
        root = tmp_path / kind
        for rule in ALL_RULES:
            source = (
                rule.violating_example
                if kind == "violating"
                else rule.clean_example
            )
            rel = Path(rule.example_path.replace("example", rule.rule_id.lower()))
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)
        return root

    return build


class TestCli:
    def test_nonzero_on_violating_fixtures(self, fixture_tree, capsys):
        root = fixture_tree("violating")
        assert main([str(root)]) == 1
        out = capsys.readouterr().out
        assert "problem(s)" in out

    def test_zero_on_clean_fixtures(self, fixture_tree, capsys):
        root = fixture_tree("clean")
        assert main([str(root)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_every_rule_appears_in_violating_run(self, fixture_tree, capsys):
        main([str(fixture_tree("violating"))])
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out, f"{rule_id} missing from CLI output"

    def test_select_limits_rules(self, fixture_tree, capsys):
        root = fixture_tree("violating")
        assert main(["--select", "REPRO005", str(root)]) == 1
        out = capsys.readouterr().out
        assert "REPRO005" in out
        assert "REPRO001" not in out

    def test_select_unknown_rule_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--select", "NOPE", "src"])
        assert excinfo.value.code == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    def test_quiet_suppresses_details(self, fixture_tree, capsys):
        root = fixture_tree("violating")
        assert main(["--quiet", str(root)]) == 1
        out = capsys.readouterr().out
        assert "REPRO001" not in out
        assert "problem(s)" in out
