"""Unit tests for repro.track.assignment (Hungarian and greedy matching)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linear_sum_assignment

from repro.track.assignment import greedy_assignment, hungarian, solve_assignment


def brute_force_cost(cost: np.ndarray) -> float:
    """Minimum assignment cost by exhaustive enumeration (small inputs)."""
    n, m = cost.shape
    if n <= m:
        best = float("inf")
        for perm in itertools.permutations(range(m), n):
            best = min(best, sum(cost[i, j] for i, j in enumerate(perm)))
        return best
    return brute_force_cost(cost.T)


def assignment_cost(cost: np.ndarray, pairs) -> float:
    return sum(cost[r, c] for r, c in pairs)


class TestHungarian:
    def test_identity_matrix(self):
        cost = 1.0 - np.eye(4)
        pairs = hungarian(cost)
        assert pairs == [(i, i) for i in range(4)]

    def test_known_example(self):
        cost = np.array([[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]])
        pairs = hungarian(cost)
        assert assignment_cost(cost, pairs) == pytest.approx(5.0)

    def test_rectangular_more_cols(self):
        cost = np.array([[10.0, 1.0, 10.0, 10.0], [10.0, 10.0, 1.0, 10.0]])
        pairs = hungarian(cost)
        assert len(pairs) == 2
        assert assignment_cost(cost, pairs) == pytest.approx(2.0)

    def test_rectangular_more_rows(self):
        cost = np.array([[10.0, 1.0], [1.0, 10.0], [5.0, 5.0]])
        pairs = hungarian(cost)
        assert len(pairs) == 2
        assert assignment_cost(cost, pairs) == pytest.approx(2.0)

    def test_empty(self):
        assert hungarian(np.zeros((0, 0))) == []
        assert hungarian(np.zeros((0, 3))) == []

    def test_single_cell(self):
        assert hungarian(np.array([[7.0]])) == [(0, 0)]

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            hungarian(np.array([[1.0, np.inf], [0.0, 1.0]]))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            hungarian(np.zeros(5))

    def test_matches_scipy_on_random(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            n, m = rng.integers(1, 9, size=2)
            cost = rng.uniform(0, 10, size=(n, m))
            ours = assignment_cost(cost, hungarian(cost))
            rows, cols = linear_sum_assignment(cost)
            theirs = cost[rows, cols].sum()
            assert ours == pytest.approx(theirs)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            n, m = rng.integers(1, 6, size=2)
            cost = rng.uniform(0, 10, size=(n, m))
            ours = assignment_cost(cost, hungarian(cost))
            assert ours == pytest.approx(brute_force_cost(cost))


class TestGreedy:
    def test_takes_cheapest_first(self):
        cost = np.array([[1.0, 2.0], [0.5, 3.0]])
        pairs = greedy_assignment(cost)
        # Greedy grabs (1,0)=0.5 then (0,1)=2.0 — total 2.5, not optimal 1+3.
        assert (1, 0) in pairs and (0, 1) in pairs

    def test_max_cost_gates(self):
        cost = np.array([[1.0, 9.0], [9.0, 9.0]])
        pairs = greedy_assignment(cost, max_cost=5.0)
        assert pairs == [(0, 0)]

    def test_empty(self):
        assert greedy_assignment(np.zeros((0, 4))) == []


class TestSolveAssignment:
    def test_gating_drops_expensive_pairs(self):
        cost = np.array([[0.1, 9.0], [9.0, 9.0]])
        pairs = solve_assignment(cost, max_cost=1.0)
        assert pairs == [(0, 0)]

    def test_all_gated(self):
        cost = np.full((3, 3), 10.0)
        assert solve_assignment(cost, max_cost=1.0) == []

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            solve_assignment(np.zeros((2, 2)), method="magic")

    def test_greedy_method(self):
        cost = np.array([[0.1, 0.2], [0.2, 0.1]])
        pairs = solve_assignment(cost, method="greedy")
        assert pairs == [(0, 0), (1, 1)]

    def test_infinite_entries_treated_as_forbidden(self):
        cost = np.array([[np.inf, 1.0], [1.0, np.inf]])
        pairs = solve_assignment(cost, max_cost=5.0)
        assert pairs == [(0, 1), (1, 0)]


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 6),
    m=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
def test_hungarian_optimal_property(n, m, seed):
    """Hungarian cost always equals scipy's optimum."""
    rng = np.random.default_rng(seed)
    cost = rng.uniform(0, 100, size=(n, m))
    pairs = hungarian(cost)
    assert len(pairs) == min(n, m)
    rows = [r for r, _ in pairs]
    cols = [c for _, c in pairs]
    assert len(set(rows)) == len(rows)
    assert len(set(cols)) == len(cols)
    expected_rows, expected_cols = linear_sum_assignment(cost)
    assert assignment_cost(cost, pairs) == pytest.approx(
        cost[expected_rows, expected_cols].sum()
    )
