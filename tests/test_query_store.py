"""Unit tests for repro.query.store."""

import pytest
from hypothesis import given, settings, strategies as st

from helpers import make_track

from repro.query.store import TrackStore, longest_common_run


class TestTrackStore:
    def test_from_tracks_fills_gaps(self):
        track = make_track(0, [0, 1, 5, 6])
        store = TrackStore.from_tracks([track])
        assert store.frames_of(0) == [0, 1, 2, 3, 4, 5, 6]

    def test_from_tracks_no_fill(self):
        track = make_track(0, [0, 1, 5, 6])
        store = TrackStore.from_tracks([track], fill_gaps=False)
        assert store.frames_of(0) == [0, 1, 5, 6]

    def test_boxes_only_at_observed_frames(self):
        track = make_track(0, [0, 3])
        store = TrackStore.from_tracks([track])
        assert (0, 0) in store.boxes
        assert (0, 3) in store.boxes
        assert (0, 1) not in store.boxes

    def test_from_presence_sorts(self):
        store = TrackStore.from_presence({7: [5, 1, 3]})
        assert store.frames_of(7) == [1, 3, 5]

    def test_span_and_count(self):
        store = TrackStore.from_presence({1: [10, 12, 20]})
        assert store.span_of(1) == 11
        assert store.appearance_count(1) == 3
        assert store.span_of(99) == 0

    def test_present_in_range(self):
        store = TrackStore.from_presence({1: [0, 5, 10, 15]})
        assert store.present_in_range(1, 4, 11) == 2
        assert store.present_in_range(1, 0, 100) == 4
        assert store.present_in_range(1, 16, 20) == 0

    def test_object_ids_sorted(self):
        store = TrackStore.from_presence({5: [0], 1: [0], 3: [0]})
        assert store.object_ids() == [1, 3, 5]


class TestLongestCommonRun:
    def test_full_overlap(self):
        frames = [list(range(10)), list(range(10))]
        assert longest_common_run(frames) == 10

    def test_no_overlap(self):
        assert longest_common_run([[0, 1], [5, 6]]) == 0

    def test_partial(self):
        assert longest_common_run([[0, 1, 2, 3], [2, 3, 4]]) == 2

    def test_gap_breaks_run(self):
        frames = [[0, 1, 2, 10, 11], [0, 1, 2, 10, 11]]
        assert longest_common_run(frames, max_gap=0) == 3

    def test_gap_tolerance_bridges(self):
        frames = [[0, 1, 2, 5, 6], [0, 1, 2, 5, 6]]
        assert longest_common_run(frames, max_gap=2) == 7

    def test_empty_member(self):
        assert longest_common_run([[0, 1], []]) == 0
        assert longest_common_run([]) == 0

    def test_three_way(self):
        frames = [
            list(range(0, 20)),
            list(range(5, 25)),
            list(range(8, 30)),
        ]
        assert longest_common_run(frames) == 12  # frames 8..19


@settings(max_examples=40, deadline=None)
@given(
    frames=st.lists(
        st.integers(0, 50), min_size=1, max_size=30, unique=True
    ),
)
def test_single_object_run_bounded_by_span(frames):
    run = longest_common_run([sorted(frames)], max_gap=0)
    assert 1 <= run <= max(frames) - min(frames) + 1
