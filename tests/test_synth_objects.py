"""Unit tests for repro.synth.objects."""

import numpy as np
import pytest

from repro.geometry import BBox
from repro.synth.motion import ConstantVelocity
from repro.synth.objects import (
    GroundTruthObject,
    ObjectClass,
    draw_appearance,
    draw_clustered_appearance,
)


def _object(spawn=10, lifetime=20, size=(40.0, 80.0)):
    return GroundTruthObject(
        object_id=1,
        object_class=ObjectClass.PERSON,
        spawn_frame=spawn,
        lifetime=lifetime,
        size=size,
        motion=ConstantVelocity((100.0, 100.0), (2.0, 0.0)),
        appearance=np.ones(8) / np.sqrt(8),
    )


class TestGroundTruthObject:
    def test_lifetime_window(self):
        obj = _object(spawn=10, lifetime=20)
        assert obj.last_frame == 29
        assert obj.alive_at(10)
        assert obj.alive_at(29)
        assert not obj.alive_at(9)
        assert not obj.alive_at(30)

    def test_bbox_at_follows_motion(self):
        obj = _object()
        box0 = obj.bbox_at(10)
        box5 = obj.bbox_at(15)
        assert box5.center[0] - box0.center[0] == pytest.approx(10.0)
        assert box0.width == pytest.approx(40.0)
        assert box0.height == pytest.approx(80.0)

    def test_bbox_at_dead_frame_raises(self):
        obj = _object()
        with pytest.raises(ValueError):
            obj.bbox_at(5)

    def test_invalid_lifetime(self):
        with pytest.raises(ValueError):
            _object(lifetime=0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            _object(size=(0.0, 10.0))


class TestDrawAppearance:
    def test_unit_norm(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            vec = draw_appearance(32, 1.0, rng)
            assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_dimension(self):
        vec = draw_appearance(16, 1.0, np.random.default_rng(1))
        assert vec.shape == (16,)

    def test_min_dimension(self):
        with pytest.raises(ValueError):
            draw_appearance(1, 1.0, np.random.default_rng(0))

    def test_distinct_objects_far_apart(self):
        rng = np.random.default_rng(2)
        vecs = [draw_appearance(64, 1.0, rng) for _ in range(20)]
        distances = [
            np.linalg.norm(a - b)
            for i, a in enumerate(vecs)
            for b in vecs[i + 1:]
        ]
        # Random unit vectors in high dimensions are near-orthogonal.
        assert min(distances) > 0.8


class TestClusteredAppearance:
    def test_unit_norm(self):
        rng = np.random.default_rng(3)
        center = draw_appearance(32, 1.0, rng)
        vec = draw_clustered_appearance(center, 0.7, rng)
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_same_cluster_closer_than_cross_cluster(self):
        rng = np.random.default_rng(4)
        center_a = draw_appearance(64, 1.0, rng)
        center_b = draw_appearance(64, 1.0, rng)
        same = [draw_clustered_appearance(center_a, 0.5, rng) for _ in range(8)]
        other = [draw_clustered_appearance(center_b, 0.5, rng) for _ in range(8)]
        within = np.mean([
            np.linalg.norm(a - b)
            for i, a in enumerate(same) for b in same[i + 1:]
        ])
        across = np.mean([
            np.linalg.norm(a - b) for a in same for b in other
        ])
        assert within < across

    def test_spread_zero_returns_center_direction(self):
        rng = np.random.default_rng(5)
        center = draw_appearance(16, 1.0, rng)
        vec = draw_clustered_appearance(center, 0.0, rng)
        assert np.allclose(vec, center)
