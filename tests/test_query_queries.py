"""Unit tests for repro.query.queries, engine and evaluation."""

import pytest

from helpers import make_track

from repro.core.merge import merge_tracks
from repro.metrics.matching import match_tracks_by_source
from repro.query import (
    CoOccurrenceQuery,
    CountQuery,
    QueryEngine,
    TrackStore,
    cooccurrence_query_recall,
    count_query_recall,
)


class TestCountQuery:
    def test_threshold(self):
        store = TrackStore.from_presence(
            {1: list(range(100)), 2: list(range(10))}
        )
        result = CountQuery(min_frames=50).evaluate(store)
        assert result.qualifying == frozenset({1})
        assert result.count == 1

    def test_span_vs_count_semantics(self):
        # Object present on 3 frames spread over 100.
        store = TrackStore.from_presence({1: [0, 50, 99]})
        assert CountQuery(min_frames=50, use_span=True).evaluate(store).count == 1
        assert (
            CountQuery(min_frames=50, use_span=False).evaluate(store).count == 0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            CountQuery(min_frames=0)


class TestCoOccurrenceQuery:
    def test_finds_joint_group(self):
        presence = {
            1: list(range(0, 100)),
            2: list(range(10, 90)),
            3: list(range(20, 95)),
            4: list(range(200, 300)),  # never co-occurs
        }
        store = TrackStore.from_presence(presence)
        result = CoOccurrenceQuery(group_size=3, min_frames=50).evaluate(store)
        assert result.groups == frozenset({(1, 2, 3)})

    def test_short_overlap_rejected(self):
        presence = {
            1: list(range(0, 60)),
            2: list(range(0, 60)),
            3: list(range(55, 120)),
        }
        store = TrackStore.from_presence(presence)
        result = CoOccurrenceQuery(group_size=3, min_frames=50).evaluate(store)
        assert result.groups == frozenset()

    def test_pair_groups(self):
        presence = {1: list(range(60)), 2: list(range(60))}
        store = TrackStore.from_presence(presence)
        result = CoOccurrenceQuery(group_size=2, min_frames=50).evaluate(store)
        assert result.groups == frozenset({(1, 2)})

    def test_gap_tolerance(self):
        frames = [f for f in range(60) if f % 7 != 3]  # periodic misses
        presence = {1: frames, 2: frames, 3: frames}
        store = TrackStore.from_presence(presence)
        strict = CoOccurrenceQuery(group_size=3, min_frames=50, max_gap=0)
        lax = CoOccurrenceQuery(group_size=3, min_frames=50, max_gap=3)
        assert strict.evaluate(store).groups == frozenset()
        assert lax.evaluate(store).groups == frozenset({(1, 2, 3)})

    def test_validation(self):
        with pytest.raises(ValueError):
            CoOccurrenceQuery(group_size=1)
        with pytest.raises(ValueError):
            CoOccurrenceQuery(max_gap=-1)


class TestQueryEngine:
    def test_dispatch(self):
        engine = QueryEngine.from_presence({1: list(range(100))})
        result = engine.run(CountQuery(min_frames=50))
        assert result.count == 1

    def test_from_tracks(self):
        engine = QueryEngine.from_tracks([make_track(3, list(range(60)))])
        assert engine.run(CountQuery(min_frames=50)).qualifying == frozenset(
            {3}
        )


class TestQueryRecall:
    def _fragmented_setup(self):
        """GT object 7 spans 100 frames; the tracker splits it in half."""
        from helpers import tiny_scene_config
        import numpy as np
        from repro.synth.motion import ConstantVelocity
        from repro.synth.objects import GroundTruthObject, ObjectClass
        from repro.synth.world import simulate_world

        config = tiny_scene_config(
            initial_objects=0, spawn_rate=0.0, n_static_occluders=0,
            glare_rate=0.0,
        )
        obj = GroundTruthObject(
            object_id=7,
            object_class=ObjectClass.PERSON,
            spawn_frame=0,
            lifetime=100,
            size=(40.0, 80.0),
            motion=ConstantVelocity((200.0, 240.0), (0.0, 0.0)),
            appearance=np.eye(config.appearance_dim)[0],
        )
        world = simulate_world(config, 100, seed=0, extra_objects=[obj])
        first = make_track(0, list(range(0, 50)), source_id=7)
        second = make_track(1, list(range(55, 100)), source_id=7)
        return world, [first, second]

    def test_count_recall_restored_by_merge(self):
        world, tracks = self._fragmented_setup()
        assignment = match_tracks_by_source(tracks)
        query = CountQuery(min_frames=80)
        assert count_query_recall(tracks, world, assignment, query) == 0.0
        merged, id_map = merge_tracks(tracks, [(0, 1)])
        merged_assignment = match_tracks_by_source(merged)
        assert (
            count_query_recall(merged, world, merged_assignment, query) == 1.0
        )

    def test_count_recall_no_reference_is_one(self):
        world, tracks = self._fragmented_setup()
        assignment = match_tracks_by_source(tracks)
        query = CountQuery(min_frames=5000)
        assert count_query_recall(tracks, world, assignment, query) == 1.0

    def test_cooccurrence_recall_interface(self, world, tracks):
        from repro.metrics.matching import match_tracks_to_gt

        assignment = match_tracks_to_gt(tracks, world)
        query = CoOccurrenceQuery(group_size=2, min_frames=30)
        value = cooccurrence_query_recall(tracks, world, assignment, query)
        assert 0.0 <= value <= 1.0
