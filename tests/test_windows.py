"""Unit tests for repro.core.windows (§II partitioning)."""

import pytest
from hypothesis import given, settings, strategies as st

from helpers import make_track

from repro.core.windows import Window, WindowedTracks, partition_windows


class TestWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            Window(0, 10, 10)

    def test_ownership_region(self):
        window = Window(0, 0, 100)
        assert window.ownership_end == 50
        assert window.owns_track(make_track(0, list(range(0, 10))))
        assert window.owns_track(make_track(1, list(range(49, 60))))
        assert not window.owns_track(make_track(2, list(range(50, 60))))


class TestPartitionWindows:
    def test_half_overlap(self):
        windows = partition_windows(100, 40)
        for earlier, later in zip(windows, windows[1:]):
            assert later.start - earlier.start == 20
            assert earlier.end - later.start == 20

    def test_covers_all_frames(self):
        windows = partition_windows(95, 40)
        covered = set()
        for window in windows:
            covered |= set(range(window.start, min(window.end, 95)))
        assert covered == set(range(95))

    def test_single_window_video(self):
        windows = partition_windows(10, 2000)
        assert len(windows) == 1
        assert windows[0].start == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_windows(0, 40)
        with pytest.raises(ValueError):
            partition_windows(100, 1)

    def test_indices_sequential(self):
        windows = partition_windows(500, 100)
        assert [w.index for w in windows] == list(range(len(windows)))


class TestWindowedTracks:
    def test_every_track_owned_once(self):
        windows = partition_windows(200, 80)
        tracks = [
            make_track(i, list(range(start, start + 20)))
            for i, start in enumerate(range(0, 180, 15))
        ]
        windowed = WindowedTracks.assign(tracks, windows)
        total = sum(len(bucket) for bucket in windowed.assignments)
        assert total == len(tracks)
        # No track appears in two buckets.
        seen = set()
        for bucket in windowed.assignments:
            for track in bucket:
                assert track.track_id not in seen
                seen.add(track.track_id)

    def test_ownership_matches_first_frame(self):
        windows = partition_windows(200, 80)
        tracks = [make_track(0, list(range(45, 70)))]
        windowed = WindowedTracks.assign(tracks, windows)
        # First frame 45 lies in [40, 80) -> window index 1's first half.
        assert windowed.tracks_of(1) == tracks

    def test_previous_tracks(self):
        windows = partition_windows(200, 80)
        early = make_track(0, list(range(0, 20)))
        late = make_track(1, list(range(45, 60)))
        windowed = WindowedTracks.assign([early, late], windows)
        assert windowed.previous_tracks_of(0) == []
        assert windowed.previous_tracks_of(1) == [early]

    def test_buckets_sorted_by_first_frame(self):
        windows = partition_windows(100, 200)
        tracks = [
            make_track(0, list(range(30, 50))),
            make_track(1, list(range(5, 25))),
        ]
        windowed = WindowedTracks.assign(tracks, windows)
        bucket = windowed.tracks_of(0)
        assert [t.track_id for t in bucket] == [1, 0]


@settings(max_examples=50, deadline=None)
@given(
    n_frames=st.integers(10, 2000),
    window_length=st.integers(2, 500),
    starts=st.lists(st.integers(0, 1900), min_size=1, max_size=30),
)
def test_assignment_total_property(n_frames, window_length, starts):
    """Every track starting inside the video is owned by exactly one window."""
    windows = partition_windows(n_frames, window_length)
    tracks = [
        make_track(i, [min(s, n_frames - 1), min(s, n_frames - 1) + 1])
        for i, s in enumerate(starts)
    ]
    windowed = WindowedTracks.assign(tracks, windows)
    assert sum(len(b) for b in windowed.assignments) == len(tracks)
