"""Shared fixtures for the test suite.

Expensive artefacts (a simulated world with detections and tracks) are
session-scoped; tests must not mutate them.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from helpers import tiny_world  # noqa: E402

from repro.core.pipeline import IngestionPipeline  # noqa: E402
from repro.core.tmerge import TMerge  # noqa: E402
from repro.detect import NoisyDetector  # noqa: E402
from repro.scenarios import build_scenario, scenario_by_name  # noqa: E402
from repro.track import TracktorTracker  # noqa: E402


@pytest.fixture(scope="session")
def world():
    """A small simulated world shared across tests (read-only)."""
    return tiny_world(n_frames=200, seed=7)


@pytest.fixture(scope="session")
def detections(world):
    return NoisyDetector().detect_video(world, seed=11)


@pytest.fixture(scope="session")
def tracks(world, detections):
    return TracktorTracker().run(detections)


@pytest.fixture(scope="session")
def scenario_world():
    """The busier 240-frame world the pipeline/resilience/chaos/parallel
    and streaming-restart tests share (read-only): the scenario matrix's
    axis-free ``chaos-baseline`` compact world, with enough concurrent
    objects and track churn to produce several non-trivial windows."""
    return build_scenario(scenario_by_name("chaos-baseline"), seed=21).world


@pytest.fixture(scope="session")
def chaos_world(scenario_world):
    """Alias of :func:`scenario_world` kept for the suites that predate
    the scenario matrix (same object — both names must stay one world)."""
    return scenario_world


@pytest.fixture
def make_pipeline():
    """Factory for the canonical test ingestion pipeline.

    Returns a callable accepting :class:`IngestionPipeline` keyword
    overrides; the defaults (TracktorTracker + a small TMerge) match the
    historical per-module setups so results stay comparable across test
    files.
    """

    def build(**overrides) -> IngestionPipeline:
        config = dict(
            tracker=TracktorTracker(),
            merger=TMerge(k=0.1, tau_max=300, batch_size=10, seed=3),
            window_length=300,
        )
        # CI chaos-matrix seam: REPRO_BATCH_SIZE forces every pipeline
        # built here onto one batch size (1 = scalar path, 8 = batched),
        # unless the test pins batch_size itself.
        env_batch = os.environ.get("REPRO_BATCH_SIZE")
        if env_batch:
            config["batch_size"] = int(env_batch)
        config.update(overrides)
        return IngestionPipeline(**config)

    return build
