"""Shared fixtures for the test suite.

Expensive artefacts (a simulated world with detections and tracks) are
session-scoped; tests must not mutate them.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from helpers import tiny_world  # noqa: E402

from repro.detect import NoisyDetector  # noqa: E402
from repro.track import TracktorTracker  # noqa: E402


@pytest.fixture(scope="session")
def world():
    """A small simulated world shared across tests (read-only)."""
    return tiny_world(n_frames=200, seed=7)


@pytest.fixture(scope="session")
def detections(world):
    return NoisyDetector().detect_video(world, seed=11)


@pytest.fixture(scope="session")
def tracks(world, detections):
    return TracktorTracker().run(detections)
