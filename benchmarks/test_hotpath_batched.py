"""Hot-path microbench — vectorized batched sampler vs scalar TMerge.

The §IV-F batched variant exists to amortize per-invocation overhead; this
bench measures what that buys on the *wall clock* now that the inner loop
is vectorized (DESIGN.md §13).  Scalar TMerge and TMerge-B8 run the same
MOT-17-like workload at a matched observation budget (τ_scalar = B ·
τ_batched, one observation per arm per iteration), so wall-clock per
observation is directly comparable.

The deterministic side (recall, ReID invocations, simulated cost) feeds
the CI regression gate through ``bench_summary.json``; the wall-clock
numbers are machine-dependent and land in the ungated ``extras`` (and in
the ``bench-perf`` lane's ``perf_summary.json`` / ``perf_trend.jsonl``,
where the speedup *is* checked — see ``python -m repro.experiments perf``).
"""

import time

from conftest import SMOKE, publish, record_summary

from repro.core.tmerge import TMerge
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import evaluate_merger
from repro.telemetry import Telemetry

BATCH = 8
SCALAR_TAU = 800 if SMOKE else 1600
BATCH_TAU = SCALAR_TAU // BATCH


def _run(batch_size: int | None, tau_max: int, videos):
    telemetry = Telemetry()

    def factory():
        return TMerge(
            k=0.1, tau_max=tau_max, batch_size=batch_size, seed=3
        )

    start = time.perf_counter()
    point = evaluate_merger(factory, videos, telemetry=telemetry)
    wall_s = time.perf_counter() - start
    observations = telemetry.metrics.value("reid.distances")
    return {
        "point": point,
        "wall_s": wall_s,
        "observations": observations,
        "ms_per_obs": (
            wall_s * 1000.0 / observations if observations else float("inf")
        ),
    }


def test_hotpath_batched_speedup(mot17_videos):
    scalar = _run(None, SCALAR_TAU, mot17_videos)
    batched = _run(BATCH, BATCH_TAU, mot17_videos)

    speedup = (
        scalar["ms_per_obs"] / batched["ms_per_obs"]
        if batched["ms_per_obs"] > 0
        else float("inf")
    )
    publish(
        "hotpath_batched",
        format_table(
            ["variant", "obs", "wall s", "ms/obs", "sim s", "REC"],
            [
                [
                    "TMerge (scalar)",
                    int(scalar["observations"]),
                    round(scalar["wall_s"], 3),
                    round(scalar["ms_per_obs"], 4),
                    round(scalar["point"].simulated_seconds, 2),
                    round(scalar["point"].rec, 3),
                ],
                [
                    f"TMerge-B{BATCH}",
                    int(batched["observations"]),
                    round(batched["wall_s"], 3),
                    round(batched["ms_per_obs"], 4),
                    round(batched["point"].simulated_seconds, 2),
                    round(batched["point"].rec, 3),
                ],
            ],
            title=(
                "Hot path — scalar vs batched sampler, matched "
                "observation budget (MOT-17-like)"
            ),
        ),
    )
    record_summary(
        "hotpath_batched",
        recall=batched["point"].rec,
        reid_invocations=batched["point"].reid_invocations,
        simulated_ms=batched["point"].simulated_seconds * 1000.0,
        extras={
            "batch_size": float(BATCH),
            "scalar_wall_s": scalar["wall_s"],
            "batched_wall_s": batched["wall_s"],
            "scalar_ms_per_obs": scalar["ms_per_obs"],
            "batched_ms_per_obs": batched["ms_per_obs"],
            "hotpath_speedup": speedup,
            "scalar_recall": scalar["point"].rec,
            "scalar_simulated_ms": (
                scalar["point"].simulated_seconds * 1000.0
            ),
        },
    )

    # Deterministic guarantees (machine-independent): at a matched
    # observation budget the batched variant must respect the ReID
    # budget and beat the scalar simulated clock (the §IV-F amortization
    # this whole PR vectorizes the wall clock to match).
    assert scalar["observations"] > 0 and batched["observations"] > 0
    assert (
        abs(batched["observations"] - scalar["observations"])
        <= 0.15 * scalar["observations"]
    )
    assert batched["point"].reid_invocations <= int(
        1.05 * scalar["point"].reid_invocations
    )
    assert (
        batched["point"].simulated_seconds
        < scalar["point"].simulated_seconds
    )
    if not SMOKE:
        # Recall parity at matched budget (full scale only; smoke runs
        # are too small for stable recall).
        assert batched["point"].rec >= scalar["point"].rec - 0.1
