"""Figure 3 — REC-K curves of the exhaustive baseline on three datasets.

Paper shape: REC rises steeply with K and exceeds ~0.95 by K ≈ 0.05-0.085
on every dataset, so a small inspection budget suffices.

This bench also feeds the CI regression gate: the exhaustive scorer runs
under an injected :class:`~repro.telemetry.Telemetry`, and the resulting
recall / ReID-invocation / simulated-ms totals land in
``bench_summary.json`` (see conftest).
"""

from conftest import SMOKE, publish, record_summary

from repro.experiments.figures import fig3_rec_k
from repro.experiments.reporting import format_table
from repro.telemetry import Telemetry

KS = (0.005, 0.01, 0.02, 0.05, 0.1, 0.2)


def test_fig3_rec_k_curves(benchmark, datasets):
    telemetry = Telemetry()
    curves = benchmark.pedantic(
        lambda: fig3_rec_k(datasets, ks=KS, telemetry=telemetry),
        rounds=1,
        iterations=1,
    )

    rows = []
    for dataset, points in curves.items():
        for k, rec in points:
            rows.append([dataset, k, rec])
    publish(
        "fig3_rec_k",
        format_table(
            ["dataset", "K", "REC"], rows, title="Figure 3 — REC-K (BL)"
        ),
    )
    rec_at_headline_k = [dict(points)[0.05] for points in curves.values()]
    record_summary(
        "fig3_rec_k",
        recall=sum(rec_at_headline_k) / len(rec_at_headline_k),
        reid_invocations=telemetry.metrics.value("reid.invocations"),
        simulated_ms=telemetry.metrics.value("cost.simulated_ms"),
    )

    for dataset, points in curves.items():
        by_k = dict(points)
        # Monotone non-decreasing in K.
        values = [rec for _, rec in points]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:])), dataset
        if not SMOKE:
            # The paper's headline: small K already yields high recall.
            assert by_k[0.05] >= 0.85, dataset
            assert by_k[0.2] >= by_k[0.05]
