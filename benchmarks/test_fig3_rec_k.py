"""Figure 3 — REC-K curves of the exhaustive baseline on three datasets.

Paper shape: REC rises steeply with K and exceeds ~0.95 by K ≈ 0.05-0.085
on every dataset, so a small inspection budget suffices.

This bench also feeds the CI regression gate: the exhaustive scorer runs
under an injected :class:`~repro.telemetry.Telemetry`, and the resulting
recall / ReID-invocation / simulated-ms totals land in
``bench_summary.json`` (see conftest).
"""

import time

from conftest import SMOKE, publish, record_summary

from repro.core.baseline import BaselineMerger
from repro.experiments.figures import fig3_rec_k
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import evaluate_merger
from repro.telemetry import Telemetry

KS = (0.005, 0.01, 0.02, 0.05, 0.1, 0.2)


def test_fig3_rec_k_curves(benchmark, datasets):
    telemetry = Telemetry()
    curves = benchmark.pedantic(
        lambda: fig3_rec_k(datasets, ks=KS, telemetry=telemetry),
        rounds=1,
        iterations=1,
    )

    rows = []
    for dataset, points in curves.items():
        for k, rec in points:
            rows.append([dataset, k, rec])
    publish(
        "fig3_rec_k",
        format_table(
            ["dataset", "K", "REC"], rows, title="Figure 3 — REC-K (BL)"
        ),
    )
    rec_at_headline_k = [dict(points)[0.05] for points in curves.values()]
    record_summary(
        "fig3_rec_k",
        recall=sum(rec_at_headline_k) / len(rec_at_headline_k),
        reid_invocations=telemetry.metrics.value("reid.invocations"),
        simulated_ms=telemetry.metrics.value("cost.simulated_ms"),
    )

    for dataset, points in curves.items():
        by_k = dict(points)
        # Monotone non-decreasing in K.
        values = [rec for _, rec in points]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:])), dataset
        if not SMOKE:
            # The paper's headline: small K already yields high recall.
            assert by_k[0.05] >= 0.85, dataset
            assert by_k[0.2] >= by_k[0.05]


def test_fig3_parallel_speedup(datasets, bench_workers):
    """The window-sharded engine: bit-identical results, wall speedup.

    Runs the fig3 headline configuration through ``evaluate_merger``
    once serially (``workers=1``) and once with ``--workers`` processes,
    asserts the MethodPoints are exactly equal (the engine's core
    guarantee), and records the measured wall-clock speedup as ungated
    extras in bench_summary.json.  No ``speedup > 1`` assertion here:
    the number is machine-dependent (single-core runners cannot beat
    serial); CI reads it from the summary artifact.
    """
    videos = datasets["mot17"]

    def factory():
        return BaselineMerger(k=0.05)

    start = time.perf_counter()
    serial_point = evaluate_merger(factory, videos, workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel_point = evaluate_merger(factory, videos, workers=bench_workers)
    parallel_s = time.perf_counter() - start

    # MethodPoint is a frozen dataclass: equality is exact, field by field.
    assert parallel_point == serial_point

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    publish(
        "fig3_parallel_speedup",
        format_table(
            ["workers", "wall seconds", "speedup"],
            [
                [1, round(serial_s, 3), 1.0],
                [bench_workers, round(parallel_s, 3), round(speedup, 2)],
            ],
            title="Parallel engine — fig3 headline point, bit-identical",
        ),
    )
    record_summary(
        "fig3_parallel_speedup",
        recall=serial_point.rec,
        reid_invocations=serial_point.reid_invocations,
        simulated_ms=serial_point.simulated_seconds * 1000.0,
        extras={
            "workers": float(bench_workers),
            "wall_s_workers1": serial_s,
            "wall_s_parallel": parallel_s,
            "parallel_speedup": speedup,
        },
    )
