"""Figure 3 — REC-K curves of the exhaustive baseline on three datasets.

Paper shape: REC rises steeply with K and exceeds ~0.95 by K ≈ 0.05-0.085
on every dataset, so a small inspection budget suffices.
"""

from conftest import publish

from repro.experiments.figures import fig3_rec_k
from repro.experiments.reporting import format_table

KS = (0.005, 0.01, 0.02, 0.05, 0.1, 0.2)


def test_fig3_rec_k_curves(benchmark, datasets):
    curves = benchmark.pedantic(
        lambda: fig3_rec_k(datasets, ks=KS), rounds=1, iterations=1
    )

    rows = []
    for dataset, points in curves.items():
        for k, rec in points:
            rows.append([dataset, k, rec])
    publish(
        "fig3_rec_k",
        format_table(
            ["dataset", "K", "REC"], rows, title="Figure 3 — REC-K (BL)"
        ),
    )

    for dataset, points in curves.items():
        by_k = dict(points)
        # Monotone non-decreasing in K.
        values = [rec for _, rec in points]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:])), dataset
        # The paper's headline: small K already yields high recall.
        assert by_k[0.05] >= 0.85, dataset
        assert by_k[0.2] >= by_k[0.05]
