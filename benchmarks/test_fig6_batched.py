"""Figure 6 — REC-FPS curves of the GPU-batched variants (B = 10, 100).

Paper shape: batching multiplies TMerge-B's throughput (larger B → faster
at matched REC), helps PS-B and BL-B moderately, and barely helps LCB-B
whose deterministic selection fills batches with redundant same-arm draws.
"""

from conftest import publish

from repro.experiments.figures import fig6_batched
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import fps_at_rec

BATCH_TAUS = (250, 500, 1000, 2000)
ETAS = (0.0003, 0.001, 0.003)


def test_fig6_batched_curves(benchmark, mot17_videos):
    results = benchmark.pedantic(
        lambda: fig6_batched(
            mot17_videos,
            batch_sizes=(10, 100),
            batch_taus=BATCH_TAUS,
            etas=ETAS,
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for method, points in results.items():
        for point in points:
            rows.append([method, point.parameter, point.rec, point.fps])
    publish(
        "fig6_batched",
        format_table(
            ["method", "param", "REC", "FPS"],
            rows,
            title="Figure 6 — REC-FPS curves (batched, MOT-17-like)",
        ),
    )

    target = 0.9  # the high-REC regime, where the paper's gaps are widest
    tmerge10 = fps_at_rec(results["TMerge-B10"], target)
    tmerge100 = fps_at_rec(results["TMerge-B100"], target)
    assert tmerge10 is not None and tmerge100 is not None
    # Larger batches help TMerge-B.
    assert tmerge100 > tmerge10
    # TMerge-B dominates the batched competitors at matched REC.
    for rival in ("LCB-B10", "LCB-B100", "PS-B10", "PS-B100", "BL-B10"):
        rival_fps = fps_at_rec(results[rival], target)
        if rival_fps is not None:
            assert tmerge100 > 2.0 * rival_fps, rival
    # LCB-B gains nothing from a 10x larger batch (sequential dependence:
    # its batch fills with redundant draws from a single arm).
    lcb10 = fps_at_rec(results["LCB-B10"], target)
    lcb100 = fps_at_rec(results["LCB-B100"], target)
    if lcb10 is not None and lcb100 is not None:
        assert lcb100 < 2.0 * lcb10
