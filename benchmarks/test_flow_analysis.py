"""Analyzer-runtime benchmark: whole-program flow analysis over ``src``.

Not a paper artefact — this records how long the DESIGN.md §11 static
determinism analysis takes on the real codebase, plus its size
counters, as **ungated extras** in ``bench_summary.json``.  Wall time
is machine-dependent, so the regression gate ignores it; the entry
exists to make analyzer slowdowns visible in CI artifacts over time.
"""

from __future__ import annotations

import time
from pathlib import Path

from conftest import publish, record_summary

from repro.lint.flow import FlowAnalysis, check_contracts

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_flow_analysis_runtime() -> None:
    """Time one full build + contract check of ``src`` and record it."""
    src = REPO_ROOT / "src"
    start = time.perf_counter()
    analysis = FlowAnalysis.build([src])
    report = check_contracts(analysis)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    stats = analysis.stats()

    assert stats["n_functions"] > 100, "analysis saw too little code"
    assert not report.missing_roots, report.missing_roots

    lines = [
        "Whole-program flow analysis over src/ (DESIGN.md §11)",
        "",
        f"  wall time          {elapsed_ms:9.1f} ms",
        f"  modules            {stats['n_modules']:9d}",
        f"  functions          {stats['n_functions']:9d}",
        f"  call edges         {stats['n_edges']:9d}",
        f"  unresolved calls   {stats['n_unresolved_calls']:9d}",
        f"  effectful funcs    {stats['n_effectful_functions']:9d}",
        f"  violations         {len(report.violations):9d} (pre-baseline)",
    ]
    publish("flow_analysis", "\n".join(lines))
    record_summary(
        "flow_analysis",
        recall=1.0,
        reid_invocations=0.0,
        simulated_ms=0.0,
        extras={
            "analysis_wall_ms": round(elapsed_ms, 1),
            "n_modules": float(stats["n_modules"]),
            "n_functions": float(stats["n_functions"]),
            "n_edges": float(stats["n_edges"]),
            "n_unresolved_calls": float(stats["n_unresolved_calls"]),
            "n_effectful_functions": float(
                stats["n_effectful_functions"]
            ),
            "n_violations_pre_baseline": float(len(report.violations)),
        },
    )
