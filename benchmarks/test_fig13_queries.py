"""Figure 13 — recall of Count and Co-occurrence queries ± TMerge.

Paper shape: without merging, Count recall falls below ~75% and
Co-occurrence suffers too; merging lifts both to ~95%+.
"""

from conftest import publish

from repro.experiments.figures import fig13_query_recall
from repro.experiments.reporting import format_table


def test_fig13_query_recall(benchmark):
    rows = benchmark.pedantic(
        lambda: fig13_query_recall(
            preset="mot17",
            n_videos=2,
            n_frames=700,
            count_min_frames=200,
            cooccur_min_frames=50,
        ),
        rounds=1,
        iterations=1,
    )
    publish(
        "fig13_queries",
        format_table(
            ["query", "recall w/o TMerge", "recall w/ TMerge"],
            [list(r) for r in rows],
            title="Figure 13 — query recall (MOT-17-like)",
        ),
    )

    values = {name: (before, after) for name, before, after in rows}
    count_before, count_after = values["Count"]
    cooccur_before, cooccur_after = values["Co-occurrence"]
    # Fragmentation visibly hurts the raw results ...
    assert count_before < 0.9
    # ... and merging repairs them.
    assert count_after > count_before
    assert count_after >= 0.9
    assert cooccur_after >= cooccur_before
    assert cooccur_after >= 0.85
