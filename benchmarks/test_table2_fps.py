"""Table II — FPS of every method at fixed REC levels (0.80 and 0.93).

Paper shape (MOT-17): TMerge > LCB > PS > BL unbatched; batched TMerge-B
widens the gap further, with B=100 beating B=10.

The TMerge sweeps (unbatched + both batched variants) also feed the CI
regression gate: their best recall and total ReID-invocation count land
in ``bench_summary.json`` (see conftest).  Smoke mode shrinks the sweep
grids and skips the paper-shape assertions.
"""

from conftest import SMOKE, publish, record_summary

from repro.experiments.figures import (
    fig6_batched,
    method_sweeps,
    table2_fps,
)
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import rec_fps_sweep

if SMOKE:
    TAUS = (2000, 10000)
    ETAS = (0.001,)
    BATCH_TAUS = (250, 1000)
else:
    TAUS = (2000, 5000, 10000, 20000, 40000)
    ETAS = (0.0003, 0.001, 0.003, 0.01)
    BATCH_TAUS = (250, 500, 1000, 2000, 4000)
REC_TARGETS = (0.80, 0.93)


def _compute(videos):
    unbatched = {
        name: rec_fps_sweep(factories, videos)
        for name, factories in method_sweeps(taus=TAUS, etas=ETAS).items()
    }
    batched = fig6_batched(
        videos, batch_sizes=(10, 100), batch_taus=BATCH_TAUS, etas=ETAS
    )
    return unbatched, batched


def test_table2_fps_at_rec(benchmark, mot17_videos):
    unbatched, batched = benchmark.pedantic(
        lambda: _compute(mot17_videos), rounds=1, iterations=1
    )
    rows = table2_fps(unbatched, batched, rec_targets=REC_TARGETS)
    publish(
        "table2_fps",
        format_table(
            ["method", "FPS @ REC=0.80", "FPS @ REC=0.93"],
            rows,
            title="Table II — FPS at fixed REC (MOT-17-like)",
        ),
    )

    tmerge_sweeps = [unbatched["TMerge"]] + [
        points
        for name, points in batched.items()
        if name.startswith("TMerge-B")
    ]
    record_summary(
        "table2_tmerge",
        recall=max(p.rec for p in unbatched["TMerge"]),
        reid_invocations=sum(
            p.reid_invocations for sweep in tmerge_sweeps for p in sweep
        ),
        simulated_ms=sum(
            p.simulated_seconds for sweep in tmerge_sweeps for p in sweep
        )
        * 1000.0,
    )

    if SMOKE:
        return
    fps = {row[0]: row[1] for row in rows}  # at REC=0.80
    assert fps["TMerge"] is not None
    assert fps["BL"] is not None
    # Unbatched ordering at REC=0.80: TMerge fastest, BL slowest.
    assert fps["TMerge"] > fps["BL"]
    if fps["PS"] is not None:
        assert fps["TMerge"] > fps["PS"]
    if fps["LCB"] is not None:
        assert fps["TMerge"] >= 0.8 * fps["LCB"]  # at least competitive
    # Batched TMerge dominates its unbatched self and batched rivals.
    assert fps["TMerge-B100"] > fps["TMerge"]
    if fps.get("LCB-B100") is not None:
        assert fps["TMerge-B100"] > fps["LCB-B100"]
