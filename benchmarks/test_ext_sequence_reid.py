"""Extension bench — sequence-input ReID (footnote 2).

The paper notes its techniques apply unchanged when the ReID model accepts
fixed-length image sequences.  This bench runs TMerge with snippet lengths
1/2/4/8 at a fixed iteration budget: pooled snippets are more informative
per draw (higher REC) at a higher extraction cost per draw, tracing the
accuracy/cost knob sequence models add.
"""

from conftest import publish

from repro.core.tmerge import TMerge
from repro.experiments.reporting import format_table
from repro.metrics.recall import window_recall
from repro.reid import CostModel, SequenceReidScorer, SimReIDModel

SNIPPETS = (1, 2, 4, 8)
TAU = 5000


def _measure(videos):
    rows = []
    for k in SNIPPETS:
        recs = []
        seconds = 0.0
        frames = 0
        for video in videos:
            video.reset_sampling()
            scorer = SequenceReidScorer(
                SimReIDModel(video.world, seed=1),
                cost=CostModel(),
                snippet_length=k,
            )
            for pairs, gt in zip(video.window_pairs, video.window_gt):
                if not pairs:
                    continue
                result = TMerge(k=0.05, tau_max=TAU, seed=3).run(
                    pairs, scorer
                )
                rec = window_recall(result.candidate_keys, gt)
                if rec is not None:
                    recs.append(rec)
            seconds += scorer.cost.seconds
            frames += video.n_frames
        rows.append(
            (k, sum(recs) / len(recs) if recs else 1.0, frames / seconds)
        )
    return rows


def test_sequence_reid_tradeoff(benchmark, mot17_videos):
    rows = benchmark.pedantic(
        lambda: _measure(mot17_videos), rounds=1, iterations=1
    )
    publish(
        "ext_sequence_reid",
        format_table(
            ["snippet length", "REC @ tau=5000", "FPS"],
            [list(r) for r in rows],
            title="Extension — sequence-input ReID (footnote 2)",
        ),
    )

    recs = {k: rec for k, rec, _ in rows}
    fps = {k: f for k, _, f in rows}
    # Longer snippets are more informative per draw ...
    assert recs[4] > recs[1]
    # ... and cost more per draw.
    assert fps[4] < fps[1]
