"""Figure 11 — polyonymous rate of three trackers with and without TMerge.

Paper shape: every tracker's polyonymous rate drops by more than an order
of magnitude once TMerge's identified pairs are merged; no tracker
eliminates polyonymous tracks on its own.
"""

from conftest import publish

from repro.experiments.figures import fig11_polyonymous_rate
from repro.experiments.reporting import format_table


def test_fig11_polyonymous_rates(benchmark):
    rows = benchmark.pedantic(
        lambda: fig11_polyonymous_rate(
            preset="mot17", n_videos=2, n_frames=700
        ),
        rounds=1,
        iterations=1,
    )
    publish(
        "fig11_poly_rate",
        format_table(
            ["tracker", "rate w/o TMerge", "rate w/ TMerge"],
            [list(r) for r in rows],
            title="Figure 11 — Polyonymous rates (MOT-17-like)",
        ),
    )

    for tracker, without, with_tmerge in rows:
        # Trackers alone leave a non-trivial polyonymous rate ...
        assert without > 0.003, tracker
        # ... and TMerge removes the bulk of it (>5x reduction).
        assert with_tmerge < without / 5.0, tracker
