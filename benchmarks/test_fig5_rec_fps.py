"""Figure 5 — REC-FPS curves of BL, PS, LCB and TMerge on three datasets.

Paper shape: at matched REC, TMerge delivers an order of magnitude (or
more) higher FPS than PS and BL, with LCB the closest competitor.
"""

from conftest import publish

from repro.experiments.figures import fig5_rec_fps
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import fps_at_rec

TAUS = (2000, 5000, 10000, 20000, 40000)
ETAS = (0.0003, 0.001, 0.003)


def test_fig5_rec_fps_curves(benchmark, datasets):
    results = benchmark.pedantic(
        lambda: fig5_rec_fps(datasets, taus=TAUS, etas=ETAS),
        rounds=1,
        iterations=1,
    )

    rows = []
    for dataset, methods in results.items():
        for method, points in methods.items():
            for point in points:
                rows.append(
                    [dataset, method, point.parameter, point.rec, point.fps]
                )
    publish(
        "fig5_rec_fps",
        format_table(
            ["dataset", "method", "param", "REC", "FPS"],
            rows,
            title="Figure 5 — REC-FPS curves (unbatched)",
        ),
    )

    for dataset, methods in results.items():
        # TMerge reaches a usable REC level on every dataset ...
        best_tmerge = max(p.rec for p in methods["TMerge"])
        assert best_tmerge >= 0.7, dataset
        # ... and near its achievable top it is faster than PS and BL.
        # The factor is dataset-dependent (small KITTI-like windows make
        # the exhaustive baseline comparatively cheap; crowded MOT-17-like
        # and long PathTrack-like windows show 5-50x) — the *ordering* is
        # the paper's invariant.
        target = min(0.85, best_tmerge)
        tmerge_fps = fps_at_rec(methods["TMerge"], target)
        bl_fps = methods["BL"][0].fps
        assert tmerge_fps is not None, dataset
        assert tmerge_fps > 1.5 * bl_fps, dataset
        ps_fps = fps_at_rec(methods["PS"], target)
        if ps_fps is not None:
            assert tmerge_fps > 1.5 * ps_fps, dataset
