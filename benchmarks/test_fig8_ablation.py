"""Figure 8 — ablation: TMerge vs TMerge−BetaInit vs TMerge−ULB.

Paper shape: removing BetaInit costs the most (the curve sits lower-left);
removing ULB costs a smaller but visible amount.

Setup note: with the paper's exact range-1 Hoeffding radius, ULB's pruning
conditions never trigger under our distance statistics (documented in
DESIGN.md/EXPERIMENTS.md), so this bench runs ULB with the variance-aware
radius (``ulb_scale=0.25``) on KITTI-like windows (~450 pairs), where the
pruning mechanism is observable.
"""

from conftest import publish

from repro.core.tmerge import TMerge
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import rec_fps_sweep

TAUS = (1000, 2000, 4000, 8000)
ULB_SCALE = 0.25


def _sweeps(videos):
    variants = {
        "TMerge": dict(ulb_scale=ULB_SCALE, ulb_interval=10),
        "TMerge w/o BetaInit": dict(
            thr_s=None, ulb_scale=ULB_SCALE, ulb_interval=10
        ),
        "TMerge w/o ULB": dict(use_ulb=False),
    }
    results = {}
    for name, overrides in variants.items():
        factories = [
            (
                tau,
                lambda tau=tau, overrides=overrides: TMerge(
                    tau_max=tau, batch_size=10, seed=3, **overrides
                ),
            )
            for tau in TAUS
        ]
        results[name] = rec_fps_sweep(factories, videos)
    return results


def _curve_height(points):
    return sum(p.rec for p in points) / len(points)


def test_fig8_component_ablation(benchmark, datasets):
    videos = datasets["kitti"]
    results = benchmark.pedantic(
        lambda: _sweeps(videos), rounds=1, iterations=1
    )

    rows = []
    for variant, points in results.items():
        for point in points:
            rows.append([variant, point.parameter, point.rec, point.fps])
    publish(
        "fig8_ablation",
        format_table(
            ["variant", "tau_max", "REC", "FPS"],
            rows,
            title="Figure 8 — BetaInit / ULB ablation (KITTI-like)",
        ),
    )

    full = results["TMerge"]
    no_init = results["TMerge w/o BetaInit"]
    no_ulb = results["TMerge w/o ULB"]
    # BetaInit carries a clear accuracy benefit across the sweep.
    assert _curve_height(full) > _curve_height(no_init) - 0.02
    # ULB's contribution is cost: at the largest budget it reaches the
    # same REC while spending less simulated time (pruned arms stop
    # consuming ReID calls).
    assert full[-1].rec >= no_ulb[-1].rec - 0.05
    assert full[-1].simulated_seconds <= no_ulb[-1].simulated_seconds
    # And ULB's impact is the smaller of the two components (paper:
    # "BetaInit appears to have greater impact").
    ulb_gain = no_ulb[-1].simulated_seconds - full[-1].simulated_seconds
    assert ulb_gain >= 0.0
