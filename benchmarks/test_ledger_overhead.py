"""Ledger overhead — decision provenance must be (simulated-)free.

Runs the same MOT-17-like evaluation twice: plain, and with a
:class:`~repro.provenance.DecisionLedger` plus full telemetry attached.
The transparency contract (DESIGN.md §14) says recording never touches
the algorithm: recall, ReID invocations and the simulated clock must be
*bit-identical*, and that is asserted here — a strictly stronger check
than the gate's 5% simulated-ms tolerance, which guards the same number
against drift across commits.  The wall-clock price of recording is
machine-dependent and lands in the ungated ``extras`` (overhead ratio,
events recorded, events per simulated second).
"""

import time

from conftest import publish, record_summary

from repro.core.tmerge import TMerge
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import evaluate_merger
from repro.provenance import DecisionLedger
from repro.telemetry import Telemetry

TAU_MAX = 400


def _factory():
    return TMerge(k=0.1, tau_max=TAU_MAX, batch_size=10, seed=3)


def _run(videos, *, observed: bool):
    ledger = DecisionLedger() if observed else None
    telemetry = Telemetry() if observed else None
    start = time.perf_counter()
    point = evaluate_merger(
        _factory, videos, telemetry=telemetry, ledger=ledger
    )
    wall_s = time.perf_counter() - start
    return {
        "point": point,
        "wall_s": wall_s,
        "ledger": ledger,
    }


def test_ledger_overhead(mot17_videos):
    plain = _run(mot17_videos, observed=False)
    observed = _run(mot17_videos, observed=True)
    ledger = observed["ledger"]

    # Transparency: the observed run is the plain run, bit for bit.
    assert observed["point"] == plain["point"]
    assert len(ledger) > 0

    simulated_ms = observed["point"].simulated_seconds * 1000.0
    overhead = (
        observed["wall_s"] / plain["wall_s"]
        if plain["wall_s"] > 0
        else float("inf")
    )
    events_per_sim_s = (
        len(ledger) / observed["point"].simulated_seconds
        if observed["point"].simulated_seconds > 0
        else float("inf")
    )
    publish(
        "ledger_overhead",
        format_table(
            ["variant", "wall s", "sim s", "REC", "events"],
            [
                [
                    "plain",
                    round(plain["wall_s"], 3),
                    round(plain["point"].simulated_seconds, 2),
                    round(plain["point"].rec, 3),
                    0,
                ],
                [
                    "ledger + telemetry",
                    round(observed["wall_s"], 3),
                    round(observed["point"].simulated_seconds, 2),
                    round(observed["point"].rec, 3),
                    len(ledger),
                ],
            ],
            title=(
                "Decision-ledger overhead — same evaluation with and "
                "without provenance recording (bit-identical results)"
            ),
        ),
    )
    record_summary(
        "ledger_overhead",
        recall=observed["point"].rec,
        reid_invocations=observed["point"].reid_invocations,
        simulated_ms=simulated_ms,
        extras={
            "plain_wall_s": plain["wall_s"],
            "observed_wall_s": observed["wall_s"],
            "wall_overhead_ratio": overhead,
            "ledger_events": float(len(ledger)),
            "events_per_simulated_s": events_per_sim_s,
        },
    )
