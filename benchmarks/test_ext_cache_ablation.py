"""Extension bench — how much of TMerge's edge is the feature-reuse cache?

DESIGN.md calls this design choice out explicitly: the paper grants the
reuse optimization to TMerge (§IV-B) while PS and LCB, as described,
extract features per draw.  This bench re-runs PS and LCB *with* the cache
(``reuse_features=True``) to isolate the two effects:

* caching alone makes PS/LCB much faster, but
* TMerge retains an advantage from adaptive allocation.
"""

from conftest import publish

from repro.core.lcb import LcbMerger
from repro.core.proportional import ProportionalMerger
from repro.core.tmerge import TMerge
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import evaluate_merger


def _measure(videos):
    configs = [
        ("PS (fresh)", lambda: ProportionalMerger(eta=0.001, k=0.05, seed=3)),
        (
            "PS (+cache)",
            lambda: ProportionalMerger(
                eta=0.001, k=0.05, seed=3, reuse_features=True
            ),
        ),
        ("LCB (fresh)", lambda: LcbMerger(tau_max=10_000, k=0.05, seed=3)),
        (
            "LCB (+cache)",
            lambda: LcbMerger(
                tau_max=10_000, k=0.05, seed=3, reuse_features=True
            ),
        ),
        ("TMerge", lambda: TMerge(k=0.05, tau_max=10_000, seed=3)),
    ]
    return [
        (name, evaluate_merger(factory, videos))
        for name, factory in configs
    ]


def test_cache_ablation(benchmark, mot17_videos):
    results = benchmark.pedantic(
        lambda: _measure(mot17_videos), rounds=1, iterations=1
    )
    publish(
        "ext_cache_ablation",
        format_table(
            ["method", "REC", "FPS"],
            [[name, point.rec, point.fps] for name, point in results],
            title="Extension — feature-reuse cache ablation (MOT-17-like)",
        ),
    )

    by_name = dict(results)
    # The cache is a large part of the speed story ...
    assert by_name["PS (+cache)"].fps > 2.0 * by_name["PS (fresh)"].fps
    assert by_name["LCB (+cache)"].fps > 2.0 * by_name["LCB (fresh)"].fps
    # ... but does not change what was found (same draws, same estimates).
    assert abs(by_name["PS (+cache)"].rec - by_name["PS (fresh)"].rec) < 0.25
