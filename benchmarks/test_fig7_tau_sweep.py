"""Figure 7 — TMerge-B runtime and REC as τ_max grows.

Paper shape: REC rises quickly then saturates near the baseline's level;
runtime grows sublinearly in later iterations because cached features get
reused more and more.
"""

from conftest import publish

from repro.experiments.figures import fig7_tau_sweep
from repro.experiments.reporting import format_table

TAUS = (100, 250, 500, 1000, 2000, 4000)


def test_fig7_runtime_and_rec(benchmark, mot17_videos):
    rows = benchmark.pedantic(
        lambda: fig7_tau_sweep(mot17_videos, taus=TAUS, batch_size=10),
        rounds=1,
        iterations=1,
    )
    publish(
        "fig7_tau_sweep",
        format_table(
            ["tau_max", "runtime (simulated s)", "REC"],
            [list(r) for r in rows],
            title="Figure 7 — TMerge-B10 vs tau_max (MOT-17-like)",
        ),
    )

    taus = [r[0] for r in rows]
    runtimes = [r[1] for r in rows]
    recs = [r[2] for r in rows]
    # Runtime grows with tau_max ...
    assert all(a < b for a, b in zip(runtimes, runtimes[1:]))
    # ... but sublinearly: the last doubling of tau costs far less than 2x
    # (feature reuse kicks in).
    assert runtimes[-1] / runtimes[-2] < 1.7
    # REC improves substantially from the smallest to the largest budget
    # and saturates high.
    assert recs[-1] > recs[0]
    assert recs[-1] >= 0.85
    # Diminishing returns: the late REC gain is smaller than the early one.
    early_gain = recs[2] - recs[0]
    late_gain = recs[-1] - recs[-3]
    assert late_gain <= early_gain + 0.05
