"""Figure 10 — sensitivity to the BetaInit threshold thr_S.

Paper shape: every BetaInit-enabled curve beats the no-BetaInit curve, and
the threshold choice matters (the curves separate), motivating the grid
search the paper recommends.
"""

from conftest import publish

from repro.experiments.figures import fig10_thr_s
from repro.experiments.reporting import format_table

THRESHOLDS = (None, 100.0, 200.0, 300.0)
TAUS = (250, 500, 1000, 2000)


def _curve_height(points):
    return sum(p.rec for p in points) / len(points)


def test_fig10_thr_s_sensitivity(benchmark, mot17_videos):
    results = benchmark.pedantic(
        lambda: fig10_thr_s(
            mot17_videos, thresholds=THRESHOLDS, taus=TAUS, batch_size=10
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for label, points in results.items():
        for point in points:
            rows.append([label, point.parameter, point.rec, point.fps])
    publish(
        "fig10_thrs",
        format_table(
            ["thr_S", "tau_max", "REC", "FPS"],
            rows,
            title="Figure 10 — REC-FPS vs thr_S (MOT-17-like)",
        ),
    )

    no_init = _curve_height(results["no BetaInit"])
    with_init = [
        _curve_height(points)
        for label, points in results.items()
        if label != "no BetaInit"
    ]
    # Every BetaInit setting beats no BetaInit.
    assert all(height > no_init for height in with_init)
