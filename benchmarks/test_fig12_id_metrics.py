"""Figure 12 — IDF1 / IDP / IDR of Tracktor with and without TMerge.

Paper shape: merging the identified pairs improves IDF1 by several points,
with both IDP and IDR rising.
"""

from conftest import publish

from repro.experiments.figures import fig12_identity_metrics
from repro.experiments.reporting import format_table


def test_fig12_identity_metrics(benchmark):
    rows = benchmark.pedantic(
        lambda: fig12_identity_metrics(
            preset="mot17", n_videos=2, n_frames=700
        ),
        rounds=1,
        iterations=1,
    )
    publish(
        "fig12_id_metrics",
        format_table(
            ["metric", "w/o TMerge", "w/ TMerge"],
            [list(r) for r in rows],
            title="Figure 12 — identity metrics of Tracktor (MOT-17-like)",
        ),
    )

    values = {name: (before, after) for name, before, after in rows}
    for metric in ("IDF1", "IDP", "IDR"):
        before, after = values[metric]
        assert after > before, metric
    # IDF1 improves by at least the paper's ~5 points.
    assert values["IDF1"][1] - values["IDF1"][0] >= 0.05
