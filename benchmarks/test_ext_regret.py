"""Extension bench — the §IV-E regret analysis, measured.

The paper bounds TMerge's expected average regret by
``O(sqrt(|P_c| log τ / τ))``.  This bench measures the empirical average
regret at several iteration budgets and checks it (a) decreases with τ and
(b) stays within a constant factor of the bound's shape.
"""

from conftest import publish

from repro.bandit.regret import RegretTracker
from repro.core.scores import exact_normalized_score
from repro.core.tmerge import TMerge
from repro.experiments.reporting import format_table
from repro.reid import CostModel, ReidScorer, SimReIDModel

TAUS = (500, 2000, 8000, 32000)


def _measure(videos):
    """Average regret per τ on the first window of the first video."""
    video = videos[0]
    pairs = next(p for p in video.window_pairs if p)
    oracle = ReidScorer(SimReIDModel(video.world, seed=1), cost=CostModel())
    s_min = min(exact_normalized_score(pair, oracle) for pair in pairs)

    rows = []
    for tau in TAUS:
        video.reset_sampling()
        scorer = ReidScorer(
            SimReIDModel(video.world, seed=1), cost=CostModel()
        )
        result = TMerge(
            k=0.05, tau_max=tau, seed=3, s_min=s_min, use_ulb=False
        ).run(pairs, scorer)
        bound = RegretTracker.theoretical_bound(len(pairs), tau)
        rows.append((tau, result.extra["average_regret"], bound))
    return rows


def test_regret_follows_bound_shape(benchmark, mot17_videos):
    rows = benchmark.pedantic(
        lambda: _measure(mot17_videos), rounds=1, iterations=1
    )
    publish(
        "ext_regret",
        format_table(
            ["tau_max", "avg regret (measured)", "sqrt(|P_c| log tau / tau)"],
            [list(r) for r in rows],
            title="Extension — §IV-E average regret vs the theoretical shape",
        ),
    )

    regrets = [r[1] for r in rows]
    bounds = [r[2] for r in rows]
    # Average regret decreases as the budget grows.
    assert regrets[-1] < regrets[0]
    # And stays within a constant factor of the bound's shape.
    assert all(reg <= 3.0 * b for reg, b in zip(regrets, bounds))
