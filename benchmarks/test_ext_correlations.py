"""Extension bench — §IV-C's empirical justification for BetaInit.

The paper reports Pearson(DisS, score) ≥ 0.3 while Pearson(DisT, score)
< 0.1 (footnote 4), which is why BetaInit keys on space rather than time.
This bench measures both correlations on the simulated data.
"""

from conftest import publish

from repro.analysis import pair_signal_correlations
from repro.experiments.reporting import format_table
from repro.reid import CostModel, ReidScorer, SimReIDModel


def _measure(videos):
    rows = []
    for index, video in enumerate(videos):
        pairs = next(p for p in video.window_pairs if p)
        scorer = ReidScorer(
            SimReIDModel(video.world, seed=1), cost=CostModel()
        )
        corr = pair_signal_correlations(pairs, scorer)
        rows.append([f"video {index}", corr.n_pairs, corr.spatial,
                     corr.temporal])
    return rows


def test_spatial_beats_temporal_signal(benchmark, mot17_videos):
    rows = benchmark.pedantic(
        lambda: _measure(mot17_videos), rounds=1, iterations=1
    )
    publish(
        "ext_correlations",
        format_table(
            ["video", "pairs", "corr(DisS, score)", "corr(DisT, score)"],
            rows,
            title="Extension — §IV-C prior-signal correlations",
        ),
    )

    for _, _, spatial, temporal in rows:
        # Spatial distance is informative; temporal is not (< 0.1, as the
        # paper found).  Our spatial correlation is positive but weaker
        # than the paper's 0.3 because appearance-cluster hard negatives
        # decorrelate score from geometry (documented in EXPERIMENTS.md).
        assert spatial > 0.1
        assert abs(temporal) < 0.1
        assert spatial > 3.0 * abs(temporal)
