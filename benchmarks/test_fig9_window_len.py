"""Figure 9 — sensitivity to window length L on PathTrack-like videos.

Paper shape: with ``L < 2·L_max`` some fragments span more than two
windows and cannot be paired, depressing REC for BL *and* TMerge alike;
for ``L ≥ 2·L_max`` both are insensitive to L.
"""

from conftest import publish

from repro.experiments.figures import fig9_window_length
from repro.experiments.reporting import format_table

# PathTrack-like preset has L_max = 1000.
LENGTHS = (1000, 2000, 3000, 4000)


def test_fig9_window_length_sensitivity(benchmark):
    rows = benchmark.pedantic(
        lambda: fig9_window_length(
            preset="pathtrack",
            lengths=LENGTHS,
            n_videos=2,
            n_frames=1600,
            draws_per_pair=60,
            batch_size=100,
        ),
        rounds=1,
        iterations=1,
    )
    publish(
        "fig9_window_len",
        format_table(
            ["L", "REC (BL)", "REC (TMerge)"],
            [list(r) for r in rows],
            title="Figure 9 — REC vs window length (PathTrack-like, L_max=1000)",
        ),
    )

    by_length = {r[0]: (r[1], r[2]) for r in rows}
    # For L >= 2*L_max both algorithms are stable (insensitive to L).
    valid_bl = [by_length[length][0] for length in (2000, 3000, 4000)]
    assert max(valid_bl) - min(valid_bl) <= 0.15
    # The under-sized window (L < 2*L_max) loses structurally unreachable
    # pairs, so it cannot beat the valid settings.
    assert by_length[1000][0] <= min(valid_bl) + 0.02
    assert by_length[1000][1] <= min(
        by_length[length][1] for length in (2000, 3000, 4000)
    ) + 0.05
