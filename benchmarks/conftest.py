"""Shared infrastructure for the per-figure benchmark suite.

Every benchmark regenerates one of the paper's tables/figures at laptop
scale (smaller videos / fewer seeds than the paper, same parameter shapes).
Prepared datasets are cached per session; each bench measures its own
algorithm sweep with pytest-benchmark and writes the reproduced rows to
``benchmarks/results/<name>.txt`` (also echoed to stdout, visible with
``pytest -s``).

Two extra conventions support the CI bench gate:

* **Smoke mode** — ``REPRO_BENCH_SMOKE=1`` shrinks the dataset scales and
  (inside the gated benches) the sweep grids so the whole suite runs in CI
  minutes.  Smoke runs skip the paper-shape assertions (too small to hold)
  but still produce the metrics the gate compares.
* **Summary emission** — benches call :func:`record_summary` with their
  recall / ReID-invocation / simulated-ms numbers; at session end the
  collected records are written to ``benchmarks/results/bench_summary.json``
  for the ``python -m repro.experiments gate`` regression check.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.bench_summary import BenchSummary
from repro.experiments.prep import PreparedVideo, prepare_dataset

RESULTS_DIR = Path(__file__).parent / "results"

#: CI smoke mode: tiny scales, no paper-shape assertions, same metrics.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

# Laptop-scale defaults: 2 videos per dataset, shortened lengths.
if SMOKE:
    BENCH_SCALE = {
        "mot17": dict(n_videos=1, n_frames=300),
        "kitti": dict(n_videos=1, n_frames=300),
        "pathtrack": dict(n_videos=1, n_frames=500),
    }
else:
    BENCH_SCALE = {
        "mot17": dict(n_videos=2, n_frames=700),
        "kitti": dict(n_videos=2, n_frames=600),
        "pathtrack": dict(n_videos=2, n_frames=1400),
    }

_SUMMARY = BenchSummary()


def pytest_addoption(parser) -> None:
    """Register the parallel-engine worker count for speedup benches."""
    parser.addoption(
        "--workers",
        type=int,
        default=4,
        help="worker count for the parallel-engine speedup benchmark "
        "(default 4; speedup >1 needs a multi-core machine)",
    )


@pytest.fixture(scope="session")
def bench_workers(request) -> int:
    """The --workers option (parallel-engine speedup benches)."""
    return request.config.getoption("--workers")


@pytest.fixture(scope="session")
def datasets() -> dict[str, list[PreparedVideo]]:
    """Prepared videos per dataset (simulate → detect → track → label)."""
    prepared = {}
    for name, scale in BENCH_SCALE.items():
        prepared[name] = prepare_dataset(
            name,
            scale["n_videos"],
            seed=0,
            n_frames=scale["n_frames"],
        )
    return prepared


@pytest.fixture(scope="session")
def mot17_videos(datasets) -> list[PreparedVideo]:
    return datasets["mot17"]


def publish(name: str, text: str) -> None:
    """Print a reproduced table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def record_summary(
    name: str,
    recall: float,
    reid_invocations: float,
    simulated_ms: float,
    extras: dict[str, float] | None = None,
) -> None:
    """Contribute one benchmark's metrics to bench_summary.json.

    ``extras`` records ungated machine-specific numbers (wall-clock
    speedups); the gate only compares the three metric keys.
    """
    _SUMMARY.add(
        name,
        recall=recall,
        reid_invocations=reid_invocations,
        simulated_ms=simulated_ms,
        extras=extras,
    )


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write the collected summary once every bench has reported."""
    if _SUMMARY.benchmarks:
        RESULTS_DIR.mkdir(exist_ok=True)
        _SUMMARY.write(RESULTS_DIR / "bench_summary.json")
