"""Shared infrastructure for the per-figure benchmark suite.

Every benchmark regenerates one of the paper's tables/figures at laptop
scale (smaller videos / fewer seeds than the paper, same parameter shapes).
Prepared datasets are cached per session; each bench measures its own
algorithm sweep with pytest-benchmark and writes the reproduced rows to
``benchmarks/results/<name>.txt`` (also echoed to stdout, visible with
``pytest -s``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.prep import PreparedVideo, prepare_dataset

RESULTS_DIR = Path(__file__).parent / "results"

# Laptop-scale defaults: 2 videos per dataset, shortened lengths.
BENCH_SCALE = {
    "mot17": dict(n_videos=2, n_frames=700),
    "kitti": dict(n_videos=2, n_frames=600),
    "pathtrack": dict(n_videos=2, n_frames=1400),
}


@pytest.fixture(scope="session")
def datasets() -> dict[str, list[PreparedVideo]]:
    """Prepared videos per dataset (simulate → detect → track → label)."""
    prepared = {}
    for name, scale in BENCH_SCALE.items():
        prepared[name] = prepare_dataset(
            name,
            scale["n_videos"],
            seed=0,
            n_frames=scale["n_frames"],
        )
    return prepared


@pytest.fixture(scope="session")
def mot17_videos(datasets) -> list[PreparedVideo]:
    return datasets["mot17"]


def publish(name: str, text: str) -> None:
    """Print a reproduced table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
