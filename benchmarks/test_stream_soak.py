"""Chaos soak — the streaming service over a long faulty feed.

Drives the watermark-driven streaming service over a feed an order of
magnitude longer than its resident-window bound, with arrival disorder
and the ``flaky-reid`` fault profile active, *kills* it mid-feed and
resumes from its checkpoint.  Asserts the robustness contract end to
end: stitched emissions bit-identical to an uninterrupted run, peak
resident windows within the configured bound, nothing shed under the
lossless policy — and records recall / ReID-invocation / simulated-ms
metrics (plus soak extras) into ``bench_summary.json`` for the gate.
"""

from conftest import SMOKE, publish, record_summary

from repro.core.tmerge import TMerge
from repro.experiments.reporting import format_table
from repro.faults import fault_profile
from repro.metrics.matching import match_tracks_to_gt, polyonymous_pairs
from repro.resilience import CheckpointStore
from repro.streaming import StreamingIngestionService, SyntheticFeedSource
from repro.synth.datasets import mot17_like
from repro.synth.world import simulate_world
from repro.track import TracktorTracker

N_FRAMES = 600 if SMOKE else 1800
WINDOW_LENGTH = 100
MAX_OPEN_WINDOWS = 8
KILL_AFTER = 3


def _service(store):
    return StreamingIngestionService(
        TracktorTracker(),
        TMerge(k=0.1, tau_max=300, batch_size=10, seed=3),
        window_length=WINDOW_LENGTH,
        allowed_lateness=4,
        max_open_windows=MAX_OPEN_WINDOWS,
        workers=2,
        parallel_backend="thread",
        fault_profile=fault_profile("flaky-reid", seed=11),
        store=store,
    )


def test_stream_soak_kill_resume(benchmark):
    world = simulate_world(mot17_like().config, N_FRAMES, seed=4)
    source = SyntheticFeedSource(
        world,
        disorder_ms=60.0,
        disorder_seed=5,
        fault_profile=fault_profile("flaky-reid", seed=11),
    )

    def soak():
        reference = _service(CheckpointStore()).run(source)
        store = CheckpointStore()
        first = _service(store).run(source, stop_after_windows=KILL_AFTER)
        resumed = _service(store).run(source)
        return reference, first, resumed

    reference, first, resumed = benchmark.pedantic(
        soak, rounds=1, iterations=1
    )

    # --- robustness contract ------------------------------------------
    stitched = first.fingerprints() + resumed.fingerprints()
    assert stitched == reference.fingerprints()
    assert resumed.counters == reference.counters
    assert resumed.cost.state_dict() == reference.cost.state_dict()
    n_windows = len(reference.emissions)
    assert n_windows * (WINDOW_LENGTH // 2) >= N_FRAMES  # feed covered
    assert reference.peak_open_windows <= MAX_OPEN_WINDOWS
    assert reference.counters.get("stream.frames_shed_late", 0.0) == 0.0
    assert reference.counters["stream.frames_in"] == N_FRAMES

    # --- quality + cost metrics for the gate --------------------------
    tracks = {
        pair.track_a.track_id: pair.track_a
        for emission in reference.emissions
        for pair in emission.pairs
    }
    tracks.update(
        (pair.track_b.track_id, pair.track_b)
        for emission in reference.emissions
        for pair in emission.pairs
    )
    assignment = match_tracks_to_gt(list(tracks.values()), world)
    found = 0
    total = 0
    for emission in reference.emissions:
        gt = polyonymous_pairs(emission.pairs, assignment)
        found += len(emission.result.candidate_keys & gt)
        total += len(gt)
    recall = found / total if total else 1.0
    cost = reference.cost.state_dict()
    invocations = cost["n_extractions"] + cost["n_batched_extractions"]

    rows = [
        ["windows emitted", n_windows],
        ["peak open windows", reference.peak_open_windows],
        ["recall over soak", round(recall, 4)],
        ["reid invocations", int(invocations)],
        ["simulated ms", round(cost["ms"], 1)],
        ["transient faults absorbed",
         int(reference.resilience_stats.get("transient_faults", 0.0))],
        ["degraded windows",
         int(reference.counters.get("stream.windows_degraded", 0.0))],
    ]
    publish(
        "stream_soak",
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"Streaming soak — {N_FRAMES} frames, flaky-reid, "
                f"killed after {KILL_AFTER} windows and resumed "
                "(bit-identical)"
            ),
        ),
    )
    record_summary(
        "stream_soak",
        recall=recall,
        reid_invocations=invocations,
        simulated_ms=cost["ms"],
        extras={
            "peak_open_windows": reference.peak_open_windows,
            "windows": n_windows,
            "transient_faults": reference.resilience_stats.get(
                "transient_faults", 0.0
            ),
            "degraded_windows": reference.counters.get(
                "stream.windows_degraded", 0.0
            ),
        },
    )
