"""Figure 4 — baseline runtime and accumulated pair count vs video length.

Paper shape: both the number of track pairs and the brute-force runtime
grow steeply (superlinearly in pair work) with video length, motivating a
sampling approach.
"""

from conftest import publish

from repro.experiments.figures import fig4_runtime_scaling
from repro.experiments.reporting import format_table

LENGTHS = (400, 800, 1200, 1600)


def test_fig4_runtime_and_pairs(benchmark):
    rows = benchmark.pedantic(
        lambda: fig4_runtime_scaling(lengths=LENGTHS, preset="pathtrack"),
        rounds=1,
        iterations=1,
    )
    publish(
        "fig4_runtime_scaling",
        format_table(
            ["video frames", "accumulated pairs", "BL seconds (simulated)"],
            [list(r) for r in rows],
            title="Figure 4 — BL cost vs video length (PathTrack-like)",
        ),
    )

    pair_counts = [r[1] for r in rows]
    seconds = [r[2] for r in rows]
    # Both grow monotonically with video length ...
    assert all(a <= b for a, b in zip(pair_counts, pair_counts[1:]))
    assert all(a < b for a, b in zip(seconds, seconds[1:]))
    # ... and the growth is steep: 4x the video costs >> 4x the time.
    assert seconds[-1] / seconds[0] > 4.0
