"""Opt-in runtime contracts for the TMerge stack's numeric invariants.

The linter (:mod:`repro.lint`) enforces *structural* invariants
statically; this module enforces the *numeric* ones dynamically — but
only when ``REPRO_CHECK_INVARIANTS=1`` is set in the environment, so
benchmarks pay nothing.  The checked invariants, with their paper
anchors:

* Beta posterior parameters stay strictly positive (§IV posterior
  update — ``Be(S, F)`` is undefined otherwise and ``rng.beta`` would
  raise or return NaN).
* Normalized ReID distances satisfy ``d̃ ∈ [0, 1]`` (Definition 3.1 —
  the Bernoulli quantization ``P[success] = d̃`` needs a probability).
* The candidate budget obeys ``0 ≤ ⌈K·|P_c|⌉ ≤ |P_c|``.
* :class:`~repro.core.ulb.UlbPruner` keeps its accepted and rejected
  sets disjoint and in range (Algorithm 4 — an arm cannot be both
  certainly inside and certainly outside the top-K).
* The window length satisfies ``L ≥ 2·L_max`` when a maximum track
  length is declared (§II — guarantees a fragmented GT track cannot
  out-span two consecutive windows).

Call sites guard with ``if contracts.ENABLED:`` so the disabled path
costs one attribute load; every check also early-returns when disabled,
making stray unguarded calls harmless.
"""

from __future__ import annotations

import os
from typing import Iterable

import numpy as np

#: Environment variable that switches the contract layer on.
ENV_VAR = "REPRO_CHECK_INVARIANTS"

_FALSY = frozenset({"", "0", "false", "False", "no", "off"})


class ContractViolation(AssertionError):
    """A runtime invariant of the TMerge stack was broken."""


def _env_enabled() -> bool:
    """Whether the environment requests contract checking."""
    return os.environ.get(ENV_VAR, "") not in _FALSY


#: Module-level switch, resolved once at import from :data:`ENV_VAR`.
#: Tests flip it through :func:`set_enabled`.
ENABLED: bool = _env_enabled()


def enabled() -> bool:
    """Whether contract checks are currently active."""
    return ENABLED


def set_enabled(flag: bool) -> bool:
    """Set the contract switch; returns the previous value (for tests)."""
    global ENABLED
    previous = ENABLED
    ENABLED = bool(flag)
    return previous


def refresh_from_env() -> bool:
    """Re-read :data:`ENV_VAR` (after an ``os.environ`` change); returns
    the new switch state."""
    set_enabled(_env_enabled())
    return ENABLED


def check_beta_params(
    successes: np.ndarray, failures: np.ndarray, where: str = "posterior"
) -> None:
    """Beta shape parameters must be strictly positive and finite.

    Raises:
        ContractViolation: when any ``S`` or ``F`` is ≤ 0, NaN or inf.
    """
    if not ENABLED:
        return
    successes = np.asarray(successes, dtype=np.float64)
    failures = np.asarray(failures, dtype=np.float64)
    if successes.shape != failures.shape:
        raise ContractViolation(
            f"{where}: successes shape {successes.shape} != failures "
            f"shape {failures.shape}"
        )
    for label, params in (("successes", successes), ("failures", failures)):
        if params.size and not np.all(np.isfinite(params) & (params > 0.0)):
            bad = int(np.argmin(np.isfinite(params) & (params > 0.0)))
            raise ContractViolation(
                f"{where}: Beta {label} must be strictly positive and "
                f"finite; index {bad} holds {params.flat[bad]!r}"
            )


def check_normalized_distance(
    value: float | np.ndarray, where: str = "d_norm"
) -> None:
    """Normalized distances must lie in ``[0, 1]`` (Definition 3.1).

    Raises:
        ContractViolation: when any value is outside ``[0, 1]`` or NaN.
    """
    if not ENABLED:
        return
    values = np.asarray(value, dtype=np.float64)
    inside = np.isfinite(values) & (values >= 0.0) & (values <= 1.0)
    if values.size and not np.all(inside):
        bad = int(np.argmin(inside))
        raise ContractViolation(
            f"{where}: normalized distance must be in [0, 1]; got "
            f"{values.flat[bad]!r}"
        )


def check_top_k_budget(budget: int, n_pairs: int, where: str = "top_k") -> None:
    """The candidate budget obeys ``0 ≤ budget ≤ n_pairs``.

    Raises:
        ContractViolation: when the budget is negative or exceeds the
            pair count.
    """
    if not ENABLED:
        return
    if not 0 <= budget <= n_pairs:
        raise ContractViolation(
            f"{where}: candidate budget {budget} outside [0, {n_pairs}]"
        )


def check_ulb_partition(
    accepted: Iterable[int],
    rejected: Iterable[int],
    n_arms: int,
    where: str = "UlbPruner",
) -> None:
    """Accepted/rejected arm sets are disjoint subsets of the arm range.

    Raises:
        ContractViolation: on overlap or out-of-range arm indices.
    """
    if not ENABLED:
        return
    accepted = set(accepted)
    rejected = set(rejected)
    overlap = accepted & rejected
    if overlap:
        raise ContractViolation(
            f"{where}: arms {sorted(overlap)} both accepted and rejected"
        )
    out_of_range = [
        arm for arm in sorted(accepted | rejected) if not 0 <= arm < n_arms
    ]
    if out_of_range:
        raise ContractViolation(
            f"{where}: arm indices {out_of_range} outside "
            f"[0, {n_arms})"
        )


def check_window_length(
    window_length: int, l_max: int, where: str = "partition_windows"
) -> None:
    """The §II window constraint ``L ≥ 2·L_max``.

    Raises:
        ContractViolation: when windows are too short for the declared
            maximum track length, so a fragmented GT track could span
            more than two consecutive windows.
    """
    if not ENABLED:
        return
    if l_max < 1:
        raise ContractViolation(f"{where}: l_max must be >= 1, got {l_max}")
    if window_length < 2 * l_max:
        raise ContractViolation(
            f"{where}: window length {window_length} violates "
            f"L >= 2*L_max = {2 * l_max}"
        )


def check_shard_cover(
    covered: Iterable[int],
    expected: Iterable[int],
    where: str = "parallel",
) -> None:
    """Shard outputs must cover every expected window exactly once.

    The parallel engine (:mod:`repro.parallel`) asserts that the
    reassembled window outcomes form a partition of the busy windows:
    no window lost, none computed twice, none invented.

    Raises:
        ContractViolation: on duplicated, missing or unexpected window
            indices.
    """
    if not ENABLED:
        return
    seen: set[int] = set()
    duplicates: set[int] = set()
    for index in covered:
        if index in seen:
            duplicates.add(index)
        seen.add(index)
    if duplicates:
        raise ContractViolation(
            f"{where}: windows {sorted(duplicates)} produced by more than "
            "one shard"
        )
    expected_set = set(expected)
    missing = expected_set - seen
    if missing:
        raise ContractViolation(
            f"{where}: windows {sorted(missing)} missing from shard outputs"
        )
    extra = seen - expected_set
    if extra:
        raise ContractViolation(
            f"{where}: unexpected windows {sorted(extra)} in shard outputs"
        )


#: Legal circuit-breaker transitions (see DESIGN.md §7): the breaker may
#: trip from closed, cool down from open, and resolve a trial either way.
LEGAL_BREAKER_TRANSITIONS = frozenset(
    {
        ("closed", "open"),
        ("open", "half_open"),
        ("half_open", "closed"),
        ("half_open", "open"),
    }
)


def check_finite_distance(
    value: float, where: str = "distance"
) -> None:
    """Raw ReID distances must be finite (no NaN/inf from corruption).

    Raises:
        ContractViolation: when ``value`` is NaN or infinite.
    """
    if not ENABLED:
        return
    if not np.isfinite(value):
        raise ContractViolation(
            f"{where}: non-finite ReID distance {value!r} (corrupted "
            "feature reached the scoring layer)"
        )


def check_breaker_transition(
    old_state: str, new_state: str, where: str = "CircuitBreaker"
) -> None:
    """Circuit-breaker state changes must follow the three-state machine.

    Raises:
        ContractViolation: when ``old_state → new_state`` is not in
            :data:`LEGAL_BREAKER_TRANSITIONS`.
    """
    if not ENABLED:
        return
    if (old_state, new_state) not in LEGAL_BREAKER_TRANSITIONS:
        raise ContractViolation(
            f"{where}: illegal breaker transition {old_state!r} -> "
            f"{new_state!r}"
        )


def _deep_equal(left: object, right: object) -> bool:
    """Structural equality for JSON-able payloads (no float coercion)."""
    if type(left) is not type(right):
        return False
    if isinstance(left, dict):
        if left.keys() != right.keys():  # type: ignore[union-attr]
            return False
        return all(
            _deep_equal(value, right[key])  # type: ignore[index]
            for key, value in left.items()
        )
    if isinstance(left, (list, tuple)):
        if len(left) != len(right):  # type: ignore[arg-type]
            return False
        return all(
            _deep_equal(a, b)
            for a, b in zip(left, right)  # type: ignore[call-overload]
        )
    return left == right


def check_checkpoint_roundtrip(
    original: dict, restored: dict, where: str = "checkpoint"
) -> None:
    """A checkpoint must deep-equal its own serialization round-trip.

    Floats must round-trip exactly (JSON repr is lossless for IEEE
    doubles) and container types must be preserved — otherwise a resumed
    window could diverge from the uninterrupted run.

    Raises:
        ContractViolation: when the round-tripped payload differs.
    """
    if not ENABLED:
        return
    if not _deep_equal(original, restored):
        raise ContractViolation(
            f"{where}: checkpoint payload does not survive its "
            "serialization round-trip"
        )


def check_windows_partition(
    windows: Iterable[object], n_frames: int, where: str = "windows"
) -> None:
    """Window ownership regions tile ``[0, n_frames)`` exactly once.

    Every frame must fall in exactly one window's first half (the
    region that owns new tracks), which is what makes Eq. 1's pair sets
    consider every unordered track pair exactly once.

    Raises:
        ContractViolation: on gaps or overlaps in the ownership tiling.
    """
    if not ENABLED:
        return
    cursor = 0
    for window in windows:
        start = window.start  # type: ignore[attr-defined]
        ownership_end = window.ownership_end  # type: ignore[attr-defined]
        if start != cursor:
            raise ContractViolation(
                f"{where}: window {window.index} ownership starts at "  # type: ignore[attr-defined]
                f"{start}, expected {cursor}"
            )
        cursor = ownership_end
    if cursor < n_frames:
        raise ContractViolation(
            f"{where}: ownership tiling ends at {cursor}, leaving frames "
            f"up to {n_frames} unowned"
        )


def check_open_window_bound(
    n_open: int, bound: int, where: str = "streaming"
) -> None:
    """Resident open-window count respects the configured memory bound.

    The streaming service's whole point is that memory is bounded by the
    number of simultaneously open windows, never by feed length; this
    trips the moment eviction falls behind.

    Raises:
        ContractViolation: when ``n_open`` exceeds ``bound``.
    """
    if not ENABLED:
        return
    if n_open > bound:
        raise ContractViolation(
            f"{where}: {n_open} windows resident, bound is {bound} — "
            "either eviction fell behind the watermark, or a track "
            "outlived bound*stride frames and its owner window cannot "
            "close; size max_open_windows above the longest expected "
            "track span divided by the window stride"
        )


def check_watermark_monotonic(
    previous: int, current: int, where: str = "streaming"
) -> None:
    """The watermark never moves backwards.

    Every window-close decision is justified by "no more frames at or
    before the watermark will arrive"; a regression would re-admit
    already-finalized frames and corrupt window contents.

    Raises:
        ContractViolation: when ``current`` is below ``previous``.
    """
    if not ENABLED:
        return
    if current < previous:
        raise ContractViolation(
            f"{where}: watermark regressed from {previous} to {current}"
        )
