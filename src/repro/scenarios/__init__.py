"""Composable scenario generation for regime-sweep testing.

The paper evaluates TMerge on three friendly dataset presets; production
feeds are not friendly.  This package crosses those presets with
orthogonal *regime axes* — crowd surges, weather/glare with feature
corruption, camera dropouts, heavy-tailed track lengths — into a named
matrix of scenarios, each a pure function of ``(spec, seed)`` with a
stable identity hash.

The sweep harness (``python -m repro.experiments scenarios``) runs the
matrix through both the batch pipeline and the streaming service and
gates per-scenario metrics against a committed baseline; see
:mod:`repro.experiments.scenarios`.
"""

from repro.scenarios.axes import (
    DropoutAxis,
    SurgeAxis,
    TailAxis,
    WeatherAxis,
)
from repro.scenarios.generator import (
    Scenario,
    ScenarioSeeds,
    build_scenario,
    compact_scene,
    compose_fault_profile,
    compose_scene,
    derive_seeds,
    fault_parts,
)
from repro.scenarios.matrix import (
    SCENARIO_MATRIX,
    SMOKE_FRAMES,
    SMOKE_SUBSET,
    scenario_by_name,
    scenario_names,
    smoke_variant,
)
from repro.scenarios.spec import ID_HEX_CHARS, ScenarioSpec

__all__ = [
    "DropoutAxis",
    "SurgeAxis",
    "TailAxis",
    "WeatherAxis",
    "Scenario",
    "ScenarioSeeds",
    "build_scenario",
    "compact_scene",
    "compose_fault_profile",
    "compose_scene",
    "derive_seeds",
    "fault_parts",
    "SCENARIO_MATRIX",
    "SMOKE_FRAMES",
    "SMOKE_SUBSET",
    "scenario_by_name",
    "scenario_names",
    "smoke_variant",
    "ID_HEX_CHARS",
    "ScenarioSpec",
]
