"""The named scenario matrix the sweep harness and CI run.

Each entry is a :class:`~repro.scenarios.spec.ScenarioSpec` crossing a
dataset preset with one or more regime axes.  Names are stable public
identifiers — the committed sweep baseline and the CI gate key on them —
so renaming a scenario is a baseline-refresh event by construction (its
``scenario_id`` moves with it).

The matrix covers, per preset: a clear-weather control, crowd surges,
weather/glare + feature corruption, camera dropouts, heavy-tailed track
lengths, and compound regimes mixing several axes.  ``chaos-baseline``
is the axis-free compact world the test suite's shared
``scenario_world`` fixture builds on.
"""

from __future__ import annotations

from dataclasses import replace

from repro.scenarios.axes import DropoutAxis, SurgeAxis, TailAxis, WeatherAxis
from repro.scenarios.spec import ScenarioSpec

#: Frame budget of a smoke-mode scenario (CI's quick lane).
SMOKE_FRAMES = 220

SCENARIO_MATRIX: tuple[ScenarioSpec, ...] = (
    # Clear-weather controls, one per preset.
    ScenarioSpec(name="mot17-clear", preset="mot17"),
    ScenarioSpec(name="kitti-clear", preset="kitti"),
    ScenarioSpec(name="pathtrack-clear", preset="pathtrack"),
    # Crowd surges.
    ScenarioSpec(
        name="mot17-rush-hour",
        preset="mot17",
        surge=SurgeAxis(bursts=((0.3, 0.7, 4.0),), max_objects_boost=6),
    ),
    ScenarioSpec(
        name="mot17-pulsed-surge",
        preset="mot17",
        surge=SurgeAxis(
            bursts=((0.1, 0.25, 3.0), (0.5, 0.65, 3.0), (0.8, 0.95, 3.0)),
            max_objects_boost=4,
        ),
    ),
    ScenarioSpec(
        name="kitti-onramp-surge",
        preset="kitti",
        surge=SurgeAxis(bursts=((0.4, 0.8, 5.0),), max_objects_boost=5),
    ),
    ScenarioSpec(
        name="pathtrack-crowd-swell",
        preset="pathtrack",
        surge=SurgeAxis(bursts=((0.2, 0.9, 2.5),), max_objects_boost=8),
    ),
    # Weather / glare.
    ScenarioSpec(
        name="mot17-glare-storm",
        preset="mot17",
        weather=WeatherAxis(glare_rate_boost=6.0, glare_strength=0.02),
    ),
    ScenarioSpec(
        name="kitti-sun-glare",
        preset="kitti",
        weather=WeatherAxis(
            glare_rate_boost=5.0, glare_strength=0.03, corrupt_rate=0.05
        ),
    ),
    ScenarioSpec(
        name="pathtrack-heat-haze",
        preset="pathtrack",
        weather=WeatherAxis(
            glare_rate_boost=3.0, corrupt_rate=0.08, corrupt_mode="swap"
        ),
    ),
    ScenarioSpec(
        name="mot17-night-rain",
        preset="mot17",
        weather=WeatherAxis(glare_rate_boost=2.0, corrupt_rate=0.12),
    ),
    # Camera dropouts.
    ScenarioSpec(
        name="mot17-flaky-uplink",
        preset="mot17",
        dropout=DropoutAxis(frame_drop_rate=0.08),
    ),
    ScenarioSpec(
        name="kitti-camera-dropout",
        preset="kitti",
        dropout=DropoutAxis(frame_drop_rate=0.12, window_crash_rate=0.25),
    ),
    ScenarioSpec(
        name="pathtrack-worker-churn",
        preset="pathtrack",
        dropout=DropoutAxis(window_crash_rate=0.6),
    ),
    # Heavy-tailed track lengths.
    ScenarioSpec(
        name="mot17-longtail",
        preset="mot17",
        tail=TailAxis(alpha=1.1, max_length=220),
    ),
    ScenarioSpec(
        name="pathtrack-longtail",
        preset="pathtrack",
        tail=TailAxis(alpha=0.9, max_length=260),
    ),
    ScenarioSpec(
        name="kitti-shortlived",
        preset="kitti",
        tail=TailAxis(alpha=3.5),
    ),
    # Compound regimes.
    ScenarioSpec(
        name="mot17-surge-dropout",
        preset="mot17",
        surge=SurgeAxis(bursts=((0.25, 0.75, 3.0),), max_objects_boost=5),
        dropout=DropoutAxis(frame_drop_rate=0.06, window_crash_rate=0.2),
    ),
    ScenarioSpec(
        name="kitti-glare-surge",
        preset="kitti",
        surge=SurgeAxis(bursts=((0.3, 0.7, 3.0),), max_objects_boost=4),
        weather=WeatherAxis(glare_rate_boost=4.0, corrupt_rate=0.05),
    ),
    ScenarioSpec(
        name="pathtrack-storm",
        preset="pathtrack",
        weather=WeatherAxis(
            glare_rate_boost=4.0, glare_strength=0.04, corrupt_rate=0.06
        ),
        dropout=DropoutAxis(frame_drop_rate=0.08),
    ),
    ScenarioSpec(
        name="mot17-perfect-storm",
        preset="mot17",
        surge=SurgeAxis(bursts=((0.2, 0.6, 3.5),), max_objects_boost=5),
        weather=WeatherAxis(glare_rate_boost=3.0, corrupt_rate=0.08),
        dropout=DropoutAxis(frame_drop_rate=0.05, window_crash_rate=0.3),
        tail=TailAxis(alpha=1.3, max_length=200),
    ),
    # The axis-free compact world backing the shared test fixture.
    ScenarioSpec(name="chaos-baseline", preset="mot17", n_frames=240),
)

_BY_NAME: dict[str, ScenarioSpec] = {
    spec.name: spec for spec in SCENARIO_MATRIX
}
if len(_BY_NAME) != len(SCENARIO_MATRIX):
    raise AssertionError("scenario names in SCENARIO_MATRIX must be unique")

#: The representative subset the default test job smoke-runs (one clear
#: control, one compound regime, one fault-seam regime).
SMOKE_SUBSET: tuple[str, ...] = (
    "mot17-clear",
    "kitti-camera-dropout",
    "mot17-perfect-storm",
)


def scenario_names() -> tuple[str, ...]:
    """All matrix scenario names, in matrix order."""
    return tuple(spec.name for spec in SCENARIO_MATRIX)


def scenario_by_name(name: str) -> ScenarioSpec:
    """Look up a matrix spec by name.

    Raises:
        KeyError: on an unknown name (message lists the known names).
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None


def smoke_variant(spec: ScenarioSpec) -> ScenarioSpec:
    """The smoke-mode (CI quick lane) variant of a spec.

    Shrinks the frame budget to :data:`SMOKE_FRAMES`; surge bursts are
    video-relative fractions so they survive the shrink unchanged.  The
    variant is a different spec with a different ``scenario_id`` — the
    committed sweep baseline is recorded at smoke scale and the gate
    checks mode match, so smoke and full numbers can never be confused.
    """
    return replace(spec, n_frames=min(spec.n_frames, SMOKE_FRAMES))
