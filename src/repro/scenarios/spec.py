"""Scenario specifications and their stable identity hashes.

A :class:`ScenarioSpec` names one cell of the regime matrix: a dataset
preset plus one setting of each orthogonal axis
(:mod:`repro.scenarios.axes`).  The spec is a pure value — everything a
run needs is in it, so the generated world, fault schedule and derived
seeds are a pure function of ``(spec, seed)``.

Each spec carries a :attr:`~ScenarioSpec.scenario_id`: a short, stable
hash of its canonical JSON form.  The sweep baseline stores the id next
to each scenario's metrics, so the gate can tell "this scenario's
definition changed" (refresh the baseline) apart from "this scenario
regressed" (fail the build).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.scenarios.axes import DropoutAxis, SurgeAxis, TailAxis, WeatherAxis
from repro.synth.datasets import preset_by_name

#: Hex digits kept from the spec digest.  48 bits is far beyond collision
#: range for a matrix of dozens of scenarios while staying readable in
#: diffs and CI logs.
ID_HEX_CHARS = 12


@dataclass(frozen=True)
class ScenarioSpec:
    """One named cell of the scenario matrix.

    Attributes:
        name: unique human-readable name (``mot17-rush-hour``).
        preset: dataset preset the scene derives from (``mot17``,
            ``kitti`` or ``pathtrack``).
        n_frames: video length in frames.
        window_length: merge window length ``L`` used when running the
            scenario through the pipeline or the streaming service.
        surge: crowd-surge axis setting.
        weather: weather/glare axis setting.
        dropout: camera-dropout axis setting.
        tail: track-length-tail axis setting.
    """

    name: str
    preset: str
    n_frames: int = 600
    window_length: int = 300
    surge: SurgeAxis = field(default_factory=SurgeAxis)
    weather: WeatherAxis = field(default_factory=WeatherAxis)
    dropout: DropoutAxis = field(default_factory=DropoutAxis)
    tail: TailAxis = field(default_factory=TailAxis)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        preset_by_name(self.preset)  # raises KeyError on unknown names
        if self.n_frames < 1:
            raise ValueError("n_frames must be >= 1")
        if self.window_length < 2:
            raise ValueError("window_length must be >= 2")

    def to_dict(self) -> dict:
        """This spec as a plain JSON-serializable dict."""
        return asdict(self)

    def canonical_json(self) -> str:
        """Canonical (sorted-key, compact) JSON form — the hash input."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @property
    def scenario_id(self) -> str:
        """Stable short hash identifying this exact spec.

        Any change to any field — including the name — produces a new
        id, which is exactly what the sweep gate wants: a changed
        definition must be consciously re-baselined, never silently
        compared against stale numbers.
        """
        digest = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()[:ID_HEX_CHARS]

    @property
    def active_axes(self) -> tuple[str, ...]:
        """Names of the axes this scenario actually exercises."""
        axes = (
            ("surge", self.surge),
            ("weather", self.weather),
            ("dropout", self.dropout),
            ("tail", self.tail),
        )
        return tuple(name for name, axis in axes if axis.active)
