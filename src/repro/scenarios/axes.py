"""Orthogonal regime axes a scenario composes onto a dataset preset.

Production feeds differ from the paper's three friendly presets along a
handful of independent dimensions, each with its own seam in the
existing stack:

* :class:`SurgeAxis` — crowd surges: arrival-rate bursts, expressed
  through :attr:`repro.synth.scene.SceneConfig.spawn_rate_schedule`.
* :class:`WeatherAxis` — weather/glare: extra scheduled glare (detector
  blinding) plus a feature-corruption schedule riding the
  :mod:`repro.faults` ReID seam.
* :class:`DropoutAxis` — camera dropouts: frame-drop and window-crash
  schedules, also through :mod:`repro.faults`.
* :class:`TailAxis` — heavy-tailed GT track-length distributions,
  through :attr:`repro.synth.scene.SceneConfig.track_length_tail`.

Every axis is a frozen, validated value object — a scenario spec is a
pure composition of these, so its identity hash is well defined
(:mod:`repro.scenarios.spec`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.injectors import CORRUPTION_MODES


@dataclass(frozen=True)
class SurgeAxis:
    """Crowd surges: arrival-rate bursts over fractions of the video.

    Attributes:
        bursts: ``(start_frac, end_frac, multiplier)`` intervals in
            ``[0, 1]`` video-relative time; each multiplies the preset's
            spawn rate while active (overlaps compound).  Converted to
            absolute frames by the generator, so the same axis composes
            with any video length.
        max_objects_boost: extra headroom added to the scene's
            simultaneous-object cap, letting a burst actually raise the
            population instead of saturating the default cap.
    """

    bursts: tuple[tuple[float, float, float], ...] = ()
    max_objects_boost: int = 0

    def __post_init__(self) -> None:
        for burst in self.bursts:
            if len(burst) != 3:
                raise ValueError(
                    "bursts must be (start_frac, end_frac, multiplier)"
                )
            start, end, multiplier = burst
            if not 0.0 <= start <= end <= 1.0:
                raise ValueError(
                    "burst fractions need 0 <= start <= end <= 1"
                )
            if multiplier < 0:
                raise ValueError("burst multipliers must be non-negative")
        if self.max_objects_boost < 0:
            raise ValueError("max_objects_boost must be non-negative")

    @property
    def active(self) -> bool:
        """True when this axis changes anything."""
        return bool(self.bursts) or self.max_objects_boost > 0


@dataclass(frozen=True)
class WeatherAxis:
    """Weather/glare: detector blinding plus feature corruption.

    Attributes:
        glare_rate_boost: extra glare events per 1000 frames added to
            the preset's scheduled glare.
        glare_strength: optional override of the scene's glare
            visibility multiplier in ``[0, 1]`` (lower = blinder).
        corrupt_rate: per-call probability that a ReID embedding comes
            back corrupted (rain on the lens, sensor noise), injected
            through the :mod:`repro.faults` feature seam.
        corrupt_mode: ``"nan"`` or ``"swap"`` (see
            :data:`repro.faults.injectors.CORRUPTION_MODES`).
    """

    glare_rate_boost: float = 0.0
    glare_strength: float | None = None
    corrupt_rate: float = 0.0
    corrupt_mode: str = "nan"

    def __post_init__(self) -> None:
        if self.glare_rate_boost < 0:
            raise ValueError("glare_rate_boost must be non-negative")
        if self.glare_strength is not None and not (
            0.0 <= self.glare_strength <= 1.0
        ):
            raise ValueError("glare_strength must be in [0, 1]")
        if not 0.0 <= self.corrupt_rate <= 1.0:
            raise ValueError("corrupt_rate must be in [0, 1]")
        if self.corrupt_mode not in CORRUPTION_MODES:
            raise ValueError(
                f"corrupt_mode must be one of {CORRUPTION_MODES}"
            )

    @property
    def active(self) -> bool:
        """True when this axis changes anything."""
        return (
            self.glare_rate_boost > 0
            or self.glare_strength is not None
            or self.corrupt_rate > 0
        )


@dataclass(frozen=True)
class DropoutAxis:
    """Camera dropouts: frame-drop and window-crash schedules.

    Attributes:
        frame_drop_rate: per-frame probability the feed delivers an
            empty frame (decoder stall, network blip).
        window_crash_rate: per-window probability the merge worker is
            killed once mid-window (and retried, per the resilience
            layer).
    """

    frame_drop_rate: float = 0.0
    window_crash_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.frame_drop_rate <= 1.0:
            raise ValueError("frame_drop_rate must be in [0, 1]")
        if not 0.0 <= self.window_crash_rate <= 1.0:
            raise ValueError("window_crash_rate must be in [0, 1]")

    @property
    def active(self) -> bool:
        """True when this axis changes anything."""
        return self.frame_drop_rate > 0 or self.window_crash_rate > 0


@dataclass(frozen=True)
class TailAxis:
    """Heavy-tailed GT track-length distribution.

    Attributes:
        alpha: Pareto shape of the lifetime draw; smaller values mean
            heavier tails (more very long tracks).  ``None`` keeps the
            preset's uniform lifetime draw.
        max_length: optional raised ceiling on track lifetimes, so the
            tail has somewhere to go beyond the preset's cap.
    """

    alpha: float | None = None
    max_length: int | None = None

    def __post_init__(self) -> None:
        if self.alpha is not None and self.alpha <= 0:
            raise ValueError("alpha must be positive when set")
        if self.max_length is not None and self.max_length < 1:
            raise ValueError("max_length must be >= 1 when set")

    @property
    def active(self) -> bool:
        """True when this axis changes anything."""
        return self.alpha is not None or self.max_length is not None
