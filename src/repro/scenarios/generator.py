"""Deterministic scenario construction: ``(spec, seed) → Scenario``.

:func:`build_scenario` is the tentpole seam of the scenario matrix.  It
composes a dataset preset with the spec's regime axes into a concrete
scene, simulates the ground-truth world, and assembles the fault profile
and model seeds the run will use — all as a **pure function** of
``(spec, seed)``.  Two calls with equal arguments produce bit-identical
worlds and schedules, on any machine, which is what lets CI gate
per-scenario metrics against a committed baseline.

Seed discipline: the root :class:`numpy.random.SeedSequence` entropy is
``[seed, int(scenario_id, 16)]``, so different scenarios at the same
sweep seed get statistically independent streams, and a scenario's
streams move when (and only when) its definition changes.  The root
spawns one child per consumer — world simulation, fault schedules,
model seeds, feed disorder — so adding a consumer never perturbs the
existing ones.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace

import numpy as np

from repro.faults.profiles import FaultProfile, compose_profiles
from repro.scenarios.spec import ScenarioSpec
from repro.synth.datasets import preset_by_name
from repro.synth.scene import SceneConfig
from repro.synth.world import VideoGroundTruth, simulate_world

#: Child-stream indices under the scenario root sequence.  Appending new
#: consumers keeps existing scenario content byte-stable.
_STREAM_WORLD = 0
_STREAM_FAULTS = 1
_STREAM_MODELS = 2
_STREAM_FEED = 3

#: Laptop-scale caps applied to every preset so a full matrix sweep stays
#: CI-sized.  Relative preset character (arrival rates, speeds, person
#: fraction, glare climate) is preserved; only the population and track
#: lengths shrink.
_COMPACT_MAX_INITIAL = 6
_COMPACT_MAX_OBJECTS = 10
_COMPACT_MIN_LIFETIME = 20
_COMPACT_MIN_LIFETIME_CAP = 80
_COMPACT_APPEARANCE_DIM = 16
_COMPACT_MAX_CLUSTERS = 4


@dataclass(frozen=True)
class ScenarioSeeds:
    """The derived seed bundle of one ``(spec, seed)`` instantiation.

    Attributes:
        world: seed sequence driving ground-truth simulation.
        fault_seed: master seed of the composed fault profile.
        reid_seed: seed of the simulated ReID model.
        detector_seed: seed of the detection simulator.
        disorder_seed: seed of streaming feed reordering.
    """

    world: np.random.SeedSequence
    fault_seed: int
    reid_seed: int
    detector_seed: int
    disorder_seed: int


def derive_seeds(spec: ScenarioSpec, seed: int) -> ScenarioSeeds:
    """Derive every seed a scenario run consumes from ``(spec, seed)``."""
    root = np.random.SeedSequence([seed, int(spec.scenario_id, 16)])
    children = root.spawn(4)
    fault_seed = int(children[_STREAM_FAULTS].generate_state(1)[0])
    model_state = children[_STREAM_MODELS].generate_state(2)
    disorder_seed = int(children[_STREAM_FEED].generate_state(1)[0])
    return ScenarioSeeds(
        world=children[_STREAM_WORLD],
        fault_seed=fault_seed,
        reid_seed=int(model_state[0]),
        detector_seed=int(model_state[1]),
        disorder_seed=disorder_seed,
    )


def compact_scene(preset_name: str) -> SceneConfig:
    """A preset's scene shrunk to sweep scale.

    Raises:
        KeyError: on an unknown preset name.
    """
    base = preset_by_name(preset_name).config
    return replace(
        base,
        initial_objects=min(base.initial_objects, _COMPACT_MAX_INITIAL),
        max_objects=min(base.max_objects, _COMPACT_MAX_OBJECTS),
        min_track_length=max(
            _COMPACT_MIN_LIFETIME, base.min_track_length // 4
        ),
        max_track_length=max(
            _COMPACT_MIN_LIFETIME_CAP, base.max_track_length // 5
        ),
        appearance_dim=_COMPACT_APPEARANCE_DIM,
        appearance_clusters=min(
            base.appearance_clusters, _COMPACT_MAX_CLUSTERS
        ),
    )


def compose_scene(spec: ScenarioSpec) -> SceneConfig:
    """The concrete scene a spec describes: compact preset + scene axes.

    The surge axis becomes an absolute-frame spawn-rate schedule, the
    weather axis adjusts the glare climate, and the tail axis switches
    the lifetime draw to a truncated Pareto.  Fault-seam axes (feature
    corruption, dropouts) do not touch the scene — they compose into the
    fault profile instead (:func:`compose_fault_profile`).
    """
    scene = compact_scene(spec.preset)
    updates: dict = {}
    if spec.surge.bursts:
        updates["spawn_rate_schedule"] = tuple(
            (
                int(round(start * spec.n_frames)),
                int(round(end * spec.n_frames)),
                multiplier,
            )
            for start, end, multiplier in spec.surge.bursts
        )
    if spec.surge.max_objects_boost:
        updates["max_objects"] = (
            scene.max_objects + spec.surge.max_objects_boost
        )
    if spec.weather.glare_rate_boost:
        updates["glare_rate"] = scene.glare_rate + spec.weather.glare_rate_boost
    if spec.weather.glare_strength is not None:
        updates["glare_strength"] = spec.weather.glare_strength
    if spec.tail.alpha is not None:
        updates["track_length_tail"] = spec.tail.alpha
    if spec.tail.max_length is not None:
        updates["max_track_length"] = max(
            scene.max_track_length, spec.tail.max_length
        )
    return replace(scene, **updates) if updates else scene


def fault_parts(spec: ScenarioSpec) -> list[FaultProfile]:
    """The per-axis fault bundles a spec contributes, one per active axis."""
    parts: list[FaultProfile] = []
    if spec.weather.corrupt_rate > 0:
        parts.append(
            FaultProfile(
                name=f"{spec.name}:weather",
                corrupt_rate=spec.weather.corrupt_rate,
                corrupt_mode=spec.weather.corrupt_mode,
            )
        )
    if spec.dropout.active:
        parts.append(
            FaultProfile(
                name=f"{spec.name}:dropout",
                frame_drop_rate=spec.dropout.frame_drop_rate,
                window_crash_rate=spec.dropout.window_crash_rate,
            )
        )
    return parts


def compose_fault_profile(
    spec: ScenarioSpec, fault_seed: int
) -> FaultProfile | None:
    """The spec's composed fault profile, or ``None`` for clean scenarios.

    Clean scenarios return ``None`` rather than an all-zero profile so
    their runs take exactly the no-chaos code path (no injector wiring,
    no implicit resilience defaults).
    """
    parts = fault_parts(spec)
    if not parts:
        return None
    return compose_profiles(
        f"scenario:{spec.name}", parts, seed=fault_seed
    )


@dataclass(frozen=True)
class Scenario:
    """One fully instantiated scenario: world + schedules + seeds.

    Attributes:
        spec: the generating spec.
        seed: the sweep seed this instantiation used.
        scene: the composed scene configuration.
        world: the simulated ground truth.
        profile: composed fault profile (``None`` when the spec has no
            fault-seam axes).
        seeds: the full derived seed bundle.
    """

    spec: ScenarioSpec
    seed: int
    scene: SceneConfig
    world: VideoGroundTruth
    profile: FaultProfile | None
    seeds: ScenarioSeeds

    def fingerprint(self) -> str:
        """A digest of everything downstream consumes.

        Covers the per-frame ground-truth states (ids, boxes,
        visibilities), the composed fault profile and the derived model
        seeds — if any of it moves, the fingerprint moves.  Golden
        fixtures pin these digests for representative scenarios, turning
        "same ``(spec, seed)`` ⇒ same scenario" into a cross-machine
        regression check.
        """
        frames = [
            [
                [
                    state.object_id,
                    state.bbox.x1,
                    state.bbox.y1,
                    state.bbox.x2,
                    state.bbox.y2,
                    state.visibility,
                ]
                for state in states
            ]
            for states in self.world.frames
        ]
        doc = {
            "scenario_id": self.spec.scenario_id,
            "seed": self.seed,
            "frames": frames,
            "n_objects": len(self.world.objects),
            "profile": None if self.profile is None else asdict(self.profile),
            "reid_seed": self.seeds.reid_seed,
            "detector_seed": self.seeds.detector_seed,
            "disorder_seed": self.seeds.disorder_seed,
        }
        payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def build_scenario(spec: ScenarioSpec, seed: int = 0) -> Scenario:
    """Instantiate a scenario — a pure function of ``(spec, seed)``."""
    seeds = derive_seeds(spec, seed)
    scene = compose_scene(spec)
    world = simulate_world(
        scene, spec.n_frames, seed=np.random.default_rng(seeds.world)
    )
    profile = compose_fault_profile(spec, seeds.fault_seed)
    return Scenario(
        spec=spec,
        seed=seed,
        scene=scene,
        world=world,
        profile=profile,
        seeds=seeds,
    )
