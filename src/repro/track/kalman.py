"""A from-scratch linear Kalman filter and the SORT-style box tracker state.

:class:`KalmanFilter` is a generic predict/update implementation.
:class:`KalmanBoxTracker` specializes it to the constant-velocity bounding
box state SORT uses: ``[cx, cy, s, r, vcx, vcy, vs]`` where ``s`` is the box
area and ``r`` its (assumed constant) aspect ratio.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import BBox


class KalmanFilter:
    """Generic linear-Gaussian Kalman filter.

    Attributes:
        x: state mean, shape ``(dim_x,)``.
        P: state covariance, shape ``(dim_x, dim_x)``.
        F: state transition matrix.
        H: observation matrix, shape ``(dim_z, dim_x)``.
        Q: process noise covariance.
        R: observation noise covariance.
    """

    def __init__(
        self,
        x: np.ndarray,
        P: np.ndarray,
        F: np.ndarray,
        H: np.ndarray,
        Q: np.ndarray,
        R: np.ndarray,
    ) -> None:
        self.x = np.asarray(x, dtype=np.float64).copy()
        self.P = np.asarray(P, dtype=np.float64).copy()
        self.F = np.asarray(F, dtype=np.float64)
        self.H = np.asarray(H, dtype=np.float64)
        self.Q = np.asarray(Q, dtype=np.float64)
        self.R = np.asarray(R, dtype=np.float64)
        dim_x = self.x.shape[0]
        dim_z = self.H.shape[0]
        if self.F.shape != (dim_x, dim_x):
            raise ValueError("F shape mismatch")
        if self.P.shape != (dim_x, dim_x):
            raise ValueError("P shape mismatch")
        if self.H.shape[1] != dim_x:
            raise ValueError("H shape mismatch")
        if self.Q.shape != (dim_x, dim_x):
            raise ValueError("Q shape mismatch")
        if self.R.shape != (dim_z, dim_z):
            raise ValueError("R shape mismatch")

    def predict(self) -> np.ndarray:
        """Advance the state one step; returns the predicted mean."""
        self.x = self.F @ self.x
        self.P = self.F @ self.P @ self.F.T + self.Q
        return self.x

    def update(self, z: np.ndarray) -> np.ndarray:
        """Fold in an observation ``z``; returns the posterior mean."""
        z = np.asarray(z, dtype=np.float64)
        y = z - self.H @ self.x
        S = self.H @ self.P @ self.H.T + self.R
        K = self.P @ self.H.T @ np.linalg.inv(S)
        self.x = self.x + K @ y
        identity = np.eye(self.x.shape[0])
        self.P = (identity - K @ self.H) @ self.P
        return self.x

    def innovation(self, z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Residual and its covariance for gating, without updating."""
        z = np.asarray(z, dtype=np.float64)
        y = z - self.H @ self.x
        S = self.H @ self.P @ self.H.T + self.R
        return y, S


def _bbox_to_z(box: BBox) -> np.ndarray:
    """Convert a box to the SORT measurement ``[cx, cy, area, aspect]``."""
    cx, cy = box.center
    return np.array([cx, cy, box.area, box.aspect_ratio])


def _z_to_bbox(z: np.ndarray) -> BBox:
    """Back-convert a SORT state head to a box (clamping degenerate areas)."""
    cx, cy, s, r = float(z[0]), float(z[1]), float(z[2]), float(z[3])
    s = max(s, 1e-6)
    r = max(r, 1e-6)
    w = np.sqrt(s * r)
    h = s / w
    return BBox.from_center(cx, cy, w, h)


class KalmanBoxTracker:
    """Constant-velocity Kalman state for a single tracked box (SORT)."""

    _F = np.array(
        [
            [1, 0, 0, 0, 1, 0, 0],
            [0, 1, 0, 0, 0, 1, 0],
            [0, 0, 1, 0, 0, 0, 1],
            [0, 0, 0, 1, 0, 0, 0],
            [0, 0, 0, 0, 1, 0, 0],
            [0, 0, 0, 0, 0, 1, 0],
            [0, 0, 0, 0, 0, 0, 1],
        ],
        dtype=np.float64,
    )
    _H = np.eye(4, 7)

    def __init__(self, box: BBox) -> None:
        z = _bbox_to_z(box)
        x = np.zeros(7)
        x[:4] = z
        P = np.diag([10.0, 10.0, 10.0, 10.0, 1e4, 1e4, 1e4])
        Q = np.diag([1.0, 1.0, 1.0, 0.01, 0.5, 0.5, 1e-3])
        R = np.diag([1.0, 1.0, 10.0, 0.01])
        self.kf = KalmanFilter(x, P, self._F, self._H, Q, R)
        self.time_since_update = 0
        self.hits = 1
        self.age = 0

    def predict(self) -> BBox:
        """Predict the next-frame box."""
        # Keep predicted area non-negative (SORT's standard guard).
        if self.kf.x[2] + self.kf.x[6] <= 0:
            self.kf.x[6] = 0.0
        self.kf.predict()
        self.age += 1
        self.time_since_update += 1
        return self.current_box()

    def update(self, box: BBox) -> None:
        """Fold in a matched detection."""
        self.kf.update(_bbox_to_z(box))
        self.time_since_update = 0
        self.hits += 1

    def current_box(self) -> BBox:
        """The current state estimate as a BBox."""
        return _z_to_bbox(self.kf.x[:4])
