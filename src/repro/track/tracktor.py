"""Tracktor-style regression tracker (Bergmann et al., 2019).

Tracktor has no explicit motion model: it *regresses* each track's previous
box onto the current frame (the detector's regression head snaps it to the
nearest object) and only consults standalone detections to start new tracks.
Our proxy reproduces that control flow: an active track claims the detection
with the highest IoU against its (velocity-extrapolated) previous box; a
track with no claimable detection is suspended and dies after ``patience``
frames.  This is the paper's primary tracker ("Tracktor has the best
performance", §V-A) — good, but still fragmenting on real occlusions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detect import Detection
from repro.geometry import BBox, iou_matrix
from repro.track.assignment import solve_assignment
from repro.track.base import Track, Tracker, TrackerStream


@dataclass
class _RegressedTrack:
    track: Track
    box: BBox
    velocity: tuple[float, float] = (0.0, 0.0)
    misses: int = 0

    def extrapolate(self) -> BBox:
        """Camera-motion-compensation stand-in: push the box along its
        recent velocity while suspended."""
        return self.box.translated(self.velocity[0], self.velocity[1])


class TracktorTracker(Tracker):
    """Regression-by-overlap tracker.

    Args:
        sigma_active: minimum IoU for an active track to claim a detection.
        new_det_confidence: minimum confidence for a detection to seed a
            new track (Tracktor only trusts confident detections here).
        patience: frames a suspended track survives before deletion.
        min_length: tracks shorter than this are dropped.
        min_confidence: detections below this score are invisible.
    """

    def __init__(
        self,
        sigma_active: float = 0.4,
        new_det_confidence: float = 0.5,
        patience: int = 8,
        min_length: int = 5,
        min_confidence: float = 0.3,
    ) -> None:
        self.sigma_active = sigma_active
        self.new_det_confidence = new_det_confidence
        self.patience = patience
        self.min_length = min_length
        self.min_confidence = min_confidence

    def run(self, detections_per_frame: list[list[Detection]]) -> list[Track]:
        """Run the tracker over per-frame detections; return finished tracks."""
        stream = self.stream()
        finished: list[Track] = []
        for frame, detections in enumerate(detections_per_frame):
            finished.extend(stream.advance(frame, detections))
        finished.extend(stream.flush())
        return self.finalize(finished, self.min_length)

    def stream(self) -> "TracktorStream":
        """Open an incremental session (see :class:`TrackerStream`)."""
        return TracktorStream(self)


class TracktorStream(TrackerStream):
    """Frame-at-a-time Tracktor session with checkpointable state.

    Args:
        tracker: the configuration holder; never mutated.
    """

    def __init__(self, tracker: TracktorTracker) -> None:
        self.tracker = tracker
        self.active: list[_RegressedTrack] = []
        self.next_id = 0
        self.last_frame = -1

    @property
    def close_lag(self) -> int:
        """A suspended track dies ``patience + 1`` frames after its last
        observation."""
        return self.tracker.patience + 1

    def earliest_open_frame(self) -> int | None:
        """First frame of the oldest still-active track."""
        return min(
            (rt.track.first_frame for rt in self.active), default=None
        )

    def advance(self, frame: int, detections: list[Detection]) -> list[Track]:
        """Consume one frame; return tracks that just died (min-length
        filtered)."""
        if frame <= self.last_frame:
            raise ValueError(
                f"frames must strictly increase ({frame} after "
                f"{self.last_frame})"
            )
        self.last_frame = frame
        cfg = self.tracker
        active = self.active
        closed: list[Track] = []
        detections = [
            d for d in detections if d.confidence >= cfg.min_confidence
        ]
        predicted = [rt.extrapolate() for rt in active]
        det_boxes = [d.bbox for d in detections]
        ious = iou_matrix(predicted, det_boxes)
        matches = solve_assignment(
            1.0 - ious,
            max_cost=1.0 - cfg.sigma_active,
            method="hungarian",
        )

        matched_tracks = {r for r, _ in matches}
        matched_dets = {c for _, c in matches}
        for r, c in matches:
            rt = active[r]
            detection = detections[c]
            old_cx, old_cy = rt.box.center
            new_cx, new_cy = detection.bbox.center
            rt.velocity = (new_cx - old_cx, new_cy - old_cy)
            rt.box = detection.bbox
            rt.misses = 0
            rt.track.append(frame, detection)

        survivors = []
        for idx, rt in enumerate(active):
            if idx in matched_tracks:
                survivors.append(rt)
                continue
            rt.misses += 1
            rt.box = rt.extrapolate()
            if rt.misses > cfg.patience:
                if len(rt.track) >= cfg.min_length:
                    closed.append(rt.track)
            else:
                survivors.append(rt)
        self.active = survivors

        for c, detection in enumerate(detections):
            if c in matched_dets:
                continue
            if detection.confidence < cfg.new_det_confidence:
                continue
            # Tracktor suppresses new tracks overlapping active ones
            # (they are assumed to be the same object).
            overlapping = any(
                iou_matrix([rt.box], [detection.bbox])[0, 0] > 0.3
                for rt in self.active
            )
            if overlapping:
                continue
            track = Track(self.next_id)
            track.append(frame, detection)
            self.active.append(_RegressedTrack(track, detection.bbox))
            self.next_id += 1
        return closed

    def flush(self) -> list[Track]:
        """Close every still-active track (end of feed)."""
        closed = [
            rt.track
            for rt in self.active
            if len(rt.track) >= self.tracker.min_length
        ]
        self.active = []
        return closed

    def state_dict(self) -> dict:
        """Complete pure-JSON session state."""
        return {
            "next_id": self.next_id,
            "last_frame": self.last_frame,
            "active": [
                {
                    "track": rt.track.to_dict(),
                    "box": [rt.box.x1, rt.box.y1, rt.box.x2, rt.box.y2],
                    "velocity": list(rt.velocity),
                    "misses": rt.misses,
                }
                for rt in self.active
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a session captured by :meth:`state_dict`."""
        self.next_id = int(state["next_id"])
        self.last_frame = int(state["last_frame"])
        self.active = [
            _RegressedTrack(
                track=Track.from_dict(entry["track"]),
                box=BBox(*(float(v) for v in entry["box"])),
                velocity=(
                    float(entry["velocity"][0]),
                    float(entry["velocity"][1]),
                ),
                misses=int(entry["misses"]),
            )
            for entry in state["active"]
        ]
