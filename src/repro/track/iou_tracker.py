"""Greedy IoU tracker — the simplest association baseline.

No motion model, no appearance: each active track is represented by its last
box and greedily matched to the highest-IoU detection of the next frame.
Any detection gap kills the track immediately, so this tracker fragments
the most; it exists to stress the merging algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detect import Detection
from repro.geometry import iou_matrix
from repro.track.assignment import solve_assignment
from repro.track.base import Track, Tracker


@dataclass
class _ActiveTrack:
    track: Track
    misses: int = 0


class IoUTracker(Tracker):
    """Greedy IoU association with a short miss tolerance.

    Args:
        iou_threshold: minimum IoU to associate a detection to a track.
        max_age: frames a track survives without a detection.
        min_length: tracks shorter than this are dropped from the output.
        min_confidence: detections below this score are ignored.
    """

    def __init__(
        self,
        iou_threshold: float = 0.4,
        max_age: int = 1,
        min_length: int = 5,
        min_confidence: float = 0.3,
    ) -> None:
        if not 0 < iou_threshold <= 1:
            raise ValueError("iou_threshold must be in (0, 1]")
        self.iou_threshold = iou_threshold
        self.max_age = max_age
        self.min_length = min_length
        self.min_confidence = min_confidence

    def run(self, detections_per_frame: list[list[Detection]]) -> list[Track]:
        """Run the tracker over per-frame detections; return finished tracks."""
        active: list[_ActiveTrack] = []
        finished: list[Track] = []
        next_id = 0

        for frame, detections in enumerate(detections_per_frame):
            detections = [
                d for d in detections if d.confidence >= self.min_confidence
            ]
            track_boxes = [
                at.track.observations[-1].bbox for at in active
            ]
            det_boxes = [d.bbox for d in detections]
            ious = iou_matrix(track_boxes, det_boxes)
            matches = solve_assignment(
                1.0 - ious, max_cost=1.0 - self.iou_threshold, method="greedy"
            )

            matched_tracks = {r for r, _ in matches}
            matched_dets = {c for _, c in matches}
            for r, c in matches:
                active[r].track.append(frame, detections[c])
                active[r].misses = 0

            survivors: list[_ActiveTrack] = []
            for idx, at in enumerate(active):
                if idx in matched_tracks:
                    survivors.append(at)
                    continue
                at.misses += 1
                if at.misses > self.max_age:
                    finished.append(at.track)
                else:
                    survivors.append(at)
            active = survivors

            for c, detection in enumerate(detections):
                if c in matched_dets:
                    continue
                track = Track(next_id)
                track.append(frame, detection)
                active.append(_ActiveTrack(track))
                next_id += 1

        finished.extend(at.track for at in active)
        return self.finalize(finished, self.min_length)
