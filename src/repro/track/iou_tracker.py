"""Greedy IoU tracker — the simplest association baseline.

No motion model, no appearance: each active track is represented by its last
box and greedily matched to the highest-IoU detection of the next frame.
Any detection gap kills the track immediately, so this tracker fragments
the most; it exists to stress the merging algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detect import Detection
from repro.geometry import iou_matrix
from repro.track.assignment import solve_assignment
from repro.track.base import Track, Tracker, TrackerStream


@dataclass
class _ActiveTrack:
    track: Track
    misses: int = 0


class IoUTracker(Tracker):
    """Greedy IoU association with a short miss tolerance.

    Args:
        iou_threshold: minimum IoU to associate a detection to a track.
        max_age: frames a track survives without a detection.
        min_length: tracks shorter than this are dropped from the output.
        min_confidence: detections below this score are ignored.
    """

    def __init__(
        self,
        iou_threshold: float = 0.4,
        max_age: int = 1,
        min_length: int = 5,
        min_confidence: float = 0.3,
    ) -> None:
        if not 0 < iou_threshold <= 1:
            raise ValueError("iou_threshold must be in (0, 1]")
        self.iou_threshold = iou_threshold
        self.max_age = max_age
        self.min_length = min_length
        self.min_confidence = min_confidence

    def run(self, detections_per_frame: list[list[Detection]]) -> list[Track]:
        """Run the tracker over per-frame detections; return finished tracks."""
        stream = self.stream()
        finished: list[Track] = []
        for frame, detections in enumerate(detections_per_frame):
            finished.extend(stream.advance(frame, detections))
        finished.extend(stream.flush())
        return self.finalize(finished, self.min_length)

    def stream(self) -> "IoUStream":
        """Open an incremental session (see :class:`TrackerStream`)."""
        return IoUStream(self)


class IoUStream(TrackerStream):
    """Frame-at-a-time greedy-IoU session with checkpointable state.

    Args:
        tracker: the configuration holder; never mutated.
    """

    def __init__(self, tracker: IoUTracker) -> None:
        self.tracker = tracker
        self.active: list[_ActiveTrack] = []
        self.next_id = 0
        self.last_frame = -1

    @property
    def close_lag(self) -> int:
        """A track dies ``max_age + 1`` frames after its last observation."""
        return self.tracker.max_age + 1

    def earliest_open_frame(self) -> int | None:
        """First frame of the oldest still-active track."""
        return min(
            (at.track.first_frame for at in self.active), default=None
        )

    def advance(self, frame: int, detections: list[Detection]) -> list[Track]:
        """Consume one frame; return tracks that just died (min-length
        filtered)."""
        if frame <= self.last_frame:
            raise ValueError(
                f"frames must strictly increase ({frame} after "
                f"{self.last_frame})"
            )
        self.last_frame = frame
        cfg = self.tracker
        active = self.active
        closed: list[Track] = []
        detections = [
            d for d in detections if d.confidence >= cfg.min_confidence
        ]
        track_boxes = [at.track.observations[-1].bbox for at in active]
        det_boxes = [d.bbox for d in detections]
        ious = iou_matrix(track_boxes, det_boxes)
        matches = solve_assignment(
            1.0 - ious, max_cost=1.0 - cfg.iou_threshold, method="greedy"
        )

        matched_tracks = {r for r, _ in matches}
        matched_dets = {c for _, c in matches}
        for r, c in matches:
            active[r].track.append(frame, detections[c])
            active[r].misses = 0

        survivors: list[_ActiveTrack] = []
        for idx, at in enumerate(active):
            if idx in matched_tracks:
                survivors.append(at)
                continue
            at.misses += 1
            if at.misses > cfg.max_age:
                if len(at.track) >= cfg.min_length:
                    closed.append(at.track)
            else:
                survivors.append(at)
        self.active = survivors

        for c, detection in enumerate(detections):
            if c in matched_dets:
                continue
            track = Track(self.next_id)
            track.append(frame, detection)
            self.active.append(_ActiveTrack(track))
            self.next_id += 1
        return closed

    def flush(self) -> list[Track]:
        """Close every still-active track (end of feed)."""
        closed = [
            at.track
            for at in self.active
            if len(at.track) >= self.tracker.min_length
        ]
        self.active = []
        return closed

    def state_dict(self) -> dict:
        """Complete pure-JSON session state."""
        return {
            "next_id": self.next_id,
            "last_frame": self.last_frame,
            "active": [
                {"track": at.track.to_dict(), "misses": at.misses}
                for at in self.active
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a session captured by :meth:`state_dict`."""
        self.next_id = int(state["next_id"])
        self.last_frame = int(state["last_frame"])
        self.active = [
            _ActiveTrack(
                track=Track.from_dict(entry["track"]),
                misses=int(entry["misses"]),
            )
            for entry in state["active"]
        ]
