"""UMA-style tracker: Unified Motion and Affinity model (Yin et al., 2020).

UMA learns a single affinity that couples motion and appearance.  Our proxy
computes a unified cost ``λ·appearance + (1−λ)·(1−IoU(predicted, det))``
over *all* active tracks in one Hungarian pass (no cascade), with a
moderate miss tolerance.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.detect import Detection
from repro.geometry import iou_matrix
from repro.track.assignment import solve_assignment
from repro.track.base import Track, Tracker
from repro.track.kalman import KalmanBoxTracker

Embedder = Callable[[Detection], np.ndarray]


@dataclass
class _UmaTrack:
    track: Track
    kalman: KalmanBoxTracker
    features: deque = field(default_factory=lambda: deque(maxlen=10))

    def mean_feature(self) -> np.ndarray | None:
        if not self.features:
            return None
        mean = np.mean(np.stack(self.features), axis=0)
        norm = np.linalg.norm(mean)
        return mean / norm if norm > 0 else mean


class UmaTracker(Tracker):
    """Single-stage unified-affinity tracker.

    Args:
        embedder: appearance embedding function (``None`` → motion only).
        affinity_weight: λ blending appearance vs motion cost.
        gate: maximum admissible unified cost.
        max_age: frames a track survives unmatched.
        min_length: tracks shorter than this are dropped.
        min_confidence: detections below this score are ignored.
    """

    def __init__(
        self,
        embedder: Embedder | None = None,
        affinity_weight: float = 0.5,
        gate: float = 0.55,
        max_age: int = 10,
        min_length: int = 5,
        min_confidence: float = 0.3,
    ) -> None:
        self.embedder = embedder
        self.affinity_weight = affinity_weight
        self.gate = gate
        self.max_age = max_age
        self.min_length = min_length
        self.min_confidence = min_confidence

    def run(self, detections_per_frame: list[list[Detection]]) -> list[Track]:
        """Run the tracker over per-frame detections; return finished tracks."""
        active: list[_UmaTrack] = []
        finished: list[Track] = []
        next_id = 0

        for frame, detections in enumerate(detections_per_frame):
            detections = [
                d for d in detections if d.confidence >= self.min_confidence
            ]
            features = [
                self.embedder(d) if self.embedder else None
                for d in detections
            ]
            predicted = [ut.kalman.predict() for ut in active]
            det_boxes = [d.bbox for d in detections]
            ious = iou_matrix(predicted, det_boxes)

            if active and detections:
                motion_cost = 1.0 - ious
                if self.embedder is not None:
                    app_cost = np.ones_like(motion_cost)
                    for ti, ut in enumerate(active):
                        mean = ut.mean_feature()
                        if mean is None:
                            continue
                        for di, feat in enumerate(features):
                            denom = np.linalg.norm(feat)
                            if denom == 0:
                                continue
                            app_cost[ti, di] = 1.0 - float(
                                np.dot(mean, feat) / denom
                            )
                    cost = (
                        self.affinity_weight * app_cost
                        + (1.0 - self.affinity_weight) * motion_cost
                    )
                else:
                    cost = motion_cost
                matches = solve_assignment(cost, max_cost=self.gate)
            else:
                matches = []

            matched_tracks = {r for r, _ in matches}
            matched_dets = {c for _, c in matches}
            for r, c in matches:
                ut = active[r]
                detection = detections[c]
                ut.kalman.update(detection.bbox)
                ut.track.append(frame, detection)
                if features[c] is not None:
                    ut.features.append(features[c])

            survivors = []
            for idx, ut in enumerate(active):
                if idx in matched_tracks:
                    survivors.append(ut)
                elif ut.kalman.time_since_update > self.max_age:
                    finished.append(ut.track)
                else:
                    survivors.append(ut)
            active = survivors

            for c, detection in enumerate(detections):
                if c in matched_dets:
                    continue
                track = Track(next_id)
                track.append(frame, detection)
                new = _UmaTrack(track, KalmanBoxTracker(detection.bbox))
                if features[c] is not None:
                    new.features.append(features[c])
                active.append(new)
                next_id += 1

        finished.extend(ut.track for ut in active)
        return self.finalize(finished, self.min_length)
