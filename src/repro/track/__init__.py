"""Multi-object tracking substrate.

From-scratch implementations of the trackers the paper evaluates as
producers of (fragmented) tracks:

* :class:`IoUTracker` — greedy IoU association, no motion model.
* :class:`SortTracker` — Kalman filter + Hungarian assignment on IoU
  (Bewley et al., 2016).
* :class:`DeepSortTracker` — adds an appearance gallery and matching
  cascade (Wojke et al., 2017).
* :class:`TracktorTracker` — regression-style proxy: propagates each track's
  box to the nearest detection (Bergmann et al., 2019).
* :class:`UmaTracker` — unified motion + affinity proxy (Yin et al., 2020).
* :class:`CenterTrackTracker` — point-based association proxy
  (Zhou et al., 2020).

All consume per-frame :class:`~repro.detect.Detection` lists and emit
:class:`Track` objects.  They fragment for the same reasons their namesakes
do: detection gaps longer than ``max_age`` kill tracks, and re-appearing
objects get fresh IDs.
"""

from repro.track.base import Track, TrackObservation, Tracker
from repro.track.assignment import (
    hungarian,
    greedy_assignment,
    solve_assignment,
)
from repro.track.kalman import KalmanFilter, KalmanBoxTracker
from repro.track.iou_tracker import IoUTracker
from repro.track.sort import SortTracker
from repro.track.deepsort import DeepSortTracker
from repro.track.tracktor import TracktorTracker
from repro.track.uma import UmaTracker
from repro.track.centertrack import CenterTrackTracker

__all__ = [
    "Track",
    "TrackObservation",
    "Tracker",
    "hungarian",
    "greedy_assignment",
    "solve_assignment",
    "KalmanFilter",
    "KalmanBoxTracker",
    "IoUTracker",
    "SortTracker",
    "DeepSortTracker",
    "TracktorTracker",
    "UmaTracker",
    "CenterTrackTracker",
]
