"""SORT: Simple Online and Realtime Tracking (Bewley et al., 2016).

A Kalman constant-velocity motion model per track plus optimal (Hungarian)
assignment on IoU between predicted boxes and detections.  With the paper's
stock parameters (``max_age`` of a few frames), occlusion gaps still kill
tracks, producing the polyonymous pairs TMerge exists to repair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detect import Detection
from repro.geometry import iou_matrix
from repro.track.assignment import solve_assignment
from repro.track.base import Track, Tracker
from repro.track.kalman import KalmanBoxTracker


@dataclass
class _SortTrack:
    track: Track
    kalman: KalmanBoxTracker


class SortTracker(Tracker):
    """SORT with from-scratch Kalman and Hungarian components.

    Args:
        iou_threshold: association gate on IoU with the predicted box.
        max_age: frames a track survives unmatched before deletion.
        min_hits: minimum matched detections before a track is reported
            (applied through ``min_length`` at finalization).
        min_length: tracks shorter than this are dropped from the output.
        min_confidence: detections below this score are ignored.
    """

    def __init__(
        self,
        iou_threshold: float = 0.3,
        max_age: int = 3,
        min_hits: int = 3,
        min_length: int = 5,
        min_confidence: float = 0.3,
    ) -> None:
        self.iou_threshold = iou_threshold
        self.max_age = max_age
        self.min_hits = min_hits
        self.min_length = max(min_length, min_hits)
        self.min_confidence = min_confidence

    def run(self, detections_per_frame: list[list[Detection]]) -> list[Track]:
        """Run the tracker over per-frame detections; return finished tracks."""
        active: list[_SortTrack] = []
        finished: list[Track] = []
        next_id = 0

        for frame, detections in enumerate(detections_per_frame):
            detections = [
                d for d in detections if d.confidence >= self.min_confidence
            ]
            predicted = [st.kalman.predict() for st in active]
            det_boxes = [d.bbox for d in detections]
            ious = iou_matrix(predicted, det_boxes)
            matches = solve_assignment(
                1.0 - ious,
                max_cost=1.0 - self.iou_threshold,
                method="hungarian",
            )

            matched_tracks = {r for r, _ in matches}
            matched_dets = {c for _, c in matches}
            for r, c in matches:
                active[r].kalman.update(detections[c].bbox)
                active[r].track.append(frame, detections[c])

            survivors = []
            for idx, st in enumerate(active):
                if idx in matched_tracks:
                    survivors.append(st)
                elif st.kalman.time_since_update > self.max_age:
                    finished.append(st.track)
                else:
                    survivors.append(st)
            active = survivors

            for c, detection in enumerate(detections):
                if c in matched_dets:
                    continue
                track = Track(next_id)
                track.append(frame, detection)
                active.append(_SortTrack(track, KalmanBoxTracker(detection.bbox)))
                next_id += 1

        finished.extend(st.track for st in active)
        return self.finalize(finished, self.min_length)
