"""CenterTrack-style tracker (Zhou et al., 2020): tracking objects as points.

CenterTrack associates detections to the previous frame by predicted center
offsets — essentially greedy nearest-center matching with a size-relative
gate and almost no memory.  Our proxy extrapolates each track's center with
its last displacement and matches by center distance, dying after a very
short miss window (CenterTrack is a frame-pair method).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.detect import Detection
from repro.geometry import BBox
from repro.track.assignment import solve_assignment
from repro.track.base import Track, Tracker


@dataclass
class _PointTrack:
    track: Track
    box: BBox
    velocity: tuple[float, float] = (0.0, 0.0)
    misses: int = 0

    def predicted_center(self) -> tuple[float, float]:
        cx, cy = self.box.center
        return (cx + self.velocity[0], cy + self.velocity[1])


class CenterTrackTracker(Tracker):
    """Point-based association with offset prediction.

    Args:
        gate_scale: a detection is claimable if its center lies within
            ``gate_scale * sqrt(area)`` of the track's predicted center.
        max_age: frames a track survives unmatched (CenterTrack ≈ 1-2).
        min_length: tracks shorter than this are dropped.
        min_confidence: detections below this score are ignored.
    """

    def __init__(
        self,
        gate_scale: float = 0.7,
        max_age: int = 2,
        min_length: int = 5,
        min_confidence: float = 0.3,
    ) -> None:
        self.gate_scale = gate_scale
        self.max_age = max_age
        self.min_length = min_length
        self.min_confidence = min_confidence

    def run(self, detections_per_frame: list[list[Detection]]) -> list[Track]:
        """Run the tracker over per-frame detections; return finished tracks."""
        active: list[_PointTrack] = []
        finished: list[Track] = []
        next_id = 0

        for frame, detections in enumerate(detections_per_frame):
            detections = [
                d for d in detections if d.confidence >= self.min_confidence
            ]
            matches: list[tuple[int, int]] = []
            if active and detections:
                cost = np.empty((len(active), len(detections)))
                gates = np.empty_like(cost)
                for ti, pt in enumerate(active):
                    px, py = pt.predicted_center()
                    radius = self.gate_scale * math.sqrt(max(pt.box.area, 1.0))
                    for di, det in enumerate(detections):
                        dx, dy = det.bbox.center
                        cost[ti, di] = math.hypot(px - dx, py - dy)
                        gates[ti, di] = radius
                # Normalize by the per-track gate so one Hungarian gate works.
                normalized = cost / np.maximum(gates, 1e-9)
                matches = solve_assignment(
                    normalized, max_cost=1.0, method="greedy"
                )

            matched_tracks = {r for r, _ in matches}
            matched_dets = {c for _, c in matches}
            for r, c in matches:
                pt = active[r]
                detection = detections[c]
                old_cx, old_cy = pt.box.center
                new_cx, new_cy = detection.bbox.center
                pt.velocity = (new_cx - old_cx, new_cy - old_cy)
                pt.box = detection.bbox
                pt.misses = 0
                pt.track.append(frame, detection)

            survivors = []
            for idx, pt in enumerate(active):
                if idx in matched_tracks:
                    survivors.append(pt)
                    continue
                pt.misses += 1
                if pt.misses > self.max_age:
                    finished.append(pt.track)
                else:
                    survivors.append(pt)
            active = survivors

            for c, detection in enumerate(detections):
                if c in matched_dets:
                    continue
                track = Track(next_id)
                track.append(frame, detection)
                active.append(_PointTrack(track, detection.bbox))
                next_id += 1

        finished.extend(pt.track for pt in active)
        return self.finalize(finished, self.min_length)
