"""DeepSORT: SORT plus a deep appearance metric (Wojke et al., 2017).

Extends SORT with a per-track gallery of appearance embeddings and the
matching cascade: recently updated tracks get first pick of the detections,
with a cost that blends appearance (cosine) distance against the gallery and
(1 − IoU) motion affinity.  Appearance lets DeepSORT bridge longer occlusion
gaps than SORT, so it fragments less — but, as the paper observes (§VI),
never to zero.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.detect import Detection
from repro.geometry import iou_matrix
from repro.track.assignment import solve_assignment
from repro.track.base import Track, Tracker
from repro.track.kalman import KalmanBoxTracker

Embedder = Callable[[Detection], np.ndarray]


def _cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine distance of two vectors, in [0, 2]."""
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 1.0
    return float(1.0 - np.dot(a, b) / (na * nb))


@dataclass
class _DeepTrack:
    track: Track
    kalman: KalmanBoxTracker
    gallery: deque = field(default_factory=lambda: deque(maxlen=30))

    def appearance_cost(self, feature: np.ndarray) -> float:
        """Minimum cosine distance of ``feature`` to the gallery."""
        if not self.gallery:
            return 1.0
        return min(_cosine_distance(g, feature) for g in self.gallery)


class DeepSortTracker(Tracker):
    """DeepSORT with a pluggable appearance embedder.

    Args:
        embedder: maps a detection to an appearance vector.  In this
            reproduction the simulated ReID model's cheap head is injected;
            passing ``None`` degrades to motion-only matching (≈ SORT with a
            longer memory).
        max_age: frames a track survives unmatched (DeepSORT uses ~30).
        iou_threshold: gate for the fallback IoU stage.
        appearance_gate: maximum admissible appearance cost.
        appearance_weight: blend factor λ between appearance and IoU costs.
        cascade_depth: how many ages the matching cascade iterates over.
        min_length: tracks shorter than this are dropped.
        min_confidence: detections below this score are ignored.
    """

    def __init__(
        self,
        embedder: Embedder | None = None,
        max_age: int = 20,
        iou_threshold: float = 0.3,
        appearance_gate: float = 0.4,
        appearance_weight: float = 0.7,
        cascade_depth: int = 20,
        min_length: int = 5,
        min_confidence: float = 0.3,
    ) -> None:
        self.embedder = embedder
        self.max_age = max_age
        self.iou_threshold = iou_threshold
        self.appearance_gate = appearance_gate
        self.appearance_weight = appearance_weight
        self.cascade_depth = cascade_depth
        self.min_length = min_length
        self.min_confidence = min_confidence

    def run(self, detections_per_frame: list[list[Detection]]) -> list[Track]:
        """Run the tracker over per-frame detections; return finished tracks."""
        active: list[_DeepTrack] = []
        finished: list[Track] = []
        next_id = 0

        for frame, detections in enumerate(detections_per_frame):
            detections = [
                d for d in detections if d.confidence >= self.min_confidence
            ]
            features = [
                self.embedder(d) if self.embedder else None
                for d in detections
            ]
            for dt in active:
                dt.kalman.predict()

            unmatched_dets = set(range(len(detections)))
            matched_pairs: list[tuple[int, int]] = []

            # --- Matching cascade on appearance, recent tracks first. ---
            if self.embedder is not None:
                for age in range(1, self.cascade_depth + 1):
                    if not unmatched_dets:
                        break
                    tier = [
                        i
                        for i, dt in enumerate(active)
                        if dt.kalman.time_since_update == age
                    ]
                    if not tier:
                        continue
                    det_list = sorted(unmatched_dets)
                    cost = np.ones((len(tier), len(det_list)))
                    for ti, track_idx in enumerate(tier):
                        for di, det_idx in enumerate(det_list):
                            cost[ti, di] = active[track_idx].appearance_cost(
                                features[det_idx]
                            )
                    pairs = solve_assignment(
                        cost, max_cost=self.appearance_gate
                    )
                    for ti, di in pairs:
                        matched_pairs.append((tier[ti], det_list[di]))
                        unmatched_dets.discard(det_list[di])

            # --- Fallback IoU stage on remaining recent tracks. ---
            matched_tracks = {t for t, _ in matched_pairs}
            remaining_tracks = [
                i
                for i, dt in enumerate(active)
                if i not in matched_tracks
                and dt.kalman.time_since_update <= 2
            ]
            det_list = sorted(unmatched_dets)
            if remaining_tracks and det_list:
                track_boxes = [
                    active[i].kalman.current_box() for i in remaining_tracks
                ]
                det_boxes = [detections[j].bbox for j in det_list]
                ious = iou_matrix(track_boxes, det_boxes)
                if self.embedder is not None:
                    app = np.ones_like(ious)
                    for ti, track_idx in enumerate(remaining_tracks):
                        for di, det_idx in enumerate(det_list):
                            app[ti, di] = active[track_idx].appearance_cost(
                                features[det_idx]
                            )
                    cost = (
                        self.appearance_weight * app
                        + (1.0 - self.appearance_weight) * (1.0 - ious)
                    )
                    gate = (
                        self.appearance_weight * self.appearance_gate
                        + (1.0 - self.appearance_weight)
                        * (1.0 - self.iou_threshold)
                    )
                else:
                    cost = 1.0 - ious
                    gate = 1.0 - self.iou_threshold
                pairs = solve_assignment(cost, max_cost=gate)
                for ti, di in pairs:
                    matched_pairs.append((remaining_tracks[ti], det_list[di]))
                    unmatched_dets.discard(det_list[di])

            # --- Apply matches. ---
            for track_idx, det_idx in matched_pairs:
                dt = active[track_idx]
                detection = detections[det_idx]
                dt.kalman.update(detection.bbox)
                dt.track.append(frame, detection)
                if features[det_idx] is not None:
                    dt.gallery.append(features[det_idx])

            matched_tracks = {t for t, _ in matched_pairs}
            survivors = []
            for idx, dt in enumerate(active):
                if idx in matched_tracks:
                    survivors.append(dt)
                elif dt.kalman.time_since_update > self.max_age:
                    finished.append(dt.track)
                else:
                    survivors.append(dt)
            active = survivors

            for det_idx in sorted(unmatched_dets):
                detection = detections[det_idx]
                track = Track(next_id)
                track.append(frame, detection)
                new = _DeepTrack(track, KalmanBoxTracker(detection.bbox))
                if features[det_idx] is not None:
                    new.gallery.append(features[det_idx])
                active.append(new)
                next_id += 1

        finished.extend(dt.track for dt in active)
        return self.finalize(finished, self.min_length)
