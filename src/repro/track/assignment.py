"""Linear assignment solvers.

:func:`hungarian` is a from-scratch O(n³) Kuhn–Munkres implementation using
the potentials/shortest-augmenting-path formulation; it handles rectangular
cost matrices by operating on rows ≤ columns and transposing otherwise.
:func:`greedy_assignment` is the cheap alternative some trackers (IoU
tracker) use.  :func:`solve_assignment` wraps either with cost gating, which
is how the trackers consume them.
"""

from __future__ import annotations

import numpy as np

_INF = float("inf")


def hungarian(cost: np.ndarray) -> list[tuple[int, int]]:
    """Minimum-cost assignment on a rectangular cost matrix.

    Args:
        cost: ``(n_rows, n_cols)`` array of finite costs.

    Returns:
        List of ``(row, col)`` pairs; every row (if ``n_rows <= n_cols``)
        or every column (otherwise) is matched.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2:
        raise ValueError("cost matrix must be 2-dimensional")
    if cost.size == 0:
        return []
    if not np.isfinite(cost).all():
        raise ValueError("cost matrix must be finite")

    transposed = cost.shape[0] > cost.shape[1]
    if transposed:
        cost = cost.T
    n, m = cost.shape  # n <= m

    # Potentials-based Hungarian; internal arrays are 1-indexed with column 0
    # acting as the virtual source of each augmenting path.
    u = np.zeros(n + 1)
    v = np.zeros(m + 1)
    match = np.zeros(m + 1, dtype=np.int64)  # match[j] = row assigned to col j
    way = np.zeros(m + 1, dtype=np.int64)  # predecessor column on the path

    for i in range(1, n + 1):
        match[0] = i
        j0 = 0
        minv = np.full(m + 1, _INF)
        used = np.zeros(m + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = int(match[j0])
            # Vectorized relaxation of all unused columns.
            free = ~used
            free[0] = False
            cols = np.nonzero(free)[0]
            reduced = cost[i0 - 1, cols - 1] - u[i0] - v[cols]
            better = reduced < minv[cols]
            improved_cols = cols[better]
            minv[improved_cols] = reduced[better]
            way[improved_cols] = j0

            pick = int(cols[np.argmin(minv[cols])])
            delta = minv[pick]
            # Update potentials along the alternating tree.
            used_cols = np.nonzero(used)[0]
            u[match[used_cols]] += delta
            v[used_cols] -= delta
            minv[cols] -= delta
            j0 = pick
            if match[j0] == 0:
                break
        # Augment along the stored predecessor path.
        while j0:
            j1 = int(way[j0])
            match[j0] = match[j1]
            j0 = j1

    pairs = []
    for j in range(1, m + 1):
        if match[j] != 0:
            row, col = int(match[j]) - 1, j - 1
            pairs.append((col, row) if transposed else (row, col))
    pairs.sort()
    return pairs


def greedy_assignment(
    cost: np.ndarray, max_cost: float = _INF
) -> list[tuple[int, int]]:
    """Greedy minimum-cost matching: repeatedly take the cheapest pair.

    Not optimal, but what cheap trackers (IoU tracker) actually use.

    Args:
        cost: ``(n_rows, n_cols)`` cost matrix.
        max_cost: pairs with cost above this are never matched.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.size == 0:
        return []
    pairs = []
    used_rows: set[int] = set()
    used_cols: set[int] = set()
    order = np.argsort(cost, axis=None)
    for flat in order:
        r, c = divmod(int(flat), cost.shape[1])
        if r in used_rows or c in used_cols:
            continue
        if cost[r, c] > max_cost:
            break
        pairs.append((r, c))
        used_rows.add(r)
        used_cols.add(c)
    pairs.sort()
    return pairs


def solve_assignment(
    cost: np.ndarray,
    max_cost: float = _INF,
    method: str = "hungarian",
) -> list[tuple[int, int]]:
    """Solve an assignment problem with cost gating.

    Costs above ``max_cost`` are treated as forbidden: the solver runs on a
    clamped matrix and gated pairs are dropped from the result.

    Args:
        cost: ``(n_rows, n_cols)`` cost matrix.
        max_cost: maximum admissible pair cost.
        method: ``"hungarian"`` (optimal) or ``"greedy"``.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.size == 0:
        return []
    if method == "greedy":
        return greedy_assignment(cost, max_cost)
    if method != "hungarian":
        raise ValueError(f"unknown assignment method {method!r}")

    if np.isfinite(max_cost):
        # Clamp forbidden entries to a large-but-finite sentinel so the
        # solver stays numerically happy, then filter them out.
        finite_max = float(np.max(cost[np.isfinite(cost)], initial=0.0))
        sentinel = (max(finite_max, max_cost) + 1.0) * 10.0
        clamped = np.where(
            np.isfinite(cost) & (cost <= max_cost), cost, sentinel
        )
    else:
        clamped = cost
    pairs = hungarian(clamped)
    return [(r, c) for r, c in pairs if cost[r, c] <= max_cost]
