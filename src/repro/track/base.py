"""Track data structures and the tracker interface.

A :class:`Track` is the paper's ``t_{c,k}``: a tracking-ID plus the ordered
sequence of its observations (the BBox sequence ``B_t``).  Trackers turn
per-frame detection lists into a list of tracks; each concrete tracker lives
in its own module.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.detect import Detection
from repro.geometry import BBox


@dataclass(frozen=True)
class TrackObservation:
    """One (frame, detection) membership of a track."""

    frame: int
    detection: Detection

    @property
    def bbox(self) -> BBox:
        """The observed bounding box."""
        return self.detection.bbox


@dataclass
class Track:
    """A tracker-produced track: a TID plus its ordered observations.

    Attributes:
        track_id: the tracking identifier (TID) assigned by the tracker.
        observations: observations in increasing frame order.
    """

    track_id: int
    observations: list[TrackObservation] = field(default_factory=list)

    def append(self, frame: int, detection: Detection) -> None:
        """Add an observation; frames must be strictly increasing."""
        if self.observations and frame <= self.observations[-1].frame:
            raise ValueError(
                f"track {self.track_id}: non-increasing frame {frame}"
            )
        self.observations.append(TrackObservation(frame, detection))

    def __len__(self) -> int:
        return len(self.observations)

    @property
    def first_frame(self) -> int:
        """Frame index of the first observation."""
        if not self.observations:
            raise ValueError(f"track {self.track_id} is empty")
        return self.observations[0].frame

    @property
    def last_frame(self) -> int:
        """Frame index of the last observation."""
        if not self.observations:
            raise ValueError(f"track {self.track_id} is empty")
        return self.observations[-1].frame

    @property
    def bboxes(self) -> list[BBox]:
        """The paper's ``B_t``: the ordered BBox sequence of this track."""
        return [obs.bbox for obs in self.observations]

    @property
    def frames(self) -> list[int]:
        """All observation frame indices, in order."""
        return [obs.frame for obs in self.observations]

    def dominant_source(self) -> int | None:
        """Most frequent GT object behind this track (None for clutter).

        Used only by evaluation code to label tracks; the merging algorithms
        never call this.
        """
        counts: dict[int | None, int] = {}
        for obs in self.observations:
            key = obs.detection.source_id
            counts[key] = counts.get(key, 0) + 1
        if not counts:
            return None
        return max(counts, key=lambda k: counts[k])

    def overlaps_frames(self, other: "Track") -> bool:
        """Whether the two tracks coexist at some frame range."""
        return not (
            self.last_frame < other.first_frame
            or other.last_frame < self.first_frame
        )

    def to_dict(self) -> dict:
        """Pure-JSON form (used by streaming service checkpoints)."""
        return {
            "track_id": self.track_id,
            "observations": [
                [obs.frame, obs.detection.to_dict()]
                for obs in self.observations
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Track":
        """Rebuild a track from :meth:`to_dict` output."""
        track = cls(int(payload["track_id"]))
        for frame, detection in payload["observations"]:
            track.append(int(frame), Detection.from_dict(detection))
        return track


class Tracker(abc.ABC):
    """Interface every tracker implements: detections in, tracks out."""

    @abc.abstractmethod
    def run(self, detections_per_frame: list[list[Detection]]) -> list[Track]:
        """Track across an entire frame sequence.

        Args:
            detections_per_frame: ``detections_per_frame[t]`` lists the
                detections of frame ``t``.

        Returns:
            All tracks produced, including ones still alive at the end.
            Tracks shorter than the tracker's minimum length are dropped.
        """

    @staticmethod
    def finalize(tracks: list[Track], min_length: int) -> list[Track]:
        """Drop degenerate tracks and renumber TIDs densely from 0."""
        kept = [t for t in tracks if len(t) >= min_length]
        kept.sort(key=lambda t: (t.first_frame, t.track_id))
        for new_id, track in enumerate(kept):
            track.track_id = new_id
        return kept

    def stream(self) -> "TrackerStream":
        """Open an incremental tracking session (streaming ingestion).

        Trackers that support frame-at-a-time operation override this;
        the default signals that only batch :meth:`run` is available.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no incremental mode; "
            "use a streamable tracker (TracktorTracker, IoUTracker)"
        )


class TrackerStream(abc.ABC):
    """A frame-at-a-time tracking session with checkpointable state.

    The batch :meth:`Tracker.run` of a streamable tracker is defined as
    ``stream()`` + :meth:`advance` per frame + :meth:`flush` +
    ``finalize``, so feeding the same frames through a stream reproduces
    the batch association decisions exactly.  Unlike ``run``, a stream
    never renumbers TIDs: tracks keep their creation-order ids, which
    stay deterministic under incremental consumption (a global dense
    renumbering would require the whole feed).

    Frames must be advanced in strictly increasing order; the streaming
    service's watermark/reorder stage guarantees that.
    """

    @abc.abstractmethod
    def advance(self, frame: int, detections: list[Detection]) -> list[Track]:
        """Consume one frame; return tracks the tracker just closed.

        Returned tracks already satisfy the tracker's ``min_length``
        (shorter dying tracks are silently dropped, as in ``run``).
        """

    @abc.abstractmethod
    def flush(self) -> list[Track]:
        """Close and return all still-active tracks (end of feed)."""

    @property
    @abc.abstractmethod
    def close_lag(self) -> int:
        """Upper bound on frames between a track's last observation and
        the :meth:`advance` call that closes it (the tracker's patience);
        window finalization waits this many frames past a window's end."""

    @abc.abstractmethod
    def earliest_open_frame(self) -> int | None:
        """First frame of the oldest still-active track (``None`` when no
        track is active).  Windowed consumers use this to defer closing a
        window while a track it owns is still being extended — without
        it, tracks outliving the ``L ≥ 2·L_max`` assumption would close
        after their window was finalized and be dropped."""

    @abc.abstractmethod
    def state_dict(self) -> dict:
        """Complete pure-JSON session state (for durable checkpoints)."""

    @abc.abstractmethod
    def load_state_dict(self, state: dict) -> None:
        """Restore a session captured by :meth:`state_dict`."""
