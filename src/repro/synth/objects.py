"""Ground-truth objects and their latent appearance.

Every simulated object carries a *latent appearance vector*: the "true"
embedding the simulated ReID model observes through noise.  Two BBoxes of
the same object therefore yield nearby features, and BBoxes of different
objects yield far-apart features — the single property the paper's
algorithms rely on (§III footnote 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.geometry import BBox
from repro.synth.motion import MotionModel


class ObjectClass(enum.Enum):
    """Object categories mirroring the paper's datasets (pedestrians, cars)."""

    PERSON = "person"
    VEHICLE = "vehicle"


@dataclass(frozen=True)
class GroundTruthObject:
    """One physical object with its full (noise-free) trajectory recipe.

    Attributes:
        object_id: globally unique GT identity.
        object_class: semantic class.
        spawn_frame: first frame the object exists.
        lifetime: number of frames the object exists.
        size: nominal ``(width, height)`` of its bounding box.
        motion: motion model giving the center at each frame offset.
        appearance: unit-norm latent appearance vector.
    """

    object_id: int
    object_class: ObjectClass
    spawn_frame: int
    lifetime: int
    size: tuple[float, float]
    motion: MotionModel
    appearance: np.ndarray

    def __post_init__(self) -> None:
        if self.lifetime < 1:
            raise ValueError("lifetime must be >= 1")
        if self.size[0] <= 0 or self.size[1] <= 0:
            raise ValueError("object size must be positive")

    @property
    def last_frame(self) -> int:
        """Last frame (inclusive) at which the object exists."""
        return self.spawn_frame + self.lifetime - 1

    def alive_at(self, frame: int) -> bool:
        """Whether the object exists at ``frame``."""
        return self.spawn_frame <= frame <= self.last_frame

    def bbox_at(self, frame: int) -> BBox:
        """Noise-free bounding box at ``frame`` (caller ensures aliveness)."""
        if not self.alive_at(frame):
            raise ValueError(
                f"object {self.object_id} is not alive at frame {frame}"
            )
        cx, cy = self.motion.position(frame - self.spawn_frame)
        return BBox.from_center(cx, cy, self.size[0], self.size[1])


def draw_appearance(dim: int, spread: float, rng: np.random.Generator) -> np.ndarray:
    """Draw a unit-norm latent appearance vector.

    Args:
        dim: embedding dimensionality.
        spread: pre-normalization std-dev; kept as an explicit knob so
            presets can tune inter-object separability.
        rng: random source.
    """
    if dim < 2:
        raise ValueError("appearance dimension must be >= 2")
    vec = rng.normal(0.0, max(spread, 1e-9), size=dim)
    norm = np.linalg.norm(vec)
    if norm == 0:
        vec[0] = 1.0
        norm = 1.0
    return vec / norm


def draw_clustered_appearance(
    center: np.ndarray,
    cluster_spread: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw a unit-norm latent near a cluster center (a look-alike family).

    The latent is ``normalize(center + cluster_spread · u)`` with ``u`` a
    random unit direction, so same-cluster objects have raw feature
    distances around ``cluster_spread`` of each other — the hard negatives
    of the ranking problem.

    Args:
        center: unit-norm cluster center.
        cluster_spread: within-cluster deviation magnitude.
        rng: random source.
    """
    direction = rng.normal(0.0, 1.0, size=center.shape[0])
    norm = np.linalg.norm(direction)
    if norm == 0:
        direction[0] = 1.0
        norm = 1.0
    vec = center + cluster_spread * direction / norm
    return vec / np.linalg.norm(vec)
