"""Dataset presets mirroring the paper's evaluation corpora.

The paper evaluates on MOT-17, KITTI (pedestrian videos) and PathTrack
(YouTube source videos).  We cannot ship those, so each preset configures
the simulator to match the statistics the paper reports:

* **MOT-17-like** — crowded pedestrian scenes; ~825 frames per video,
  ~400 track pairs per window with ~2 % polyonymous rate.
* **KITTI-like** — driving scenes; sparser pedestrians, shorter tracks,
  strong inter-object occlusion from vehicles.
* **PathTrack-like** — long (~2 minute) web videos; ~145 tracks per window,
  ~105 BBoxes per track, ``L_max ≈ 1000`` frames.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synth.scene import SceneConfig
from repro.synth.world import VideoGroundTruth, simulate_world


@dataclass(frozen=True)
class DatasetPreset:
    """A named scene recipe plus default video dimensions.

    Attributes:
        name: preset identifier (``mot17``, ``kitti``, ``pathtrack``).
        config: the scene configuration.
        n_videos: how many videos the paper-scale version of this dataset
            contains (our benches typically use fewer for runtime).
        video_frames: default per-video length in frames.
        default_window: default window length ``L`` used in the paper's
            experiments on this dataset.
    """

    name: str
    config: SceneConfig
    n_videos: int
    video_frames: int
    default_window: int


def mot17_like() -> DatasetPreset:
    """Crowded pedestrian surveillance, à la MOT-17."""
    config = SceneConfig(
        width=1920.0,
        height=1080.0,
        spawn_rate=0.015,
        initial_objects=8,
        max_objects=18,
        min_track_length=100,
        max_track_length=700,
        mean_speed=3.5,
        speed_jitter=1.2,
        person_fraction=0.97,
        n_static_occluders=4,
        glare_rate=2.0,
        glare_duration=(8, 30),
        glare_strength=0.05,
        random_walk_fraction=0.35,
    )
    return DatasetPreset(
        name="mot17",
        config=config,
        n_videos=14,
        video_frames=900,
        default_window=2000,
    )


def kitti_like() -> DatasetPreset:
    """Driving scenes with pedestrians and vehicles, à la KITTI tracking."""
    config = SceneConfig(
        width=1242.0,
        height=375.0,
        spawn_rate=0.02,
        initial_objects=6,
        max_objects=15,
        min_track_length=30,
        max_track_length=300,
        mean_speed=5.0,
        speed_jitter=2.0,
        person_fraction=0.6,
        person_size=(45.0, 110.0),
        vehicle_size=(180.0, 100.0),
        n_static_occluders=2,
        occluder_size=(100.0, 250.0),
        glare_rate=3.0,
        glare_duration=(6, 25),
        glare_strength=0.05,
        random_walk_fraction=0.15,
    )
    return DatasetPreset(
        name="kitti",
        config=config,
        n_videos=8,
        video_frames=800,
        default_window=2000,
    )


def pathtrack_like() -> DatasetPreset:
    """Long web videos with many person trajectories, à la PathTrack."""
    config = SceneConfig(
        width=1280.0,
        height=720.0,
        spawn_rate=0.02,
        initial_objects=8,
        max_objects=20,
        min_track_length=80,
        max_track_length=1000,
        mean_speed=2.5,
        speed_jitter=1.0,
        person_fraction=0.95,
        person_size=(50.0, 130.0),
        n_static_occluders=3,
        glare_rate=1.5,
        glare_duration=(10, 45),
        glare_strength=0.08,
        random_walk_fraction=0.4,
    )
    return DatasetPreset(
        name="pathtrack",
        config=config,
        n_videos=9,
        video_frames=3600,
        default_window=2000,
    )


_PRESETS = {
    "mot17": mot17_like,
    "kitti": kitti_like,
    "pathtrack": pathtrack_like,
}


def preset_by_name(name: str) -> DatasetPreset:
    """Look up a preset; raises ``KeyError`` with the known names on miss."""
    try:
        return _PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown dataset preset {name!r}; choose from {sorted(_PRESETS)}"
        ) from None


def make_dataset(
    preset: DatasetPreset | str,
    n_videos: int | None = None,
    video_frames: int | None = None,
    seed: int = 0,
) -> list[VideoGroundTruth]:
    """Simulate a list of GT videos for a preset.

    Args:
        preset: a :class:`DatasetPreset` or its name.
        n_videos: override the number of videos (benches use small counts).
        video_frames: override per-video length.
        seed: base seed; video ``i`` uses ``seed + i``.
    """
    if isinstance(preset, str):
        preset = preset_by_name(preset)
    count = n_videos if n_videos is not None else preset.n_videos
    frames = video_frames if video_frames is not None else preset.video_frames
    return [
        simulate_world(preset.config, frames, seed=seed + i)
        for i in range(count)
    ]
