"""Occlusion and glare machinery.

Two mechanisms fragment tracks in the paper's telling (§I): *occlusion* —
an object hidden behind another object or a static scene element — and
*glare* — lighting that blinds detection for a stretch of frames.  This
module provides both:

* :class:`StaticOccluder` — a fixed opaque region (pole, parked truck).
* dynamic object-object occlusion — computed in :func:`occlusion_fractions`
  using a painter's-order depth proxy (larger ``y2`` = closer to camera).
* :class:`GlareInterval` + :func:`glare_factor` — scheduled visibility
  multipliers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import BBox


@dataclass(frozen=True)
class StaticOccluder:
    """A fixed opaque region that hides whatever passes behind it."""

    region: BBox

    def coverage(self, box: BBox) -> float:
        """Fraction of ``box`` hidden by this occluder, in [0, 1]."""
        inter = self.region.intersection(box)
        if inter is None or box.area == 0:
            return 0.0
        return min(inter.area / box.area, 1.0)


@dataclass(frozen=True)
class GlareInterval:
    """A frame interval during which detection visibility is multiplied down.

    Attributes:
        start: first affected frame (inclusive).
        end: last affected frame (inclusive).
        strength: visibility multiplier in [0, 1]; 0 blinds detection.
    """

    start: int
    end: int
    strength: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("glare interval end before start")
        if not 0 <= self.strength <= 1:
            raise ValueError("glare strength must be in [0, 1]")

    def active_at(self, frame: int) -> bool:
        """Whether the glare interval covers ``frame``."""
        return self.start <= frame <= self.end


def glare_factor(frame: int, intervals: list[GlareInterval]) -> float:
    """Combined visibility multiplier at ``frame`` (product of active glares)."""
    factor = 1.0
    for interval in intervals:
        if interval.active_at(frame):
            factor *= interval.strength
    return factor


def schedule_glare(
    n_frames: int,
    rate_per_1000: float,
    duration_range: tuple[int, int],
    strength: float,
    rng: np.random.Generator,
) -> list[GlareInterval]:
    """Draw a Poisson schedule of glare intervals over ``n_frames``.

    Args:
        n_frames: video length.
        rate_per_1000: expected glare events per 1000 frames.
        duration_range: inclusive (min, max) event length in frames.
        strength: visibility multiplier during each event.
        rng: random source.
    """
    expected = rate_per_1000 * n_frames / 1000.0
    count = int(rng.poisson(expected)) if expected > 0 else 0
    intervals = []
    lo, hi = duration_range
    if lo > hi:
        raise ValueError("glare duration range inverted")
    for _ in range(count):
        start = int(rng.integers(0, max(n_frames, 1)))
        duration = int(rng.integers(lo, hi + 1))
        intervals.append(
            GlareInterval(start, min(start + duration, n_frames - 1), strength)
        )
    return intervals


def occlusion_fractions(
    boxes: list[BBox], occluders: list[StaticOccluder]
) -> list[float]:
    """Per-object occluded fraction for one frame.

    Depth ordering uses the bottom edge ``y2`` as a proximity proxy (objects
    lower in the image are closer to a typical surveillance camera and paint
    over objects above them).  Object-object occlusion and static-occluder
    coverage combine multiplicatively on the *visible* remainder.

    Returns:
        A list aligned with ``boxes``: fraction of each box hidden, in [0, 1].
    """
    n = len(boxes)
    fractions = [0.0] * n
    order = sorted(range(n), key=lambda i: boxes[i].y2)

    for rank, i in enumerate(order):
        box = boxes[i]
        hidden = 0.0
        # Objects deeper in the painter's order (closer) occlude this one.
        for j in order[rank + 1:]:
            inter = box.intersection(boxes[j])
            if inter is not None and box.area > 0:
                hidden = max(hidden, inter.area / box.area)
        for occluder in occluders:
            hidden = max(hidden, occluder.coverage(box))
        fractions[i] = min(hidden, 1.0)
    return fractions
