"""Motion models for ground-truth objects.

Each model answers one question: *where is the object's center at frame
``t`` relative to its spawn frame?*  Models are deterministic functions of a
pre-drawn random state so a world can be re-simulated reproducibly and
positions can be queried out of order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np


class MotionModel(Protocol):
    """Maps a frame offset (frames since spawn) to a center position."""

    def position(self, step: int) -> tuple[float, float]:
        """Position at ``step`` frames after spawn."""
        """Center coordinates ``(cx, cy)`` at ``step`` frames after spawn."""
        ...


@dataclass(frozen=True)
class ConstantVelocity:
    """Straight-line motion — vehicles and purposeful pedestrians.

    Attributes:
        start: spawn position ``(x, y)``.
        velocity: per-frame displacement ``(vx, vy)``.
    """

    start: tuple[float, float]
    velocity: tuple[float, float]

    def position(self, step: int) -> tuple[float, float]:
        """Position at ``step`` frames after spawn."""
        return (
            self.start[0] + self.velocity[0] * step,
            self.start[1] + self.velocity[1] * step,
        )


@dataclass(frozen=True)
class RandomWalk:
    """Loitering pedestrian: a pre-drawn smoothed random walk.

    The walk is materialized at construction (``steps`` entries) so that
    ``position`` is a pure lookup; querying beyond the horizon holds the last
    position, which is fine because objects are despawned by their lifetime.
    """

    path: tuple[tuple[float, float], ...]

    @classmethod
    def generate(
        cls,
        start: tuple[float, float],
        steps: int,
        rng: np.random.Generator,
        step_scale: float = 3.0,
        momentum: float = 0.85,
    ) -> "RandomWalk":
        """Draw a smoothed random walk of ``steps`` positions.

        Args:
            start: initial position.
            steps: number of frames to materialize.
            rng: random source.
            step_scale: std-dev of the per-frame innovation, in pixels.
            momentum: exponential smoothing of the velocity (0 = white
                noise steps, 1 = constant velocity).
        """
        if steps < 1:
            raise ValueError("steps must be >= 1")
        positions = np.empty((steps, 2), dtype=np.float64)
        positions[0] = start
        velocity = np.zeros(2)
        innovations = rng.normal(0.0, step_scale, size=(steps - 1, 2))
        for i in range(1, steps):
            velocity = momentum * velocity + (1.0 - momentum) * innovations[i - 1]
            positions[i] = positions[i - 1] + velocity
        return cls(path=tuple(map(tuple, positions.tolist())))

    def position(self, step: int) -> tuple[float, float]:
        """Position at ``step`` frames after spawn."""
        index = min(max(step, 0), len(self.path) - 1)
        return self.path[index]


@dataclass(frozen=True)
class WaypointPath:
    """Piecewise-linear motion through waypoints at constant speed.

    Useful for scripting crossings and near-misses (the situations that
    generate occlusions) in tests and examples.
    """

    waypoints: tuple[tuple[float, float], ...]
    speed: float

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("WaypointPath needs at least two waypoints")
        if self.speed <= 0:
            raise ValueError("speed must be positive")

    def _segment_lengths(self) -> list[float]:
        lengths = []
        for (x1, y1), (x2, y2) in zip(self.waypoints, self.waypoints[1:]):
            lengths.append(math.hypot(x2 - x1, y2 - y1))
        return lengths

    def position(self, step: int) -> tuple[float, float]:
        """Position at ``step`` frames after spawn."""
        distance = self.speed * max(step, 0)
        for (start, end), seg_len in zip(
            zip(self.waypoints, self.waypoints[1:]), self._segment_lengths()
        ):
            if distance <= seg_len or seg_len == 0:
                frac = 0.0 if seg_len == 0 else distance / seg_len
                return (
                    start[0] + (end[0] - start[0]) * frac,
                    start[1] + (end[1] - start[1]) * frac,
                )
            distance -= seg_len
        return self.waypoints[-1]
