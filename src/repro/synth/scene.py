"""Scene configuration for the synthetic world.

A :class:`SceneConfig` bundles everything :func:`repro.synth.world.simulate_world`
needs: image geometry, object population dynamics, motion statistics and the
occlusion/glare machinery.  Dataset presets (:mod:`repro.synth.datasets`)
instantiate it with values matched to the statistics the paper reports for
MOT-17, KITTI and PathTrack.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SceneConfig:
    """Parameters of a simulated camera scene.

    Attributes:
        width: image width in pixels.
        height: image height in pixels.
        fps: nominal frame rate (only used for documentation/reporting).
        spawn_rate: expected number of new objects entering per frame
            (Poisson).
        initial_objects: number of objects present at frame 0.
        max_objects: hard cap on simultaneously active objects.
        min_track_length: minimum GT track lifetime in frames.
        max_track_length: maximum GT track lifetime in frames.  This is the
            paper's ``L_max``; windows must satisfy ``L >= 2 * L_max``.
        mean_speed: average object speed in pixels/frame.
        speed_jitter: standard deviation of per-object speed.
        person_fraction: fraction of spawned objects that are pedestrians
            (the rest are vehicles, which are larger and faster).
        person_size: (width, height) of a pedestrian bbox in pixels.
        vehicle_size: (width, height) of a vehicle bbox in pixels.
        size_jitter: relative std-dev applied to object sizes.
        n_static_occluders: number of static occluding regions (poles,
            parked trucks) placed uniformly in the scene.
        occluder_size: (width, height) of each static occluder.
        glare_rate: expected number of glare events per 1000 frames.
        glare_duration: (min, max) glare event length in frames.
        glare_strength: visibility multiplier during glare, in [0, 1];
            0 means the detector is fully blinded.
        appearance_dim: dimensionality of the latent appearance vectors
            consumed by the simulated ReID model.
        appearance_spread: how distinct object appearances are.  Latents are
            drawn i.i.d. N(0, appearance_spread²) per dimension before
            normalization; larger values make different objects easier to
            tell apart.
        appearance_clusters: number of appearance clusters (clothing/vehicle
            styles).  Objects in the same cluster are look-alikes whose
            pairwise ReID distances fall near the polyonymous decision
            boundary — the hard negatives that make ranking genuinely
            sample-hungry.  0 disables clustering (uniform latents).
        cluster_spread: within-cluster deviation magnitude; smaller values
            make same-cluster objects harder to tell apart.
        random_walk_fraction: fraction of objects using a random-walk motion
            model instead of constant velocity (pedestrian loitering).
        spawn_rate_schedule: arrival-rate bursts — ``(start_frame,
            end_frame, multiplier)`` intervals applied multiplicatively to
            ``spawn_rate`` while ``start_frame <= t < end_frame``
            (overlapping intervals compound).  The empty default keeps the
            arrival process exactly as before, bit-for-bit; the scenario
            generator (:mod:`repro.scenarios`) uses this seam to model
            crowd surges.
        track_length_tail: when set, GT track lifetimes are drawn from a
            truncated Pareto with this shape parameter instead of the
            uniform ``[min_track_length, max_track_length]`` draw —
            ``lifetime = clip(min·(1 + Pareto(α)), min, max)``.  Smaller
            α means heavier tails (more very long tracks).  ``None``
            (default) keeps the uniform draw bit-identical to the
            pre-scenario simulator.
    """

    width: float = 1920.0
    height: float = 1080.0
    fps: float = 30.0
    spawn_rate: float = 0.05
    initial_objects: int = 12
    max_objects: int = 40
    min_track_length: int = 60
    max_track_length: int = 600
    mean_speed: float = 4.0
    speed_jitter: float = 1.5
    person_fraction: float = 0.9
    person_size: tuple[float, float] = (60.0, 160.0)
    vehicle_size: tuple[float, float] = (220.0, 130.0)
    size_jitter: float = 0.15
    n_static_occluders: int = 3
    occluder_size: tuple[float, float] = (120.0, 400.0)
    glare_rate: float = 1.5
    glare_duration: tuple[int, int] = (10, 45)
    glare_strength: float = 0.1
    appearance_dim: int = 64
    appearance_spread: float = 1.0
    appearance_clusters: int = 20
    cluster_spread: float = 0.75
    random_walk_fraction: float = 0.25
    spawn_rate_schedule: tuple[tuple[int, int, float], ...] = ()
    track_length_tail: float | None = None

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("scene dimensions must be positive")
        if not 0 <= self.person_fraction <= 1:
            raise ValueError("person_fraction must be in [0, 1]")
        if self.min_track_length > self.max_track_length:
            raise ValueError("min_track_length exceeds max_track_length")
        if self.max_objects < 1:
            raise ValueError("max_objects must be at least 1")
        if not 0 <= self.glare_strength <= 1:
            raise ValueError("glare_strength must be in [0, 1]")
        if self.appearance_clusters < 0:
            raise ValueError("appearance_clusters must be non-negative")
        if self.cluster_spread < 0:
            raise ValueError("cluster_spread must be non-negative")
        for interval in self.spawn_rate_schedule:
            if len(interval) != 3:
                raise ValueError(
                    "spawn_rate_schedule entries must be "
                    "(start_frame, end_frame, multiplier)"
                )
            start, end, multiplier = interval
            if start < 0 or end < start:
                raise ValueError(
                    "spawn_rate_schedule needs 0 <= start_frame <= end_frame"
                )
            if multiplier < 0:
                raise ValueError(
                    "spawn_rate_schedule multipliers must be non-negative"
                )
        if self.track_length_tail is not None and self.track_length_tail <= 0:
            raise ValueError("track_length_tail must be positive when set")

    def spawn_multiplier_at(self, frame: int) -> float:
        """The compounded arrival-rate multiplier in force at ``frame``.

        Overlapping schedule intervals multiply together; with an empty
        schedule this is exactly ``1.0`` everywhere, so the default
        arrival process is unchanged bit-for-bit.
        """
        multiplier = 1.0
        for start, end, value in self.spawn_rate_schedule:
            if start <= frame < end:
                multiplier *= value
        return multiplier

    @property
    def l_max(self) -> int:
        """The paper's ``L_max``: longest possible GT track, in frames."""
        return self.max_track_length
