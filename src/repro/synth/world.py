"""Ground-truth world simulation.

:func:`simulate_world` rolls a :class:`~repro.synth.scene.SceneConfig`
forward for ``n_frames``, producing a :class:`VideoGroundTruth` — per frame,
the visible objects with their (clipped) bounding boxes and visibility
fractions.  Visibility combines dynamic object-object occlusion, static
occluders and scheduled glare; the detection simulator turns low visibility
into missed detections, which is what ultimately fragments tracks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry import BBox, clip_bbox
from repro.synth.events import (
    GlareInterval,
    StaticOccluder,
    glare_factor,
    occlusion_fractions,
    schedule_glare,
)
from repro.synth.motion import ConstantVelocity, RandomWalk
from repro.synth.objects import (
    GroundTruthObject,
    ObjectClass,
    draw_appearance,
    draw_clustered_appearance,
)
from repro.synth.scene import SceneConfig

# An object must be at least this visible *and* this fraction inside the
# image for its GT state to be recorded at a frame.  Mirrors MOT annotation
# practice of dropping fully-occluded boxes.
_MIN_VISIBILITY = 0.02
_MIN_ONSCREEN_FRACTION = 0.25


@dataclass(frozen=True)
class GroundTruthState:
    """One object's ground truth at one frame.

    Attributes:
        object_id: GT identity.
        bbox: bounding box clipped to the image.
        visibility: fraction of the object visible, in [0, 1]
            (1 − occlusion, multiplied by any active glare factor).
    """

    object_id: int
    bbox: BBox
    visibility: float


@dataclass
class VideoGroundTruth:
    """The complete ground truth of one simulated video.

    Attributes:
        config: the scene configuration used.
        n_frames: video length.
        objects: GT objects by id (including their appearance latents).
        frames: ``frames[t]`` lists the visible objects at frame ``t``.
        occluders: static occluders placed in the scene.
        glare: scheduled glare intervals.
    """

    config: SceneConfig
    n_frames: int
    objects: dict[int, GroundTruthObject]
    frames: list[list[GroundTruthState]]
    occluders: list[StaticOccluder]
    glare: list[GlareInterval]

    def states_for(self, object_id: int) -> list[tuple[int, GroundTruthState]]:
        """All (frame, state) entries of one object, in frame order."""
        result = []
        for frame, states in enumerate(self.frames):
            for state in states:
                if state.object_id == object_id:
                    result.append((frame, state))
        return result

    def gt_track_spans(self) -> dict[int, tuple[int, int]]:
        """First/last frame each GT object is actually visible."""
        spans: dict[int, tuple[int, int]] = {}
        for frame, states in enumerate(self.frames):
            for state in states:
                first, _ = spans.get(state.object_id, (frame, frame))
                spans[state.object_id] = (first, frame)
        return spans


def _spawn_edge_position(
    config: SceneConfig, rng: np.random.Generator
) -> tuple[tuple[float, float], tuple[float, float]]:
    """Pick an entry point on an image edge and an inward direction."""
    edge = rng.integers(0, 4)
    w, h = config.width, config.height
    if edge == 0:  # left edge, moving right
        start = (0.0, float(rng.uniform(0.2 * h, 0.95 * h)))
        direction = (1.0, float(rng.uniform(-0.2, 0.2)))
    elif edge == 1:  # right edge, moving left
        start = (w, float(rng.uniform(0.2 * h, 0.95 * h)))
        direction = (-1.0, float(rng.uniform(-0.2, 0.2)))
    elif edge == 2:  # top edge, moving down
        start = (float(rng.uniform(0.05 * w, 0.95 * w)), 0.2 * h)
        direction = (float(rng.uniform(-0.3, 0.3)), 1.0)
    else:  # bottom edge, moving up
        start = (float(rng.uniform(0.05 * w, 0.95 * w)), h)
        direction = (float(rng.uniform(-0.3, 0.3)), -1.0)
    norm = float(np.hypot(*direction))
    return start, (direction[0] / norm, direction[1] / norm)


def _make_object(
    object_id: int,
    spawn_frame: int,
    config: SceneConfig,
    rng: np.random.Generator,
    interior: bool,
    cluster_centers: list[np.ndarray] | None = None,
) -> GroundTruthObject:
    """Draw one GT object: class, size, lifetime, motion and appearance."""
    is_person = rng.random() < config.person_fraction
    object_class = ObjectClass.PERSON if is_person else ObjectClass.VEHICLE
    base_w, base_h = (
        config.person_size if is_person else config.vehicle_size
    )
    jitter = 1.0 + rng.normal(0.0, config.size_jitter)
    jitter = float(np.clip(jitter, 0.5, 1.8))
    size = (base_w * jitter, base_h * jitter)

    if config.track_length_tail is not None:
        # Heavy-tailed lifetimes (scenario regimes): truncated Pareto with
        # shape α, anchored at the minimum lifetime.  One draw per object,
        # like the uniform branch, so enabling the tail never perturbs any
        # other stream — and the default (None) keeps the uniform draw
        # bit-identical to the pre-scenario simulator.
        draw = float(rng.pareto(config.track_length_tail))
        lifetime = int(
            np.clip(
                config.min_track_length * (1.0 + draw),
                config.min_track_length,
                config.max_track_length,
            )
        )
    else:
        lifetime = int(
            rng.integers(config.min_track_length, config.max_track_length + 1)
        )

    speed = max(float(rng.normal(config.mean_speed, config.speed_jitter)), 0.3)
    # Vehicles move faster than pedestrians.
    if object_class is ObjectClass.VEHICLE:
        speed *= 2.0

    if interior:
        start = (
            float(rng.uniform(0.1 * config.width, 0.9 * config.width)),
            float(rng.uniform(0.3 * config.height, 0.95 * config.height)),
        )
        angle = float(rng.uniform(0, 2 * np.pi))
        direction = (float(np.cos(angle)), float(np.sin(angle)))
    else:
        start, direction = _spawn_edge_position(config, rng)

    use_walk = is_person and rng.random() < config.random_walk_fraction
    if use_walk:
        motion = RandomWalk.generate(
            start, steps=lifetime, rng=rng, step_scale=speed, momentum=0.85
        )
    else:
        motion = ConstantVelocity(
            start, (direction[0] * speed, direction[1] * speed)
        )

    if cluster_centers:
        center = cluster_centers[int(rng.integers(0, len(cluster_centers)))]
        appearance = draw_clustered_appearance(
            center, config.cluster_spread, rng
        )
    else:
        appearance = draw_appearance(
            config.appearance_dim, config.appearance_spread, rng
        )
    return GroundTruthObject(
        object_id=object_id,
        object_class=object_class,
        spawn_frame=spawn_frame,
        lifetime=lifetime,
        size=size,
        motion=motion,
        appearance=appearance,
    )


def _place_occluders(
    config: SceneConfig, rng: np.random.Generator
) -> list[StaticOccluder]:
    occluders = []
    ow, oh = config.occluder_size
    for _ in range(config.n_static_occluders):
        cx = float(rng.uniform(0.15 * config.width, 0.85 * config.width))
        cy = float(rng.uniform(0.35 * config.height, 0.85 * config.height))
        occluders.append(StaticOccluder(BBox.from_center(cx, cy, ow, oh)))
    return occluders


def simulate_world(
    config: SceneConfig,
    n_frames: int,
    seed: int | np.random.Generator = 0,
    extra_objects: list[GroundTruthObject] | None = None,
) -> VideoGroundTruth:
    """Simulate a ground-truth video.

    Args:
        config: scene parameters.
        n_frames: number of frames to simulate.
        seed: integer seed or an existing numpy ``Generator``.
        extra_objects: optional hand-scripted objects (e.g. staged crossings
            in tests) added on top of the random population.

    Returns:
        The complete :class:`VideoGroundTruth`.
    """
    if n_frames < 1:
        raise ValueError("n_frames must be >= 1")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )

    cluster_centers = [
        draw_appearance(config.appearance_dim, config.appearance_spread, rng)
        for _ in range(config.appearance_clusters)
    ]

    objects: dict[int, GroundTruthObject] = {}
    next_id = 0
    for _ in range(config.initial_objects):
        obj = _make_object(
            next_id, 0, config, rng, interior=True,
            cluster_centers=cluster_centers,
        )
        objects[next_id] = obj
        next_id += 1
    for obj in extra_objects or []:
        if obj.object_id in objects:
            raise ValueError(f"duplicate extra object id {obj.object_id}")
        objects[obj.object_id] = obj
        next_id = max(next_id, obj.object_id + 1)

    occluders = _place_occluders(config, rng)
    glare = schedule_glare(
        n_frames,
        config.glare_rate,
        config.glare_duration,
        config.glare_strength,
        rng,
    )

    frames: list[list[GroundTruthState]] = []
    active: set[int] = set(objects)
    for frame in range(n_frames):
        # Spawn new arrivals (Poisson), respecting the population cap.
        # The scenario surge schedule scales the rate per frame; the
        # default empty schedule multiplies by 1.0, leaving the Poisson
        # stream untouched bit-for-bit.
        n_alive = sum(1 for oid in active if objects[oid].alive_at(frame))
        n_spawn = int(
            rng.poisson(config.spawn_rate * config.spawn_multiplier_at(frame))
        )
        for _ in range(n_spawn):
            if n_alive >= config.max_objects:
                break
            obj = _make_object(
                next_id, frame, config, rng, interior=False,
                cluster_centers=cluster_centers,
            )
            objects[next_id] = obj
            active.add(next_id)
            next_id += 1
            n_alive += 1

        # Collect alive, on-screen objects.
        ids: list[int] = []
        boxes: list[BBox] = []
        for oid in sorted(active):
            obj = objects[oid]
            if not obj.alive_at(frame):
                continue
            raw = obj.bbox_at(frame)
            clipped = clip_bbox(raw, config.width, config.height)
            if clipped is None:
                continue
            if raw.area > 0 and clipped.area / raw.area < _MIN_ONSCREEN_FRACTION:
                continue
            ids.append(oid)
            boxes.append(clipped)

        hidden = occlusion_fractions(boxes, occluders)
        frame_glare = glare_factor(frame, glare)
        states = []
        for oid, box, frac in zip(ids, boxes, hidden):
            visibility = (1.0 - frac) * frame_glare
            if visibility >= _MIN_VISIBILITY:
                states.append(GroundTruthState(oid, box, visibility))
        frames.append(states)

        # Retire objects that can no longer appear.
        active = {
            oid
            for oid in active
            if objects[oid].last_frame >= frame
        }

    return VideoGroundTruth(
        config=config,
        n_frames=n_frames,
        objects=objects,
        frames=frames,
        occluders=occluders,
        glare=glare,
    )
