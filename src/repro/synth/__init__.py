"""Synthetic video-world substrate.

The paper evaluates on MOT-17, KITTI and PathTrack.  Those datasets are not
available offline, so this package simulates ground-truth (GT) worlds with
the same *statistical* structure: objects entering/leaving a camera view,
moving under simple dynamics, getting occluded by each other and by static
scene elements, and suffering glare intervals that blind the detector.

The output of :func:`simulate_world` is a :class:`VideoGroundTruth` — per
frame, the set of visible GT objects with bounding boxes and visibility
fractions.  Everything downstream (detector, trackers, ReID simulator,
metrics) consumes only this, exactly as the paper's algorithms consume only
tracker output and ReID features, never pixels.
"""

from repro.synth.scene import SceneConfig
from repro.synth.objects import ObjectClass, GroundTruthObject
from repro.synth.motion import (
    ConstantVelocity,
    RandomWalk,
    WaypointPath,
    MotionModel,
)
from repro.synth.events import GlareInterval, StaticOccluder, glare_factor
from repro.synth.world import (
    GroundTruthState,
    VideoGroundTruth,
    simulate_world,
)
from repro.synth.datasets import (
    DatasetPreset,
    mot17_like,
    kitti_like,
    pathtrack_like,
    make_dataset,
)

__all__ = [
    "SceneConfig",
    "ObjectClass",
    "GroundTruthObject",
    "MotionModel",
    "ConstantVelocity",
    "RandomWalk",
    "WaypointPath",
    "GlareInterval",
    "StaticOccluder",
    "glare_factor",
    "GroundTruthState",
    "VideoGroundTruth",
    "simulate_world",
    "DatasetPreset",
    "mot17_like",
    "kitti_like",
    "pathtrack_like",
    "make_dataset",
]
