"""The two query types evaluated in the paper (§V-H)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.query.store import TrackStore, longest_common_run


@dataclass(frozen=True)
class CountResult:
    """Answer of a :class:`CountQuery`.

    Attributes:
        qualifying: object ids visible for at least the threshold.
    """

    qualifying: frozenset[int]

    @property
    def count(self) -> int:
        """Number of qualifying objects."""
        return len(self.qualifying)


@dataclass(frozen=True)
class CountQuery:
    """"Count the objects visible across more than N frames" (§V-H).

    Attributes:
        min_frames: the N threshold (the paper's example uses 200).
        use_span: when True (default) an object qualifies by its first-to-
            last frame span (what "remains visible in the scene" means for a
            human); when False, by its raw appearance count.
    """

    min_frames: int = 200
    use_span: bool = True

    def __post_init__(self) -> None:
        if self.min_frames < 1:
            raise ValueError("min_frames must be >= 1")

    def evaluate(self, store: TrackStore) -> CountResult:
        """Count objects visible for more than ``min_frames`` frames."""
        qualifying = []
        for object_id in store.object_ids():
            measure = (
                store.span_of(object_id)
                if self.use_span
                else store.appearance_count(object_id)
            )
            if measure >= self.min_frames:
                qualifying.append(object_id)
        return CountResult(frozenset(qualifying))


@dataclass(frozen=True)
class CoOccurrenceResult:
    """Answer of a :class:`CoOccurrenceQuery`.

    Attributes:
        groups: qualifying object-id groups (each a sorted tuple).
    """

    groups: frozenset[tuple[int, ...]]

    @property
    def count(self) -> int:
        """Number of qualifying groups."""
        return len(self.groups)


@dataclass(frozen=True)
class CoOccurrenceQuery:
    """"Clips ≥ N frames where the same ``group_size`` objects co-occur."

    Attributes:
        group_size: number of objects appearing jointly (paper: 3).
        min_frames: minimum clip length (paper: 50).
        max_gap: per-object absence tolerated inside a clip, in frames
            (absorbs detection misses and short occlusions; clip semantics
            follow [13], where joint presence is evaluated at clip level
            rather than per frame).
    """

    group_size: int = 3
    min_frames: int = 50
    max_gap: int = 10

    def __post_init__(self) -> None:
        if self.group_size < 2:
            raise ValueError("group_size must be >= 2")
        if self.min_frames < 1:
            raise ValueError("min_frames must be >= 1")
        if self.max_gap < 0:
            raise ValueError("max_gap must be non-negative")

    def evaluate(self, store: TrackStore) -> CoOccurrenceResult:
        """Find groups co-occurring for at least ``min_frames``."""
        # Only objects visible long enough can participate.
        candidates = [
            oid
            for oid in store.object_ids()
            if store.span_of(oid) >= self.min_frames
        ]
        # Prune by pairwise temporal overlap before enumerating groups.
        spans = {
            oid: (store.frames_of(oid)[0], store.frames_of(oid)[-1])
            for oid in candidates
        }

        def spans_overlap(a: int, b: int) -> bool:
            (s1, e1), (s2, e2) = spans[a], spans[b]
            return min(e1, e2) - max(s1, s2) + 1 >= self.min_frames

        neighbors: dict[int, set[int]] = {oid: set() for oid in candidates}
        for a, b in itertools.combinations(candidates, 2):
            if spans_overlap(a, b):
                neighbors[a].add(b)
                neighbors[b].add(a)

        groups = []
        for combo in self._connected_combinations(candidates, neighbors):
            frame_sets = [store.frames_of(oid) for oid in combo]
            if (
                longest_common_run(frame_sets, max_gap=self.max_gap)
                >= self.min_frames
            ):
                groups.append(tuple(sorted(combo)))
        return CoOccurrenceResult(frozenset(groups))

    def _connected_combinations(
        self, candidates: list[int], neighbors: dict[int, set[int]]
    ):
        """Yield ``group_size`` combinations forming a pairwise-overlapping
        clique (necessary condition for joint co-occurrence)."""
        for combo in itertools.combinations(candidates, self.group_size):
            if all(
                b in neighbors[a]
                for a, b in itertools.combinations(combo, 2)
            ):
                yield combo
