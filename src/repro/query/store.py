"""The track-metadata store queries run against.

A :class:`TrackStore` is the ingestion pipeline's hand-off to query
processing: per object identifier, the set of frames it is visible in
(plus bounding boxes for spatially constrained extensions).  It can be
built from tracker output or directly from ground truth, which is how the
evaluation computes reference answers.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

from repro.geometry import BBox
from repro.track.base import Track


@dataclass
class TrackStore:
    """Frame-indexed presence data per object id.

    Attributes:
        presence: ``object_id → sorted list of frames`` it appears in.
        boxes: ``(object_id, frame) → BBox`` (optional spatial payload).
    """

    presence: dict[int, list[int]] = field(default_factory=dict)
    boxes: dict[tuple[int, int], BBox] = field(default_factory=dict)

    @classmethod
    def from_tracks(
        cls, tracks: list[Track], fill_gaps: bool = True
    ) -> "TrackStore":
        """Build a store from tracker (or merged) output.

        Args:
            tracks: the track list.
            fill_gaps: treat each track as present on *every* frame between
                its first and last observation (default).  This matches how
                MOT outputs are consumed downstream — a track is one
                continuous interval; missed detections inside it do not mean
                the object left the scene.
        """
        store = cls()
        for track in tracks:
            if not track.observations:
                continue
            if fill_gaps:
                frames = list(range(track.first_frame, track.last_frame + 1))
            else:
                frames = sorted(obs.frame for obs in track.observations)
            store.presence[track.track_id] = frames
            for obs in track.observations:
                store.boxes[(track.track_id, obs.frame)] = obs.bbox
        return store

    @classmethod
    def from_presence(cls, presence: dict[int, list[int]]) -> "TrackStore":
        """Build a store from bare presence data (e.g. ground truth)."""
        store = cls()
        for object_id, frames in presence.items():
            store.presence[object_id] = sorted(frames)
        return store

    def object_ids(self) -> list[int]:
        """All object ids, ascending."""
        return sorted(self.presence)

    def frames_of(self, object_id: int) -> list[int]:
        """Sorted frames in which ``object_id`` appears (empty if unknown)."""
        return self.presence.get(object_id, [])

    def span_of(self, object_id: int) -> int:
        """Number of frames between first and last appearance, inclusive."""
        frames = self.frames_of(object_id)
        if not frames:
            return 0
        return frames[-1] - frames[0] + 1

    def appearance_count(self, object_id: int) -> int:
        """Number of frames ``object_id`` appears in."""
        return len(self.frames_of(object_id))

    def present_in_range(self, object_id: int, start: int, end: int) -> int:
        """How many frames of ``[start, end]`` the object appears in."""
        frames = self.frames_of(object_id)
        return bisect_right(frames, end) - bisect_left(frames, start)


def longest_common_run(frame_sets: list[list[int]], max_gap: int = 0) -> int:
    """Length (in frames) of the longest joint run across sorted frame lists.

    A *joint run* is a maximal frame interval within which every object
    appears at least once every ``max_gap + 1`` frames.  With ``max_gap=0``
    this requires strictly consecutive joint presence.

    Args:
        frame_sets: one sorted frame list per object.
        max_gap: tolerated per-object absence inside a run (detection
            misses); the paper's co-occurrence clips survive short misses.
    """
    if not frame_sets or any(not frames for frames in frame_sets):
        return 0
    common = set(frame_sets[0])
    for frames in frame_sets[1:]:
        common &= set(frames)
        if not common:
            return 0
    ordered = sorted(common)
    best = 1
    run_start = ordered[0]
    prev = ordered[0]
    for frame in ordered[1:]:
        if frame - prev > max_gap + 1:
            run_start = frame
        best = max(best, frame - run_start + 1)
        prev = frame
    return best
