"""Query recall against ground truth (Figure 13).

The reference answer of each query is computed on the ground-truth
presence data; the system answer on (merged or unmerged) tracker output.
A system answer item counts as recovered when it maps — via the track → GT
identity assignment — onto a reference item.  Recall is the recovered
fraction of the reference answer.
"""

from __future__ import annotations

import itertools

from repro.metrics.matching import TrackGtAssignment
from repro.query.queries import CoOccurrenceQuery, CountQuery
from repro.query.store import TrackStore
from repro.synth.world import VideoGroundTruth
from repro.track.base import Track


def gt_presence(
    world: VideoGroundTruth, fill_gaps: bool = True
) -> dict[int, list[int]]:
    """Ground-truth presence: GT object id → frames it is in the scene.

    Args:
        world: the ground truth.
        fill_gaps: treat an object as present on every frame between its
            first and last visible frame (default) — an occluded object is
            still in the scene, mirroring the filled-interval semantics of
            :meth:`repro.query.store.TrackStore.from_tracks`.
    """
    presence: dict[int, list[int]] = {}
    for frame, states in enumerate(world.frames):
        for state in states:
            presence.setdefault(state.object_id, []).append(frame)
    if fill_gaps:
        presence = {
            oid: list(range(frames[0], frames[-1] + 1))
            for oid, frames in presence.items()
        }
    return presence


def count_query_recall(
    tracks: list[Track],
    world: VideoGroundTruth,
    assignment: TrackGtAssignment,
    query: CountQuery,
) -> float:
    """Recall of a Count query: fraction of qualifying GT objects that some
    qualifying track identifies.

    Fragmentation hurts here directly: a 400-frame GT object split into two
    200-frame fragments fails a ``min_frames=250`` threshold twice.
    """
    gt_store = TrackStore.from_presence(gt_presence(world))
    reference = query.evaluate(gt_store).qualifying
    if not reference:
        return 1.0

    system_store = TrackStore.from_tracks(tracks)
    system = query.evaluate(system_store).qualifying
    recovered_gt = {
        gt
        for tid in system
        if (gt := assignment.gt_of(tid)) is not None
    }
    return len(reference & recovered_gt) / len(reference)


def cooccurrence_query_recall(
    tracks: list[Track],
    world: VideoGroundTruth,
    assignment: TrackGtAssignment,
    query: CoOccurrenceQuery,
) -> float:
    """Recall of a Co-occurrence query: fraction of qualifying GT groups
    matched by some system group mapping onto the same GT identities."""
    gt_store = TrackStore.from_presence(gt_presence(world))
    reference = query.evaluate(gt_store).groups
    if not reference:
        return 1.0

    system_store = TrackStore.from_tracks(tracks)
    system = query.evaluate(system_store).groups
    mapped_groups: set[tuple[int, ...]] = set()
    for group in system:
        gt_ids = [assignment.gt_of(tid) for tid in group]
        if any(g is None for g in gt_ids):
            continue
        if len(set(gt_ids)) != len(gt_ids):
            continue
        mapped_groups.add(tuple(sorted(gt_ids)))
    return len(reference & mapped_groups) / len(reference)
