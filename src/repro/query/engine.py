"""A thin query-execution facade.

Real systems ([13]) expose a declarative surface; here the engine simply
binds a :class:`~repro.query.store.TrackStore` and dispatches query objects
to their ``evaluate`` method, so examples and benches read naturally:

    engine = QueryEngine.from_tracks(merged_tracks)
    answer = engine.run(CountQuery(min_frames=200))
"""

from __future__ import annotations

from typing import Protocol

from repro.query.store import TrackStore
from repro.track.base import Track


class Query(Protocol):
    """Any evaluable query object."""

    def evaluate(self, store: TrackStore) -> object: ...


class QueryEngine:
    """Executes queries against a bound metadata store."""

    def __init__(self, store: TrackStore) -> None:
        self.store = store

    @classmethod
    def from_tracks(cls, tracks: list[Track]) -> "QueryEngine":
        """Build an engine over a store indexed from ``tracks``."""
        return cls(TrackStore.from_tracks(tracks))

    @classmethod
    def from_presence(cls, presence: dict[int, list[int]]) -> "QueryEngine":
        """Build an engine over a prebuilt object→frames presence map."""
        return cls(TrackStore.from_presence(presence))

    def run(self, query: Query) -> object:
        """Evaluate ``query`` against the bound store."""
        return query.evaluate(self.store)
