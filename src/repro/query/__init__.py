"""Declarative video queries over track metadata (§V-H).

The downstream consumer TMerge exists to serve: a small query engine in the
style of [13], operating purely on tracking metadata.  Two query types from
the paper are provided:

* :class:`CountQuery` — objects visible for at least N frames.
* :class:`CoOccurrenceQuery` — clips of ≥ N consecutive frames where the
  same ``group_size`` objects appear jointly.

:mod:`repro.query.evaluation` computes the recall of query answers against
the ground truth, with and without track merging — reproducing Figure 13.
"""

from repro.query.store import TrackStore
from repro.query.queries import (
    CountQuery,
    CountResult,
    CoOccurrenceQuery,
    CoOccurrenceResult,
)
from repro.query.engine import QueryEngine
from repro.query.evaluation import (
    count_query_recall,
    cooccurrence_query_recall,
    gt_presence,
)

__all__ = [
    "TrackStore",
    "CountQuery",
    "CountResult",
    "CoOccurrenceQuery",
    "CoOccurrenceResult",
    "QueryEngine",
    "count_query_recall",
    "cooccurrence_query_recall",
    "gt_presence",
]
