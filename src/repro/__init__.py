"""repro — a full reproduction of *Track Merging for Effective Video Query
Processing* (Chao, Chen, Koudas, Yu — ICDE 2023).

The package implements the paper's TMerge algorithm together with every
substrate it depends on: a synthetic video world, a stochastic detector,
six multi-object trackers, a simulated ReID model with a batched cost
model, a bandit library, MOT evaluation metrics, and a small video query
engine.  See DESIGN.md for the system inventory and EXPERIMENTS.md for the
per-figure reproduction results.

Quickstart::

    from repro import (
        mot17_like, simulate_world, NoisyDetector, TracktorTracker,
        TMerge, IngestionPipeline,
    )

    preset = mot17_like()
    world = simulate_world(preset.config, n_frames=900, seed=0)
    pipeline = IngestionPipeline(
        tracker=TracktorTracker(),
        merger=TMerge(k=0.05, tau_max=10_000),
        window_length=2000,
    )
    result = pipeline.run(world)
    print(f"{len(result.tracks)} tracks -> {len(result.merged_tracks)} after merging")
"""

from repro.geometry import BBox, iou
from repro.synth import (
    SceneConfig,
    simulate_world,
    VideoGroundTruth,
    DatasetPreset,
    mot17_like,
    kitti_like,
    pathtrack_like,
    make_dataset,
)
from repro.detect import Detection, DetectorConfig, NoisyDetector
from repro.track import (
    Track,
    Tracker,
    IoUTracker,
    SortTracker,
    DeepSortTracker,
    TracktorTracker,
    UmaTracker,
    CenterTrackTracker,
)
from repro.reid import (
    SimReIDModel,
    ReidParams,
    CostModel,
    CostParams,
    ReidScorer,
    FeatureCache,
)
from repro.core import (
    Window,
    partition_windows,
    WindowedTracks,
    TrackPair,
    build_track_pairs,
    BaselineMerger,
    ProportionalMerger,
    LcbMerger,
    EpsilonGreedyMerger,
    TMerge,
    merge_tracks,
    UnionFind,
    IngestionPipeline,
    IngestionResult,
    MergeResult,
)
from repro.metrics import (
    match_tracks_to_gt,
    match_tracks_by_source,
    polyonymous_pairs,
    polyonymous_rate,
    average_recall,
    rec_k_curve,
    evaluate_clearmot,
    evaluate_identity,
)
from repro.query import (
    TrackStore,
    QueryEngine,
    CountQuery,
    CoOccurrenceQuery,
    count_query_recall,
    cooccurrence_query_recall,
)
from repro.faults import FaultProfile, fault_profile
from repro.resilience import (
    BreakerPolicy,
    CheckpointStore,
    CircuitBreaker,
    ResilienceConfig,
    ResilientReidScorer,
    RetryPolicy,
    retry_call,
)
from repro.telemetry import (
    MetricsRegistry,
    Profiler,
    Telemetry,
    Tracer,
    profiled,
)
from repro.provenance import (
    DecisionEvent,
    DecisionLedger,
    explain_pair,
)

__version__ = "1.0.0"

__all__ = [
    "BBox",
    "iou",
    "SceneConfig",
    "simulate_world",
    "VideoGroundTruth",
    "DatasetPreset",
    "mot17_like",
    "kitti_like",
    "pathtrack_like",
    "make_dataset",
    "Detection",
    "DetectorConfig",
    "NoisyDetector",
    "Track",
    "Tracker",
    "IoUTracker",
    "SortTracker",
    "DeepSortTracker",
    "TracktorTracker",
    "UmaTracker",
    "CenterTrackTracker",
    "SimReIDModel",
    "ReidParams",
    "CostModel",
    "CostParams",
    "ReidScorer",
    "FeatureCache",
    "Window",
    "partition_windows",
    "WindowedTracks",
    "TrackPair",
    "build_track_pairs",
    "BaselineMerger",
    "ProportionalMerger",
    "LcbMerger",
    "EpsilonGreedyMerger",
    "TMerge",
    "merge_tracks",
    "UnionFind",
    "IngestionPipeline",
    "IngestionResult",
    "MergeResult",
    "match_tracks_to_gt",
    "match_tracks_by_source",
    "polyonymous_pairs",
    "polyonymous_rate",
    "average_recall",
    "rec_k_curve",
    "evaluate_clearmot",
    "evaluate_identity",
    "TrackStore",
    "QueryEngine",
    "CountQuery",
    "CoOccurrenceQuery",
    "count_query_recall",
    "cooccurrence_query_recall",
    "FaultProfile",
    "fault_profile",
    "BreakerPolicy",
    "CheckpointStore",
    "CircuitBreaker",
    "ResilienceConfig",
    "ResilientReidScorer",
    "RetryPolicy",
    "retry_call",
    "MetricsRegistry",
    "Profiler",
    "Telemetry",
    "Tracer",
    "profiled",
    "DecisionEvent",
    "DecisionLedger",
    "explain_pair",
]
