"""A stochastic object detector over the simulated ground truth.

The detector's failure modes are what create the track fragmentation the
paper sets out to repair: when an object's visibility drops (occlusion,
glare), the detection probability drops with it, detections go missing for a
stretch of frames, the tracker's track dies, and a *new* track (new TID) is
born when the object reappears — a polyonymous pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import BBox, clip_bbox
from repro.synth.world import VideoGroundTruth


@dataclass(frozen=True)
class Detection:
    """One detector output.

    Attributes:
        bbox: detected box (jittered, clipped to the image).
        confidence: detector score in [0, 1].
        source_id: GT object id behind this detection, or ``None`` for
            clutter.  Only the ReID simulator and the metrics peek at this;
            the trackers never do.
        visibility: visibility of the source object at this frame (1.0 for
            clutter).  Consumed by the ReID noise model.
    """

    bbox: BBox
    confidence: float
    source_id: int | None
    visibility: float

    @property
    def is_clutter(self) -> bool:
        """True for false-positive detections with no source object."""
        return self.source_id is None

    def to_dict(self) -> dict:
        """Pure-JSON form (used by streaming checkpoints and feeds)."""
        return {
            "bbox": [self.bbox.x1, self.bbox.y1, self.bbox.x2, self.bbox.y2],
            "confidence": self.confidence,
            "source_id": self.source_id,
            "visibility": self.visibility,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Detection":
        """Rebuild a detection from :meth:`to_dict` output."""
        x1, y1, x2, y2 = payload["bbox"]
        source = payload["source_id"]
        return cls(
            bbox=BBox(float(x1), float(y1), float(x2), float(y2)),
            confidence=float(payload["confidence"]),
            source_id=None if source is None else int(source),
            visibility=float(payload["visibility"]),
        )


@dataclass
class DetectorConfig:
    """Detection noise parameters.

    Attributes:
        base_detect_prob: detection probability for a fully visible object.
        visibility_power: detection probability scales as
            ``base * visibility ** visibility_power``; higher powers punish
            partial occlusion harder.
        min_visibility: below this visibility the object is never detected.
        center_jitter: std-dev of center localization noise, as a fraction of
            box size.
        size_jitter: std-dev of width/height noise, as a fraction of size.
        clutter_rate: expected false positives per frame (Poisson).
        clutter_size: nominal (width, height) of clutter boxes.
        confidence_noise: std-dev of the confidence score around its mean.
    """

    base_detect_prob: float = 0.97
    visibility_power: float = 1.6
    min_visibility: float = 0.25
    center_jitter: float = 0.03
    size_jitter: float = 0.04
    clutter_rate: float = 0.15
    clutter_size: tuple[float, float] = (70.0, 150.0)
    confidence_noise: float = 0.05

    def __post_init__(self) -> None:
        if not 0 <= self.base_detect_prob <= 1:
            raise ValueError("base_detect_prob must be in [0, 1]")
        if self.clutter_rate < 0:
            raise ValueError("clutter_rate must be non-negative")


class NoisyDetector:
    """Frame-by-frame stochastic detector over a simulated GT video."""

    def __init__(self, config: DetectorConfig | None = None) -> None:
        self.config = config or DetectorConfig()

    def detect_video(
        self, world: VideoGroundTruth, seed: int | np.random.Generator = 0
    ) -> list[list[Detection]]:
        """Run detection over every frame of ``world``.

        Returns:
            ``detections[t]`` is the detection list for frame ``t``.
        """
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        return [
            self.detect_frame(world, frame, rng)
            for frame in range(world.n_frames)
        ]

    def detect_frame(
        self,
        world: VideoGroundTruth,
        frame: int,
        rng: np.random.Generator,
    ) -> list[Detection]:
        """Detect objects in one frame."""
        cfg = self.config
        width, height = world.config.width, world.config.height
        detections: list[Detection] = []

        for state in world.frames[frame]:
            if state.visibility < cfg.min_visibility:
                continue
            p_detect = cfg.base_detect_prob * (
                state.visibility**cfg.visibility_power
            )
            if rng.random() > p_detect:
                continue

            box = state.bbox
            dx = rng.normal(0.0, cfg.center_jitter * box.width)
            dy = rng.normal(0.0, cfg.center_jitter * box.height)
            w = box.width * max(1.0 + rng.normal(0.0, cfg.size_jitter), 0.3)
            h = box.height * max(1.0 + rng.normal(0.0, cfg.size_jitter), 0.3)
            cx, cy = box.center
            noisy = clip_bbox(
                BBox.from_center(cx + dx, cy + dy, w, h), width, height
            )
            if noisy is None:
                continue
            confidence = float(
                np.clip(
                    0.6 + 0.4 * state.visibility
                    + rng.normal(0.0, cfg.confidence_noise),
                    0.05,
                    1.0,
                )
            )
            detections.append(
                Detection(noisy, confidence, state.object_id, state.visibility)
            )

        detections.extend(self._clutter(width, height, rng))
        return detections

    def _clutter(
        self, width: float, height: float, rng: np.random.Generator
    ) -> list[Detection]:
        """Draw Poisson clutter (false positives) for one frame."""
        cfg = self.config
        count = int(rng.poisson(cfg.clutter_rate)) if cfg.clutter_rate else 0
        clutter = []
        cw, ch = cfg.clutter_size
        for _ in range(count):
            cx = float(rng.uniform(0, width))
            cy = float(rng.uniform(0.3 * height, height))
            jitter = float(np.clip(1.0 + rng.normal(0.0, 0.3), 0.4, 2.0))
            box = clip_bbox(
                BBox.from_center(cx, cy, cw * jitter, ch * jitter),
                width,
                height,
            )
            if box is None:
                continue
            confidence = float(np.clip(rng.normal(0.35, 0.1), 0.05, 0.8))
            clutter.append(Detection(box, confidence, None, 1.0))
        return clutter
