"""Object detection simulation.

Downstream of the GT world and upstream of the trackers: given the per-frame
ground truth, :class:`NoisyDetector` emits :class:`Detection` lists with the
imperfections that fragment tracks in real systems — visibility-dependent
misses, localization jitter and clutter (false positives).
"""

from repro.detect.detector import Detection, DetectorConfig, NoisyDetector

__all__ = ["Detection", "DetectorConfig", "NoisyDetector"]
