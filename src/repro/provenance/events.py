"""The decision-event schema: one compact record per merge decision.

Every event a :class:`~repro.provenance.ledger.DecisionLedger` holds is a
:class:`DecisionEvent` — a small, pure-JSON record of one step of the
TMerge decision procedure (DESIGN.md §14).  The schema is deliberately
narrow: a sequence number, the owning window, the decision kind (one of
the reason codes below), the iteration τ it happened at, and a
kind-specific ``data`` payload of plain lists/floats/ints.  Everything
round-trips through JSON bit-exactly, which is what lets ledgers live
inside checkpoints and JSONL exports without a serialization layer.

Reason codes
------------
``window``
    A window's sampling run opened: records the arm → pair-key table
    (``pairs``, index-aligned with every later arm index), the candidate
    budget, the effective batch size and the posterior family.
``sample``
    One TMerge iteration: the arms whose Thompson draws were selected
    (``arms``, with their drawn ``theta``), the subset actually observed
    (``observed``, skipping exhausted pairs), the normalized ReID
    distances ``d_norm`` and the per-observed-arm posterior state
    ``posterior_before`` / ``posterior_after`` (``[alpha, beta]`` pairs
    for the Beta family, ``[mean, var]`` for the Gaussian one).
``ulb``
    One ULB pruning pass that changed the partition: newly accepted and
    rejected arms with their Hoeffding radii at that τ.
``degrade``
    The window lost its ReID dependency (``reason="reid_unavailable"``)
    or the streaming backpressure policy pre-degraded it
    (``reason="backpressure"``); sampling stopped or never started.
``fault``
    The resilience layer intervened: a window crash forced a retry
    (``reason="window_crash"``, with whether a checkpoint resume or a
    from-scratch restart followed), or the spatial fallback replaced the
    merger's output (``reason="spatial_fallback"``).
``final``
    The window's verdict: chosen arms (the candidate set), their
    posterior means, the ULB partition sizes, iterations used and the
    degraded flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: A window's sampling run opened (arm → pair-key table).
EVENT_WINDOW = "window"
#: One TMerge iteration (Thompson draws + posterior movement).
EVENT_SAMPLE = "sample"
#: One ULB pruning pass that accepted/rejected arms.
EVENT_ULB = "ulb"
#: ReID unavailable / backpressure pre-degradation.
EVENT_DEGRADE = "degrade"
#: Resilience intervention (window crash retry, spatial fallback).
EVENT_FAULT = "fault"
#: The window's final candidate verdict.
EVENT_FINAL = "final"

#: Every legal ``DecisionEvent.kind``, in lifecycle order.
EVENT_KINDS: tuple[str, ...] = (
    EVENT_WINDOW,
    EVENT_SAMPLE,
    EVENT_ULB,
    EVENT_DEGRADE,
    EVENT_FAULT,
    EVENT_FINAL,
)


@dataclass
class DecisionEvent:
    """One recorded merge decision (pure-JSON payload).

    Attributes:
        seq: ledger-assigned sequence number (monotone within a ledger;
            reassigned on :meth:`~repro.provenance.ledger.DecisionLedger.absorb`
            exactly like span ids in ``Tracer.absorb``).
        kind: one of :data:`EVENT_KINDS`.
        window: the owning window index (``None`` when the recorder ran
            outside any window context).
        tau: the TMerge iteration the event happened at (``None`` for
            events outside the sampling loop, e.g. ``window``/``final``).
        data: kind-specific payload of JSON-safe scalars and lists.
    """

    seq: int
    kind: str
    window: int | None
    tau: int | None = None
    data: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; expected one of "
                f"{EVENT_KINDS}"
            )

    def to_dict(self) -> dict:
        """Pure-JSON payload (checkpoints, JSONL export)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "window": self.window,
            "tau": self.tau,
            "data": self.data,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DecisionEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            seq=int(payload["seq"]),
            kind=str(payload["kind"]),
            window=(
                int(payload["window"])
                if payload.get("window") is not None
                else None
            ),
            tau=(
                int(payload["tau"])
                if payload.get("tau") is not None
                else None
            ),
            data=dict(payload.get("data", {})),
        )
