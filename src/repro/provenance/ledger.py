"""The bounded, injected merge-decision ledger.

A :class:`DecisionLedger` collects
:class:`~repro.provenance.events.DecisionEvent` records from every layer
of a run — TMerge iterations, ULB prune passes, resilience
interventions, streaming backpressure verdicts — into one bounded,
insertion-ordered log.

Ownership model (lint-enforced by REPRO011, mirroring telemetry's
REPRO010): a ledger is constructed by whoever owns a run and *injected*
down through constructors; components accept ``ledger=None`` and skip
all recording, so the un-instrumented path stays exactly as cheap as
before.  Recording never touches RNG state or the simulated clock —
ledger-enabled runs are bit-identical to plain ones (the PR 3
bit-transparency regime, proven by ``tests/test_provenance_equivalence.py``).

Parallel runs record into per-window worker-local ledgers that the
reassembly stage folds back in window-index order via :meth:`absorb`
(re-assigning sequence numbers exactly like
:meth:`~repro.telemetry.tracing.Tracer.absorb` re-ids spans), so the
merged log is worker-count independent.  The full ledger state
round-trips through :meth:`state_dict` / :meth:`load_state_dict`, which
is how it survives checkpoint/restore bit-exactly inside TMerge and
streaming-service snapshots.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Iterable, Iterator

from repro.provenance.events import DecisionEvent

#: Default event-capacity bound.  Generous for any test/bench workload
#: (a smoke window records tens of events per iteration budget) while
#: keeping a runaway soak from growing without bound.
DEFAULT_MAX_EVENTS = 100_000


class DecisionLedger:
    """A bounded, insertion-ordered log of merge decisions.

    Args:
        max_events: capacity bound; the oldest events are dropped (and
            counted in :attr:`n_dropped`) once it is exceeded.  ``None``
            means unbounded — only sensible for short diagnostic runs.
    """

    def __init__(self, max_events: int | None = DEFAULT_MAX_EVENTS) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be >= 1 (or None)")
        self.max_events = max_events
        self._events: deque[DecisionEvent] = deque()
        #: Events recorded over the ledger's lifetime (drops included).
        self.n_recorded = 0
        #: Events evicted by the capacity bound.
        self.n_dropped = 0
        self._window: int | None = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin_window(self, window: int | None) -> None:
        """Set the window index stamped on subsequently recorded events.

        The recorders (TMerge, ULB, the resilience seam) do not know
        which window they are running — the window owner (pipeline,
        parallel worker, streaming service) does, and declares it here.
        """
        self._window = None if window is None else int(window)

    @property
    def current_window(self) -> int | None:
        """The window index events are currently stamped with."""
        return self._window

    def record(
        self, kind: str, *, tau: int | None = None, **data: object
    ) -> DecisionEvent:
        """Append one event (stamped with the current window context)."""
        event = DecisionEvent(
            seq=self.n_recorded,
            kind=kind,
            window=self._window,
            tau=tau,
            data=dict(data),
        )
        self._append(event)
        return event

    def _append(self, event: DecisionEvent) -> None:
        self._events.append(event)
        self.n_recorded += 1
        if self.max_events is not None and len(self._events) > self.max_events:
            self._events.popleft()
            self.n_dropped += 1

    def absorb(self, payloads: Iterable[dict]) -> None:
        """Fold another ledger's exported events into this one.

        ``payloads`` are :meth:`DecisionEvent.to_dict` dicts (what a
        worker ships home in its
        :class:`~repro.parallel.executor.WindowOutcome`).  Sequence
        numbers are re-assigned in this ledger's order — the absorbed
        events keep their window stamps and relative order, exactly like
        worker spans through ``Tracer.absorb``.  Callers absorb in
        window-index order, so the merged log is worker-count
        independent.
        """
        for payload in payloads:
            event = DecisionEvent.from_dict(payload)
            event.seq = self.n_recorded
            self._append(event)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[DecisionEvent]:
        return iter(self._events)

    @property
    def events(self) -> list[DecisionEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    def events_for_window(self, window: int) -> list[DecisionEvent]:
        """The retained events stamped with ``window``, oldest first."""
        return [e for e in self._events if e.window == window]

    # ------------------------------------------------------------------
    # State round-trip (checkpoints) and JSONL export
    # ------------------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        """Every retained event as a pure-JSON payload."""
        return [event.to_dict() for event in self._events]

    def state_dict(self) -> dict:
        """Full restorable state (for checkpoint payloads)."""
        return {
            "max_events": self.max_events,
            "n_recorded": self.n_recorded,
            "n_dropped": self.n_dropped,
            "window": self._window,
            "events": self.to_dicts(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a state captured by :meth:`state_dict`.

        Replaces the ledger's contents wholesale — a resumed run's
        re-recorded pre-checkpoint events are overwritten by the
        snapshot, which is what makes kill+resume ledgers bit-exact.
        """
        max_events = state["max_events"]
        self.max_events = None if max_events is None else int(max_events)
        self._events = deque(
            DecisionEvent.from_dict(payload) for payload in state["events"]
        )
        self.n_recorded = int(state["n_recorded"])
        self.n_dropped = int(state["n_dropped"])
        window = state.get("window")
        self._window = None if window is None else int(window)

    def to_jsonl(self) -> str:
        """The retained events as JSON-lines text (one event per line)."""
        return "".join(
            json.dumps(event.to_dict(), sort_keys=True) + "\n"
            for event in self._events
        )

    def export_jsonl(self, path: str) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns the event count."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
        return len(self._events)


def events_from_jsonl(text: str) -> list[DecisionEvent]:
    """Parse JSON-lines text produced by :meth:`DecisionLedger.to_jsonl`."""
    events = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(DecisionEvent.from_dict(json.loads(line)))
    return events


def load_events_jsonl(path: str) -> list[DecisionEvent]:
    """Read a JSONL ledger export from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return events_from_jsonl(handle.read())
