"""repro.provenance — the merge-decision provenance ledger.

Answers the question telemetry aggregates cannot: *why* did TMerge merge
(or refuse to merge) a specific pair of tracks?  A bounded, injected
:class:`DecisionLedger` records one compact deterministic
:class:`DecisionEvent` per TMerge iteration, ULB prune pass, resilience
intervention and backpressure verdict; :func:`explain_pair` reconstructs
the full decision chain for any pair from the live ledger or a JSONL
export (the ``python -m repro.experiments explain`` CLI).

The layer follows the telemetry regime (DESIGN.md §8, §14): always
injected (lint rule REPRO011), off by default, and bit-transparent —
recording never touches RNG state or the simulated clock, so
ledger-enabled runs are bit-identical to plain ones across seeds, fault
profiles, worker counts and batch sizes
(``tests/test_provenance_equivalence.py``).
"""

from repro.provenance.events import (
    EVENT_DEGRADE,
    EVENT_FAULT,
    EVENT_FINAL,
    EVENT_KINDS,
    EVENT_SAMPLE,
    EVENT_ULB,
    EVENT_WINDOW,
    DecisionEvent,
)
from repro.provenance.explain import (
    VERDICT_CANDIDATE,
    VERDICT_NOT_SELECTED,
    VERDICT_ULB_ACCEPTED,
    VERDICT_ULB_REJECTED,
    VERDICT_UNRESOLVED,
    DecisionChain,
    DecisionStep,
    explain_pair,
    windows_containing,
)
from repro.provenance.ledger import (
    DEFAULT_MAX_EVENTS,
    DecisionLedger,
    events_from_jsonl,
    load_events_jsonl,
)

__all__ = [
    "DEFAULT_MAX_EVENTS",
    "DecisionChain",
    "DecisionEvent",
    "DecisionLedger",
    "DecisionStep",
    "EVENT_DEGRADE",
    "EVENT_FAULT",
    "EVENT_FINAL",
    "EVENT_KINDS",
    "EVENT_SAMPLE",
    "EVENT_ULB",
    "EVENT_WINDOW",
    "VERDICT_CANDIDATE",
    "VERDICT_NOT_SELECTED",
    "VERDICT_ULB_ACCEPTED",
    "VERDICT_ULB_REJECTED",
    "VERDICT_UNRESOLVED",
    "events_from_jsonl",
    "explain_pair",
    "load_events_jsonl",
    "windows_containing",
]
