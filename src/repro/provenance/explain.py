"""Decision-chain reconstruction: *why* a pair was (not) merged.

Given a ledger's events — live from a :class:`DecisionLedger`, or loaded
back from a JSONL export — :func:`explain_pair` rebuilds the complete
decision chain for one track pair: its BetaInit prior, every Thompson
draw that selected it, every observation and the posterior movement it
caused, the ULB verdict (with the radius in force), any degradation or
fault interventions, and the final candidate verdict with its posterior
mean.  This is the query surface behind
``python -m repro.experiments explain``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.provenance.events import (
    EVENT_DEGRADE,
    EVENT_FAULT,
    EVENT_FINAL,
    EVENT_SAMPLE,
    EVENT_ULB,
    EVENT_WINDOW,
    DecisionEvent,
)

#: Final verdicts :func:`explain_pair` can assign.
VERDICT_CANDIDATE = "candidate"
VERDICT_ULB_ACCEPTED = "candidate (ULB-accepted)"
VERDICT_ULB_REJECTED = "rejected (ULB-pruned)"
VERDICT_NOT_SELECTED = "not selected"
VERDICT_UNRESOLVED = "unresolved (no final event)"


@dataclass
class DecisionStep:
    """One line of a decision chain.

    Attributes:
        seq: the underlying event's ledger sequence number.
        tau: the TMerge iteration (``None`` outside the sampling loop).
        kind: the underlying event kind.
        summary: one human-readable sentence.
        detail: the step's raw numbers (draws, posteriors, radii).
    """

    seq: int
    tau: int | None
    kind: str
    summary: str
    detail: dict = field(default_factory=dict)


@dataclass
class DecisionChain:
    """The reconstructed decision history of one pair in one window.

    Attributes:
        pair: the pair key ``(track_a, track_b)`` as recorded.
        window: the owning window index.
        arm: the pair's arm index inside that window's run.
        steps: the chain, in event order.
        verdict: the final verdict string (one of the ``VERDICT_*``
            constants).
        final_score: the pair's final posterior mean (``None`` when the
            window never reached its final event).
        n_observations: how many ReID observations the pair received.
    """

    pair: tuple[int, int]
    window: int
    arm: int
    steps: list[DecisionStep]
    verdict: str
    final_score: float | None
    n_observations: int

    def render(self) -> str:
        """The chain as indented plain text (the ``explain`` CLI body)."""
        lines = [
            f"pair {self.pair[0]}-{self.pair[1]} in window {self.window} "
            f"(arm {self.arm}):"
        ]
        for step in self.steps:
            tau = f"tau={step.tau}" if step.tau is not None else "-"
            lines.append(f"  [{step.seq:>6}] {tau:>9} {step.summary}")
        score = (
            f"{self.final_score:.6f}" if self.final_score is not None else "?"
        )
        lines.append(
            f"  verdict: {self.verdict} "
            f"(posterior mean {score}, "
            f"{self.n_observations} observations)"
        )
        return "\n".join(lines)


def _posterior_mean(state: list, family: str) -> float:
    """The posterior mean of one recorded posterior state."""
    if family == "beta":
        alpha, beta = float(state[0]), float(state[1])
        return alpha / (alpha + beta)
    return float(state[0])


def windows_containing(
    events: list[DecisionEvent], pair: tuple[int, int]
) -> list[int]:
    """Window indices whose recorded pair table contains ``pair``."""
    key = sorted(int(x) for x in pair)
    found = []
    for event in events:
        if event.kind != EVENT_WINDOW or event.window is None:
            continue
        for recorded in event.data.get("pairs", []):
            if sorted(int(x) for x in recorded) == key:
                found.append(event.window)
                break
    return found


def explain_pair(
    events: list[DecisionEvent],
    pair: tuple[int, int],
    window: int | None = None,
) -> DecisionChain:
    """Reconstruct the decision chain for ``pair``.

    Args:
        events: ledger events (live or loaded from JSONL), in ledger
            order.
        pair: the track-id pair to explain (order-insensitive).
        window: the window to explain it in; required when the pair
            appears in several windows.

    Raises:
        KeyError: the pair appears in no recorded window (or not in the
            requested one).
        ValueError: the pair appears in several windows and ``window``
            was not given.
    """
    candidates = windows_containing(events, pair)
    if window is not None:
        if window not in candidates:
            raise KeyError(
                f"pair {pair} does not appear in window {window}'s "
                f"recorded pair table (it appears in {candidates or 'none'})"
            )
        target = window
    else:
        if not candidates:
            raise KeyError(
                f"pair {pair} appears in no recorded window; was the "
                "ledger enabled for this run?"
            )
        if len(candidates) > 1:
            raise ValueError(
                f"pair {pair} appears in windows {candidates}; "
                "pass an explicit window"
            )
        target = candidates[0]

    key = sorted(int(x) for x in pair)
    scoped = [e for e in events if e.window == target]
    opened = next(e for e in scoped if e.kind == EVENT_WINDOW)
    table = opened.data.get("pairs", [])
    arm = next(
        i
        for i, recorded in enumerate(table)
        if sorted(int(x) for x in recorded) == key
    )
    family = str(opened.data.get("posterior", "beta"))

    steps: list[DecisionStep] = [
        DecisionStep(
            seq=opened.seq,
            tau=opened.tau,
            kind=EVENT_WINDOW,
            summary=(
                f"window opened: {opened.data.get('n_pairs')} pairs, "
                f"budget {opened.data.get('budget')}, "
                f"batch {opened.data.get('batch')}, "
                f"{family} posterior"
            ),
            detail=dict(opened.data),
        )
    ]
    verdict = VERDICT_UNRESOLVED
    final_score: float | None = None
    n_observations = 0

    for event in scoped:
        if event.kind == EVENT_SAMPLE:
            arms = [int(a) for a in event.data.get("arms", [])]
            observed = [int(a) for a in event.data.get("observed", [])]
            if arm not in arms and arm not in observed:
                continue
            detail = {"arms": arms, "observed": observed}
            if arm in arms:
                theta = float(event.data["theta"][arms.index(arm)])
                detail["theta"] = theta
            if arm in observed:
                pos = observed.index(arm)
                d_norm = float(event.data["d_norm"][pos])
                before = event.data["posterior_before"][pos]
                after = event.data["posterior_after"][pos]
                n_observations += 1
                detail.update(
                    d_norm=d_norm,
                    posterior_before=before,
                    posterior_after=after,
                )
                summary = (
                    f"drawn theta={detail.get('theta', float('nan')):.4f}, "
                    f"observed d_norm={d_norm:.4f}; posterior mean "
                    f"{_posterior_mean(before, family):.4f} -> "
                    f"{_posterior_mean(after, family):.4f}"
                )
            else:
                summary = (
                    f"drawn theta={detail['theta']:.4f} but pair "
                    "exhausted; no observation"
                )
            steps.append(
                DecisionStep(
                    seq=event.seq,
                    tau=event.tau,
                    kind=EVENT_SAMPLE,
                    summary=summary,
                    detail=detail,
                )
            )
        elif event.kind == EVENT_ULB:
            accepted = [int(a) for a in event.data.get("accepted", [])]
            rejected = [int(a) for a in event.data.get("rejected", [])]
            if arm not in accepted and arm not in rejected:
                continue
            radius = float(event.data["radius"][str(arm)])
            accepted_here = arm in accepted
            steps.append(
                DecisionStep(
                    seq=event.seq,
                    tau=event.tau,
                    kind=EVENT_ULB,
                    summary=(
                        f"ULB {'accepted' if accepted_here else 'rejected'} "
                        f"(Hoeffding radius {radius:.4f}, "
                        f"budget {event.data.get('k_count')})"
                    ),
                    detail={"radius": radius, "accepted": accepted_here},
                )
            )
        elif event.kind in (EVENT_DEGRADE, EVENT_FAULT):
            reason = event.data.get("reason")
            steps.append(
                DecisionStep(
                    seq=event.seq,
                    tau=event.tau,
                    kind=event.kind,
                    summary=f"{event.kind}: {reason}",
                    detail=dict(event.data),
                )
            )
        elif event.kind == EVENT_FINAL:
            chosen = [int(a) for a in event.data.get("chosen", [])]
            ulb_accepted = [
                int(a) for a in event.data.get("ulb_accepted", [])
            ]
            ulb_rejected = [
                int(a) for a in event.data.get("ulb_rejected", [])
            ]
            means = event.data.get("means", [])
            if arm < len(means):
                final_score = float(means[arm])
            if arm in chosen:
                verdict = (
                    VERDICT_ULB_ACCEPTED
                    if arm in ulb_accepted
                    else VERDICT_CANDIDATE
                )
            elif arm in ulb_rejected:
                verdict = VERDICT_ULB_REJECTED
            else:
                verdict = VERDICT_NOT_SELECTED
            steps.append(
                DecisionStep(
                    seq=event.seq,
                    tau=event.tau,
                    kind=EVENT_FINAL,
                    summary=(
                        f"final: {len(chosen)} candidates chosen from "
                        f"{event.data.get('n_pairs')} pairs after "
                        f"{event.data.get('iterations')} iterations"
                        f"{' (degraded)' if event.data.get('degraded') else ''}"
                    ),
                    detail={
                        "chosen": arm in chosen,
                        "degraded": bool(event.data.get("degraded")),
                    },
                )
            )
    return DecisionChain(
        pair=(key[0], key[1]),
        window=target,
        arm=arm,
        steps=steps,
        verdict=verdict,
        final_score=final_score,
        n_observations=n_observations,
    )
