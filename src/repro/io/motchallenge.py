"""MOTChallenge CSV interchange.

The MOTChallenge line format is::

    frame, id, bb_left, bb_top, bb_width, bb_height, conf, x, y, z

with 1-based frames, ``id = -1`` for raw detections, and ``-1`` for the
unused 3-D fields.  We preserve the convention exactly so files round-trip
against standard tooling; internally frames are 0-based, so readers and
writers shift by one.

Simulation-only attributes (GT source id, visibility) obviously do not
exist in external files; reading produces detections with
``source_id=None`` and full visibility, which is precisely the information
a real deployment would have.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.detect import Detection
from repro.geometry import BBox
from repro.synth.world import VideoGroundTruth
from repro.track.base import Track


def write_tracks_mot(tracks: list[Track], path: str | Path) -> None:
    """Write tracker output as a MOTChallenge result file."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        rows = []
        for track in tracks:
            for obs in track.observations:
                x, y, w, h = obs.bbox.to_tlwh()
                rows.append(
                    (
                        obs.frame + 1,
                        track.track_id,
                        f"{x:.2f}",
                        f"{y:.2f}",
                        f"{w:.2f}",
                        f"{h:.2f}",
                        f"{obs.detection.confidence:.4f}",
                        -1,
                        -1,
                        -1,
                    )
                )
        rows.sort(key=lambda r: (r[0], r[1]))
        writer.writerows(rows)


def read_tracks_mot(path: str | Path) -> list[Track]:
    """Read a MOTChallenge result file into tracks.

    Returns:
        Tracks ordered by TID; observation frames 0-based.
    """
    by_id: dict[int, list[tuple[int, Detection]]] = {}
    with Path(path).open(newline="") as handle:
        for row in csv.reader(handle):
            if not row or row[0].startswith("#"):
                continue
            frame = int(float(row[0])) - 1
            track_id = int(float(row[1]))
            x, y, w, h = (float(v) for v in row[2:6])
            confidence = float(row[6]) if len(row) > 6 else 1.0
            detection = Detection(
                BBox.from_tlwh(x, y, w, h),
                confidence=max(min(confidence, 1.0), 0.0),
                source_id=None,
                visibility=1.0,
            )
            by_id.setdefault(track_id, []).append((frame, detection))

    tracks = []
    for track_id in sorted(by_id):
        observations = sorted(by_id[track_id], key=lambda fd: fd[0])
        track = Track(track_id)
        last_frame = None
        for frame, detection in observations:
            if frame == last_frame:
                continue  # tolerate duplicate lines
            track.append(frame, detection)
            last_frame = frame
        tracks.append(track)
    return tracks


def write_detections_mot(
    detections: list[list[Detection]], path: str | Path
) -> None:
    """Write per-frame detections as a MOTChallenge detection file."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        for frame, frame_detections in enumerate(detections):
            for det in frame_detections:
                x, y, w, h = det.bbox.to_tlwh()
                writer.writerow(
                    (
                        frame + 1,
                        -1,
                        f"{x:.2f}",
                        f"{y:.2f}",
                        f"{w:.2f}",
                        f"{h:.2f}",
                        f"{det.confidence:.4f}",
                        -1,
                        -1,
                        -1,
                    )
                )


def read_detections_mot(path: str | Path) -> list[list[Detection]]:
    """Read a MOTChallenge detection file into per-frame lists."""
    frames: dict[int, list[Detection]] = {}
    max_frame = -1
    with Path(path).open(newline="") as handle:
        for row in csv.reader(handle):
            if not row or row[0].startswith("#"):
                continue
            frame = int(float(row[0])) - 1
            x, y, w, h = (float(v) for v in row[2:6])
            confidence = float(row[6]) if len(row) > 6 else 1.0
            frames.setdefault(frame, []).append(
                Detection(
                    BBox.from_tlwh(x, y, w, h),
                    confidence=max(min(confidence, 1.0), 0.0),
                    source_id=None,
                    visibility=1.0,
                )
            )
            max_frame = max(max_frame, frame)
    return [frames.get(f, []) for f in range(max_frame + 1)]


def world_to_mot_gt(world: VideoGroundTruth, path: str | Path) -> None:
    """Export a simulated world's ground truth as a MOTChallenge gt file.

    Format: ``frame, id, x, y, w, h, active(1), class(1), visibility``.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        for frame, states in enumerate(world.frames):
            for state in states:
                x, y, w, h = state.bbox.to_tlwh()
                writer.writerow(
                    (
                        frame + 1,
                        state.object_id,
                        f"{x:.2f}",
                        f"{y:.2f}",
                        f"{w:.2f}",
                        f"{h:.2f}",
                        1,
                        1,
                        f"{state.visibility:.3f}",
                    )
                )
