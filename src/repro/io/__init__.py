"""Persistence and interchange formats.

* :mod:`repro.io.motchallenge` — read/write tracks and ground truth in the
  MOTChallenge CSV format, the lingua franca of the tracking community.
  This is how a deployment would feed *real* tracker output (instead of the
  simulator's) into TMerge, and how merged results would be handed to
  standard evaluation tooling.
* :mod:`repro.io.results` — JSON round-tripping for merge results and
  experiment points.
"""

from repro.io.motchallenge import (
    read_detections_mot,
    read_tracks_mot,
    write_detections_mot,
    write_tracks_mot,
    world_to_mot_gt,
)
from repro.io.results import (
    merge_result_to_dict,
    save_points_json,
    load_points_json,
)

__all__ = [
    "read_detections_mot",
    "read_tracks_mot",
    "write_detections_mot",
    "write_tracks_mot",
    "world_to_mot_gt",
    "merge_result_to_dict",
    "save_points_json",
    "load_points_json",
]
