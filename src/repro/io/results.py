"""JSON round-tripping for merge results and experiment points.

A deployment periodically invoking TMerge wants to persist what was found
(for audit, for the human-inspection queue, for incremental re-merging);
experiment sweeps want their points saved so plots can be regenerated
without recomputation.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.results import MergeResult
from repro.experiments.sweeps import MethodPoint


def merge_result_to_dict(result: MergeResult) -> dict:
    """A JSON-safe summary of one merge run."""
    return {
        "method": result.method,
        "n_pairs": result.n_pairs,
        "k": result.k,
        "iterations": result.iterations,
        "simulated_seconds": result.simulated_seconds,
        "candidates": [list(pair.key) for pair in result.candidates],
        "scores": {
            f"{a},{b}": score for (a, b), score in result.scores.items()
        },
        "extra": dict(result.extra),
    }


def save_points_json(
    points: list[MethodPoint], path: str | Path
) -> None:
    """Persist sweep points (one REC-FPS curve) as JSON."""
    payload = [
        {
            "method": p.method,
            "rec": p.rec,
            "fps": p.fps,
            "simulated_seconds": p.simulated_seconds,
            "parameter": p.parameter,
        }
        for p in points
    ]
    Path(path).write_text(json.dumps(payload, indent=2))


def load_points_json(path: str | Path) -> list[MethodPoint]:
    """Load sweep points saved by :func:`save_points_json`."""
    payload = json.loads(Path(path).read_text())
    return [
        MethodPoint(
            method=entry["method"],
            rec=entry["rec"],
            fps=entry["fps"],
            simulated_seconds=entry["simulated_seconds"],
            parameter=entry.get("parameter"),
        )
        for entry in payload
    ]
