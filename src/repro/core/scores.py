"""Track pair scores (Definition 3.1) and running estimates.

The exact score ``s_{i,j}`` averages the ReID distance over *all* BBox pairs
of the two tracks; every sampling algorithm estimates it from a subset
(Eq. 8), tracked here by :class:`PairScoreEstimate`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pairs import TrackPair
from repro.reid import ReidScorer, normalize_distance


def exact_pair_score(pair: TrackPair, scorer: ReidScorer) -> float:
    """Definition 3.1: mean raw ReID distance over all BBox pairs.

    This is the baseline's per-pair work; with caching, features are
    extracted once per BBox and distances once per BBox pair.  Uses the
    scorer's vectorized bulk path (cost-identical to per-pair calls).
    """
    if pair.n_bbox_pairs == 0:
        raise ValueError(f"pair {pair.key} has no bbox pairs")
    matrix = scorer.pair_distance_matrix(pair.track_a, pair.track_b)
    return float(matrix.mean())


@dataclass
class PairScoreEstimate:
    """Running mean of sampled normalized distances (the paper's s̃′).

    Attributes:
        total: sum of observed normalized distances.
        count: number of observations (the paper's ``n_{i,j}``).
    """

    total: float = 0.0
    count: int = 0

    def record(self, normalized_distance: float) -> None:
        """Fold in one observation d̃ ∈ [0, 1]."""
        if not 0.0 <= normalized_distance <= 1.0:
            raise ValueError(
                f"normalized distance out of range: {normalized_distance}"
            )
        self.total += normalized_distance
        self.count += 1

    @property
    def mean(self) -> float:
        """s̃′ — the running estimate; 0.5 (uninformative) before any draw."""
        if self.count == 0:
            return 0.5
        return self.total / self.count


def exact_normalized_score(pair: TrackPair, scorer: ReidScorer) -> float:
    """Definition 3.1 score mapped to [0, 1] (the paper's s̃)."""
    return normalize_distance(exact_pair_score(pair, scorer))
