"""The LCB competitor (§V-B): UCB1 flipped for minimization.

Each iteration computes the lower confidence bound ``s̃′ − sqrt(2 log τ/n)``
of every pair, pulls the pair with the smallest bound, evaluates one BBox
pair and updates the running estimate.  Deterministic index selection makes
every iteration depend on the previous one — which is why the batched
LCB-B fills its GPU batch with ``B`` BBox pairs *from the single selected
arm* rather than from ``B`` distinct arms, and why (as the paper observes)
growing the batch brings little additional benefit: the extra same-arm
samples are statistically redundant.
"""

from __future__ import annotations

import numpy as np

from repro.core.pairs import TrackPair
from repro.core.results import MergeResult, top_k_count
from repro.reid import ReidScorer, normalize_distance


class LcbMerger:
    """Lower-confidence-bound sampling over the pair set.

    Args:
        tau_max: iteration budget.
        k: the fraction K of pairs to return as candidates.
        batch_size: when set, run as LCB-B (one arm, ``batch_size`` BBox
            pairs per simulated GPU call).
        seed: RNG seed for BBox-pair draws.
        reuse_features: enable TMerge's feature-reuse cache for LCB too.
            Off by default — the paper's LCB extracts per draw (§V-B); the
            cached variant exists as an ablation of the cache's impact.
    """

    def __init__(
        self,
        tau_max: int = 10_000,
        k: float = 0.05,
        batch_size: int | None = None,
        seed: int = 0,
        reuse_features: bool = False,
    ) -> None:
        if tau_max < 1:
            raise ValueError("tau_max must be >= 1")
        if not 0.0 <= k <= 1.0:
            raise ValueError("k must be in [0, 1]")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.tau_max = tau_max
        self.k = k
        self.batch_size = batch_size
        self.seed = seed
        self.reuse_features = reuse_features

    @property
    def name(self) -> str:
        """Algorithm display name (``LCB`` / ``LCB-B<size>``)."""
        return "LCB" if self.batch_size is None else f"LCB-B{self.batch_size}"

    def run(self, pairs: list[TrackPair], scorer: ReidScorer) -> MergeResult:
        """Run the LCB loop and return the top-⌈K·|P_c|⌉ candidates."""
        rng = np.random.default_rng(self.seed)
        start_seconds = scorer.cost.seconds
        n = len(pairs)
        sums = np.zeros(n)
        counts = np.zeros(n, dtype=np.int64)
        eligible = np.array([p.n_bbox_pairs > 0 for p in pairs])
        iterations = 0

        for tau in range(1, self.tau_max + 1):
            live = np.nonzero(eligible)[0]
            if live.size == 0:
                break
            live_counts = counts[live]
            log_term = np.log(tau) if tau > 1 else 0.0
            with np.errstate(divide="ignore", invalid="ignore"):
                radii = np.sqrt(2.0 * log_term / live_counts)
                means = sums[live] / live_counts
            indices = np.where(live_counts > 0, means - radii, -np.inf)
            arm = int(live[int(np.argmin(indices))])
            pair = pairs[arm]

            if self.batch_size is None:
                evaluate = (
                    scorer.distance
                    if self.reuse_features
                    else scorer.distance_fresh
                )
                ia, ib = pair.sample_bbox_pair(rng)
                distance = evaluate(pair.track_a, ia, pair.track_b, ib)
                sums[arm] += normalize_distance(distance)
                counts[arm] += 1
            else:
                draws = pair.sample_bbox_pairs(self.batch_size, rng)
                requests = [
                    (pair.track_a, ia, pair.track_b, ib) for ia, ib in draws
                ]
                if self.reuse_features:
                    distances = scorer.distances_batched(
                        requests, batch_size=self.batch_size
                    )
                else:
                    distances = scorer.distances_batched_fresh(
                        requests, batch_size=self.batch_size
                    )
                for distance in distances:
                    sums[arm] += normalize_distance(distance)
                    counts[arm] += 1
            scorer.cost.charge_overhead(1)
            iterations = tau
            if pair.exhausted:
                eligible[arm] = False

        scores = {
            pair.key: (sums[i] / counts[i] if counts[i] else 0.5)
            for i, pair in enumerate(pairs)
        }
        budget = top_k_count(n, self.k)
        ranked = sorted(pairs, key=lambda p: (scores[p.key], p.key))
        return MergeResult(
            method=self.name,
            candidates=ranked[:budget],
            scores=scores,
            n_pairs=n,
            k=self.k,
            simulated_seconds=scorer.cost.seconds - start_seconds,
            iterations=iterations,
            extra={"total_draws": float(counts.sum())},
        )
