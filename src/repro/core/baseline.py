"""Algorithm 1 — the brute-force baseline (BL) and its batched form (BL-B).

Computes the exact Definition-3.1 score of every pair in ``P_c`` by
evaluating **all** BBox-pair distances, then returns the ⌈K·|P_c|⌉ pairs
with the lowest scores.  Features are extracted once per BBox (cached), so
the cost is ``#BBoxes`` extractions plus ``Σ |B_i|·|B_j|`` distances — the
quantity Figure 4 shows exploding with video length.
"""

from __future__ import annotations

from repro.core.pairs import TrackPair
from repro.core.results import MergeResult, top_k_count
from repro.reid import ReidScorer, normalize_distance


class BaselineMerger:
    """Exhaustive scoring of all track pairs.

    Args:
        k: the fraction K of pairs to return as candidates.
        batch_size: when set, run as BL-B: distance evaluations are grouped
            into simulated GPU batches of this many track pairs.
    """

    def __init__(self, k: float = 0.05, batch_size: int | None = None) -> None:
        if not 0.0 <= k <= 1.0:
            raise ValueError("k must be in [0, 1]")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.k = k
        self.batch_size = batch_size

    @property
    def name(self) -> str:
        """Algorithm display name (``BL`` / ``BL-B<size>``)."""
        return "BL" if self.batch_size is None else f"BL-B{self.batch_size}"

    def run(self, pairs: list[TrackPair], scorer: ReidScorer) -> MergeResult:
        """Score every pair exactly and return the top-⌈K·|P_c|⌉."""
        start_seconds = scorer.cost.seconds
        scores: dict[tuple[int, int], float] = {}

        for pair in pairs:
            matrix = scorer.pair_distance_matrix(
                pair.track_a, pair.track_b, batch_size=self.batch_size
            )
            scores[pair.key] = normalize_distance(float(matrix.mean()))

        budget = top_k_count(len(pairs), self.k)
        ranked = sorted(pairs, key=lambda p: (scores[p.key], p.key))
        candidates = ranked[:budget]
        return MergeResult(
            method=self.name,
            candidates=candidates,
            scores=scores,
            n_pairs=len(pairs),
            k=self.k,
            simulated_seconds=scorer.cost.seconds - start_seconds,
        )
