"""The result record shared by all merging algorithms."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.pairs import PairKey, TrackPair


@dataclass
class MergeResult:
    """Output of one algorithm run on one window's pair set.

    Attributes:
        method: algorithm name (``"BL"``, ``"PS"``, ``"LCB"``, ``"TMerge"``
            with a ``-B`` suffix when batched).
        candidates: the returned top-⌈K·|P_c|⌉ pair candidates
            (the estimated ``P̂*_{c|K}``), best first.
        scores: estimated (or exact) normalized score per pair key.
        n_pairs: ``|P_c|``.
        k: the K used.
        simulated_seconds: simulated clock charged by this run.
        iterations: sampling iterations performed (0 for the baseline).
        extra: algorithm-specific diagnostics (pruning counts, regret,
            flags, labels, …).  Any JSON-serializable value is allowed —
            the annotation is deliberately wide because diagnostics are
            not all numeric (see ``tests/test_parallel.py``).
        degraded: True when the run fell back to reduced evidence (the
            ReID dependency became unavailable mid-window and the
            candidates rest partly or wholly on spatial priors).
    """

    method: str
    candidates: list[TrackPair]
    scores: dict[PairKey, float]
    n_pairs: int
    k: float
    simulated_seconds: float
    iterations: int = 0
    extra: dict[str, object] = field(default_factory=dict)
    degraded: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.k <= 1.0:
            raise ValueError("K must be in [0, 1]")
        if self.simulated_seconds < 0:
            raise ValueError("simulated_seconds must be non-negative")

    @property
    def candidate_keys(self) -> set[PairKey]:
        """Keys of the returned candidate pairs."""
        return {pair.key for pair in self.candidates}


def top_k_count(n_pairs: int, k: float) -> int:
    """⌈K·|P_c|⌉ — the candidate budget (0 when the window has no pairs)."""
    if n_pairs <= 0:
        return 0
    return min(math.ceil(k * n_pairs), n_pairs)
