"""End-to-end ingestion: video → detections → tracks → merged tracks.

This is the deployment shape the paper describes (§I): TMerge runs as a
pre-processing step *after* the tracking algorithm and *before* downstream
query processing, window by window.  The pipeline wires the substrates
together and returns everything the evaluation and query layers need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro import contracts
from repro.core.merge import merge_tracks
from repro.core.pairs import TrackPair, build_track_pairs
from repro.core.results import MergeResult
from repro.core.windows import Window, WindowedTracks, partition_windows
from repro.detect import Detection, NoisyDetector
from repro.reid import CostModel, CostParams, ReidScorer, SimReIDModel
from repro.synth.world import VideoGroundTruth
from repro.track.base import Track, Tracker


class Merger(Protocol):
    """Any §III/§IV algorithm: BL, PS, LCB or TMerge (batched or not)."""

    @property
    def name(self) -> str: ...

    def run(self, pairs: list[TrackPair], scorer: ReidScorer) -> MergeResult: ...


@dataclass
class IngestionResult:
    """Everything one pipeline run produced.

    Attributes:
        world: the simulated ground truth.
        detections: per-frame detector output.
        tracks: tracker output, pre-merge.
        windows: the temporal windows used.
        window_pairs: the candidate pair set ``P_c`` per window.
        window_results: the merging algorithm's result per window.
        merged_tracks: tracks after applying all selected candidates.
        id_map: original TID → merged TID.
        cost: the simulated cost model (shared across windows).
    """

    world: VideoGroundTruth
    detections: list[list[Detection]]
    tracks: list[Track]
    windows: list[Window]
    window_pairs: list[list[TrackPair]]
    window_results: list[MergeResult]
    merged_tracks: list[Track]
    id_map: dict[int, int]
    cost: CostModel

    @property
    def selected_pairs(self) -> list[tuple[int, int]]:
        """All candidate pair keys across windows."""
        keys = []
        for result in self.window_results:
            keys.extend(result.candidate_keys)
        return keys

    @property
    def total_simulated_seconds(self) -> float:
        """Simulated merging time summed over windows."""
        return sum(r.simulated_seconds for r in self.window_results)

    @property
    def fps(self) -> float:
        """Frames processed per simulated second (the paper's FPS metric)."""
        seconds = self.total_simulated_seconds
        if seconds <= 0:
            return float("inf")
        return self.world.n_frames / seconds


@dataclass
class IngestionPipeline:
    """The periodic metadata-extraction job.

    Attributes:
        tracker: the tracking algorithm producing raw tracks.
        merger: the polyonymous-pair identification algorithm.
        window_length: the paper's ``L`` (should be ≥ 2·L_max).
        detector: the detection front-end.
        cost_params: simulated cost constants.
        reid_seed: seed of the ReID extraction noise.
        detector_seed: seed of the detection noise.
        merge_score_threshold: when set, *automatic* merging only applies
            candidates whose estimated normalized score is below this value
            (confidently-similar pairs); the remaining candidates are still
            reported for the paper's optional human inspection.  ``None``
            merges every returned candidate.
        l_max: optional declared maximum track length ``L_max``; when set
            and contracts are enabled (``REPRO_CHECK_INVARIANTS=1``), the
            §II constraint ``window_length ≥ 2·l_max`` is enforced.
    """

    tracker: Tracker
    merger: Merger
    window_length: int = 2000
    detector: NoisyDetector = field(default_factory=NoisyDetector)
    cost_params: CostParams = field(default_factory=CostParams)
    reid_seed: int = 1
    detector_seed: int = 2
    merge_score_threshold: float | None = None
    l_max: int | None = None

    def run(self, world: VideoGroundTruth) -> IngestionResult:
        """Ingest one video end to end."""
        detections = self.detector.detect_video(world, seed=self.detector_seed)
        tracks = self.tracker.run(detections)
        return self.run_on_tracks(world, detections, tracks)

    def run_on_tracks(
        self,
        world: VideoGroundTruth,
        detections: list[list[Detection]],
        tracks: list[Track],
    ) -> IngestionResult:
        """Ingest starting from precomputed tracks (lets experiments share
        one tracker run across many merger configurations)."""
        cost = CostModel(self.cost_params)
        model = SimReIDModel(world, seed=self.reid_seed)
        scorer = ReidScorer(model, cost=cost)

        windows = partition_windows(
            world.n_frames, self.window_length, l_max=self.l_max
        )
        windowed = WindowedTracks.assign(tracks, windows)

        window_pairs: list[list[TrackPair]] = []
        window_results: list[MergeResult] = []
        for c in range(len(windows)):
            pairs = build_track_pairs(
                windowed.tracks_of(c), windowed.previous_tracks_of(c)
            )
            window_pairs.append(pairs)
            if pairs:
                result = self.merger.run(pairs, scorer)
                if contracts.ENABLED:
                    contracts.check_top_k_budget(
                        len(result.candidates),
                        len(pairs),
                        where="IngestionPipeline",
                    )
                window_results.append(result)
            else:
                window_results.append(
                    MergeResult(
                        method=self.merger.name,
                        candidates=[],
                        scores={},
                        n_pairs=0,
                        k=getattr(self.merger, "k", 0.0),
                        simulated_seconds=0.0,
                    )
                )

        selected = []
        for result in window_results:
            for key in result.candidate_keys:
                if (
                    self.merge_score_threshold is not None
                    and result.scores.get(key, 0.0)
                    >= self.merge_score_threshold
                ):
                    continue
                selected.append(key)
        merged, id_map = merge_tracks(tracks, selected)
        return IngestionResult(
            world=world,
            detections=detections,
            tracks=tracks,
            windows=windows,
            window_pairs=window_pairs,
            window_results=window_results,
            merged_tracks=merged,
            id_map=id_map,
            cost=cost,
        )
