"""End-to-end ingestion: video → detections → tracks → merged tracks.

This is the deployment shape the paper describes (§I): TMerge runs as a
pre-processing step *after* the tracking algorithm and *before* downstream
query processing, window by window.  The pipeline wires the substrates
together and returns everything the evaluation and query layers need.
"""

from __future__ import annotations

import copy
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro import contracts
from repro.core.merge import merge_tracks
from repro.core.pairs import TrackPair, build_track_pairs
from repro.core.results import MergeResult, top_k_count
from repro.core.windows import Window, WindowedTracks, partition_windows
from repro.detect import Detection, NoisyDetector
from repro.faults.errors import WindowCrashError
from repro.faults.profiles import FaultProfile
from repro.provenance import EVENT_FAULT, DecisionLedger
from repro.reid import CostModel, CostParams, ReidScorer, SimReIDModel
from repro.resilience import (
    REID_UNAVAILABLE,
    ResilienceConfig,
    ResilientReidScorer,
    RetryPolicy,
    retry_call,
)
from repro.synth.world import VideoGroundTruth
from repro.telemetry import MetricsRegistry, Telemetry
from repro.track.base import Track, Tracker

#: Prior means mirroring BetaInit (see :mod:`repro.core.tmerge`): the
#: spatial-fallback ranking is exactly a zero-observation TMerge ranking.
_PRIOR_MEAN_CLOSE = 1.0 / 3.0
_PRIOR_MEAN_DEFAULT = 0.5


def spatial_fallback_result(
    merger: "Merger", pairs: list[TrackPair], elapsed: float
) -> MergeResult:
    """Candidate set from spatial priors alone (the degradation floor).

    Used when a merger that does not handle degradation internally loses
    its ReID dependency mid-window: pairs are ranked by their BetaInit
    prior mean (close pairs first) with spatial distance as tiebreak —
    identical to what TMerge returns from a fully-offline window.
    """
    k = float(getattr(merger, "k", 0.0))
    thr_s = getattr(merger, "thr_s", 200.0)
    budget = top_k_count(len(pairs), k)
    spatial = np.array([pair.spatial_distance for pair in pairs])
    if thr_s is None:
        means = np.full(len(pairs), _PRIOR_MEAN_DEFAULT)
    else:
        means = np.where(
            spatial < thr_s, _PRIOR_MEAN_CLOSE, _PRIOR_MEAN_DEFAULT
        )
    order = np.lexsort((spatial, means))
    chosen = [int(i) for i in order[:budget]]
    return MergeResult(
        method=merger.name,
        candidates=[pairs[i] for i in chosen],
        scores={
            pair.key: float(means[i]) for i, pair in enumerate(pairs)
        },
        n_pairs=len(pairs),
        k=k,
        simulated_seconds=elapsed,
        extra={"spatial_fallback": 1.0},
        degraded=True,
    )


class Merger(Protocol):
    """Any §III/§IV algorithm: BL, PS, LCB or TMerge (batched or not)."""

    @property
    def name(self) -> str: ...

    def run(self, pairs: list[TrackPair], scorer: ReidScorer) -> MergeResult: ...


def merger_with_batch_size(merger: Merger, batch_size: int | None) -> Merger:
    """Shallow-copy ``merger`` with its ``batch_size`` overridden.

    The run-level seam behind the pipeline/streaming ``batch_size``
    knobs (and the ``REPRO_BATCH_SIZE`` CI dimension): ``None`` leaves
    the merger untouched, any integer ≥ 1 returns a copy configured
    with that batch size (``1`` forces the scalar path — see
    :class:`~repro.core.tmerge.TMerge`).  The copy is shallow, so a
    configured checkpoint store keeps being shared.

    Raises:
        TypeError: if the merger has no ``batch_size`` attribute (e.g.
            the BL baseline, which has no batched variant).
    """
    if batch_size is None:
        return merger
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if not hasattr(merger, "batch_size"):
        raise TypeError(
            f"merger {merger.name!r} does not support a batch_size override"
        )
    clone = copy.copy(merger)
    clone.batch_size = batch_size
    return clone


def merger_with_ledger(
    merger: Merger, ledger: DecisionLedger | None
) -> Merger:
    """Shallow-copy ``merger`` with a decision ledger attached.

    The run-level seam behind the pipeline/streaming ``ledger`` knobs,
    mirroring :func:`merger_with_batch_size`: ``None`` leaves the merger
    untouched; otherwise a shallow copy records into ``ledger`` (the
    original merger is never mutated, and a configured checkpoint store
    keeps being shared).

    Raises:
        TypeError: if the merger has no ``ledger`` attribute (e.g. the
            BL baseline, which makes no sampling decisions to record).
    """
    if ledger is None:
        return merger
    if not hasattr(merger, "ledger"):
        raise TypeError(
            f"merger {merger.name!r} does not support a decision ledger"
        )
    clone = copy.copy(merger)
    clone.ledger = ledger
    return clone


def run_resilient_window(
    merger: Merger,
    index: int,
    pairs: list[TrackPair],
    scorer: ReidScorer | ResilientReidScorer,
    cost: CostModel,
    resilience: ResilienceConfig | None,
    crasher=None,
) -> MergeResult:
    """Run a merger on one window, surviving crashes and ReID outages.

    Window crashes are retried through :func:`repro.resilience.retry_call`
    (resuming from the merger's checkpoint store when it has one,
    restarting the window's sampling otherwise); a ReID outage the merger
    does not handle internally falls back to the spatial-prior candidate
    set with ``degraded=True``.  With ``resilience=None`` this is exactly
    ``merger.run(pairs, scorer)``.

    Args:
        merger: the algorithm under test.
        index: window index (used to arm the crash schedule).
        pairs: the window's candidate pair set.
        scorer: plain or resilient scorer.
        cost: the shared simulated clock.
        resilience: retry/breaker/window-retry tuning, or ``None``.
        crasher: optional
            :class:`~repro.faults.injectors.WindowCrashInjector`.
    """
    if resilience is None:
        return merger.run(pairs, scorer)

    armed = crasher.arm(index) if crasher is not None else None
    checkpointed = getattr(merger, "checkpoint_store", None)
    ledger = getattr(merger, "ledger", None)

    def attempt() -> MergeResult:
        if armed is not None and armed.fired and checkpointed is None:
            # A crashed attempt left partial sampling state behind and
            # there is no checkpoint to resume from: the replacement
            # worker starts the window from scratch.
            for pair in pairs:
                pair.reset_sampling()
        if isinstance(scorer, ResilientReidScorer):
            scorer.crash_injector = armed
        try:
            return merger.run(pairs, scorer)
        finally:
            if isinstance(scorer, ResilientReidScorer):
                scorer.crash_injector = None

    window_start = cost.seconds
    policy = RetryPolicy(
        max_attempts=resilience.max_window_retries + 1,
        backoff_base_ms=0.0,
        retry_on=(WindowCrashError,),
    )
    try:
        result = retry_call(attempt, policy, cost)
    except REID_UNAVAILABLE:
        if ledger is not None:
            ledger.record(EVENT_FAULT, reason="spatial_fallback")
        return spatial_fallback_result(
            merger, pairs, cost.seconds - window_start
        )
    if ledger is not None and armed is not None and armed.fired:
        # Recorded after the merge completes (never wiped by a mid-run
        # ledger restore): this window's worker crashed and the retry
        # either resumed from a checkpoint or restarted from scratch.
        ledger.record(
            EVENT_FAULT,
            reason="window_crash",
            resumed=checkpointed is not None,
        )
    return result


@dataclass
class IngestionResult:
    """Everything one pipeline run produced.

    Attributes:
        world: the simulated ground truth.
        detections: per-frame detector output.
        tracks: tracker output, pre-merge.
        windows: the temporal windows used.
        window_pairs: the candidate pair set ``P_c`` per window.
        window_results: the merging algorithm's result per window.
        merged_tracks: tracks after applying all selected candidates.
        id_map: original TID → merged TID.
        cost: the simulated cost model (shared across windows).
        resilience_stats: counters from the resilience layer (empty when
            the pipeline ran without one).
        window_metrics: per-window telemetry counter deltas (one dict per
            window, keys like ``reid.invocations``; empty when the
            pipeline ran without an injected telemetry).
    """

    world: VideoGroundTruth
    detections: list[list[Detection]]
    tracks: list[Track]
    windows: list[Window]
    window_pairs: list[list[TrackPair]]
    window_results: list[MergeResult]
    merged_tracks: list[Track]
    id_map: dict[int, int]
    cost: CostModel
    resilience_stats: dict[str, float] = field(default_factory=dict)
    window_metrics: list[dict[str, float]] = field(default_factory=list)

    @property
    def degraded_windows(self) -> list[int]:
        """Indices of windows whose merge ran in degraded mode."""
        return [
            c
            for c, result in enumerate(self.window_results)
            if result.degraded
        ]

    @property
    def selected_pairs(self) -> list[tuple[int, int]]:
        """All candidate pair keys across windows."""
        keys = []
        for result in self.window_results:
            keys.extend(result.candidate_keys)
        return keys

    @property
    def total_simulated_seconds(self) -> float:
        """Simulated merging time summed over windows."""
        return sum(r.simulated_seconds for r in self.window_results)

    @property
    def fps(self) -> float:
        """Frames processed per simulated second (the paper's FPS metric)."""
        seconds = self.total_simulated_seconds
        if seconds <= 0:
            return float("inf")
        return self.world.n_frames / seconds


@dataclass
class IngestionPipeline:
    """The periodic metadata-extraction job.

    Attributes:
        tracker: the tracking algorithm producing raw tracks.
        merger: the polyonymous-pair identification algorithm.
        window_length: the paper's ``L`` (should be ≥ 2·L_max).
        detector: the detection front-end.
        cost_params: simulated cost constants.
        reid_seed: seed of the ReID extraction noise.
        detector_seed: seed of the detection noise.
        merge_score_threshold: when set, *automatic* merging only applies
            candidates whose estimated normalized score is below this value
            (confidently-similar pairs); the remaining candidates are still
            reported for the paper's optional human inspection.  ``None``
            merges every returned candidate.
        l_max: optional declared maximum track length ``L_max``; when set
            and contracts are enabled (``REPRO_CHECK_INVARIANTS=1``), the
            §II constraint ``window_length ≥ 2·l_max`` is enforced.
        fault_profile: optional chaos configuration; when set, its
            injectors are wired into the detection feed, the ReID model
            and the per-window crash seam (and resilience defaults on).
        resilience: retry/breaker/window-retry tuning; defaults to
            :class:`~repro.resilience.ResilientReidScorer` defaults when
            a fault profile is set, stays off otherwise.
        telemetry: optional injected :class:`~repro.telemetry.Telemetry`.
            When set, every component of the run records into it
            (ReID-cost counters, cache hits, bandit draws, fault and
            breaker events), windows run inside ``window`` spans on the
            simulated clock, and :attr:`IngestionResult.window_metrics`
            carries per-window counter deltas.  Telemetry is pure
            observation — results are bit-identical with it on or off.
        workers: ``None`` (default) keeps the legacy strictly-serial
            path, bit-for-bit.  Any integer ≥ 1 switches to the
            window-sharded engine (:mod:`repro.parallel`), whose
            *window-local* determinism regime makes results a pure
            function of ``(seed, window index)``: ``workers=1`` runs
            the per-window tasks inline through the pre-existing
            :func:`run_resilient_window` code path, and every higher
            worker count reproduces that run bit-identically (enforced
            by ``tests/test_parallel_equivalence.py``).  The engine
            regime is *not* bit-identical to ``workers=None`` because
            the legacy path threads one ReID RNG stream, feature cache,
            clock and breaker through all windows — see DESIGN.md §9.
        parallel_backend: pool flavour for ``workers`` ≥ 2 —
            ``"process"`` (default, real CPU parallelism) or
            ``"thread"`` (shared memory, GIL-bound).
        batch_size: run-level override of the merger's ``batch_size``
            (see :func:`merger_with_batch_size`).  ``None`` (default)
            runs the merger as configured; ``1`` forces the scalar
            sampling path; ``B > 1`` runs the batched §IV-F variant.
            The merger itself is never mutated — each run works on a
            configured copy.
        ledger: optional injected
            :class:`~repro.provenance.DecisionLedger`.  When set, the
            run's merger records one decision event per TMerge
            iteration, ULB pass, degradation and fault intervention,
            stamped with the owning window index (serial path: the
            shared ledger follows the window loop; ``workers`` path:
            per-window worker ledgers are absorbed in window-index
            order).  Pure observation — results are bit-identical with
            it on or off (``tests/test_provenance_equivalence.py``).
    """

    tracker: Tracker
    merger: Merger
    window_length: int = 2000
    detector: NoisyDetector = field(default_factory=NoisyDetector)
    cost_params: CostParams = field(default_factory=CostParams)
    reid_seed: int = 1
    detector_seed: int = 2
    merge_score_threshold: float | None = None
    l_max: int | None = None
    fault_profile: FaultProfile | None = None
    resilience: ResilienceConfig | None = None
    telemetry: Telemetry | None = None
    workers: int | None = None
    parallel_backend: str = "process"
    batch_size: int | None = None
    ledger: DecisionLedger | None = None

    def _effective_merger(self) -> Merger:
        """The merger this run executes (batch + ledger overrides)."""
        merger = merger_with_batch_size(self.merger, self.batch_size)
        if self.workers is None:
            # Serial path: the shared run ledger records in-process.
            # The workers path ships per-window ledgers instead (the
            # prototype crossing the pool seam must stay detached).
            merger = merger_with_ledger(merger, self.ledger)
        return merger

    def _resilience(self) -> ResilienceConfig | None:
        """The effective resilience config (auto-on under a fault profile)."""
        if self.resilience is not None:
            return self.resilience
        if self.fault_profile is not None:
            return ResilienceConfig()
        return None

    def run(self, world: VideoGroundTruth) -> IngestionResult:
        """Ingest one video end to end."""
        detections = self.detector.detect_video(world, seed=self.detector_seed)
        if (
            self.fault_profile is not None
            and self.fault_profile.frame_drop_rate > 0
        ):
            frame_injector = self.fault_profile.frame_injector()
            frame_injector.telemetry = self.telemetry
            detections = frame_injector.apply(detections)
        tracks = self.tracker.run(detections)
        return self.run_on_tracks(world, detections, tracks)

    def run_on_tracks(
        self,
        world: VideoGroundTruth,
        detections: list[list[Detection]],
        tracks: list[Track],
    ) -> IngestionResult:
        """Ingest starting from precomputed tracks (lets experiments share
        one tracker run across many merger configurations)."""
        if self.workers is not None:
            return self._run_sharded(world, detections, tracks)
        merger = self._effective_merger()
        telemetry = self.telemetry
        cost = CostModel(self.cost_params, telemetry=telemetry)
        if telemetry is not None:
            telemetry.bind_clock(cost)
        model = SimReIDModel(world, seed=self.reid_seed)
        if (
            self.fault_profile is not None
            and self.fault_profile.injects_reid_faults
        ):
            model = self.fault_profile.wrap_model(model)
            for injector in (model.call_injector, model.corruption_injector):
                if injector is not None:
                    injector.telemetry = telemetry
        scorer: ReidScorer | ResilientReidScorer = ReidScorer(
            model, cost=cost, telemetry=telemetry
        )
        resilience = self._resilience()
        if resilience is not None:
            scorer = ResilientReidScorer(
                scorer,
                retry=resilience.retry,
                breaker_policy=resilience.breaker,
            )
        crasher = (
            self.fault_profile.window_crasher()
            if self.fault_profile is not None
            and self.fault_profile.window_crash_rate > 0
            else None
        )
        if crasher is not None:
            crasher.telemetry = telemetry

        windows = partition_windows(
            world.n_frames, self.window_length, l_max=self.l_max
        )
        windowed = WindowedTracks.assign(tracks, windows)

        window_pairs: list[list[TrackPair]] = []
        window_results: list[MergeResult] = []
        window_metrics: list[dict[str, float]] = []
        ingest_span = (
            telemetry.span(
                "ingest",
                method=merger.name,
                n_windows=len(windows),
                n_tracks=len(tracks),
            )
            if telemetry is not None
            else nullcontext()
        )
        with ingest_span:
            for c in range(len(windows)):
                pairs = build_track_pairs(
                    windowed.tracks_of(c), windowed.previous_tracks_of(c)
                )
                window_pairs.append(pairs)
                before = (
                    telemetry.metrics.counters_snapshot()
                    if telemetry is not None
                    else None
                )
                window_span = (
                    telemetry.span("window", window_id=c, n_pairs=len(pairs))
                    if telemetry is not None
                    else nullcontext()
                )
                if self.ledger is not None:
                    self.ledger.begin_window(c)
                with window_span:
                    if pairs:
                        result = self._run_window(
                            merger, c, pairs, scorer, cost, resilience,
                            crasher,
                        )
                        if contracts.ENABLED:
                            contracts.check_top_k_budget(
                                len(result.candidates),
                                len(pairs),
                                where="IngestionPipeline",
                            )
                        window_results.append(result)
                    else:
                        window_results.append(
                            MergeResult(
                                method=merger.name,
                                candidates=[],
                                scores={},
                                n_pairs=0,
                                k=getattr(merger, "k", 0.0),
                                simulated_seconds=0.0,
                            )
                        )
                if telemetry is not None:
                    telemetry.observe(
                        "window.merge_ms",
                        window_results[-1].simulated_seconds * 1000.0,
                    )
                    window_metrics.append(
                        MetricsRegistry.delta(
                            telemetry.metrics.counters_snapshot(), before
                        )
                    )

        selected = self._select_keys(window_results)
        merged, id_map = merge_tracks(tracks, selected)
        return IngestionResult(
            world=world,
            detections=detections,
            tracks=tracks,
            windows=windows,
            window_pairs=window_pairs,
            window_results=window_results,
            merged_tracks=merged,
            id_map=id_map,
            cost=cost,
            resilience_stats=(
                scorer.stats()
                if isinstance(scorer, ResilientReidScorer)
                else {}
            ),
            window_metrics=window_metrics,
        )

    def _select_keys(self, window_results: list[MergeResult]) -> list:
        """Candidate keys to auto-merge, honoring the score threshold."""
        selected = []
        for result in window_results:
            for key in result.candidate_keys:
                if (
                    self.merge_score_threshold is not None
                    and result.scores.get(key, 0.0)
                    >= self.merge_score_threshold
                ):
                    continue
                selected.append(key)
        return selected

    def _run_sharded(
        self,
        world: VideoGroundTruth,
        detections: list[list[Detection]],
        tracks: list[Track],
    ) -> IngestionResult:
        """The ``workers`` path: window-sharded engine, window-local seeds.

        Windows and pair sets are built exactly as on the serial path;
        the per-window merge work is then fanned out through
        :func:`repro.parallel.run_windows` and reassembled in index
        order.  See the ``workers`` attribute docstring for the
        determinism regime.
        """
        # Imported lazily: repro.parallel imports this module.
        from repro.parallel import run_windows

        merger = self._effective_merger()
        telemetry = self.telemetry
        windows = partition_windows(
            world.n_frames, self.window_length, l_max=self.l_max
        )
        windowed = WindowedTracks.assign(tracks, windows)
        window_pairs = [
            build_track_pairs(
                windowed.tracks_of(c), windowed.previous_tracks_of(c)
            )
            for c in range(len(windows))
        ]
        ingest_span = (
            telemetry.span(
                "ingest",
                method=merger.name,
                n_windows=len(windows),
                n_tracks=len(tracks),
                workers=self.workers,
                backend=self.parallel_backend,
            )
            if telemetry is not None
            else nullcontext()
        )
        with ingest_span:
            run = run_windows(
                world=world,
                window_pairs=window_pairs,
                merger=merger,
                cost_params=self.cost_params,
                reid_seed=self.reid_seed,
                fault_profile=self.fault_profile,
                resilience=self._resilience(),
                n_workers=self.workers,
                backend=self.parallel_backend,
                telemetry=telemetry,
                ledger=self.ledger,
            )
        if telemetry is not None:
            telemetry.bind_clock(run.cost)
        selected = self._select_keys(run.window_results)
        merged, id_map = merge_tracks(tracks, selected)
        return IngestionResult(
            world=world,
            detections=detections,
            tracks=tracks,
            windows=windows,
            window_pairs=window_pairs,
            window_results=run.window_results,
            merged_tracks=merged,
            id_map=id_map,
            cost=run.cost,
            resilience_stats=run.resilience_stats,
            window_metrics=run.window_metrics,
        )

    def _run_window(
        self,
        merger: Merger,
        index: int,
        pairs: list[TrackPair],
        scorer: ReidScorer | ResilientReidScorer,
        cost: CostModel,
        resilience: ResilienceConfig | None,
        crasher,
    ) -> MergeResult:
        """Run the merger on one window through the resilience seam."""
        return run_resilient_window(
            merger, index, pairs, scorer, cost, resilience, crasher
        )
