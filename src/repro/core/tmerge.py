"""Algorithm 2 — TMerge: Thompson-sampling identification of polyonymous
track pairs, with BetaInit priors (Algorithm 3), ULB pruning (Algorithm 4)
and GPU-style batching (§IV-F).

Per iteration the algorithm samples θ from every eligible pair's Beta
posterior, pulls the arg-min pair, draws one fresh BBox pair from it,
computes the normalized ReID distance d̃, flips a Bernoulli coin with
success probability d̃ and updates the posterior (success ⇒ "looks
distant").  The batched variant pulls the ``B`` smallest-θ arms at once and
evaluates their BBox pairs in one simulated GPU call, preserving sample
diversity — the reason TMerge-B scales with ``B`` while LCB-B does not.

The whole per-iteration hot path is vectorized (DESIGN.md §13): Thompson
draws are one ``rng`` call across all live arms, batched observations flow
through :meth:`~repro.reid.scorer.ReidScorer.normalized_distances_batched`
in one call, and posterior updates (Bernoulli flips included) are pure
numpy array operations.  The vectorization is *stream-exact*: it consumes
the RNG in the same order as the historical scalar loop
(``rng.random(m)`` draws the same doubles as ``m`` scalar ``rng.random()``
calls — the draw-order contract tested in
``tests/test_batched_equivalence.py``), so results are bit-identical to
the pre-vectorization implementation for every ``batch_size``.
``batch_size=1`` (like ``batch_size=None``) degenerates *exactly* to the
scalar algorithm: arg-min selection, unbatched scorer calls, unbatched
cost accounting.
"""

from __future__ import annotations

import numpy as np

from repro import contracts
from repro.bandit.regret import RegretTracker
from repro.core.beta_init import beta_init
from repro.core.pairs import TrackPair
from repro.core.results import MergeResult, top_k_count
from repro.core.ulb import UlbPruner
from repro.provenance import (
    EVENT_DEGRADE,
    EVENT_FINAL,
    EVENT_SAMPLE,
    EVENT_WINDOW,
    DecisionLedger,
)
from repro.reid import ReidScorer
from repro.resilience import (
    REID_UNAVAILABLE,
    CheckpointStore,
    capture_scorer_state,
    encode_generator_state,
    restore_generator_state,
    restore_scorer_state,
)
from repro.telemetry import Telemetry, profiled

_POSTERIORS = ("beta", "gaussian")

#: Checkpoint payload schema version.  v1 (implicit — payloads without a
#: ``version`` key) predates the vectorized sampler and never recorded the
#: batch size; v2 records both so a resume with a mismatched ``batch_size``
#: fails loudly instead of silently diverging from the interrupted run.
#: v3 adds the decision ledger's state (``"ledger"``, ``None`` when the
#: run records no provenance), so a kill+resume reconstructs the decision
#: log bit-exactly; v1/v2 payloads still load when no ledger is attached
#: (see :meth:`TMerge._check_checkpoint_compat`).
CHECKPOINT_VERSION = 3

#: Gaussian-posterior prior variance.  0.25 is the largest variance any
#: [0, 1]-supported distribution can have (a fair coin's), so the prior is
#: maximally non-committal about d̃ while staying on the unit interval.
GAUSS_PRIOR_VAR = 0.25

#: Gaussian observation-noise variance.  Matches the empirical spread of
#: normalized ReID distances around their per-pair mean (std ≈ 0.22 on the
#: simulated model), so posterior contraction tracks real information gain.
GAUSS_OBS_VAR = 0.05

#: Prior mean for spatially-close pairs.  Mirrors BetaInit's ``Be(1, 2)``
#: prior (mean 1/3): pairs whose ``DisS < thr_S`` start biased toward
#: "looks similar", exactly as in the Beta parameterization (§IV-C).
GAUSS_PRIOR_MEAN_CLOSE = 1.0 / 3.0

#: Prior mean for all other pairs.  Mirrors the uniform ``Be(1, 1)`` prior
#: (mean 1/2) used when BetaInit gives no spatial signal.
GAUSS_PRIOR_MEAN_DEFAULT = 0.5


class TMerge:
    """The paper's algorithm (and this library's headline API).

    Args:
        k: fraction K of pairs to return as candidates.
        tau_max: iteration budget τ_max.
        thr_s: BetaInit spatial threshold in pixels; ``None`` disables
            BetaInit (ablation).
        use_ulb: enable ULB pruning (ablation switch).
        batch_size: when set, run as TMerge-B with this batch size 𝓑.
        posterior: ``"beta"`` (the paper) or ``"gaussian"`` (continuous-
            observation extension; skips the Bernoulli quantization).
        seed: RNG seed for Thompson draws, BBox sampling and Bernoulli
            trials.
        ulb_interval: run the ULB pass every this many iterations (the
            paper runs it every iteration; amortizing it is a pure
            wall-clock optimization with no effect on simulated cost).
        ulb_scale: radius multiplier for ULB's confidence bounds; 1.0 is
            the paper's exact (very conservative) Hoeffding radius — see
            :class:`~repro.core.ulb.UlbPruner`.
        s_min: optional true minimum normalized score, enabling regret
            tracking (§IV-E analysis benches).
        checkpoint_interval: when set (with ``checkpoint_store``), persist
            a full resumable snapshot every this many iterations, so a
            window killed mid-run resumes bit-exactly.
        checkpoint_store: the
            :class:`~repro.resilience.checkpoint.CheckpointStore` holding
            snapshots; an initial snapshot is always written at τ=0 so
            even an early crash rewinds the simulated clock correctly.
        telemetry: optional injected :class:`~repro.telemetry.Telemetry`.
            When ``None`` the run falls back to the scorer's sink, so the
            bandit's counters (``tmerge.thompson_draws``,
            ``ulb.accepted`` …) land next to the ReID-cost counters
            without any extra plumbing.  Telemetry never touches the RNG
            or the simulated clock: results are bit-identical with it on
            or off.
        ledger: optional injected
            :class:`~repro.provenance.DecisionLedger` recording one
            decision event per iteration, ULB pass and degradation
            (DESIGN.md §14).  Like telemetry it is pure observation —
            recording never consumes the RNG stream or touches the
            simulated clock, so ledger-enabled runs are bit-identical
            to plain ones.  The ledger state rides inside checkpoints
            (schema v3), so a killed-and-resumed window reconstructs
            its decision log bit-exactly.
    """

    def __init__(
        self,
        k: float = 0.05,
        tau_max: int = 10_000,
        thr_s: float | None = 200.0,
        use_ulb: bool = True,
        batch_size: int | None = None,
        posterior: str = "beta",
        seed: int = 0,
        ulb_interval: int = 25,
        ulb_scale: float = 1.0,
        s_min: float | None = None,
        checkpoint_interval: int | None = None,
        checkpoint_store: CheckpointStore | None = None,
        telemetry: Telemetry | None = None,
        ledger: DecisionLedger | None = None,
    ) -> None:
        if not 0.0 <= k <= 1.0:
            raise ValueError("k must be in [0, 1]")
        if tau_max < 1:
            raise ValueError("tau_max must be >= 1")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if posterior not in _POSTERIORS:
            raise ValueError(f"posterior must be one of {_POSTERIORS}")
        if ulb_interval < 1:
            raise ValueError("ulb_interval must be >= 1")
        if ulb_scale <= 0:
            raise ValueError("ulb_scale must be positive")
        if thr_s is not None and thr_s < 0:
            raise ValueError("thr_s must be non-negative")
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self.k = k
        self.tau_max = tau_max
        self.thr_s = thr_s
        self.use_ulb = use_ulb
        self.batch_size = batch_size
        self.posterior = posterior
        self.seed = seed
        self.ulb_interval = ulb_interval
        self.ulb_scale = ulb_scale
        self.s_min = s_min
        self.checkpoint_interval = checkpoint_interval
        self.checkpoint_store = checkpoint_store
        self.telemetry = telemetry
        self.ledger = ledger

    @property
    def name(self) -> str:
        """Display name (``TMerge``, ``TMerge-G``, with ``-B<size>``)."""
        base = "TMerge"
        if self.posterior == "gaussian":
            base = "TMerge-G"
        if self.batch_size is None:
            return base
        return f"{base}-B{self.batch_size}"

    @property
    def _effective_batch(self) -> int | None:
        """The batch size actually used by the sampling loop.

        ``batch_size=1`` is the scalar algorithm — one arg-min arm, one
        unbatched scorer call, one observation — so it degenerates to the
        same code path as ``batch_size=None`` (same cost accounting, same
        RNG consumption, bit-identical results).  Only ``batch_size>1``
        engages top-B selection and the batched scorer seam.
        """
        if self.batch_size is None or self.batch_size == 1:
            return None
        return self.batch_size

    # ------------------------------------------------------------------
    @profiled
    def run(self, pairs: list[TrackPair], scorer: ReidScorer) -> MergeResult:
        """Identify the estimated top-⌈K·|P_c|⌉ polyonymous candidates.

        When a checkpoint store is configured, the run resumes from the
        window's last snapshot (if any) and snapshots its full state every
        ``checkpoint_interval`` iterations; the snapshot is discarded once
        the window completes.  When the resilience layer signals that ReID
        is unavailable mid-window, the run stops sampling and returns the
        best candidates supportable by the evidence gathered so far, with
        ``degraded=True``.
        """
        telemetry = self.telemetry
        if telemetry is None:
            telemetry = getattr(scorer, "telemetry", None)
        if telemetry is None:
            return self._run(pairs, scorer, None)
        telemetry.bind_clock(scorer.cost)
        with telemetry.span(
            "tmerge.run", method=self.name, n_pairs=len(pairs)
        ):
            return self._run(pairs, scorer, telemetry)

    def _run(
        self,
        pairs: list[TrackPair],
        scorer: ReidScorer,
        telemetry: Telemetry | None,
    ) -> MergeResult:
        """The sampling loop behind :meth:`run` (one traced span)."""
        rng = np.random.default_rng(self.seed)
        start_seconds = scorer.cost.seconds
        n = len(pairs)
        budget = top_k_count(n, self.k)

        successes, failures = beta_init(pairs, self.thr_s)
        if contracts.ENABLED:
            contracts.check_top_k_budget(budget, n, where="TMerge.run")
            contracts.check_beta_params(
                successes, failures, where="TMerge.beta_init"
            )
        # Gaussian-posterior state (only used when posterior == "gaussian").
        gauss_mean = np.where(
            failures > 1.0, GAUSS_PRIOR_MEAN_CLOSE, GAUSS_PRIOR_MEAN_DEFAULT
        )
        gauss_var = np.full(n, GAUSS_PRIOR_VAR)
        obs_var = GAUSS_OBS_VAR

        sums = np.zeros(n)
        counts = np.zeros(n, dtype=np.int64)
        eligible = np.array([p.n_bbox_pairs > 0 for p in pairs])
        ledger = self.ledger
        pruner = (
            UlbPruner(
                n,
                budget,
                radius_scale=self.ulb_scale,
                telemetry=telemetry,
                ledger=ledger,
            )
            if self.use_ulb
            else None
        )
        regret = RegretTracker(self.s_min) if self.s_min is not None else None

        window_key = [list(pair.key) for pair in pairs]
        if ledger is not None:
            # Recorded *before* any checkpoint restore: a resume's
            # ledger.load_state_dict overwrites this re-recorded event
            # with the snapshot's log, so crash-retry never duplicates.
            ledger.record(
                EVENT_WINDOW,
                pairs=window_key,
                n_pairs=n,
                budget=budget,
                batch=self._effective_batch,
                posterior=self.posterior,
                seed=self.seed,
            )

        def posterior_rows(arms: np.ndarray) -> list[list[float]]:
            # Snapshot of the recorded arms' posterior state ([alpha,
            # beta] or [mean, var]); reads current bindings, so it sees
            # restored state after a resume.
            if self.posterior == "beta":
                return [
                    [float(successes[int(a)]), float(failures[int(a)])]
                    for a in arms
                ]
            return [
                [float(gauss_mean[int(a)]), float(gauss_var[int(a)])]
                for a in arms
            ]

        tau0 = 0
        iterations = 0
        if self.checkpoint_store is not None:
            saved = self.checkpoint_store.load(window_key)
            if saved is not None:
                self._check_checkpoint_compat(saved)
                tau0 = int(saved["tau"])
                iterations = int(saved["iterations"])
                start_seconds = float(saved["start_seconds"])
                successes = np.asarray(saved["successes"], dtype=np.float64)
                failures = np.asarray(saved["failures"], dtype=np.float64)
                gauss_mean = np.asarray(saved["gauss_mean"], dtype=np.float64)
                gauss_var = np.asarray(saved["gauss_var"], dtype=np.float64)
                sums = np.asarray(saved["sums"], dtype=np.float64)
                counts = np.asarray(saved["counts"], dtype=np.int64)
                eligible = np.asarray(saved["eligible"], dtype=bool)
                for pair, flat in zip(pairs, saved["sampled"]):
                    pair.restore_sampled(flat)
                if pruner is not None and saved["pruner"] is not None:
                    pruner.load_state_dict(saved["pruner"])
                if regret is not None and saved["regret"] is not None:
                    regret.load_state_dict(saved["regret"])
                restore_generator_state(rng, saved["rng"])
                restore_scorer_state(scorer, saved["scorer"])
                if ledger is not None and saved.get("ledger") is not None:
                    ledger.load_state_dict(saved["ledger"])
            else:
                # τ=0 snapshot: even a crash before the first interval
                # rewinds clock, cache and RNGs to the window start.
                self.checkpoint_store.save(
                    window_key,
                    self._checkpoint_payload(
                        0, 0, start_seconds, pairs, successes, failures,
                        gauss_mean, gauss_var, sums, counts, eligible,
                        pruner, regret, rng, scorer,
                    ),
                )

        degraded = False
        for tau in range(tau0 + 1, self.tau_max + 1):
            live = np.nonzero(eligible)[0]
            if live.size == 0:
                break

            selected, theta_sel = self._select_arms(
                live, successes, failures, gauss_mean, gauss_var, rng
            )
            if telemetry is not None:
                # One posterior draw per live arm per iteration, batched
                # or not — this is the figure the bench gate watches
                # alongside reid.invocations.
                telemetry.count("tmerge.thompson_draws", live.size)
            try:
                owners, d_norms = self._evaluate(pairs, selected, scorer, rng)
            except REID_UNAVAILABLE:
                degraded = True
                if telemetry is not None:
                    telemetry.count("tmerge.degraded_windows")
                if ledger is not None:
                    ledger.record(
                        EVENT_DEGRADE, tau=tau, reason="reid_unavailable"
                    )
                break
            post_before = (
                posterior_rows(owners) if ledger is not None else None
            )

            # Vectorized posterior update.  Owners are distinct arms (one
            # draw per selected live arm), so fancy-index scatter adds are
            # exact; the Bernoulli flips come from one rng.random(m) call,
            # which consumes the PCG64 stream in the same order as m
            # scalar draws — bit-identical to the historical per-
            # observation loop.
            if owners.size:
                if contracts.ENABLED:
                    contracts.check_normalized_distance(
                        d_norms, where="TMerge.run"
                    )
                if regret is not None:
                    regret.record_many(d_norms)
                sums[owners] += d_norms
                counts[owners] += 1
                if self.posterior == "beta":
                    hits = rng.random(owners.size) < d_norms
                    successes[owners[hits]] += 1.0
                    failures[owners[~hits]] += 1.0
                else:
                    precision = 1.0 / gauss_var[owners]
                    new_precision = precision + 1.0 / obs_var
                    gauss_mean[owners] = (
                        precision * gauss_mean[owners] + d_norms / obs_var
                    ) / new_precision
                    gauss_var[owners] = 1.0 / new_precision
                exhausted = np.fromiter(
                    (pairs[int(arm)].exhausted for arm in owners),
                    dtype=bool,
                    count=owners.size,
                )
                eligible[owners[exhausted]] = False
            if ledger is not None:
                ledger.record(
                    EVENT_SAMPLE,
                    tau=tau,
                    arms=[int(a) for a in selected],
                    theta=[float(t) for t in theta_sel],
                    observed=[int(a) for a in owners],
                    d_norm=[float(d) for d in d_norms],
                    posterior_before=post_before,
                    posterior_after=posterior_rows(owners),
                )

            scorer.cost.charge_overhead(1)
            iterations = tau
            if telemetry is not None:
                telemetry.count("tmerge.iterations")

            if pruner is not None and tau % self.ulb_interval == 0:
                means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.5)
                accepted, rejected = pruner.update(means, counts, tau)
                for arm in accepted | rejected:
                    eligible[arm] = False
                if contracts.ENABLED:
                    contracts.check_ulb_partition(
                        pruner.accepted, pruner.rejected, n, where="TMerge.run"
                    )

            if (
                self.checkpoint_store is not None
                and self.checkpoint_interval is not None
                and tau % self.checkpoint_interval == 0
            ):
                self.checkpoint_store.save(
                    window_key,
                    self._checkpoint_payload(
                        tau, iterations, start_seconds, pairs, successes,
                        failures, gauss_mean, gauss_var, sums, counts,
                        eligible, pruner, regret, rng, scorer,
                    ),
                )

        if self.checkpoint_store is not None:
            self.checkpoint_store.discard(window_key)

        return self._finalize(
            pairs,
            successes,
            failures,
            gauss_mean,
            pruner,
            budget,
            scorer.cost.seconds - start_seconds,
            iterations,
            regret,
            degraded,
        )

    def _checkpoint_payload(
        self,
        tau: int,
        iterations: int,
        start_seconds: float,
        pairs: list[TrackPair],
        successes: np.ndarray,
        failures: np.ndarray,
        gauss_mean: np.ndarray,
        gauss_var: np.ndarray,
        sums: np.ndarray,
        counts: np.ndarray,
        eligible: np.ndarray,
        pruner: UlbPruner | None,
        regret: RegretTracker | None,
        rng: np.random.Generator,
        scorer: ReidScorer,
    ) -> dict:
        """Full pure-JSON snapshot of a mid-window run (see DESIGN.md §7)."""
        return {
            "version": CHECKPOINT_VERSION,
            "batch": self._effective_batch,
            "tau": tau,
            "iterations": iterations,
            "start_seconds": float(start_seconds),
            "successes": [float(x) for x in successes],
            "failures": [float(x) for x in failures],
            "gauss_mean": [float(x) for x in gauss_mean],
            "gauss_var": [float(x) for x in gauss_var],
            "sums": [float(x) for x in sums],
            "counts": [int(x) for x in counts],
            "eligible": [bool(x) for x in eligible],
            "sampled": [pair.sampled_state() for pair in pairs],
            "pruner": pruner.state_dict() if pruner is not None else None,
            "regret": regret.state_dict() if regret is not None else None,
            "rng": encode_generator_state(rng),
            "scorer": capture_scorer_state(scorer),
            "ledger": (
                self.ledger.state_dict() if self.ledger is not None else None
            ),
        }

    def _check_checkpoint_compat(self, saved: dict) -> None:
        """Refuse to resume a snapshot this configuration cannot honour.

        v1 payloads (no ``version`` key) predate the vectorized sampler
        and never recorded the batch size, so they are only trusted on
        the scalar path — the one whose RNG consumption is unchanged
        since v1.  v2 payloads record the *effective* batch (``None`` and
        ``1`` are the same scalar algorithm), and a resume must use the
        same one: a different batch consumes the RNG stream differently,
        so continuing would silently diverge from the interrupted run.
        v3 payloads additionally carry the decision-ledger state; older
        payloads (and v3 payloads written without a ledger) refuse to
        resume into a ledger-attached run, because the pre-crash decision
        events would be silently missing from the reconstructed log.
        Merge *results* never depend on the ledger, so payloads carrying
        ledger state load fine into ledger-free runs (the state is just
        ignored).
        """
        version = int(saved.get("version", 1))
        if version > CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {version} is newer than this "
                f"TMerge build supports ({CHECKPOINT_VERSION})"
            )
        if self.ledger is not None and saved.get("ledger") is None:
            raise ValueError(
                f"checkpoint (version {version}) carries no decision-"
                "ledger state; resuming it with a ledger attached would "
                "silently drop every pre-crash decision event — resume "
                "without a ledger, or re-run from scratch"
            )
        if version == 1:
            if self._effective_batch is not None:
                raise ValueError(
                    "v1 checkpoints predate batched snapshots and can "
                    "only resume on the scalar path "
                    f"(batch_size=None or 1, got {self.batch_size})"
                )
            return
        saved_batch = saved.get("batch")
        if saved_batch != self._effective_batch:
            raise ValueError(
                f"checkpoint was written with batch={saved_batch!r} but "
                f"this run uses batch={self._effective_batch!r}; resuming "
                "across batch sizes would diverge from the interrupted run"
            )

    # ------------------------------------------------------------------
    def _select_arms(
        self,
        live: np.ndarray,
        successes: np.ndarray,
        failures: np.ndarray,
        gauss_mean: np.ndarray,
        gauss_var: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Thompson-sample all live arms; return the chosen arms + draws.

        One vectorized posterior draw covers every live arm.  The scalar
        path takes the arg-min; the batched path takes the B smallest θ
        via argpartition (O(n) instead of a full sort), ordered by θ.
        Returns ``(arm_indices, theta_values)`` as parallel arrays — the
        θ values are a pure read-out of draws already made (the ledger
        records them without consuming any extra RNG).
        """
        if self.posterior == "beta":
            theta = rng.beta(successes[live], failures[live])
        else:
            theta = rng.normal(
                gauss_mean[live], np.sqrt(gauss_var[live])
            )
        batch = self._effective_batch
        if batch is None:
            best = int(np.argmin(theta))
            return live[best].reshape(1), theta[best].reshape(1)
        take = min(batch, live.size)
        order = np.argpartition(theta, take - 1)[:take]
        order = order[np.argsort(theta[order])]
        return live[order], theta[order]

    def _evaluate(
        self,
        pairs: list[TrackPair],
        selected: np.ndarray,
        scorer: ReidScorer,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw one BBox pair per selected arm and compute d̃ for each.

        Returns ``(owners, d_norms)`` as parallel arrays feeding the
        vectorized posterior update.  Goes through the scorer's
        normalized entry points so the non-finite defense (and, when
        wrapped, the resilience layer) covers every observation.  BBox
        sampling stays a per-arm loop: rejection sampling is data-
        dependent, and the loop preserves the historical RNG draw order.
        """
        if self._effective_batch is None:
            arm = int(selected[0])
            pair = pairs[arm]
            ia, ib = pair.sample_bbox_pair(rng)
            d_norm = scorer.normalized_distance(
                pair.track_a, ia, pair.track_b, ib
            )
            return (
                np.array([arm], dtype=np.int64),
                np.array([d_norm], dtype=np.float64),
            )

        requests = []
        owners = []
        for arm in selected:
            arm = int(arm)
            pair = pairs[arm]
            if pair.exhausted:
                continue
            ia, ib = pair.sample_bbox_pair(rng)
            requests.append((pair.track_a, ia, pair.track_b, ib))
            owners.append(arm)
        if not requests:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        d_norms = scorer.normalized_distances_batched(
            requests, batch_size=self.batch_size
        )
        return (
            np.asarray(owners, dtype=np.int64),
            np.asarray(d_norms, dtype=np.float64),
        )

    def _finalize(
        self,
        pairs: list[TrackPair],
        successes: np.ndarray,
        failures: np.ndarray,
        gauss_mean: np.ndarray,
        pruner: UlbPruner | None,
        budget: int,
        elapsed: float,
        iterations: int,
        regret: RegretTracker | None,
        degraded: bool = False,
    ) -> MergeResult:
        """Rank by posterior mean, honouring ULB accept/reject verdicts.

        In a degraded run many posteriors still sit at their BetaInit
        priors, so ties are broken by spatial distance — with *zero*
        observations this reduces exactly to the spatial-prior-only
        ranking, the documented degradation floor.
        """
        if self.posterior == "beta":
            posterior_means = successes / (successes + failures)
        else:
            posterior_means = gauss_mean
        scores = {
            pair.key: float(posterior_means[i])
            for i, pair in enumerate(pairs)
        }

        accepted = pruner.accepted if pruner is not None else set()
        rejected = pruner.rejected if pruner is not None else set()

        chosen = sorted(accepted, key=lambda a: posterior_means[a])[:budget]
        chosen_set = set(chosen)
        if len(chosen) < budget:
            if degraded:
                spatial = np.array(
                    [pair.spatial_distance for pair in pairs]
                )
                order = np.lexsort((spatial, posterior_means))
            else:
                order = np.argsort(posterior_means, kind="stable")
            fill = [
                i
                for i in order
                if i not in chosen_set and i not in rejected
            ]
            chosen.extend(int(i) for i in fill[: budget - len(chosen)])

        extra = {
            "ulb_accepted": float(len(accepted)),
            "ulb_rejected": float(len(rejected)),
        }
        if regret is not None:
            extra["average_regret"] = regret.average
            extra["cumulative_regret"] = regret.cumulative

        if self.ledger is not None:
            self.ledger.record(
                EVENT_FINAL,
                chosen=[int(i) for i in chosen],
                means=[float(m) for m in posterior_means],
                ulb_accepted=sorted(int(a) for a in accepted),
                ulb_rejected=sorted(int(a) for a in rejected),
                n_pairs=len(pairs),
                iterations=int(iterations),
                degraded=bool(degraded),
            )

        return MergeResult(
            method=self.name,
            candidates=[pairs[i] for i in chosen],
            scores=scores,
            n_pairs=len(pairs),
            k=self.k,
            simulated_seconds=elapsed,
            iterations=iterations,
            extra=extra,
            degraded=degraded,
        )
