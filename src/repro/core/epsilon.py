"""ε-greedy sampling — an extension competitor not in the paper.

A natural question the paper leaves open is whether TMerge's Thompson
sampling is doing anything a trivial explore/exploit split would not.
ε-greedy answers it: with probability ε pull a uniformly random pair,
otherwise pull the pair with the lowest running mean.  It shares TMerge's
feature-reuse cache (the comparison targets the *policy*, not the cache).
"""

from __future__ import annotations

import numpy as np

from repro.core.pairs import TrackPair
from repro.core.results import MergeResult, top_k_count
from repro.reid import ReidScorer, normalize_distance


class EpsilonGreedyMerger:
    """Explore with probability ε, exploit the current best otherwise.

    Args:
        epsilon: exploration probability.
        tau_max: iteration budget.
        k: the fraction K of pairs to return as candidates.
        seed: RNG seed for exploration and BBox draws.
    """

    def __init__(
        self,
        epsilon: float = 0.1,
        tau_max: int = 10_000,
        k: float = 0.05,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if tau_max < 1:
            raise ValueError("tau_max must be >= 1")
        if not 0.0 <= k <= 1.0:
            raise ValueError("k must be in [0, 1]")
        self.epsilon = epsilon
        self.tau_max = tau_max
        self.k = k
        self.seed = seed

    @property
    def name(self) -> str:
        """Algorithm display name (``EpsGreedy(eps)``)."""
        return f"EpsGreedy({self.epsilon:g})"

    def run(self, pairs: list[TrackPair], scorer: ReidScorer) -> MergeResult:
        """Run the ε-greedy loop; rank pairs by running mean."""
        rng = np.random.default_rng(self.seed)
        start_seconds = scorer.cost.seconds
        n = len(pairs)
        sums = np.zeros(n)
        counts = np.zeros(n, dtype=np.int64)
        eligible = np.array([p.n_bbox_pairs > 0 for p in pairs])
        iterations = 0

        for tau in range(1, self.tau_max + 1):
            live = np.nonzero(eligible)[0]
            if live.size == 0:
                break
            unpulled = live[counts[live] == 0]
            if unpulled.size > 0:
                # Initial sweep: every arm gets one pull before greed starts.
                arm = int(unpulled[0])
            elif rng.random() < self.epsilon:
                arm = int(live[int(rng.integers(0, live.size))])
            else:
                means = sums[live] / counts[live]
                arm = int(live[int(np.argmin(means))])

            pair = pairs[arm]
            ia, ib = pair.sample_bbox_pair(rng)
            distance = scorer.distance(pair.track_a, ia, pair.track_b, ib)
            sums[arm] += normalize_distance(distance)
            counts[arm] += 1
            scorer.cost.charge_overhead(1)
            iterations = tau
            if pair.exhausted:
                eligible[arm] = False

        scores = {
            pair.key: (sums[i] / counts[i] if counts[i] else 0.5)
            for i, pair in enumerate(pairs)
        }
        budget = top_k_count(n, self.k)
        ranked = sorted(pairs, key=lambda p: (scores[p.key], p.key))
        return MergeResult(
            method=self.name,
            candidates=ranked[:budget],
            scores=scores,
            n_pairs=n,
            k=self.k,
            simulated_seconds=scorer.cost.seconds - start_seconds,
            iterations=iterations,
            extra={"epsilon": self.epsilon},
        )
