"""Windowing (§II): half-overlapping windows and the track sets ``T_c``.

A video (possibly unbounded) is cut into windows of ``L`` frames where
consecutive windows overlap by ``L/2``.  Window ``c`` *owns* the tracks that
start within its first ``L/2`` frames; every track is owned by exactly one
window, and the candidate set ``P_c`` pairs the owned tracks against each
other and against the previous window's tracks (Eq. 1), so every unordered
track pair is considered exactly once.  Requiring ``L ≥ 2·L_max`` guarantees
a fragmented GT track cannot out-span two consecutive windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import contracts
from repro.track.base import Track


@dataclass(frozen=True)
class Window:
    """One temporal window ``W_c``.

    Attributes:
        index: the window index ``c`` (0-based).
        start: first frame of the window (inclusive).
        end: last frame of the window (exclusive).
    """

    index: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("window end must exceed start")

    @property
    def length(self) -> int:
        """Window length ``L`` in frames."""
        return self.end - self.start

    @property
    def ownership_end(self) -> int:
        """End (exclusive) of the first-half region that owns new tracks."""
        return self.start + self.length // 2

    def owns_track(self, track: Track) -> bool:
        """Whether this window owns ``track`` (its first frame is in the
        window's first half)."""
        return self.start <= track.first_frame < self.ownership_end


def partition_windows(
    n_frames: int, window_length: int, l_max: int | None = None
) -> list[Window]:
    """Cut ``n_frames`` into half-overlapping windows of ``window_length``.

    Consecutive windows advance by ``window_length // 2``.  The final window
    may extend past the video end so that every frame belongs to a window's
    first half exactly once (ownership partitioning stays exact).

    Args:
        n_frames: total video length.
        window_length: the paper's ``L`` (must be ≥ 2 so halves are
            non-empty).
        l_max: optional declared maximum track length ``L_max``; when
            given and :data:`repro.contracts.ENABLED` is set, the §II
            constraint ``L ≥ 2·L_max`` is contract-checked.
    """
    if n_frames < 1:
        raise ValueError("n_frames must be >= 1")
    if window_length < 2:
        raise ValueError("window_length must be >= 2")
    if contracts.ENABLED and l_max is not None:
        contracts.check_window_length(
            window_length, l_max, where="partition_windows"
        )
    stride = window_length // 2
    windows = []
    start = 0
    index = 0
    while start < n_frames:
        windows.append(Window(index, start, start + window_length))
        start += stride
        index += 1
    if contracts.ENABLED:
        contracts.check_windows_partition(
            windows, n_frames, where="partition_windows"
        )
    return windows


def window_at(index: int, window_length: int) -> Window:
    """The ``index``-th half-overlapping window, without a frame count.

    Streaming ingestion opens windows lazily as the watermark advances
    over an unbounded feed; this is the pure function behind
    :func:`partition_windows` (same stride, same spans), so the window
    list of any finite prefix matches the batch partition exactly.
    """
    if index < 0:
        raise ValueError("index must be non-negative")
    if window_length < 2:
        raise ValueError("window_length must be >= 2")
    stride = window_length // 2
    return Window(index, index * stride, index * stride + window_length)


@dataclass
class WindowedTracks:
    """Tracks assigned to their owning windows.

    Attributes:
        windows: the window list.
        assignments: ``assignments[c]`` is ``T_c`` — tracks owned by
            window ``c``, ordered by first frame.
    """

    windows: list[Window]
    assignments: list[list[Track]] = field(default_factory=list)

    @classmethod
    def assign(
        cls, tracks: list[Track], windows: list[Window]
    ) -> "WindowedTracks":
        """Assign each track to the unique window owning it."""
        assignments: list[list[Track]] = [[] for _ in windows]
        stride = windows[0].length // 2 if windows else 1
        for track in tracks:
            if not track.observations:
                continue
            c = track.first_frame // stride
            if c >= len(windows):
                c = len(windows) - 1
            if not windows[c].owns_track(track):
                raise AssertionError(
                    f"track {track.track_id} (first frame "
                    f"{track.first_frame}) not owned by computed window {c}"
                )
            assignments[c].append(track)
        for bucket in assignments:
            bucket.sort(key=lambda t: (t.first_frame, t.track_id))
        return cls(windows=windows, assignments=assignments)

    def tracks_of(self, window_index: int) -> list[Track]:
        """``T_c`` for window ``window_index``."""
        return self.assignments[window_index]

    def previous_tracks_of(self, window_index: int) -> list[Track]:
        """``T_{c-1}``, or an empty list for the first window."""
        if window_index == 0:
            return []
        return self.assignments[window_index - 1]
