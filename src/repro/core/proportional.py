"""The PS competitor: per-pair stratified proportional sampling (§V-B).

Each track pair is a stratum; PS evaluates a *fixed proportion* η of its
BBox pairs, chosen uniformly without replacement, and ranks pairs by the
resulting mean.  Spending is uniform across pairs — precisely the behaviour
TMerge's adaptive allocation improves on.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.pairs import TrackPair
from repro.core.results import MergeResult, top_k_count
from repro.core.scores import PairScoreEstimate
from repro.reid import ReidScorer, normalize_distance


class ProportionalMerger:
    """Uniform stratified sampling over every pair.

    Args:
        eta: fraction of each pair's BBox pairs to evaluate (at least one
            BBox pair is always drawn).
        k: the fraction K of pairs to return as candidates.
        batch_size: when set, run as PS-B with simulated GPU batching.
        seed: RNG seed for the sampling draws.
        reuse_features: enable TMerge's feature-reuse cache for PS too.
            Off by default — the paper's PS extracts per draw (§V-B); the
            cached variant exists as an ablation of the cache's impact.
    """

    def __init__(
        self,
        eta: float = 0.01,
        k: float = 0.05,
        batch_size: int | None = None,
        seed: int = 0,
        reuse_features: bool = False,
    ) -> None:
        if not 0.0 < eta <= 1.0:
            raise ValueError("eta must be in (0, 1]")
        if not 0.0 <= k <= 1.0:
            raise ValueError("k must be in [0, 1]")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.eta = eta
        self.k = k
        self.batch_size = batch_size
        self.seed = seed
        self.reuse_features = reuse_features

    @property
    def name(self) -> str:
        """Algorithm display name (``PS`` / ``PS-B<size>``)."""
        return "PS" if self.batch_size is None else f"PS-B{self.batch_size}"

    def _sample_counts(self, pair: TrackPair) -> int:
        return max(1, math.ceil(self.eta * pair.n_bbox_pairs))

    def run(self, pairs: list[TrackPair], scorer: ReidScorer) -> MergeResult:
        """Estimate every pair's score from an η-fraction sample."""
        rng = np.random.default_rng(self.seed)
        start_seconds = scorer.cost.seconds
        estimates = {pair.key: PairScoreEstimate() for pair in pairs}
        total_draws = 0

        if self.batch_size is None:
            evaluate = (
                scorer.distance if self.reuse_features else scorer.distance_fresh
            )
            for pair in pairs:
                for ia, ib in pair.sample_bbox_pairs(
                    self._sample_counts(pair), rng
                ):
                    distance = evaluate(pair.track_a, ia, pair.track_b, ib)
                    estimates[pair.key].record(normalize_distance(distance))
                    total_draws += 1
        else:
            requests = []
            owners = []
            for pair in pairs:
                for ia, ib in pair.sample_bbox_pairs(
                    self._sample_counts(pair), rng
                ):
                    requests.append((pair.track_a, ia, pair.track_b, ib))
                    owners.append(pair.key)
            if self.reuse_features:
                distances = scorer.distances_batched(
                    requests, batch_size=self.batch_size
                )
            else:
                distances = scorer.distances_batched_fresh(
                    requests, batch_size=self.batch_size
                )
            for key, distance in zip(owners, distances):
                estimates[key].record(normalize_distance(distance))
            total_draws = len(requests)

        scores = {key: est.mean for key, est in estimates.items()}
        budget = top_k_count(len(pairs), self.k)
        ranked = sorted(pairs, key=lambda p: (scores[p.key], p.key))
        return MergeResult(
            method=self.name,
            candidates=ranked[:budget],
            scores=scores,
            n_pairs=len(pairs),
            k=self.k,
            simulated_seconds=scorer.cost.seconds - start_seconds,
            iterations=total_draws,
            extra={"eta": self.eta},
        )
