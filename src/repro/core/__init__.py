"""The paper's contribution: polyonymous-pair identification and merging.

Layout mirrors the paper:

* :mod:`repro.core.windows` — §II: half-overlapping windows, the track sets
  ``T_c`` and the candidate pair sets ``P_c`` (Eq. 1).
* :mod:`repro.core.pairs` — track pairs, BBox-pair sampling without
  replacement, the spatial distance ``DisS`` (§IV-C).
* :mod:`repro.core.scores` — Definition 3.1 scores and running estimates.
* :mod:`repro.core.baseline` — Algorithm 1 (BL / BL-B).
* :mod:`repro.core.proportional` — the PS / PS-B competitor.
* :mod:`repro.core.lcb` — the LCB / LCB-B competitor.
* :mod:`repro.core.beta_init` — Algorithm 3 (BetaInit).
* :mod:`repro.core.ulb` — Algorithm 4 (ULB pruning).
* :mod:`repro.core.tmerge` — Algorithm 2 (TMerge / TMerge-B).
* :mod:`repro.core.merge` — applying identified pairs: union-find relabel.
* :mod:`repro.core.pipeline` — end-to-end ingestion.
"""

from repro.core.windows import Window, partition_windows, WindowedTracks
from repro.core.pairs import TrackPair, build_track_pairs, spatial_distance
from repro.core.scores import exact_pair_score, PairScoreEstimate
from repro.core.results import MergeResult
from repro.core.baseline import BaselineMerger
from repro.core.proportional import ProportionalMerger
from repro.core.lcb import LcbMerger
from repro.core.beta_init import beta_init
from repro.core.ulb import UlbPruner
from repro.core.tmerge import TMerge
from repro.core.epsilon import EpsilonGreedyMerger
from repro.core.merge import merge_tracks, UnionFind
from repro.core.pipeline import (
    IngestionPipeline,
    IngestionResult,
    merger_with_batch_size,
    run_resilient_window,
)

__all__ = [
    "Window",
    "partition_windows",
    "WindowedTracks",
    "TrackPair",
    "build_track_pairs",
    "spatial_distance",
    "exact_pair_score",
    "PairScoreEstimate",
    "MergeResult",
    "BaselineMerger",
    "ProportionalMerger",
    "LcbMerger",
    "beta_init",
    "UlbPruner",
    "TMerge",
    "EpsilonGreedyMerger",
    "merge_tracks",
    "UnionFind",
    "IngestionPipeline",
    "IngestionResult",
    "merger_with_batch_size",
    "run_resilient_window",
]
