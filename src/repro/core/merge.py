"""Applying identified polyonymous pairs: union-find track merging.

Once the candidate pairs are confirmed (automatically, or after the paper's
optional human inspection step), every connected component of the "same
object" relation collapses into a single track carrying one TID.  The
merged track's observations are the union of its fragments' observations in
frame order; on the rare frame where two fragments overlap, the observation
of the longer fragment wins.
"""

from __future__ import annotations

from repro.core.pairs import PairKey
from repro.track.base import Track, TrackObservation


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self, elements: list[int] | None = None) -> None:
        self._parent: dict[int, int] = {}
        self._size: dict[int, int] = {}
        for element in elements or []:
            self.add(element)

    def add(self, element: int) -> None:
        """Register ``element`` as its own singleton set if unseen."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1

    def find(self, element: int) -> int:
        """Representative of ``element``'s component (path-compressed)."""
        if element not in self._parent:
            raise KeyError(f"unknown element {element}")
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the components of ``a`` and ``b``; returns the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def components(self) -> dict[int, list[int]]:
        """Mapping root → sorted members."""
        groups: dict[int, list[int]] = {}
        for element in self._parent:
            groups.setdefault(self.find(element), []).append(element)
        for members in groups.values():
            members.sort()
        return groups


def merge_tracks(
    tracks: list[Track], merge_pairs: list[PairKey]
) -> tuple[list[Track], dict[int, int]]:
    """Merge tracks connected by ``merge_pairs``.

    Args:
        tracks: all tracks of the video (TIDs unique).
        merge_pairs: ``(tid_a, tid_b)`` pairs confirmed polyonymous.

    Returns:
        ``(merged_tracks, id_map)`` where ``id_map`` sends every original
        TID to its merged track's TID (the smallest TID of its component).
    """
    by_id = {track.track_id: track for track in tracks}
    if len(by_id) != len(tracks):
        raise ValueError("duplicate track ids")

    dsu = UnionFind(list(by_id))
    for tid_a, tid_b in merge_pairs:
        if tid_a not in by_id or tid_b not in by_id:
            raise KeyError(f"merge pair ({tid_a}, {tid_b}) references "
                           "an unknown track")
        dsu.union(tid_a, tid_b)

    merged: list[Track] = []
    id_map: dict[int, int] = {}
    for root, members in dsu.components().items():
        new_id = min(members)
        for member in members:
            id_map[member] = new_id
        if len(members) == 1:
            merged.append(by_id[members[0]])
            continue

        # Gather observations; prefer the longest fragment on frame clashes.
        fragments = sorted(
            (by_id[m] for m in members), key=len, reverse=True
        )
        chosen: dict[int, TrackObservation] = {}
        for fragment in fragments:
            for obs in fragment.observations:
                chosen.setdefault(obs.frame, obs)
        combined = Track(new_id)
        for frame in sorted(chosen):
            combined.append(frame, chosen[frame].detection)
        merged.append(combined)

    merged.sort(key=lambda t: (t.first_frame, t.track_id))
    return merged, id_map
