"""Track pairs: the arms of the bandit.

A :class:`TrackPair` wraps two tracks and supports uniform sampling of BBox
index pairs *without replacement* — the per-iteration draw of Algorithm 2
line 7.  The pair also knows its spatial distance ``DisS`` (Algorithm 3's
prior signal): the Euclidean distance between the center of the
chronologically earlier track's last BBox and the later track's first BBox.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry import center_distance
from repro.track.base import Track

PairKey = tuple[int, int]


def spatial_distance(track_a: Track, track_b: Track) -> float:
    """The paper's ``DisS``: distance from the earlier track's exit point to
    the later track's entry point.

    Ordering is chronological by first frame so the measure captures the
    "object vanished here, reappeared there" geometry of fragmentation.
    """
    earlier, later = (
        (track_a, track_b)
        if track_a.first_frame <= track_b.first_frame
        else (track_b, track_a)
    )
    return center_distance(
        earlier.observations[-1].bbox, later.observations[0].bbox
    )


@dataclass
class TrackPair:
    """An unordered candidate pair ``p_{i,j}`` of distinct tracks.

    Attributes:
        track_a: the track with the smaller TID.
        track_b: the track with the larger TID.
    """

    track_a: Track
    track_b: Track
    _sampled: set[int] = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        if self.track_a.track_id == self.track_b.track_id:
            raise ValueError("a track cannot pair with itself")
        if self.track_a.track_id > self.track_b.track_id:
            self.track_a, self.track_b = self.track_b, self.track_a
        if not self.track_a.observations or not self.track_b.observations:
            raise ValueError("track pairs require non-empty tracks")

    @property
    def key(self) -> PairKey:
        """Canonical ``(smaller TID, larger TID)`` identifier."""
        return (self.track_a.track_id, self.track_b.track_id)

    @property
    def n_bbox_pairs(self) -> int:
        """``|B_{t_i} × B_{t_j}|`` — the arm's total sample budget."""
        return len(self.track_a) * len(self.track_b)

    @property
    def n_sampled(self) -> int:
        """How many distinct BBox pairs have been drawn so far."""
        return len(self._sampled)

    @property
    def exhausted(self) -> bool:
        """True when every BBox pair has been sampled (score is exact)."""
        return len(self._sampled) >= self.n_bbox_pairs

    @property
    def spatial_distance(self) -> float:
        """The pair's ``DisS`` (Algorithm 3's prior signal)."""
        return spatial_distance(self.track_a, self.track_b)

    def all_bbox_index_pairs(self) -> list[tuple[int, int]]:
        """Every ``(index_a, index_b)`` — the baseline's full enumeration."""
        return [
            (ia, ib)
            for ia in range(len(self.track_a))
            for ib in range(len(self.track_b))
        ]

    def _flat_to_indices(self, flat: int) -> tuple[int, int]:
        return divmod(flat, len(self.track_b))

    def sample_bbox_pair(
        self, rng: np.random.Generator
    ) -> tuple[int, int]:
        """Draw one not-yet-seen ``(index_a, index_b)`` uniformly.

        Uses rejection sampling while the pool is mostly fresh and falls
        back to enumerating the remaining flat indices when it is nearly
        exhausted, keeping each draw O(1) amortized.

        Raises:
            RuntimeError: when the pair is exhausted.
        """
        total = self.n_bbox_pairs
        if len(self._sampled) >= total:
            raise RuntimeError(f"pair {self.key} exhausted")
        if len(self._sampled) < total * 0.75:
            while True:
                flat = int(rng.integers(0, total))
                if flat not in self._sampled:
                    break
        else:
            remaining = [f for f in range(total) if f not in self._sampled]
            flat = int(remaining[rng.integers(0, len(remaining))])
        self._sampled.add(flat)
        return self._flat_to_indices(flat)

    def sample_bbox_pairs(
        self, count: int, rng: np.random.Generator
    ) -> list[tuple[int, int]]:
        """Draw up to ``count`` fresh BBox index pairs (without replacement).

        Returns fewer when the pool runs dry; never raises.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        drawn = []
        while len(drawn) < count and not self.exhausted:
            drawn.append(self.sample_bbox_pair(rng))
        return drawn

    def reset_sampling(self) -> None:
        """Forget sampling history (used when re-running algorithms on the
        same pair objects)."""
        self._sampled.clear()

    def sampled_state(self) -> list[int]:
        """Sorted flat indices drawn so far (JSON-able checkpoint form)."""
        return sorted(self._sampled)

    def restore_sampled(self, flat_indices: list[int]) -> None:
        """Overwrite sampling history with a :meth:`sampled_state` capture."""
        self._sampled = {int(f) for f in flat_indices}


def build_track_pairs(
    current: list[Track], previous: list[Track] | None = None
) -> list[TrackPair]:
    """Construct ``P_c`` per Eq. 1.

    Pairs every track in ``current`` (``T_c``) with every *other* track in
    ``current ∪ previous``; each unordered pair appears once.

    Args:
        current: ``T_c`` — tracks owned by the window being processed.
        previous: ``T_{c-1}`` — tracks owned by the preceding window.
    """
    previous = previous or []
    current_ids = {t.track_id for t in current}
    if len(current_ids) != len(current):
        raise ValueError("duplicate track ids in current window")
    overlap = current_ids & {t.track_id for t in previous}
    if overlap:
        raise ValueError(f"track ids shared across windows: {sorted(overlap)}")

    pairs: list[TrackPair] = []
    for i, track_i in enumerate(current):
        for track_j in current[i + 1:]:
            pairs.append(TrackPair(track_i, track_j))
        for track_j in previous:
            pairs.append(TrackPair(track_i, track_j))
    return pairs
