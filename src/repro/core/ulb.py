"""Algorithm 4 — ULB: Hoeffding-bound pruning of track pairs.

After τ iterations, each sampled pair carries a confidence interval
``[s̃′ − U, s̃′ + U]`` with ``U = sqrt(2 log τ / n)`` around its running
score estimate (Hoeffding; the true score leaves the interval with
probability < 2/τ⁴).  A pair whose *upper* bound undercuts all but at most
⌈K·|P_c|⌉ − 1 other pairs' lower bounds is certainly inside the top-K
(accepted); a pair whose *lower* bound exceeds at least ⌈K·|P_c|⌉ other
pairs' upper bounds is certainly outside (rejected).  Either way it stops
being sampled.
"""

from __future__ import annotations

import numpy as np

from repro import contracts
from repro.bandit.confidence import hoeffding_radii
from repro.provenance import EVENT_ULB, DecisionLedger
from repro.telemetry import Telemetry


class UlbPruner:
    """Incremental pruning state over a fixed arm set.

    Args:
        n_arms: number of track pairs.
        k_count: the candidate budget ⌈K·|P_c|⌉.
        radius_scale: multiplier on the Hoeffding radius.  1.0 is the
            paper's exact formula, which assumes observations span the full
            [0, 1] range; it is extremely conservative when the normalized
            distances concentrate in a sub-range (their empirical std is
            ≈ 0.15 here), to the point of never pruning at realistic pull
            counts.  Values < 1 correspond to a sub-gaussian radius with
            σ = radius_scale (an empirical-Bernstein-style tightening) and
            make the mechanism observable; the Figure 8 ablation uses this.
        telemetry: optional injected :class:`~repro.telemetry.Telemetry`
            mirroring prune verdicts into the ``ulb.passes`` /
            ``ulb.accepted`` / ``ulb.rejected`` counters.
        ledger: optional injected
            :class:`~repro.provenance.DecisionLedger` recording one
            ``ulb`` event per pass that changed the partition (newly
            accepted/rejected arms with the Hoeffding radii in force).
            Pure observation — never affects pruning decisions.
    """

    def __init__(
        self,
        n_arms: int,
        k_count: int,
        radius_scale: float = 1.0,
        telemetry: Telemetry | None = None,
        ledger: DecisionLedger | None = None,
    ) -> None:
        if n_arms < 0:
            raise ValueError("n_arms must be non-negative")
        if k_count < 0:
            raise ValueError("k_count must be non-negative")
        if radius_scale <= 0:
            raise ValueError("radius_scale must be positive")
        self.n_arms = n_arms
        self.k_count = k_count
        self.radius_scale = radius_scale
        self.telemetry = telemetry
        self.ledger = ledger
        self.accepted: set[int] = set()
        self.rejected: set[int] = set()
        #: Non-finite running means clamped by :meth:`update` (only ever
        #: non-zero when corrupted distances slip past the scorer layer).
        self.n_nonfinite_clamped = 0

    @property
    def pruned(self) -> set[int]:
        """The paper's ``P_skip``: all arms removed from sampling."""
        return self.accepted | self.rejected

    def state_dict(self) -> dict:
        """Restorable pruning state (for window checkpoints)."""
        return {
            "accepted": sorted(self.accepted),
            "rejected": sorted(self.rejected),
            "n_nonfinite_clamped": self.n_nonfinite_clamped,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a state captured by :meth:`state_dict`."""
        self.accepted = {int(a) for a in state["accepted"]}
        self.rejected = {int(a) for a in state["rejected"]}
        self.n_nonfinite_clamped = int(state["n_nonfinite_clamped"])

    def update(
        self,
        means: np.ndarray,
        pulls: np.ndarray,
        total_rounds: int,
    ) -> tuple[set[int], set[int]]:
        """Run one pruning pass.

        Args:
            means: running score estimates s̃′ per arm (length ``n_arms``).
            pulls: sample counts n per arm.
            total_rounds: the current iteration count τ.

        Returns:
            ``(newly_accepted, newly_rejected)`` arm indices.
        """
        if self.n_arms == 0 or self.k_count == 0:
            return set(), set()
        means = np.asarray(means, dtype=np.float64)
        pulled = np.asarray(pulls) > 0
        bad = pulled & ~np.isfinite(means)
        if np.any(bad):
            # Corrupted evidence must not steer the bounds: raise under
            # runtime contracts, otherwise treat the arm as maximally
            # distant (mean 1.0) and count the clamp.
            if contracts.ENABLED:
                raise contracts.ContractViolation(
                    f"UlbPruner: non-finite running means at arms "
                    f"{np.nonzero(bad)[0].tolist()}"
                )
            self.n_nonfinite_clamped += int(bad.sum())
            if self.telemetry is not None:
                self.telemetry.count(
                    "ulb.nonfinite_clamped", int(bad.sum())
                )
            means = np.where(bad, 1.0, means)
        radii = self.radius_scale * hoeffding_radii(total_rounds, pulls)
        uppers = means + radii
        lowers = means - radii

        # Unsampled arms carry infinite radius: their lower bound (−inf)
        # keeps them counted as potential rivals of every other arm, and
        # their upper bound (+inf) keeps them from ever looking beaten.
        finite = np.isfinite(radii)
        sorted_lowers = np.sort(lowers)  # −inf entries sort first
        sorted_uppers = np.sort(uppers)  # +inf entries sort last

        consider = finite.copy()
        already = self.pruned
        if already:
            consider[list(already)] = False
        # Accept: at most k_count − 1 *other* arms might beat this one,
        # i.e. have a lower bound below this arm's upper bound.  The −1
        # discounts the arm's own (finite) lower bound, always < its
        # upper bound.  One vectorized searchsorted covers every arm.
        rivals_below = (
            np.searchsorted(sorted_lowers, uppers, side="left") - 1
        )
        accept = consider & (rivals_below <= self.k_count - 1)
        # Reject: at least k_count other arms are certainly better, i.e.
        # have an upper bound below this arm's lower bound.  Acceptance
        # takes precedence, exactly as in the per-arm formulation.
        certainly_better = np.searchsorted(sorted_uppers, lowers, side="left")
        reject = consider & ~accept & (certainly_better >= self.k_count)

        newly_accepted: set[int] = {
            int(arm) for arm in np.nonzero(accept)[0]
        }
        newly_rejected: set[int] = {
            int(arm) for arm in np.nonzero(reject)[0]
        }

        # Acceptance capacity: never accept more arms than the budget.
        room = self.k_count - len(self.accepted)
        if len(newly_accepted) > room:
            # Keep the arms with the smallest estimated scores.
            keep = sorted(newly_accepted, key=lambda a: means[a])[:room]
            newly_accepted = set(keep)

        self.accepted |= newly_accepted
        self.rejected |= newly_rejected
        if self.ledger is not None and (newly_accepted or newly_rejected):
            changed = sorted(newly_accepted | newly_rejected)
            self.ledger.record(
                EVENT_ULB,
                tau=int(total_rounds),
                accepted=sorted(newly_accepted),
                rejected=sorted(newly_rejected),
                radius={str(arm): float(radii[arm]) for arm in changed},
                k_count=self.k_count,
            )
        if self.telemetry is not None:
            self.telemetry.count("ulb.passes")
            if newly_accepted:
                self.telemetry.count("ulb.accepted", len(newly_accepted))
            if newly_rejected:
                self.telemetry.count("ulb.rejected", len(newly_rejected))
        if contracts.ENABLED:
            contracts.check_ulb_partition(
                self.accepted, self.rejected, self.n_arms, where="UlbPruner"
            )
        return newly_accepted, newly_rejected
