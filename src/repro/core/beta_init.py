"""Algorithm 3 — BetaInit: spatially-informed Beta priors.

Polyonymous fragments are geometrically adjacent: the object vanished at
one point and reappeared nearby, so the pair's spatial distance ``DisS``
(last BBox of the earlier track → first BBox of the later track) correlates
with the true pair score.  BetaInit starts every pair at ``Be(1, 1)`` and
lowers the prior mean to ``Be(1, 2)`` (mean ⅓) for pairs with
``DisS < thr_S``, biasing the first Thompson draws toward spatial neighbours.
"""

from __future__ import annotations

import numpy as np

from repro.core.pairs import TrackPair


def beta_init(
    pairs: list[TrackPair], thr_s: float | None
) -> tuple[np.ndarray, np.ndarray]:
    """Initial Beta shape parameters ``(S, F)`` for every pair.

    Args:
        pairs: the window's candidate pairs, in arm order.
        thr_s: the spatial threshold ``thr_S`` in pixels; ``None`` disables
            BetaInit entirely (uniform ``Be(1, 1)`` priors — the ablation
            arm of Figure 8).

    Returns:
        Two float arrays of shape ``(len(pairs),)``: successes ``S`` and
        failures ``F``.
    """
    n = len(pairs)
    successes = np.ones(n, dtype=np.float64)
    failures = np.ones(n, dtype=np.float64)
    if thr_s is None:
        return successes, failures
    if thr_s < 0:
        raise ValueError("thr_s must be non-negative")
    for index, pair in enumerate(pairs):
        if pair.spatial_distance < thr_s:
            failures[index] += 1.0
    return successes, failures
