"""Simulated cost accounting for ReID invocations.

The paper reports runtime and FPS dominated by ReID model inference on a
TITAN Xp GPU.  We reproduce the *cost structure* rather than the hardware:
every feature extraction and distance evaluation charges simulated
milliseconds to a :class:`CostModel`, and batched execution amortizes a
fixed launch overhead over the batch (``t(B) = t_launch + B · t_item``).

Default parameters are calibrated to the paper's §I anchor: a MOT-17 video
with ~11.9k BBoxes and ~8.7M BBox pairs takes the brute-force baseline
"more than 3 minutes" — with 5 ms per extraction and 14 µs per distance,
11.9k × 5 ms + 8.7M × 14 µs ≈ 181 s.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostParams:
    """Simulated timing constants, all in milliseconds.

    Attributes:
        extract_ms: one unbatched ReID forward pass (one BBox crop).
        batch_launch_ms: fixed overhead of one batched ReID call.
        batch_item_ms: marginal per-crop cost inside a batched call.
        distance_ms: one feature-pair Euclidean distance on the CPU.
        overhead_ms: bookkeeping charged per algorithm iteration (sampling,
            posterior updates); keeps non-ReID work from being free.
    """

    extract_ms: float = 5.0
    batch_launch_ms: float = 4.0
    batch_item_ms: float = 0.45
    distance_ms: float = 0.014
    overhead_ms: float = 0.02

    def __post_init__(self) -> None:
        for name in (
            "extract_ms",
            "batch_launch_ms",
            "batch_item_ms",
            "distance_ms",
            "overhead_ms",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class CostModel:
    """Accumulates simulated time and invocation counts.

    All figures that report FPS or runtime read :attr:`seconds` from this
    clock; pytest-benchmark separately measures real wall time of the
    algorithm bodies.

    When a :class:`~repro.telemetry.Telemetry` is injected, every charge
    is mirrored into its counters (``reid.invocations``,
    ``reid.distances``, ``cost.simulated_ms``, …).  Telemetry counters
    are observability, not simulation state: checkpoint restores rewind
    the clock but never the counters, so a replayed window's ReID calls
    are counted again — exactly what a cost dashboard should show.
    """

    def __init__(
        self, params: CostParams | None = None, telemetry=None
    ) -> None:
        self.params = params or CostParams()
        #: Injected :class:`~repro.telemetry.Telemetry`, or ``None``.
        self.telemetry = telemetry
        self.reset()

    def reset(self) -> None:
        """Zero the clock and all counters."""
        self._ms = 0.0
        self.n_extractions = 0
        self.n_batched_extractions = 0
        self.n_batch_calls = 0
        self.n_distances = 0
        self.n_overheads = 0
        self.n_waits = 0
        self.wait_ms = 0.0

    @property
    def seconds(self) -> float:
        """Simulated elapsed seconds."""
        return self._ms / 1000.0

    @property
    def milliseconds(self) -> float:
        """Simulated elapsed milliseconds."""
        return self._ms

    def _record(self, ms: float, counter: str, amount: float) -> None:
        """Mirror one charge into the injected telemetry, if any."""
        if self.telemetry is None:
            return
        self.telemetry.count("cost.simulated_ms", ms)
        self.telemetry.count(counter, amount)

    def charge_extract(self, count: int = 1) -> None:
        """Charge ``count`` unbatched feature extractions."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.n_extractions += count
        self._ms += count * self.params.extract_ms
        self._record(
            count * self.params.extract_ms, "reid.invocations", count
        )

    def charge_extract_batched(self, count: int, batch_size: int) -> None:
        """Charge ``count`` extractions executed in batches of ``batch_size``.

        Each full or partial batch pays the launch overhead once plus the
        per-item cost; this is the amortization that makes the -B variants
        fast (§IV-F).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if count == 0:
            return
        n_calls = -(-count // batch_size)  # ceil division
        self.n_batched_extractions += count
        self.n_batch_calls += n_calls
        charged = (
            n_calls * self.params.batch_launch_ms
            + count * self.params.batch_item_ms
        )
        self._ms += charged
        self._record(charged, "reid.invocations", count)
        if self.telemetry is not None:
            self.telemetry.count("reid.batch_calls", n_calls)

    def charge_distance(self, count: int = 1) -> None:
        """Charge ``count`` feature-pair distance evaluations."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.n_distances += count
        self._ms += count * self.params.distance_ms
        self._record(
            count * self.params.distance_ms, "reid.distances", count
        )

    def charge_overhead(self, count: int = 1) -> None:
        """Charge ``count`` iterations of algorithm bookkeeping."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.n_overheads += count
        self._ms += count * self.params.overhead_ms
        self._record(
            count * self.params.overhead_ms, "cost.overheads", count
        )

    def charge_wait(self, ms: float) -> None:
        """Charge ``ms`` of simulated waiting (retry backoff, timeouts).

        The resilience layer accrues every backoff sleep and timeout
        penalty here, so resilience overhead shows up in the same
        simulated seconds every figure reports — never in wall time.
        """
        if ms < 0:
            raise ValueError("ms must be non-negative")
        self.n_waits += 1
        self.wait_ms += ms
        self._ms += ms
        self._record(ms, "resilience.wait_ms", ms)

    def state_dict(self) -> dict[str, float]:
        """Complete, restorable clock state (for window checkpoints)."""
        return {
            "ms": self._ms,
            "n_extractions": self.n_extractions,
            "n_batched_extractions": self.n_batched_extractions,
            "n_batch_calls": self.n_batch_calls,
            "n_distances": self.n_distances,
            "n_overheads": self.n_overheads,
            "n_waits": self.n_waits,
            "wait_ms": self.wait_ms,
        }

    def merge_state(self, state: dict[str, float]) -> None:
        """Add another clock's :meth:`state_dict` into this one.

        Used by the parallel engine (:mod:`repro.parallel`) to fold
        window-local clocks into the run-level clock in window-index
        order, so the aggregate is worker-count independent.  Pure
        accumulation — nothing is mirrored into telemetry (the worker
        counters already carried every per-charge record).
        """
        self._ms += float(state["ms"])
        self.n_extractions += int(state["n_extractions"])
        self.n_batched_extractions += int(state["n_batched_extractions"])
        self.n_batch_calls += int(state["n_batch_calls"])
        self.n_distances += int(state["n_distances"])
        self.n_overheads += int(state["n_overheads"])
        self.n_waits += int(state["n_waits"])
        self.wait_ms += float(state["wait_ms"])

    def load_state_dict(self, state: dict[str, float]) -> None:
        """Restore a state captured by :meth:`state_dict`."""
        self._ms = float(state["ms"])
        self.n_extractions = int(state["n_extractions"])
        self.n_batched_extractions = int(state["n_batched_extractions"])
        self.n_batch_calls = int(state["n_batch_calls"])
        self.n_distances = int(state["n_distances"])
        self.n_overheads = int(state["n_overheads"])
        self.n_waits = int(state["n_waits"])
        self.wait_ms = float(state["wait_ms"])

    def snapshot(self) -> dict[str, float]:
        """Current counters, for reporting."""
        return {
            "seconds": self.seconds,
            "extractions": float(self.n_extractions),
            "batched_extractions": float(self.n_batched_extractions),
            "batch_calls": float(self.n_batch_calls),
            "distances": float(self.n_distances),
            "waits": float(self.n_waits),
            "wait_ms": self.wait_ms,
        }
