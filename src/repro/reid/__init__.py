"""Simulated Re-Identification (ReID) model, feature cache and cost model.

The paper's algorithms treat the ReID model as an expensive oracle: feed it
a BBox crop, get a feature vector whose Euclidean distance to another crop's
vector is small iff the crops show the same object.  This package provides:

* :class:`SimReIDModel` — features = object latent + condition-dependent
  noise, L2-normalized.  Distances of same-object pairs concentrate well
  below different-object pairs, with overlap driven by occlusion noise.
* :class:`CostModel` — a simulated wall clock charging per ReID invocation,
  with a batch law ``t(B) = t_launch + B · t_item`` standing in for GPU
  batching (§IV-F).
* :class:`FeatureCache` — memoization of extracted features, enabling the
  paper's feature-reuse optimization (§IV-B).
* :class:`ReidScorer` — the facade the merging algorithms use: BBox-pair
  distances (single or batched) with caching and cost accounting.
"""

from repro.reid.cost import CostModel, CostParams
from repro.reid.model import ReidParams, SimReIDModel
from repro.reid.scorer import FeatureCache, ReidScorer, normalize_distance
from repro.reid.sequence import SequenceReidScorer

__all__ = [
    "CostModel",
    "CostParams",
    "ReidParams",
    "SimReIDModel",
    "FeatureCache",
    "ReidScorer",
    "SequenceReidScorer",
    "normalize_distance",
]
