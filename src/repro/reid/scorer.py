"""Feature caching and BBox-pair distance scoring.

:class:`ReidScorer` is the single gateway through which every merging
algorithm (BL, PS, LCB, TMerge and their batched variants) touches the ReID
model.  It provides:

* memoized feature extraction (the paper's feature-reuse optimization —
  "if either of the BBoxes' feature vectors has been extracted in previous
  iterations it can be reused", §IV-B);
* cost accounting on the shared :class:`~repro.reid.cost.CostModel`;
* batched execution for the ``-B`` variants, where a batch of BBox pairs is
  evaluated per simulated GPU call (§IV-F).

Distances are Euclidean between unit-norm features, hence in ``[0, 2]``;
:func:`normalize_distance` maps them to ``[0, 1]`` with the exact bound, so
normalization is stream-safe (no data-dependent max).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

import numpy as np

from repro import contracts
from repro.reid.cost import CostModel
from repro.reid.model import SimReIDModel
from repro.telemetry import Telemetry, profiled
from repro.track.base import Track

# Unit-norm features make 2.0 the exact supremum of Euclidean distances.
_MAX_DISTANCE = 2.0

FeatureKey = tuple[int, int]  # (track_id, observation index)


def normalize_distance(distance: float) -> float:
    """Map a raw feature distance in [0, 2] to the paper's d̃ ∈ [0, 1]."""
    return float(np.clip(distance / _MAX_DISTANCE, 0.0, 1.0))


def normalize_distances(distances: list[float]) -> np.ndarray:
    """Vectorized :func:`normalize_distance` over a batch of distances.

    Elementwise bit-identical to the scalar function (same IEEE divide
    and clip), so batched and scalar paths interleave freely.
    """
    return np.clip(
        np.asarray(distances, dtype=np.float64) / _MAX_DISTANCE, 0.0, 1.0
    )


class FeatureCache:
    """Memoized per-BBox features, keyed by ``(track_id, obs_index)``.

    Track IDs must be unique within the scorer's scope (one tracker run);
    the pipeline guarantees this by renumbering TIDs densely per video.

    Args:
        max_entries: optional capacity bound.  When set, the cache evicts
            its least-recently-used entry on overflow (long videos no
            longer grow feature memory without bound); when ``None`` the
            cache is unbounded and insertion-ordered, exactly as before.
        telemetry: optional :class:`~repro.telemetry.Telemetry` mirroring
            the hit/miss/eviction counters (``cache.hits`` …).
    """

    def __init__(
        self,
        max_entries: int | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.max_entries = max_entries
        self.telemetry = telemetry
        self._features: OrderedDict[FeatureKey, np.ndarray] = OrderedDict()
        self.n_hits = 0
        self.n_misses = 0
        self.n_evictions = 0

    def __len__(self) -> int:
        return len(self._features)

    def __contains__(self, key: FeatureKey) -> bool:
        return key in self._features

    def get(self, key: FeatureKey) -> np.ndarray | None:
        """Cached feature for ``key``, or ``None`` on a miss."""
        feature = self._features.get(key)
        if feature is None:
            self.n_misses += 1
            if self.telemetry is not None:
                self.telemetry.count("cache.misses")
            return None
        self.n_hits += 1
        if self.telemetry is not None:
            self.telemetry.count("cache.hits")
        if self.max_entries is not None:
            self._features.move_to_end(key)
        return feature

    def put(self, key: FeatureKey, feature: np.ndarray) -> None:
        """Store ``feature`` under ``key``, evicting LRU on overflow."""
        if key in self._features:
            self._features[key] = feature
            if self.max_entries is not None:
                self._features.move_to_end(key)
            return
        self._features[key] = feature
        if (
            self.max_entries is not None
            and len(self._features) > self.max_entries
        ):
            self._features.popitem(last=False)
            self.n_evictions += 1
            if self.telemetry is not None:
                self.telemetry.count("cache.evictions")

    def discard(self, key: FeatureKey) -> bool:
        """Drop ``key`` if cached; return whether an entry was removed."""
        return self._features.pop(key, None) is not None

    def clear(self) -> None:
        """Drop all cached features (counters are kept)."""
        self._features.clear()

    def items(self) -> Iterator[tuple[FeatureKey, np.ndarray]]:
        """Iterate ``(key, feature)`` pairs in recency (or insertion) order."""
        return iter(self._features.items())

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current occupancy."""
        return {
            "hits": self.n_hits,
            "misses": self.n_misses,
            "evictions": self.n_evictions,
            "entries": len(self._features),
            "max_entries": (
                -1 if self.max_entries is None else self.max_entries
            ),
        }


class ReidScorer:
    """BBox-pair distance oracle with caching and cost accounting.

    Args:
        model: the feature extractor.
        cost: the simulated clock to charge.
        cache: optional shared cache (one per video lets feature reuse span
            windows, as in the paper's streaming setting).
        telemetry: observability sink.  When ``None`` the scorer creates a
            private :class:`~repro.telemetry.Telemetry` (instance-scoped —
            never a module singleton, see REPRO010) so its own counters
            always have somewhere to live; run owners inject a shared one
            to aggregate across components.  Either way it is propagated
            to the cost model and cache unless those already carry one.
    """

    def __init__(
        self,
        model: SimReIDModel,
        cost: CostModel | None = None,
        cache: FeatureCache | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.model = model
        self.cost = cost or CostModel()
        # Not `cache or ...`: an empty FeatureCache is falsy (len 0).
        self.cache = cache if cache is not None else FeatureCache()
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry()
        )
        self.telemetry.bind_clock(self.cost)
        if self.cost.telemetry is None:
            self.cost.telemetry = self.telemetry
        if self.cache.telemetry is None:
            self.cache.telemetry = self.telemetry

    @property
    def n_nonfinite_clamped(self) -> int:
        """Non-finite distances clamped by :meth:`_sanitize_distance`.

        Backed by the ``reid.nonfinite_clamped`` telemetry counter
        (only ever non-zero when a faulty model is injected and the
        resilience layer is not interposed).
        """
        return int(self.telemetry.metrics.value("reid.nonfinite_clamped"))

    def _sanitize_distance(self, distance: float, where: str) -> float:
        """Defend against non-finite distances from corrupted features.

        Under ``REPRO_CHECK_INVARIANTS=1`` a non-finite distance raises
        a :class:`~repro.contracts.ContractViolation`; otherwise it is
        clamped to the maximum distance (treat corrupted evidence as
        "not a match") and counted in the ``reid.nonfinite_clamped``
        telemetry counter (readable as :attr:`n_nonfinite_clamped`).
        """
        if np.isfinite(distance):
            return float(distance)
        if contracts.ENABLED:
            contracts.check_finite_distance(distance, where=where)
        self.telemetry.count("reid.nonfinite_clamped")
        return _MAX_DISTANCE

    def _sanitize_normalize_many(
        self, distances: list[float], where: str
    ) -> np.ndarray:
        """Vectorized sanitize + normalize for the batched path.

        Elementwise bit-identical to mapping :meth:`_sanitize_distance`
        then :func:`normalize_distance` over ``distances`` (same IEEE
        divide/clip; same ``reid.nonfinite_clamped`` count per clamped
        element; under runtime contracts the first non-finite raises, as
        in the scalar loop), but one numpy pass instead of a Python loop.
        """
        arr = np.asarray(distances, dtype=np.float64)
        finite = np.isfinite(arr)
        if not finite.all():
            if contracts.ENABLED:
                contracts.check_finite_distance(
                    float(arr[~finite][0]), where=where
                )
            self.telemetry.count(
                "reid.nonfinite_clamped", int((~finite).sum())
            )
            arr = np.where(finite, arr, _MAX_DISTANCE)
        return np.clip(arr / _MAX_DISTANCE, 0.0, 1.0)

    # ------------------------------------------------------------------
    # Unbatched path
    # ------------------------------------------------------------------
    def feature(self, track: Track, index: int) -> np.ndarray:
        """Feature of the ``index``-th BBox of ``track`` (cached)."""
        key = (track.track_id, index)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        detection = track.observations[index].detection
        feature = self.model.extract(detection)
        self.cost.charge_extract(1)
        self.cache.put(key, feature)
        return feature

    def distance(
        self, track_a: Track, index_a: int, track_b: Track, index_b: int
    ) -> float:
        """Raw Euclidean distance ``d(b_α, b_β)`` between two BBoxes."""
        fa = self.feature(track_a, index_a)
        fb = self.feature(track_b, index_b)
        self.cost.charge_distance(1)
        return float(np.linalg.norm(fa - fb))

    def distance_fresh(
        self, track_a: Track, index_a: int, track_b: Track, index_b: int
    ) -> float:
        """Distance with *no feature reuse*: both crops are run through the
        model again (two full forward passes are charged).

        This is how the paper's PS and LCB competitors operate — the reuse
        cache is TMerge's own optimization (§IV-B); Algorithm 1 likewise
        extracts inside the BBox-pair loop.  Cached features are neither
        read nor written, so the caller pays the true per-draw price.
        """
        fa = self.model.extract(track_a.observations[index_a].detection)
        fb = self.model.extract(track_b.observations[index_b].detection)
        self.cost.charge_extract(2)
        self.cost.charge_distance(1)
        return float(np.linalg.norm(fa - fb))

    def normalized_distance(
        self, track_a: Track, index_a: int, track_b: Track, index_b: int
    ) -> float:
        """The paper's normalized distance d̃ ∈ [0, 1].

        Non-finite raw distances (corrupted embeddings) raise under
        runtime contracts and are clamped to the maximum otherwise —
        NaN never reaches the posterior updates.
        """
        return normalize_distance(
            self._sanitize_distance(
                self.distance(track_a, index_a, track_b, index_b),
                where="ReidScorer.normalized_distance",
            )
        )

    # ------------------------------------------------------------------
    # Bulk path (exhaustive scoring, wall-clock-vectorized)
    # ------------------------------------------------------------------
    @profiled
    def track_features(
        self, track: Track, batch_size: int | None = None
    ) -> np.ndarray:
        """All features of a track as an ``(len(track), dim)`` matrix.

        Missing features are extracted and charged — singly, or with the
        batch law when ``batch_size`` is given.
        """
        keys = [(track.track_id, i) for i in range(len(track))]
        features: dict[FeatureKey, np.ndarray] = {}
        missing = []
        for i, key in enumerate(keys):
            cached = self.cache.get(key)
            if cached is None:
                missing.append(i)
            else:
                features[key] = cached
        if missing:
            if batch_size is None:
                self.cost.charge_extract(len(missing))
            else:
                self.cost.charge_extract_batched(
                    len(missing), batch_size=2 * batch_size
                )
            for i in missing:
                detection = track.observations[i].detection
                feature = self.model.extract(detection)
                self.cache.put(keys[i], feature)
                features[keys[i]] = feature
        return np.stack([features[key] for key in keys])

    @profiled
    def pair_distance_matrix(
        self,
        track_a: Track,
        track_b: Track,
        batch_size: int | None = None,
    ) -> np.ndarray:
        """All pairwise raw distances between two tracks' BBoxes.

        Semantically identical to calling :meth:`distance` on every BBox
        pair (same cache contents, same simulated cost) but vectorized for
        wall-clock speed — this is what makes the exhaustive baseline
        runnable at benchmark scale.
        """
        fa = self.track_features(track_a, batch_size)
        fb = self.track_features(track_b, batch_size)
        self.cost.charge_distance(len(track_a) * len(track_b))
        sq = (
            (fa**2).sum(axis=1)[:, None]
            + (fb**2).sum(axis=1)[None, :]
            - 2.0 * fa @ fb.T
        )
        return np.sqrt(np.clip(sq, 0.0, None))

    # ------------------------------------------------------------------
    # Batched path (the -B variants, §IV-F)
    # ------------------------------------------------------------------
    @profiled
    def distances_batched(
        self,
        requests: list[tuple[Track, int, Track, int]],
        batch_size: int,
    ) -> list[float]:
        """Evaluate many BBox-pair distances with GPU-style batching.

        All features not yet cached are extracted in batched calls of up to
        ``2 * batch_size`` crops (each of the ``batch_size`` track pairs in
        a batch contributes two crops); distances are then computed in bulk.

        Args:
            requests: ``(track_a, index_a, track_b, index_b)`` tuples.
            batch_size: the paper's 𝓑 — track pairs jointly evaluated.

        Returns:
            Raw distances aligned with ``requests``.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not requests:
            return []

        # Identify the distinct uncached features needed, keeping every
        # feature this call touches in a local map so results cannot be
        # invalidated by LRU eviction mid-call.
        features: dict[FeatureKey, np.ndarray] = {}
        needed: dict[FeatureKey, tuple[Track, int]] = {}
        for track_a, ia, track_b, ib in requests:
            for track, idx in ((track_a, ia), (track_b, ib)):
                key = (track.track_id, idx)
                if key in features or key in needed:
                    continue
                cached = self.cache.get(key)
                if cached is None:
                    needed[key] = (track, idx)
                else:
                    features[key] = cached

        self.telemetry.count("reid.batched_requests", len(requests))
        if needed:
            self.cost.charge_extract_batched(
                len(needed), batch_size=2 * batch_size
            )
            for key, (track, idx) in needed.items():
                detection = track.observations[idx].detection
                feature = self.model.extract(detection)
                self.cache.put(key, feature)
                features[key] = feature

        self.cost.charge_distance(len(requests))
        distances = []
        for track_a, ia, track_b, ib in requests:
            fa = features[(track_a.track_id, ia)]
            fb = features[(track_b.track_id, ib)]
            distances.append(float(np.linalg.norm(fa - fb)))
        return distances

    def distances_batched_fresh(
        self,
        requests: list[tuple[Track, int, Track, int]],
        batch_size: int,
    ) -> list[float]:
        """Batched distances with no feature reuse (PS-B / LCB-B).

        Every request pays two crop extractions, amortized only through the
        GPU batch law — never through the cache.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not requests:
            return []
        self.cost.charge_extract_batched(
            2 * len(requests), batch_size=2 * batch_size
        )
        self.cost.charge_distance(len(requests))
        distances = []
        for track_a, ia, track_b, ib in requests:
            fa = self.model.extract(track_a.observations[ia].detection)
            fb = self.model.extract(track_b.observations[ib].detection)
            distances.append(float(np.linalg.norm(fa - fb)))
        return distances

    def normalized_distances_batched(
        self,
        requests: list[tuple[Track, int, Track, int]],
        batch_size: int,
    ) -> list[float]:
        """Batched variant returning normalized distances d̃ ∈ [0, 1].

        Applies the same non-finite defense as :meth:`normalized_distance`,
        vectorized across the batch.
        """
        raw = self.distances_batched(requests, batch_size)
        if not raw:
            return []
        d_norms = self._sanitize_normalize_many(
            raw, where="ReidScorer.normalized_distances_batched"
        )
        return [float(d) for d in d_norms]
