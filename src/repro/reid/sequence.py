"""Sequence-input ReID (the paper's footnote 2).

Some ReID models accept *fixed-length image sequences* instead of single
crops; the paper notes its techniques "equally apply to this case".  This
module makes that concrete: :class:`SequenceReidScorer` is a drop-in
:class:`~repro.reid.scorer.ReidScorer` whose ``distance(track_a, ia,
track_b, ib)`` compares *snippets* — mean-pooled features of
``snippet_length`` consecutive crops starting at the given indices —
rather than single crops.

Because every merging algorithm talks to the scorer through the same
``distance`` interface, TMerge/PS/LCB run unmodified on sequence features:
each draw is more informative (pooling suppresses per-crop noise) but
costs up to ``snippet_length`` extractions.
"""

from __future__ import annotations

import numpy as np

from repro.reid.cost import CostModel
from repro.reid.model import SimReIDModel
from repro.reid.scorer import FeatureCache, ReidScorer
from repro.track.base import Track


class SequenceReidScorer(ReidScorer):
    """BBox-*snippet* distance oracle.

    Args:
        model: the per-crop feature extractor.
        cost: simulated clock.
        cache: per-crop feature cache (snippets share crop features).
        snippet_length: crops pooled per snippet; 1 degrades to the plain
            scorer.
    """

    def __init__(
        self,
        model: SimReIDModel,
        cost: CostModel | None = None,
        cache: FeatureCache | None = None,
        snippet_length: int = 4,
    ) -> None:
        if snippet_length < 1:
            raise ValueError("snippet_length must be >= 1")
        super().__init__(model, cost=cost, cache=cache)
        self.snippet_length = snippet_length

    def _snippet_indices(self, track: Track, start: int) -> range:
        """Crop indices of the snippet anchored at ``start`` (clamped so a
        full-length snippet fits whenever the track allows one)."""
        length = min(self.snippet_length, len(track))
        start = min(max(start, 0), len(track) - length)
        return range(start, start + length)

    def snippet_feature(self, track: Track, start: int) -> np.ndarray:
        """Mean-pooled, re-normalized feature of a snippet."""
        features = [
            self.feature(track, index)
            for index in self._snippet_indices(track, start)
        ]
        pooled = np.mean(features, axis=0)
        norm = np.linalg.norm(pooled)
        return pooled / norm if norm > 0 else pooled

    def distance(
        self, track_a: Track, index_a: int, track_b: Track, index_b: int
    ) -> float:
        """Distance between the snippets anchored at the given indices."""
        fa = self.snippet_feature(track_a, index_a)
        fb = self.snippet_feature(track_b, index_b)
        self.cost.charge_distance(1)
        return float(np.linalg.norm(fa - fb))

    def distances_batched(
        self,
        requests: list[tuple[Track, int, Track, int]],
        batch_size: int,
    ) -> list[float]:
        """Batched snippet distances (one GPU call covers the batch's
        uncached crops, as in the single-crop scorer)."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not requests:
            return []
        needed: dict[tuple[int, int], tuple[Track, int]] = {}
        for track_a, ia, track_b, ib in requests:
            for track, anchor in ((track_a, ia), (track_b, ib)):
                for index in self._snippet_indices(track, anchor):
                    key = (track.track_id, index)
                    if key not in self.cache and key not in needed:
                        needed[key] = (track, index)
        if needed:
            self.cost.charge_extract_batched(
                len(needed),
                batch_size=2 * batch_size * self.snippet_length,
            )
            for key, (track, index) in needed.items():
                detection = track.observations[index].detection
                self.cache.put(key, self.model.extract(detection))

        self.cost.charge_distance(len(requests))
        distances = []
        for track_a, ia, track_b, ib in requests:
            fa = self._pooled_from_cache(track_a, ia)
            fb = self._pooled_from_cache(track_b, ib)
            distances.append(float(np.linalg.norm(fa - fb)))
        return distances

    def _pooled_from_cache(self, track: Track, anchor: int) -> np.ndarray:
        features = [
            self.cache.get((track.track_id, index))
            for index in self._snippet_indices(track, anchor)
        ]
        pooled = np.mean(features, axis=0)
        norm = np.linalg.norm(pooled)
        return pooled / norm if norm > 0 else pooled
