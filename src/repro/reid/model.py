"""The simulated ReID model.

A real ReID network (the paper uses OSNet retrained with triplet+softmax
loss) maps BBox crops of the same object to nearby feature vectors.  Our
simulator reproduces that contract directly: each GT object carries a
unit-norm latent appearance vector, and "extracting a feature" returns the
latent perturbed by noise whose magnitude grows as visibility drops (an
occluded crop is a worse crop).  Clutter detections get their own stable
pseudo-latents so false-positive tracks look like distinct objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.detect import Detection
from repro.synth.world import VideoGroundTruth


@dataclass(frozen=True)
class ReidParams:
    """Noise characteristics of the simulated embedding.

    Attributes:
        base_noise: feature noise magnitude for a fully visible crop
            (std-dev of the additive perturbation's norm).
        occlusion_noise: additional noise magnitude at zero visibility;
            effective noise is ``base + occlusion_noise * (1 - visibility)``.
        quality_sigma: log-normal σ of the per-crop quality multiplier.
            Real ReID embeddings vary strongly with crop quality (pose,
            blur, truncation); this heavy tail is what makes a *single*
            BBox-pair distance a noisy estimate of the pair score — the
            reason uniform sampling (PS) needs many draws per pair while
            the exhaustive baseline and adaptive sampling do not.
        outlier_prob: base probability a crop is garbage (mis-cropped box,
            motion blur): its feature carries ``outlier_noise``, swamping
            the identity signal.  Garbage crops make single BBox-pair
            distances *bimodal* — a clean pair of same-object crops scores
            low, any pair touching a garbage crop scores high — which is
            the dominant source of per-draw estimation noise and the reason
            every sampling method needs many draws per contested pair.
        occlusion_outlier: extra garbage probability at zero visibility
            (occluded crops are the classic garbage source).
        outlier_noise: noise magnitude of garbage crops.
        pose_scale: magnitude of the per-crop *pose* component.  Each object
            owns a random 2-D subspace; every crop's feature is displaced
            within it by a random phase.  Because the displacement is
            low-dimensional it does **not** concentrate away like isotropic
            noise: individual BBox-pair distances genuinely scatter around
            the pair score (std ≈ ``pose_scale``), which is why single-draw
            estimates misrank pairs and uniform sampling needs many draws
            per pair.  This models viewpoint/pose variation along a track.
        dim: embedding dimensionality (must match the world's latents).
    """

    base_noise: float = 0.15
    occlusion_noise: float = 0.3
    quality_sigma: float = 0.4
    outlier_prob: float = 0.25
    occlusion_outlier: float = 0.3
    outlier_noise: float = 2.2
    pose_scale: float = 0.35
    dim: int = 64

    def __post_init__(self) -> None:
        if self.base_noise < 0 or self.occlusion_noise < 0:
            raise ValueError("noise magnitudes must be non-negative")
        if self.quality_sigma < 0:
            raise ValueError("quality_sigma must be non-negative")
        if not 0 <= self.outlier_prob <= 1:
            raise ValueError("outlier_prob must be in [0, 1]")
        if self.occlusion_outlier < 0:
            raise ValueError("occlusion_outlier must be non-negative")
        if self.outlier_noise < 0:
            raise ValueError("outlier_noise must be non-negative")
        if self.pose_scale < 0:
            raise ValueError("pose_scale must be non-negative")
        if self.dim < 2:
            raise ValueError("dim must be >= 2")


class SimReIDModel:
    """Feature extractor over a simulated world.

    Args:
        world: the GT video whose objects' latents back the features.
        params: noise configuration.
        seed: seed of the extraction noise stream — an ``int`` or a
            :class:`numpy.random.SeedSequence` substream (the parallel
            engine passes per-window children so every window's noise
            is independent of execution order).
    """

    def __init__(
        self,
        world: VideoGroundTruth,
        params: ReidParams | None = None,
        seed: int | np.random.SeedSequence = 0,
    ) -> None:
        self.params = params or ReidParams(dim=world.config.appearance_dim)
        if self.params.dim != world.config.appearance_dim:
            raise ValueError(
                "ReID dim must match the world's appearance_dim "
                f"({self.params.dim} != {world.config.appearance_dim})"
            )
        self.world = world
        self._rng = np.random.default_rng(seed)
        self._clutter_latents: dict[int, np.ndarray] = {}
        self._pose_bases: dict[int, np.ndarray] = {}

    def _pose_basis(self, object_id: int) -> np.ndarray:
        """The object's 2-D pose subspace, an orthonormal ``(2, dim)``."""
        basis = self._pose_bases.get(object_id)
        if basis is None:
            # Arithmetic seed (hash() is randomized per process).
            local = np.random.default_rng(70_003 + int(object_id) * 104_729)
            raw = local.normal(0.0, 1.0, size=(2, self.params.dim))
            q, _ = np.linalg.qr(raw.T)
            basis = q.T[:2]
            self._pose_bases[object_id] = basis
        return basis

    def _pose_offset(self, detection: Detection) -> np.ndarray:
        """Random-phase displacement in the source object's pose plane."""
        if self.params.pose_scale == 0 or detection.source_id is None:
            return np.zeros(self.params.dim)
        basis = self._pose_basis(detection.source_id)
        phase = self._rng.uniform(0.0, 2.0 * np.pi)
        return self.params.pose_scale * (
            np.cos(phase) * basis[0] + np.sin(phase) * basis[1]
        )

    def _latent_for(self, detection: Detection) -> np.ndarray:
        if detection.source_id is not None:
            return self.world.objects[detection.source_id].appearance
        # Stable pseudo-latent per clutter detection, derived from geometry
        # so repeated extraction of the same detection is consistent.
        # (Arithmetic key — hash() is randomized per process.)
        key = (
            int(round(detection.bbox.x1 * 1000)) * 1_000_003
            + int(round(detection.bbox.y1 * 1000)) * 10_007
            + int(round(detection.bbox.x2 * 1000)) * 101
            + int(round(detection.bbox.y2 * 1000))
        )
        if key not in self._clutter_latents:
            local = np.random.default_rng(abs(key) % (2**63))
            vec = local.normal(0.0, 1.0, size=self.params.dim)
            self._clutter_latents[key] = vec / np.linalg.norm(vec)
        return self._clutter_latents[key]

    def extract(self, detection: Detection) -> np.ndarray:
        """Extract a feature vector for one detection (one "forward pass").

        The result is unit-norm.  Cost accounting is the caller's job (see
        :class:`~repro.reid.scorer.ReidScorer`), keeping the model pure.
        """
        params = self.params
        latent = self._latent_for(detection)
        noise_scale = params.base_noise + params.occlusion_noise * (
            1.0 - float(np.clip(detection.visibility, 0.0, 1.0))
        )
        # Per-crop quality: heavy-tailed multiplier plus occasional garbage
        # crops, so individual BBox-pair distances scatter widely around
        # the pair score (see ReidParams.quality_sigma).
        if params.quality_sigma > 0:
            noise_scale *= float(
                self._rng.lognormal(0.0, params.quality_sigma)
            )
        garbage_prob = min(
            params.outlier_prob
            + params.occlusion_outlier
            * (1.0 - float(np.clip(detection.visibility, 0.0, 1.0))),
            0.9,
        )
        if garbage_prob > 0 and self._rng.random() < garbage_prob:
            noise_scale = max(noise_scale, params.outlier_noise)
        noise = self._rng.normal(0.0, 1.0, size=params.dim)
        noise_norm = np.linalg.norm(noise)
        if noise_norm > 0:
            noise = noise * (noise_scale / noise_norm)
        feature = latent + self._pose_offset(detection) + noise
        norm = np.linalg.norm(feature)
        if norm == 0:
            return latent.copy()
        return feature / norm

    def rng_state(self) -> dict:
        """JSON-able state of the extraction noise stream.

        Together with :meth:`set_rng_state` this lets the checkpoint
        layer resume a crashed window with the exact noise draws the
        uninterrupted run would have made.
        """
        return dict(self._rng.bit_generator.state)

    def set_rng_state(self, state: dict) -> None:
        """Restore a noise-stream state captured by :meth:`rng_state`."""
        self._rng.bit_generator.state = state

    def tracker_embedder(
        self, noise_multiplier: float = 1.5
    ) -> Callable[[Detection], np.ndarray]:
        """A cheaper, noisier embedding head for the trackers themselves.

        DeepSORT/UMA run a lightweight appearance descriptor online; giving
        them a *noisier* view of the latents than the offline ReID model
        preserves the paper's premise that trackers alone cannot eliminate
        polyonymous tracks while TMerge's stronger model can.
        """
        base = self.params
        cheap = SimReIDModel(
            self.world,
            params=ReidParams(
                base_noise=base.base_noise * noise_multiplier,
                occlusion_noise=base.occlusion_noise * noise_multiplier,
                quality_sigma=base.quality_sigma,
                outlier_prob=min(base.outlier_prob * noise_multiplier, 0.9),
                occlusion_outlier=base.occlusion_outlier,
                outlier_noise=base.outlier_noise,
                pose_scale=base.pose_scale,
                dim=base.dim,
            ),
            seed=int(self._rng.integers(2**63)),
        )
        return cheap.extract
