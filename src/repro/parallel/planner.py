"""Deterministic shard planning for window-parallel execution.

The paper's windowing (§II) makes per-window merge work embarrassingly
parallel: each window owns a disjoint track set and its pair set ``P_c``
is evaluated independently.  The :class:`ShardPlanner` turns that shape
into an execution plan — which worker runs which windows — while keeping
every random draw a pure function of ``(seed, window index)``:

* **Shard assignment** is round-robin over the busy (non-empty) window
  indices, so the plan depends only on the window list and the worker
  count, never on scheduling order.
* **Seed substreams** are derived per window with
  :meth:`numpy.random.SeedSequence.spawn`: window ``c`` always receives
  the ``c``-th child of the run's root sequence, so its ReID noise and
  fault schedules are identical whether it runs first, last, in-process
  or in a pool of eight workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.faults.profiles import FaultProfile


@dataclass(frozen=True)
class WindowSeeds:
    """Per-window seed substreams, one per randomness seam.

    Attributes:
        model: substream of the ReID extraction noise.
        call: substream of the ReID call-fault schedule (``None`` when
            the run has no fault profile).
        corrupt: substream of the feature-corruption schedule.
        crash: substream of the window-crash schedule.
    """

    model: np.random.SeedSequence
    call: np.random.SeedSequence | None = None
    corrupt: np.random.SeedSequence | None = None
    crash: np.random.SeedSequence | None = None


@dataclass(frozen=True)
class Shard:
    """One worker's slice of the run.

    Attributes:
        shard_id: 0-based shard index.
        window_indices: the window indices this shard executes, in
            ascending order.
    """

    shard_id: int
    window_indices: tuple[int, ...]


@dataclass(frozen=True)
class ShardPlan:
    """A complete, deterministic window → shard assignment.

    Attributes:
        n_workers: the worker count the plan was built for.
        shards: the non-empty shards (at most ``n_workers``).
    """

    n_workers: int
    shards: tuple[Shard, ...]

    def covered_indices(self) -> list[int]:
        """Every window index the plan executes, across all shards."""
        covered: list[int] = []
        for shard in self.shards:
            covered.extend(shard.window_indices)
        return covered


class ShardPlanner:
    """Assigns windows to shards deterministically.

    Args:
        n_workers: target worker count (≥ 1).  The plan never produces
            more shards than there are busy windows.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers

    def plan(self, window_indices: Sequence[int]) -> ShardPlan:
        """Round-robin ``window_indices`` over the workers.

        Shard ``i`` receives indices ``sorted(window_indices)[i::n]`` —
        a pure function of the input and the worker count, independent
        of any runtime scheduling.  Empty shards are dropped.
        """
        ordered = sorted(window_indices)
        if len(set(ordered)) != len(ordered):
            raise ValueError("window_indices must be unique")
        shards = []
        for shard_id in range(self.n_workers):
            assigned = tuple(ordered[shard_id :: self.n_workers])
            if assigned:
                shards.append(Shard(shard_id, assigned))
        return ShardPlan(n_workers=self.n_workers, shards=tuple(shards))


def window_seeds(
    reid_seed: int,
    n_windows: int,
    fault_profile: FaultProfile | None = None,
) -> list[WindowSeeds]:
    """Derive every window's seed substreams from the run-level seeds.

    Window ``c``'s model stream is ``SeedSequence(reid_seed).spawn(n)[c]``
    and its fault streams are the ``c``-th children of the profile's
    per-seam root sequences (see
    :meth:`~repro.faults.profiles.FaultProfile.window_seam_seeds`), so a
    window's entire randomness is fixed by ``(seed, c)`` alone.
    """
    if n_windows < 0:
        raise ValueError("n_windows must be non-negative")
    model_children = np.random.SeedSequence(reid_seed).spawn(n_windows)
    if fault_profile is None:
        return [WindowSeeds(model=child) for child in model_children]
    seams = fault_profile.window_seam_seeds(n_windows)
    return [
        WindowSeeds(model=model, call=call, corrupt=corrupt, crash=crash)
        for model, (call, corrupt, crash) in zip(model_children, seams)
    ]


def single_window_seeds(
    reid_seed: int,
    index: int,
    fault_profile: FaultProfile | None = None,
) -> WindowSeeds:
    """One window's seed substreams, without knowing the window count.

    Bit-identical to ``window_seeds(reid_seed, n, fault_profile)[index]``
    for every ``n > index`` — ``SeedSequence`` children are addressable
    directly by spawn key, so the streaming service (which never knows
    how many windows an unbounded feed will produce) derives exactly the
    seeds the batch planner would have handed out.
    """
    if index < 0:
        raise ValueError("index must be non-negative")
    model = np.random.SeedSequence(reid_seed, spawn_key=(index,))
    if fault_profile is None:
        return WindowSeeds(model=model)
    call, corrupt, crash = fault_profile.window_seam_seed(index)
    return WindowSeeds(model=model, call=call, corrupt=corrupt, crash=crash)
