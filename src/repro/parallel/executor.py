"""The window-sharded parallel execution engine.

Fans the per-window merge work (:func:`repro.core.pipeline.run_resilient_window`
plus merge ranking) out over a :mod:`concurrent.futures` process or
thread pool and reassembles the outcomes in window-index order.

Determinism model — the *window-local regime*
---------------------------------------------
Every window runs against its own, freshly built execution state:

* a :class:`~repro.reid.model.SimReIDModel` seeded from the window's
  :class:`~numpy.random.SeedSequence` substream,
* a fresh :class:`~repro.reid.scorer.FeatureCache` and window-local
  :class:`~repro.reid.cost.CostModel` clock (starting at 0),
* fresh fault injectors on the window's seam substreams, and a fresh
  :class:`~repro.resilience.ResilientReidScorer` / circuit breaker,
* a private deep copy of the merger (its own checkpoint store).

A window's result is therefore a pure function of
``(seed, window index)`` — independent of worker count, backend and
scheduling order — which is what the differential test layer
(``tests/test_parallel_equivalence.py``) asserts bit-for-bit.  With
``n_workers=1`` the same per-window tasks run inline in-process (no
pool), straight through the pre-existing ``run_resilient_window`` code
path; higher worker counts must reproduce that run exactly.

Note this regime intentionally differs from the *legacy* serial path
(``IngestionPipeline(workers=None)``), which threads one ReID RNG
stream, one feature cache, one clock and one breaker through all windows
in order — state that cannot be split across workers without changing
results.  See DESIGN.md §9 for the full argument.

Aggregation happens in window-index order regardless of completion
order: window clocks fold into the run clock via
:meth:`~repro.reid.cost.CostModel.merge_state`, worker counters via
:meth:`~repro.telemetry.metrics.MetricsRegistry.merge_delta`, worker
spans via :meth:`~repro.telemetry.tracing.Tracer.absorb`, so even the
floating-point accumulation order is worker-count independent.
"""

from __future__ import annotations

import copy
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro import contracts
from repro.core.pairs import TrackPair
from repro.core.pipeline import Merger, run_resilient_window
from repro.core.results import MergeResult
from repro.faults.profiles import FaultProfile
from repro.parallel.planner import ShardPlan, ShardPlanner, window_seeds
from repro.provenance import DecisionLedger
from repro.reid import CostModel, CostParams, ReidScorer, SimReIDModel
from repro.resilience import ResilienceConfig, ResilientReidScorer
from repro.synth.world import VideoGroundTruth
from repro.telemetry import Telemetry
from repro.telemetry.tracing import Span

#: Supported pool backends.
BACKENDS = ("process", "thread")


@dataclass
class WindowTask:
    """One window's work order, picklable for process pools.

    Attributes:
        index: the window index ``c``.
        pairs: the window's candidate pair set ``P_c`` (non-empty).
        seeds: the window's seed substreams (see
            :class:`~repro.parallel.planner.WindowSeeds`).
    """

    index: int
    pairs: list[TrackPair]
    seeds: object


@dataclass
class ShardTask:
    """Everything one shard needs, shipped to its worker once.

    Attributes:
        shard_id: the shard's id in the plan.
        world: the simulated ground truth backing the ReID model.
        merger: a telemetry-detached merger prototype; each window runs
            a private deep copy.
        cost_params: simulated cost constants.
        items: the shard's window tasks, ascending by index.
        fault_profile: optional chaos configuration.
        resilience: optional resilience tuning.
        with_telemetry: whether windows record worker-local telemetry.
        with_ledger: whether windows record worker-local decision
            ledgers (absorbed home in window-index order).
    """

    shard_id: int
    world: VideoGroundTruth
    merger: Merger
    cost_params: CostParams | None
    items: list[WindowTask]
    fault_profile: FaultProfile | None = None
    resilience: ResilienceConfig | None = None
    with_telemetry: bool = False
    with_ledger: bool = False


@dataclass
class WindowOutcome:
    """One window's results plus its observability payloads.

    Attributes:
        index: the window index.
        result: the merge result.
        cost_state: the window clock's
            :meth:`~repro.reid.cost.CostModel.state_dict`.
        counters: the window's telemetry counter values (empty when the
            run is unobserved) — a delta by construction, since the
            worker registry starts empty.
        spans: the window's finished spans as
            :meth:`~repro.telemetry.tracing.Span.to_dict` payloads.
        resilience_stats: the window scorer's resilience counters.
        histograms: the window's telemetry histogram states
            (:meth:`~repro.telemetry.metrics.MetricsRegistry.histograms_snapshot`),
            folded home in window-index order so parallel reassembly is
            exact for distributions too.
        ledger_events: the window's decision events as
            :meth:`~repro.provenance.DecisionEvent.to_dict` payloads
            (empty when the run records no provenance).
    """

    index: int
    result: MergeResult
    cost_state: dict[str, float]
    counters: dict[str, float] = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)
    resilience_stats: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)
    ledger_events: list[dict] = field(default_factory=list)


def _run_window_task(shard: ShardTask, item: WindowTask) -> WindowOutcome:
    """Build the window-local execution state and run one window."""
    telemetry = Telemetry() if shard.with_telemetry else None
    cost = CostModel(shard.cost_params, telemetry=telemetry)
    if telemetry is not None:
        telemetry.bind_clock(cost)
    seeds = item.seeds
    model = SimReIDModel(shard.world, seed=seeds.model)
    profile = shard.fault_profile
    if profile is not None and profile.injects_reid_faults:
        model = profile.wrap_model(
            model,
            call_rng=np.random.default_rng(seeds.call),
            corruption_rng=np.random.default_rng(seeds.corrupt),
        )
        for injector in (model.call_injector, model.corruption_injector):
            if injector is not None:
                injector.telemetry = telemetry
    scorer: ReidScorer | ResilientReidScorer = ReidScorer(
        model, cost=cost, telemetry=telemetry
    )
    resilience = shard.resilience
    if resilience is not None:
        scorer = ResilientReidScorer(
            scorer,
            retry=resilience.retry,
            breaker_policy=resilience.breaker,
        )
    crasher = None
    if profile is not None and profile.window_crash_rate > 0:
        crasher = profile.window_crasher(
            rng=np.random.default_rng(seeds.crash)
        )
        crasher.telemetry = telemetry
    merger = copy.deepcopy(shard.merger)
    if hasattr(merger, "telemetry"):
        merger.telemetry = telemetry
    ledger = None
    if shard.with_ledger and hasattr(merger, "ledger"):
        # A fresh per-window ledger: events are stamped with the window
        # index here and absorbed home in window-index order, so the
        # merged log is worker-count independent (like Tracer.absorb).
        ledger = DecisionLedger()
        ledger.begin_window(item.index)
        merger.ledger = ledger
    window_span = (
        telemetry.span("window", window_id=item.index, n_pairs=len(item.pairs))
        if telemetry is not None
        else nullcontext()
    )
    with window_span:
        result = run_resilient_window(
            merger, item.index, item.pairs, scorer, cost, resilience, crasher
        )
        if contracts.ENABLED:
            contracts.check_top_k_budget(
                len(result.candidates),
                len(item.pairs),
                where="ParallelExecutor",
            )
    if telemetry is not None:
        telemetry.observe(
            "window.merge_ms", result.simulated_seconds * 1000.0
        )
    return WindowOutcome(
        index=item.index,
        result=result,
        cost_state=cost.state_dict(),
        counters=(
            telemetry.metrics.counters_snapshot()
            if telemetry is not None
            else {}
        ),
        spans=(
            [
                span.to_dict()
                for span in sorted(
                    telemetry.tracer.spans, key=lambda s: s.span_id
                )
            ]
            if telemetry is not None
            else []
        ),
        resilience_stats=(
            scorer.stats() if isinstance(scorer, ResilientReidScorer) else {}
        ),
        histograms=(
            telemetry.metrics.histograms_snapshot()
            if telemetry is not None
            else {}
        ),
        ledger_events=ledger.to_dicts() if ledger is not None else [],
    )


def execute_shard(task: ShardTask) -> list[WindowOutcome]:
    """Run every window of one shard serially (module-level: picklable)."""
    return [_run_window_task(task, item) for item in task.items]


class ParallelExecutor:
    """Runs shard tasks over a process/thread pool, or inline for one.

    Args:
        n_workers: worker count; ``1`` executes every shard inline in
            the calling process (no pool — the serial fallback path).
        backend: ``"process"`` (real CPU parallelism; tasks are pickled)
            or ``"thread"`` (shared memory, GIL-bound — useful for
            debugging and picklability-free runs).
    """

    def __init__(self, n_workers: int = 1, backend: str = "process") -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        self.n_workers = n_workers
        self.backend = backend

    def _pool(self, n_tasks: int) -> Executor:
        workers = min(self.n_workers, n_tasks)
        if self.backend == "process":
            return ProcessPoolExecutor(max_workers=workers)
        return ThreadPoolExecutor(max_workers=workers)

    def run(self, tasks: list[ShardTask]) -> list[WindowOutcome]:
        """Execute all shard tasks; outcomes return in window-index order.

        The ordered-collection stage sorts by window index, so callers
        see the same sequence whatever the completion order was.
        """
        if self.n_workers == 1 or len(tasks) <= 1:
            outcomes = [
                outcome for task in tasks for outcome in execute_shard(task)
            ]
        else:
            with self._pool(len(tasks)) as pool:
                outcomes = [
                    outcome
                    for shard_outcomes in pool.map(execute_shard, tasks)
                    for outcome in shard_outcomes
                ]
        return sorted(outcomes, key=lambda outcome: outcome.index)


@dataclass
class ParallelRun:
    """The engine's aggregated output for one video.

    Attributes:
        window_results: one merge result per window, in index order
            (empty windows carry synthesized empty results).
        cost: the run-level clock — every window clock folded in, in
            index order.
        window_metrics: per-window counter deltas (empty list when the
            run is unobserved, ``{}`` entries for empty windows).
        resilience_stats: per-window resilience counters summed in
            index order (empty when resilience is off).
        plan: the shard plan that produced the run.
    """

    window_results: list[MergeResult]
    cost: CostModel
    window_metrics: list[dict[str, float]]
    resilience_stats: dict[str, float]
    plan: ShardPlan


def detached_merger(merger: Merger) -> Merger:
    """A deep copy of ``merger`` with injected observers removed.

    Shared by :func:`run_windows` and the streaming service: merger
    prototypes shipped to workers (or cloned per window) must not drag
    a live telemetry object — or a live decision ledger — across the
    pool seam.  Workers attach their own window-local instances instead.
    """
    parked: dict[str, object] = {}
    for attribute in ("telemetry", "ledger"):
        if hasattr(merger, attribute):
            parked[attribute] = getattr(merger, attribute)
            setattr(merger, attribute, None)
    try:
        clone = copy.deepcopy(merger)
    finally:
        for attribute, value in parked.items():
            setattr(merger, attribute, value)
    return clone


def empty_merge_result(merger: Merger) -> MergeResult:
    """The synthesized result of a window with no candidate pairs."""
    return MergeResult(
        method=merger.name,
        candidates=[],
        scores={},
        n_pairs=0,
        k=getattr(merger, "k", 0.0),
        simulated_seconds=0.0,
    )


def run_windows(
    *,
    world: VideoGroundTruth,
    window_pairs: list[list[TrackPair]],
    merger: Merger,
    cost_params: CostParams | None = None,
    reid_seed: int = 1,
    fault_profile: FaultProfile | None = None,
    resilience: ResilienceConfig | None = None,
    n_workers: int = 1,
    backend: str = "process",
    telemetry: Telemetry | None = None,
    ledger: DecisionLedger | None = None,
) -> ParallelRun:
    """Run every window of one video through the sharded engine.

    This is the mid-level API shared by
    :class:`~repro.core.pipeline.IngestionPipeline` (``workers=`` path)
    and :func:`~repro.experiments.sweeps.evaluate_merger`
    (``workers=`` argument).  Results are bit-identical for every
    ``n_workers`` and backend; see the module docstring for the
    determinism argument.

    Args:
        world: the simulated ground truth.
        window_pairs: ``P_c`` per window, index-aligned.
        merger: the algorithm under test (cloned per window; never
            mutated here).
        cost_params: simulated cost constants.
        reid_seed: root seed of the ReID extraction noise.
        fault_profile: optional chaos configuration.
        resilience: optional resilience tuning (callers decide the
            auto-on default, exactly as the legacy serial path does).
        n_workers: worker count (``1`` = inline serial execution).
        backend: ``"process"`` or ``"thread"``.
        telemetry: optional run-level telemetry; worker-local counters,
            histograms and spans are merged into it in window-index
            order, plus one ``parallel.shard`` span per shard.
        ledger: optional run-level decision ledger; per-window worker
            ledgers are absorbed into it in window-index order (sequence
            numbers re-assigned, window stamps kept — exactly like
            ``Tracer.absorb``), so the merged log is worker-count
            independent.
    """
    n_windows = len(window_pairs)
    busy = [index for index, pairs in enumerate(window_pairs) if pairs]
    plan = ShardPlanner(n_workers).plan(busy)
    seeds = window_seeds(reid_seed, n_windows, fault_profile)
    prototype = detached_merger(merger)
    tasks = [
        ShardTask(
            shard_id=shard.shard_id,
            world=world,
            merger=prototype,
            cost_params=cost_params,
            items=[
                WindowTask(index=c, pairs=window_pairs[c], seeds=seeds[c])
                for c in shard.window_indices
            ],
            fault_profile=fault_profile,
            resilience=resilience,
            with_telemetry=telemetry is not None,
            with_ledger=ledger is not None,
        )
        for shard in plan.shards
    ]
    outcomes = ParallelExecutor(n_workers, backend).run(tasks)
    if contracts.ENABLED:
        contracts.check_shard_cover(
            (outcome.index for outcome in outcomes),
            busy,
            where="run_windows",
        )

    by_index = {outcome.index: outcome for outcome in outcomes}
    cost = CostModel(cost_params)
    window_results: list[MergeResult] = []
    window_metrics: list[dict[str, float]] = []
    stats_total: dict[str, float] = {}
    for c in range(n_windows):
        outcome = by_index.get(c)
        if outcome is None:
            window_results.append(empty_merge_result(merger))
            if telemetry is not None:
                window_metrics.append({})
            continue
        window_results.append(outcome.result)
        cost.merge_state(outcome.cost_state)
        for name, value in outcome.resilience_stats.items():
            stats_total[name] = stats_total.get(name, 0.0) + value
        if telemetry is not None:
            telemetry.metrics.merge_delta(outcome.counters)
            telemetry.metrics.merge_histograms(outcome.histograms)
            window_metrics.append(dict(outcome.counters))
            telemetry.tracer.absorb(
                [Span.from_dict(payload) for payload in outcome.spans]
            )
        if ledger is not None:
            ledger.absorb(outcome.ledger_events)
    if telemetry is not None:
        for shard in plan.shards:
            with telemetry.span(
                "parallel.shard",
                shard_id=shard.shard_id,
                n_windows=len(shard.window_indices),
                window_ids=list(shard.window_indices),
                backend=backend,
                n_workers=n_workers,
            ):
                pass
    return ParallelRun(
        window_results=window_results,
        cost=cost,
        window_metrics=window_metrics,
        resilience_stats=stats_total,
        plan=plan,
    )
