"""Window-sharded parallel execution of the per-window merge work.

Public surface:

* :class:`~repro.parallel.planner.ShardPlanner` /
  :class:`~repro.parallel.planner.ShardPlan` — deterministic window →
  shard assignment and per-window seed substream derivation.
* :class:`~repro.parallel.executor.ParallelExecutor` — process/thread
  pool fan-out with ordered result collection and an inline serial
  fallback for one worker.
* :func:`~repro.parallel.executor.run_windows` — the mid-level API the
  ingestion pipeline and experiment sweeps call.

See DESIGN.md §9 for the determinism argument.
"""

from repro.parallel.executor import (
    BACKENDS,
    ParallelExecutor,
    ParallelRun,
    ShardTask,
    WindowOutcome,
    WindowTask,
    execute_shard,
    run_windows,
)
from repro.parallel.planner import (
    Shard,
    ShardPlan,
    ShardPlanner,
    WindowSeeds,
    window_seeds,
)

__all__ = [
    "BACKENDS",
    "ParallelExecutor",
    "ParallelRun",
    "Shard",
    "ShardPlan",
    "ShardPlanner",
    "ShardTask",
    "WindowOutcome",
    "WindowSeeds",
    "WindowTask",
    "execute_shard",
    "run_windows",
    "window_seeds",
]
