"""CLEAR-MOT metrics (Bernardin & Stiefelhagen, 2008).

Per-frame matching with the CLEAR continuity rule: a GT object matched to a
track in the previous frame keeps that match while their IoU stays above
the threshold; remaining objects and tracks are matched by Hungarian
assignment.  From the match stream we count misses (FN), false positives
(FP), identity switches (IDSW) and fragmentations (Frag), and compute
``MOTA = 1 − (FN + FP + IDSW) / #GT``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import iou, iou_matrix
from repro.synth.world import VideoGroundTruth
from repro.track.assignment import solve_assignment
from repro.track.base import Track


@dataclass(frozen=True)
class ClearMotResult:
    """CLEAR-MOT counts and derived scores.

    Attributes:
        n_gt: total GT object-frames.
        misses: false negatives.
        false_positives: track boxes matching no GT.
        id_switches: frames where a GT object changed its matched TID.
        fragmentations: interruptions of a GT object's tracked status.
    """

    n_gt: int
    misses: int
    false_positives: int
    id_switches: int
    fragmentations: int

    @property
    def mota(self) -> float:
        """Multiple Object Tracking Accuracy (can be negative)."""
        if self.n_gt == 0:
            return 1.0
        return 1.0 - (
            self.misses + self.false_positives + self.id_switches
        ) / self.n_gt


def evaluate_clearmot(
    tracks: list[Track],
    world: VideoGroundTruth,
    iou_threshold: float = 0.5,
) -> ClearMotResult:
    """Run the CLEAR-MOT protocol over a full video."""
    per_frame: dict[int, list[tuple[int, int]]] = {}
    by_id = {track.track_id: track for track in tracks}
    for track in tracks:
        for obs_index, obs in enumerate(track.observations):
            per_frame.setdefault(obs.frame, []).append(
                (track.track_id, obs_index)
            )

    n_gt = 0
    misses = 0
    false_positives = 0
    id_switches = 0
    fragmentations = 0

    # last_match[gt_id] = TID it was last matched to (for IDSW);
    # tracked_now[gt_id] = whether it was matched in the previous frame it
    # appeared (for Frag).
    last_match: dict[int, int] = {}
    was_tracked: dict[int, bool] = {}

    for frame in range(world.n_frames):
        gt_states = world.frames[frame]
        entries = per_frame.get(frame, [])
        n_gt += len(gt_states)

        gt_boxes = [state.bbox for state in gt_states]
        track_boxes = [
            by_id[tid].observations[oi].bbox for tid, oi in entries
        ]

        matched_gt: dict[int, int] = {}  # gt index -> track entry index
        used_tracks: set[int] = set()

        # Continuity: keep last frame's pairing while IoU holds.
        for g, state in enumerate(gt_states):
            prev_tid = last_match.get(state.object_id)
            if prev_tid is None:
                continue
            for e, (tid, _) in enumerate(entries):
                if tid != prev_tid or e in used_tracks:
                    continue
                if iou(gt_boxes[g], track_boxes[e]) >= iou_threshold:
                    matched_gt[g] = e
                    used_tracks.add(e)
                break

        # Hungarian on the remainder.
        free_gt = [g for g in range(len(gt_states)) if g not in matched_gt]
        free_tracks = [
            e for e in range(len(entries)) if e not in used_tracks
        ]
        if free_gt and free_tracks:
            ious = iou_matrix(
                [gt_boxes[g] for g in free_gt],
                [track_boxes[e] for e in free_tracks],
            )
            for r, c in solve_assignment(
                1.0 - ious, max_cost=1.0 - iou_threshold
            ):
                matched_gt[free_gt[r]] = free_tracks[c]
                used_tracks.add(free_tracks[c])

        # Update counts.
        for g, state in enumerate(gt_states):
            gt_id = state.object_id
            if g in matched_gt:
                tid = entries[matched_gt[g]][0]
                if gt_id in last_match and last_match[gt_id] != tid:
                    id_switches += 1
                if gt_id in was_tracked and not was_tracked[gt_id]:
                    fragmentations += 1
                last_match[gt_id] = tid
                was_tracked[gt_id] = True
            else:
                misses += 1
                was_tracked[gt_id] = False
        false_positives += len(entries) - len(used_tracks)

    return ClearMotResult(
        n_gt=n_gt,
        misses=misses,
        false_positives=false_positives,
        id_switches=id_switches,
        fragmentations=fragmentations,
    )
