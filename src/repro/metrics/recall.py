"""The REC metric (Eq. 3) and REC-K curves (Figure 3)."""

from __future__ import annotations

import math

from repro.core.pairs import PairKey, TrackPair


def window_recall(
    candidate_keys: set[PairKey], gt_keys: set[PairKey]
) -> float | None:
    """``REC(P̂_c) = |P̂_c ∩ P*_c| / |P*_c|`` for one window.

    Returns ``None`` when the window has no polyonymous pairs (such windows
    are excluded from dataset averages, matching the paper's averaging over
    windows that have something to find).
    """
    if not gt_keys:
        return None
    return len(candidate_keys & gt_keys) / len(gt_keys)


def average_recall(
    per_window: list[tuple[set[PairKey], set[PairKey]]]
) -> float:
    """Mean recall over all windows with non-empty ``P*_c``.

    Args:
        per_window: ``(candidate_keys, gt_keys)`` per window.

    Returns:
        The dataset-level REC; 1.0 when no window has any polyonymous pair
        (nothing to miss).
    """
    values = [
        rec
        for candidates, gt in per_window
        if (rec := window_recall(candidates, gt)) is not None
    ]
    if not values:
        return 1.0
    return sum(values) / len(values)


def rec_k_curve(
    pairs: list[TrackPair],
    scores: dict[PairKey, float],
    gt_keys: set[PairKey],
    ks: list[float],
) -> list[tuple[float, float | None]]:
    """Recall of the top-⌈K·|P_c|⌉ scored pairs, for each K.

    Args:
        pairs: the window's candidate pairs.
        scores: normalized score per pair key (lower = more likely
            polyonymous).
        gt_keys: the window's true polyonymous pair keys.
        ks: the K values to evaluate.

    Returns:
        ``(K, REC)`` points; REC is ``None`` when ``gt_keys`` is empty.
    """
    ranked = sorted(pairs, key=lambda p: (scores[p.key], p.key))
    points = []
    for k in ks:
        if not 0.0 <= k <= 1.0:
            raise ValueError(f"K out of range: {k}")
        budget = min(math.ceil(k * len(pairs)), len(pairs))
        top = {pair.key for pair in ranked[:budget]}
        points.append((k, window_recall(top, gt_keys)))
    return points
