"""Identity metrics IDF1 / IDP / IDR (Ristani et al., 2016).

Unlike CLEAR-MOT's frame-local matching, identity metrics pick one global
bipartite matching between GT trajectories and predicted tracks that
maximizes the number of correctly identified detections (IDTP), then score:

* ``IDP = IDTP / (IDTP + IDFP)`` — identity precision,
* ``IDR = IDTP / (IDTP + IDFN)`` — identity recall,
* ``IDF1 = 2·IDTP / (2·IDTP + IDFP + IDFN)``.

Merging polyonymous fragments raises these directly: fragments that each
covered half a GT trajectory become one track covering all of it, turning
identity false negatives into true positives (Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import iou_matrix
from repro.synth.world import VideoGroundTruth
from repro.track.assignment import hungarian
from repro.track.base import Track


@dataclass(frozen=True)
class IdentityResult:
    """Identity-metric counts and derived scores."""

    idtp: int
    idfp: int
    idfn: int

    @property
    def idp(self) -> float:
        """Identification precision ``IDTP / (IDTP + IDFP)``."""
        denom = self.idtp + self.idfp
        return self.idtp / denom if denom else 1.0

    @property
    def idr(self) -> float:
        """Identification recall ``IDTP / (IDTP + IDFN)``."""
        denom = self.idtp + self.idfn
        return self.idtp / denom if denom else 1.0

    @property
    def idf1(self) -> float:
        """The IDF1 score (harmonic mean of IDP and IDR)."""
        denom = 2 * self.idtp + self.idfp + self.idfn
        return 2 * self.idtp / denom if denom else 1.0


def _overlap_counts(
    tracks: list[Track],
    world: VideoGroundTruth,
    iou_threshold: float,
) -> tuple[np.ndarray, list[int], list[int]]:
    """Binary per-frame overlap counts m(gt, track) for all pairs."""
    gt_ids = sorted(
        {state.object_id for frame in world.frames for state in frame}
    )
    gt_index = {g: i for i, g in enumerate(gt_ids)}
    track_ids = [t.track_id for t in tracks]
    track_index = {t: i for i, t in enumerate(track_ids)}

    overlaps = np.zeros((len(gt_ids), len(track_ids)), dtype=np.int64)

    per_frame: dict[int, list[tuple[int, int]]] = {}
    by_id = {track.track_id: track for track in tracks}
    for track in tracks:
        for obs_index, obs in enumerate(track.observations):
            per_frame.setdefault(obs.frame, []).append(
                (track.track_id, obs_index)
            )

    for frame in range(world.n_frames):
        gt_states = world.frames[frame]
        entries = per_frame.get(frame, [])
        if not gt_states or not entries:
            continue
        gt_boxes = [s.bbox for s in gt_states]
        track_boxes = [
            by_id[tid].observations[oi].bbox for tid, oi in entries
        ]
        ious = iou_matrix(gt_boxes, track_boxes)
        hits = np.argwhere(ious >= iou_threshold)
        for g, e in hits:
            overlaps[
                gt_index[gt_states[g].object_id],
                track_index[entries[e][0]],
            ] += 1
    return overlaps, gt_ids, track_ids


def evaluate_identity(
    tracks: list[Track],
    world: VideoGroundTruth,
    iou_threshold: float = 0.5,
) -> IdentityResult:
    """Compute IDF1/IDP/IDR for a full video."""
    total_gt = sum(len(frame) for frame in world.frames)
    total_pred = sum(len(t) for t in tracks)
    if not tracks or total_gt == 0:
        return IdentityResult(idtp=0, idfp=total_pred, idfn=total_gt)

    overlaps, _, _ = _overlap_counts(tracks, world, iou_threshold)
    # Maximize total overlap: Hungarian on negated counts (square padding
    # is implicit — the solver accepts rectangles, unmatched rows/cols get
    # zero overlap).
    pairs = hungarian(-overlaps.astype(np.float64))
    idtp = int(sum(overlaps[r, c] for r, c in pairs))
    return IdentityResult(
        idtp=idtp,
        idfp=total_pred - idtp,
        idfn=total_gt - idtp,
    )
