"""Evaluation metrics.

* :mod:`repro.metrics.matching` — track ↔ ground-truth identity matching
  (the [30]-style procedure the paper uses to label polyonymous pairs).
* :mod:`repro.metrics.recall` — the paper's REC metric (Eq. 3) and REC-K
  curves (Figure 3).
* :mod:`repro.metrics.clearmot` — CLEAR-MOT: MOTA, ID switches,
  fragmentations.
* :mod:`repro.metrics.identity` — identity metrics IDF1 / IDP / IDR
  (Figure 12).
"""

from repro.metrics.matching import (
    TrackGtAssignment,
    match_tracks_to_gt,
    match_tracks_by_source,
    polyonymous_pairs,
    polyonymous_rate,
)
from repro.metrics.recall import (
    window_recall,
    average_recall,
    rec_k_curve,
)
from repro.metrics.clearmot import ClearMotResult, evaluate_clearmot
from repro.metrics.identity import IdentityResult, evaluate_identity

__all__ = [
    "TrackGtAssignment",
    "match_tracks_to_gt",
    "match_tracks_by_source",
    "polyonymous_pairs",
    "polyonymous_rate",
    "window_recall",
    "average_recall",
    "rec_k_curve",
    "ClearMotResult",
    "evaluate_clearmot",
    "IdentityResult",
    "evaluate_identity",
]
