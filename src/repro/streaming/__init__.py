"""Streaming ingestion: online, watermark-driven TMerge (DESIGN.md §10).

The online counterpart of the batch pipeline: events arrive from a
replayable source, windows open and close incrementally under a
watermark, each closing window merges through the parallel engine's
window-local regime, completed windows are evicted (bounded memory),
and the whole service state is checkpointed for crash-recoverable,
bit-identical restart.
"""

from repro.streaming.events import (
    DEFAULT_FRAME_INTERVAL_MS,
    FrameEvent,
    SyntheticFeedSource,
)
from repro.streaming.policy import MODES, BackpressurePolicy, IntakeQueue
from repro.streaming.service import (
    CHECKPOINT_VERSION,
    StreamingIngestionService,
    StreamRunResult,
    WindowEmission,
)
from repro.streaming.watermark import (
    UNSTARTED,
    ReorderBuffer,
    WatermarkTracker,
)

__all__ = [
    "DEFAULT_FRAME_INTERVAL_MS",
    "FrameEvent",
    "SyntheticFeedSource",
    "MODES",
    "BackpressurePolicy",
    "IntakeQueue",
    "CHECKPOINT_VERSION",
    "StreamingIngestionService",
    "StreamRunResult",
    "WindowEmission",
    "UNSTARTED",
    "ReorderBuffer",
    "WatermarkTracker",
]
