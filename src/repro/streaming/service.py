"""The streaming ingestion service: watermark-driven incremental TMerge.

This is the online counterpart of
:class:`~repro.core.pipeline.IngestionPipeline`: frames arrive as
:class:`~repro.streaming.events.FrameEvent`\\ s from a replayable source,
a watermark advances, half-overlapping windows open and close
incrementally, each closing window is merged through the parallel
engine's *window-local* determinism regime, and everything a completed
window held is evicted — resident memory is bounded by the configured
open-window count, never by feed length.

Robustness model
----------------
* **Durable restart** — after every window emission the service writes a
  complete pure-JSON snapshot of its mutable state (source offset,
  intake queue, reorder buffer, tracker session, open-window buffers,
  watermark, simulated clock, counters) to a
  :class:`~repro.resilience.CheckpointStore`.  A service killed at a
  window boundary and rebuilt from the store replays the source from the
  recorded offset and emits **bit-identical** results to an
  uninterrupted run — the acceptance test of this subsystem.
* **Backpressure** — a bounded intake queue with a
  :class:`~repro.streaming.policy.BackpressurePolicy` (block /
  drop-oldest / degrade-to-spatial-prior), all decisions functions of
  simulated state only.
* **Disorder tolerance** — out-of-order arrivals within
  ``allowed_lateness`` are healed by the reorder stage (they reach
  every window they belong to while it is still open); later ones are
  shed and counted.
* **Fault injection** — the :mod:`repro.faults` seams apply per window
  exactly as in the parallel engine (frame drops upstream in the
  source, ReID call/feature faults and window crashes inside the
  per-window merge, with resilience auto-enabled).

Determinism: a window's merge result is a pure function of
``(reid_seed, window index, T_{c-1}, T_c)`` — the regime proven by
``tests/test_parallel_equivalence.py`` — and every service-level
decision (shedding, degradation, watermark advance) is a pure function
of checkpointed state, so worker count, pool backend and kill/resume
points never change emitted results.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterator

from repro import contracts
from repro.core.pairs import TrackPair, build_track_pairs
from repro.core.pipeline import (
    Merger,
    merger_with_batch_size,
    spatial_fallback_result,
)
from repro.core.results import MergeResult
from repro.core.windows import Window, window_at
from repro.detect import Detection
from repro.faults.profiles import FaultProfile
from repro.parallel.executor import (
    ParallelExecutor,
    ShardTask,
    WindowOutcome,
    WindowTask,
    detached_merger,
    empty_merge_result,
)
from repro.parallel.planner import single_window_seeds
from repro.provenance import EVENT_DEGRADE, DecisionLedger
from repro.reid import CostModel, CostParams
from repro.resilience import CheckpointStore, ResilienceConfig
from repro.streaming.events import (
    DEFAULT_FRAME_INTERVAL_MS,
    FrameEvent,
    SyntheticFeedSource,
)
from repro.streaming.policy import BackpressurePolicy, IntakeQueue
from repro.streaming.watermark import ReorderBuffer, WatermarkTracker
from repro.telemetry import Telemetry
from repro.telemetry.tracing import Span
from repro.track.base import Track, Tracker

#: Checkpoint schema version (bump on incompatible layout changes).
#: v1 (pre-provenance) payloads lack the ``ledger`` / ``bp_active``
#: keys; they restore fine into ledger-free services, but a service
#: carrying a :class:`~repro.provenance.DecisionLedger` refuses them —
#: pre-crash decision events would silently vanish otherwise.
CHECKPOINT_VERSION = 2


@dataclass
class WindowEmission:
    """One closed window's output, in emission (= index) order.

    Attributes:
        index: the window index ``c``.
        window: the window's frame span.
        n_tracks: ``|T_c|`` after min-length filtering.
        n_prev_tracks: ``|T_{c-1}|`` the pair set was built against.
        result: the merge result (may be degraded or empty).
        pairs: the window's full candidate pair set ``P_c`` (the tracks
            inside are the consumer's only chance to see them — the
            service evicts its buffers right after emitting; not part of
            the checkpoint or the fingerprint).
        lag_ms: simulated ms between the window's nominal last-frame
            arrival and its emission (the service's latency signal).
        queue_depth: intake depth when the window became ready.
    """

    index: int
    window: Window
    n_tracks: int
    n_prev_tracks: int
    result: MergeResult
    pairs: list[TrackPair]
    lag_ms: float
    queue_depth: int

    def fingerprint(self) -> dict:
        """Bit-exact JSON-able digest (restart-equivalence testing)."""
        return {
            "index": self.index,
            "span": [self.window.start, self.window.end],
            "n_tracks": self.n_tracks,
            "n_prev_tracks": self.n_prev_tracks,
            "method": self.result.method,
            "n_pairs": self.result.n_pairs,
            "candidates": sorted(
                list(key) for key in self.result.candidate_keys
            ),
            "scores": sorted(
                (list(key), value)
                for key, value in self.result.scores.items()
            ),
            "simulated_seconds": self.result.simulated_seconds,
            "iterations": self.result.iterations,
            "degraded": self.result.degraded,
            "lag_ms": self.lag_ms,
        }


@dataclass
class StreamRunResult:
    """Everything one :meth:`StreamingIngestionService.run` produced.

    Attributes:
        emissions: per-window outputs emitted by *this* run call (a
            resumed run reports only post-resume windows; counters are
            cumulative across the service's lifetime).
        counters: lifetime service counters (``stream.*`` keys).
        peak_open_windows: most windows ever resident at once.
        peak_queue_depth: deepest the intake queue ever got.
        watermark: final watermark position.
        position: source events consumed over the service lifetime.
        stopped: ``True`` when the run ended via ``stop_after_windows``
            (the simulated kill) rather than feed exhaustion.
        cost: run-aggregate simulated clock (window clocks folded in
            emission order).
        resilience_stats: per-window resilience counters, summed.
        window_metrics: per-emission telemetry counter deltas (empty
            when running unobserved).
    """

    emissions: list[WindowEmission]
    counters: dict[str, float]
    peak_open_windows: int
    peak_queue_depth: int
    watermark: int
    position: int
    stopped: bool
    cost: CostModel
    resilience_stats: dict[str, float] = field(default_factory=dict)
    window_metrics: list[dict[str, float]] = field(default_factory=list)

    def fingerprints(self) -> list[dict]:
        """Emission digests, for restart-equivalence comparison."""
        return [emission.fingerprint() for emission in self.emissions]


class _Killed(Exception):
    """Internal control flow: the simulated SIGKILL point was reached."""


class StreamingIngestionService:
    """Long-running windowed TMerge over an event feed.

    Args:
        tracker: a streamable tracker (must implement
            :meth:`~repro.track.base.Tracker.stream`).
        merger: the per-window merging algorithm (cloned per window,
            exactly as in :mod:`repro.parallel`).
        window_length: the paper's ``L``.
        allowed_lateness: out-of-order tolerance, in frames.
        max_open_windows: resident-window memory bound; exceeding it is
            a contract violation (eviction fell behind), not a shedding
            signal.
        policy: intake backpressure policy (default: lossless ``block``
            with capacity 64).
        reid_seed: root seed of the per-window ReID substreams.
        cost_params: simulated cost constants for window merges.
        frame_interval_ms: nominal feed spacing (latency accounting).
        fault_profile: optional chaos configuration (applied per window
            through the engine's seam substreams).
        resilience: retry/breaker tuning; defaults on when a fault
            profile is set, mirroring the offline pipeline.
        telemetry: optional injected :class:`~repro.telemetry.Telemetry`
            (pure observation; never changes results).
        ledger: optional injected
            :class:`~repro.provenance.DecisionLedger`.  Per-window
            worker ledgers are absorbed in emission order (exactly like
            ``Tracer.absorb``), service-level degradation verdicts are
            recorded as ``degrade`` events, and the ledger state rides
            in every checkpoint so a killed-and-resumed run reconstructs
            a bit-identical decision log.  Pure observation — emissions
            are bit-identical with the ledger on or off.
        workers: fan-out for simultaneously-ready windows (≥ 1); any
            value produces bit-identical emissions.
        parallel_backend: ``"process"`` or ``"thread"``.
        batch_size: run-level override of the merger's ``batch_size``
            (``None`` keeps the merger as configured, ``1`` forces the
            scalar sampling path, ``B > 1`` the batched §IV-F variant —
            see :func:`~repro.core.pipeline.merger_with_batch_size`).
            Applied once at construction; determinism stays a pure
            function of ``(seed, window index, batch_size)``.
        store: the durable write-ahead state.  ``None`` runs without
            restart capability (no snapshots are written).
        checkpoint_key: snapshot key within the store (one store can
            host several services).
    """

    def __init__(
        self,
        tracker: Tracker,
        merger: Merger,
        *,
        window_length: int = 2000,
        allowed_lateness: int = 0,
        max_open_windows: int = 8,
        policy: BackpressurePolicy | None = None,
        reid_seed: int = 1,
        cost_params: CostParams | None = None,
        frame_interval_ms: float = DEFAULT_FRAME_INTERVAL_MS,
        fault_profile: FaultProfile | None = None,
        resilience: ResilienceConfig | None = None,
        telemetry: Telemetry | None = None,
        ledger: DecisionLedger | None = None,
        workers: int = 1,
        parallel_backend: str = "process",
        store: CheckpointStore | None = None,
        checkpoint_key: str = "stream",
        batch_size: int | None = None,
    ) -> None:
        if window_length < 2:
            raise ValueError("window_length must be >= 2")
        if max_open_windows < 1:
            raise ValueError("max_open_windows must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.tracker = tracker
        self.merger = merger_with_batch_size(merger, batch_size)
        self.batch_size = batch_size
        self.window_length = window_length
        self.stride = window_length // 2
        self.allowed_lateness = allowed_lateness
        self.max_open_windows = max_open_windows
        self.policy = policy or BackpressurePolicy()
        self.reid_seed = reid_seed
        self.cost_params = cost_params
        self.frame_interval_ms = frame_interval_ms
        self.fault_profile = fault_profile
        self.resilience = resilience
        self.telemetry = telemetry
        self.ledger = ledger
        self.workers = workers
        self.parallel_backend = parallel_backend
        self.store = store
        self.checkpoint_key = checkpoint_key
        self._reset_state()

    # ------------------------------------------------------------------
    # Mutable service state (everything here is checkpointed)
    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        """Fresh-start mutable state (before any checkpoint restore)."""
        self.position = 0
        self.now_ms = 0.0
        self.watermark = WatermarkTracker(self.allowed_lateness)
        self.reorder = ReorderBuffer()
        self.queue = IntakeQueue(self.policy)
        self.stream = self.tracker.stream()
        self.open_windows: dict[int, list[Track]] = {}
        self.prev_tracks: list[Track] = []
        self.ready: list[dict] = []
        self.next_ready = 0
        self.next_emit = 0
        self.staged: FrameEvent | None = None
        self.counters: dict[str, float] = {}
        self.peak_open_windows = 0
        self.cost = CostModel(self.cost_params)
        self.resilience_stats: dict[str, float] = {}
        #: Whether the last backpressure verdict was "degrade" — kept
        #: across checkpoints so the transition counter never double
        #: counts an edge replayed after a resume.
        self._bp_active = False

    def _effective_resilience(self) -> ResilienceConfig | None:
        """Auto-enable resilience under a fault profile (pipeline rule)."""
        if self.resilience is not None:
            return self.resilience
        if self.fault_profile is not None:
            return ResilienceConfig()
        return None

    def _count(self, name: str, amount: float = 1.0) -> None:
        """Bump a lifetime counter (mirrored into telemetry when on)."""
        self.counters[name] = self.counters.get(name, 0.0) + amount
        if self.telemetry is not None:
            self.telemetry.count(name, amount)

    @property
    def n_resident_windows(self) -> int:
        """Windows currently holding track state (open + retained prev)."""
        return len(self.open_windows) + (1 if self.prev_tracks else 0)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _checkpoint(self) -> None:
        """Write the full service snapshot (the write-ahead state)."""
        if self.store is None:
            return
        payload = {
            "version": CHECKPOINT_VERSION,
            "position": self.position,
            "now_ms": self.now_ms,
            "watermark": self.watermark.state_dict(),
            "reorder": self.reorder.state_dict(),
            "queue": self.queue.state_dict(),
            "tracker": self.stream.state_dict(),
            "open_windows": {
                str(index): [track.to_dict() for track in tracks]
                for index, tracks in sorted(self.open_windows.items())
            },
            "prev_tracks": [track.to_dict() for track in self.prev_tracks],
            "ready": list(self.ready),
            "next_ready": self.next_ready,
            "next_emit": self.next_emit,
            "staged": (
                self.staged.to_dict() if self.staged is not None else None
            ),
            "counters": dict(self.counters),
            "peak_open_windows": self.peak_open_windows,
            "cost": self.cost.state_dict(),
            "resilience_stats": dict(self.resilience_stats),
            "bp_active": self._bp_active,
            "ledger": (
                self.ledger.state_dict()
                if self.ledger is not None
                else None
            ),
        }
        self.store.save(["stream", self.checkpoint_key], payload)

    def _try_restore(self) -> bool:
        """Rebuild state from the store, if a snapshot exists."""
        if self.store is None:
            return False
        payload = self.store.load(["stream", self.checkpoint_key])
        if payload is None:
            return False
        version = int(payload["version"])
        if version < 1 or version > CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {payload['version']} not supported"
            )
        if version < 2 and self.ledger is not None:
            # A pre-provenance snapshot carries no ledger state: resuming
            # it into a ledger-attached service would silently drop every
            # pre-crash decision event.  Refuse loudly instead.
            raise ValueError(
                "checkpoint version 1 carries no decision-ledger state; "
                "resume without a ledger or restart from scratch"
            )
        self.position = int(payload["position"])
        self.now_ms = float(payload["now_ms"])
        self.watermark.load_state_dict(payload["watermark"])
        self.reorder.load_state_dict(payload["reorder"])
        self.queue.load_state_dict(payload["queue"])
        self.stream = self.tracker.stream()
        self.stream.load_state_dict(payload["tracker"])
        self.open_windows = {
            int(index): [Track.from_dict(t) for t in tracks]
            for index, tracks in payload["open_windows"].items()
        }
        self.prev_tracks = [
            Track.from_dict(t) for t in payload["prev_tracks"]
        ]
        self.ready = [dict(entry) for entry in payload["ready"]]
        self.next_ready = int(payload["next_ready"])
        self.next_emit = int(payload["next_emit"])
        self.staged = (
            FrameEvent.from_dict(payload["staged"])
            if payload["staged"] is not None
            else None
        )
        self.counters = {
            str(k): float(v) for k, v in payload["counters"].items()
        }
        self.peak_open_windows = int(payload["peak_open_windows"])
        self.cost = CostModel(self.cost_params)
        self.cost.load_state_dict(payload["cost"])
        self.resilience_stats = {
            str(k): float(v)
            for k, v in payload["resilience_stats"].items()
        }
        self._bp_active = bool(payload.get("bp_active", False))
        if self.ledger is not None and payload.get("ledger") is not None:
            self.ledger.load_state_dict(payload["ledger"])
        return True

    # ------------------------------------------------------------------
    # The service loop
    # ------------------------------------------------------------------
    def run(
        self,
        source: SyntheticFeedSource,
        stop_after_windows: int | None = None,
    ) -> StreamRunResult:
        """Consume the feed; return this call's emissions.

        When the store holds a snapshot, the service restores it and
        re-attaches to the source at the recorded offset (resume); a
        fresh store starts from offset 0.

        Args:
            source: the event log (must be the same logical feed across
                resumes — offsets are only meaningful within one log).
            stop_after_windows: simulate a SIGKILL after this many
                window emissions *in this call*: the service stops dead
                right after the emission's checkpoint, exactly like a
                process killed at a window boundary.
        """
        resumed = self._try_restore()
        if not resumed:
            self._reset_state()
        self._world = source.world
        self._emissions: list[WindowEmission] = []
        self._window_metrics: list[dict[str, float]] = []
        self._stop_after = stop_after_windows
        stopped = False
        events = source.events(start=self.position)
        feed_span = (
            self.telemetry.span(
                "stream.run",
                resumed=resumed,
                position=self.position,
            )
            if self.telemetry is not None
            else nullcontext()
        )
        try:
            with feed_span:
                self._loop(events)
                self._finalize_feed()
                if self.store is not None:
                    self.store.discard(["stream", self.checkpoint_key])
        except _Killed:
            stopped = True
        counters = dict(self.counters)
        counters["stream.events_shed_queue"] = float(self.queue.n_shed)
        return StreamRunResult(
            emissions=self._emissions,
            counters=counters,
            peak_open_windows=self.peak_open_windows,
            peak_queue_depth=self.queue.peak_depth,
            watermark=self.watermark.watermark,
            position=self.position,
            stopped=stopped,
            cost=self.cost,
            resilience_stats=dict(self.resilience_stats),
            window_metrics=self._window_metrics,
        )

    def _loop(self, events: Iterator[FrameEvent]) -> None:
        """The intake loop: stage → admit (policy) → process in order."""
        exhausted = False
        while True:
            if self.staged is None and not exhausted:
                self.staged = next(events, None)
                if self.staged is None:
                    exhausted = True
                else:
                    self.position += 1
            if self.staged is not None and (
                self.queue.depth == 0
                or self.staged.arrival_ms <= self.now_ms
            ):
                if (
                    self.queue.depth == 0
                    and self.staged.arrival_ms > self.now_ms
                ):
                    # Nothing to do until the next event arrives: idle.
                    self.now_ms = self.staged.arrival_ms
                if self.queue.admit(self.staged):
                    self.staged = None
                    continue
                # block policy at capacity: drain one, then re-offer.
                self._process(self.queue.pop())
                continue
            if self.queue.depth == 0:
                break
            self._process(self.queue.pop())

    def _process(self, event: FrameEvent) -> None:
        """Fold one arrived event into watermark/reorder/tracker state."""
        self._count("stream.frames_in")
        self.now_ms = max(self.now_ms, event.arrival_ms)
        watermark = self.watermark.observe(event.frame)
        if not self.reorder.add(event.frame, event.detections):
            self._count("stream.frames_shed_late")
        for frame, detections in self.reorder.release(watermark):
            if detections is None:
                self._count("stream.frames_missing")
                detections = []
            self._advance_tracking(frame, detections)
        if self.telemetry is not None:
            self.telemetry.set_gauge("stream.watermark", float(watermark))
            self.telemetry.set_gauge(
                "stream.watermark_lag_ms",
                self.now_ms - watermark * self.frame_interval_ms,
            )
            self.telemetry.set_gauge(
                "stream.queue_depth", float(self.queue.depth)
            )
            self.telemetry.set_gauge(
                "stream.open_windows", float(self.n_resident_windows)
            )
        self._mark_ready()
        self._drain_ready()

    def _advance_tracking(
        self, frame: int, detections: list[Detection]
    ) -> None:
        """Feed one final frame to the tracker; route closed tracks."""
        for track in self.stream.advance(frame, detections):
            self._route_track(track)

    def _route_track(self, track: Track) -> None:
        """File a closed track under its owning window's buffer."""
        owner = track.first_frame // self.stride
        if owner < self.next_emit:
            # Its window already closed (only possible for tracks that
            # outlive the L >= 2*L_max assumption): count, don't corrupt.
            self._count("stream.tracks_orphaned")
            return
        self.open_windows.setdefault(owner, []).append(track)
        self.peak_open_windows = max(
            self.peak_open_windows, self.n_resident_windows
        )
        if contracts.ENABLED:
            contracts.check_open_window_bound(
                self.n_resident_windows,
                self.max_open_windows,
                where="StreamingIngestionService",
            )

    def _mark_ready(self, feed_done: bool = False) -> None:
        """Detect windows whose track sets are now complete.

        A window's tracks are all closed once the released-frame
        frontier has passed its end by the tracker's ``close_lag``;
        readiness (and the backpressure/SLO verdict that decides
        degraded merging) is recorded *now*, so the verdict survives in
        the checkpoint and a resumed run replays the identical decision.
        """
        frontier = self.reorder.last_released
        earliest_open = self.stream.earliest_open_frame()
        while True:
            window = window_at(self.next_ready, self.window_length)
            if feed_done:
                if self.next_ready > max(
                    list(self.open_windows) + [self.next_emit - 1]
                ):
                    break
            elif frontier < window.end + self.stream.close_lag:
                break
            elif (
                earliest_open is not None
                and earliest_open // self.stride <= self.next_ready
            ):
                # A still-active track is owned by (or precedes) this
                # window — it outlived L/2 (the L ≥ 2·L_max margin);
                # defer closing until it dies so it is not orphaned.
                break
            lag_ms = self.now_ms - window.end * self.frame_interval_ms
            degraded = self.policy.should_degrade(self.queue.depth, lag_ms)
            if degraded != self._bp_active:
                # Count policy *transitions* (edges), not verdicts: a
                # long degraded stretch is one flip in, one flip out.
                self._bp_active = degraded
                self._count("stream.bp_transitions")
            self.ready.append(
                {
                    "index": self.next_ready,
                    "degraded": degraded,
                    "lag_ms": lag_ms,
                    "queue_depth": self.queue.depth,
                }
            )
            self.next_ready += 1

    def _drain_ready(self) -> None:
        """Merge and emit every ready window, in index order."""
        while self.ready:
            batch = list(self.ready)
            outcomes = self._merge_batch(batch)
            for entry in batch:
                self._emit(entry, outcomes.get(entry["index"]))

    def _tracks_of(self, index: int) -> list[Track]:
        """``T_index`` in canonical (first_frame, track_id) order."""
        tracks = list(self.open_windows.get(index, []))
        tracks.sort(key=lambda t: (t.first_frame, t.track_id))
        return tracks

    def _previous_tracks_of(self, index: int) -> list[Track]:
        """``T_{index-1}``: still buffered, or the retained last
        emission.

        The split is on the emission frontier, not buffer presence: a
        not-yet-emitted empty predecessor must yield ``[]``, never reach
        back to an older retained set (which would also make batched and
        resumed runs diverge).
        """
        if index == 0:
            return []
        if index - 1 >= self.next_emit:
            return self._tracks_of(index - 1)
        return self.prev_tracks

    def _merge_batch(self, batch: list[dict]) -> dict[int, WindowOutcome]:
        """Run every non-degraded, non-empty ready window through the
        engine (fanning out when several are ready at once)."""
        tasks = []
        for entry in batch:
            index = entry["index"]
            if entry["degraded"]:
                continue
            pairs = build_track_pairs(
                self._tracks_of(index), self._previous_tracks_of(index)
            )
            if not pairs:
                continue
            tasks.append(
                ShardTask(
                    shard_id=index,
                    world=self._world,
                    merger=detached_merger(self.merger),
                    cost_params=self.cost_params,
                    items=[
                        WindowTask(
                            index=index,
                            pairs=pairs,
                            seeds=single_window_seeds(
                                self.reid_seed, index, self.fault_profile
                            ),
                        )
                    ],
                    fault_profile=self.fault_profile,
                    resilience=self._effective_resilience(),
                    with_telemetry=self.telemetry is not None,
                    with_ledger=self.ledger is not None,
                )
            )
        if not tasks:
            return {}
        outcomes = ParallelExecutor(
            min(self.workers, len(tasks)) if self.workers > 1 else 1,
            self.parallel_backend,
        ).run(tasks)
        return {outcome.index: outcome for outcome in outcomes}

    def _emit(self, entry: dict, outcome: WindowOutcome | None) -> None:
        """Finalize one window: result, telemetry, eviction, checkpoint."""
        index = entry["index"]
        tracks = self._tracks_of(index)
        prev = self._previous_tracks_of(index)
        pairs = build_track_pairs(tracks, prev)
        if outcome is not None:
            result = outcome.result
            self.cost.merge_state(outcome.cost_state)
            for name, value in outcome.resilience_stats.items():
                self.resilience_stats[name] = (
                    self.resilience_stats.get(name, 0.0) + value
                )
            if self.telemetry is not None:
                self.telemetry.metrics.merge_delta(outcome.counters)
                self.telemetry.metrics.merge_histograms(outcome.histograms)
                self.telemetry.tracer.absorb(
                    [Span.from_dict(p) for p in outcome.spans]
                )
            if self.ledger is not None:
                self.ledger.absorb(outcome.ledger_events)
            self._window_metrics.append(dict(outcome.counters))
        else:
            if entry["degraded"] and pairs:
                result = spatial_fallback_result(self.merger, pairs, 0.0)
                self._count("stream.windows_degraded")
                if self.ledger is not None:
                    # Service-level verdict: the backpressure policy —
                    # not the merge algorithm — degraded this window.
                    self.ledger.begin_window(index)
                    self.ledger.record(
                        EVENT_DEGRADE,
                        reason="backpressure",
                        lag_ms=float(entry["lag_ms"]),
                        queue_depth=int(entry["queue_depth"]),
                    )
            else:
                result = empty_merge_result(self.merger)
            self._window_metrics.append({})
        if result.degraded and outcome is not None:
            self._count("stream.windows_degraded")

        self.now_ms += result.simulated_seconds * 1000.0
        emission = WindowEmission(
            index=index,
            window=window_at(index, self.window_length),
            n_tracks=len(tracks),
            n_prev_tracks=len(prev),
            result=result,
            pairs=pairs,
            lag_ms=entry["lag_ms"],
            queue_depth=entry["queue_depth"],
        )
        if self.telemetry is not None:
            self.telemetry.observe(
                "stream.merge_latency_ms",
                result.simulated_seconds * 1000.0,
            )
            self.telemetry.observe(
                "stream.emit_lag_ms",
                self.now_ms - emission.window.end * self.frame_interval_ms,
            )
            with self.telemetry.span(
                "stream.window",
                window_id=index,
                n_pairs=result.n_pairs,
                degraded=result.degraded,
                lag_ms=entry["lag_ms"],
            ):
                pass
        self._count("stream.windows_emitted")

        # Evict: the window's buffer becomes the retained previous set.
        self.open_windows.pop(index, None)
        self.prev_tracks = tracks
        self.ready = [e for e in self.ready if e["index"] != index]
        self.next_emit = index + 1
        self._emissions.append(emission)
        self._checkpoint()
        if (
            self._stop_after is not None
            and len(self._emissions) >= self._stop_after
        ):
            raise _Killed()

    def _finalize_feed(self) -> None:
        """End of feed: release every buffered frame, flush, close all."""
        pending = sorted(self.reorder.pending)
        if pending:
            released = self.reorder.release(pending[-1])
            for frame, detections in released:
                if detections is None:
                    self._count("stream.frames_missing")
                    detections = []
                self._advance_tracking(frame, detections)
        for track in self.stream.flush():
            self._route_track(track)
        self._mark_ready(feed_done=True)
        self._drain_ready()
