"""Feed events and the replayable synthetic source.

A streaming deployment consumes an *event log*: per-frame detection
payloads stamped with an arrival time, delivered in arrival order (which
is **not** frame order — network jitter reorders frames within a bounded
horizon).  :class:`SyntheticFeedSource` produces exactly that shape from
a simulated world, fully seeded: the same ``(world, seeds)`` always
yields the same event sequence, and :meth:`SyntheticFeedSource.events`
can start at any offset — the Kafka-style replayability the service's
durable restart relies on (a resumed service re-attaches at the offset
recorded in its checkpoint and sees the identical remainder).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.detect import Detection, NoisyDetector
from repro.faults.profiles import FaultProfile
from repro.synth.world import VideoGroundTruth

#: Default simulated inter-frame interval (≈ 30 fps).
DEFAULT_FRAME_INTERVAL_MS = 33.0


@dataclass(frozen=True)
class FrameEvent:
    """One frame's detections arriving at the service intake.

    Attributes:
        frame: the frame index the payload belongs to (event time).
        detections: the detector output for that frame (may be empty —
            a dropped frame still arrives, as a blank payload).
        arrival_ms: simulated arrival timestamp at the intake queue
            (processing time); sources emit events in arrival order.
    """

    frame: int
    detections: list[Detection] = field(default_factory=list)
    arrival_ms: float = 0.0

    def to_dict(self) -> dict:
        """Pure-JSON form (checkpointed while queued)."""
        return {
            "frame": self.frame,
            "detections": [d.to_dict() for d in self.detections],
            "arrival_ms": self.arrival_ms,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FrameEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            frame=int(payload["frame"]),
            detections=[
                Detection.from_dict(d) for d in payload["detections"]
            ],
            arrival_ms=float(payload["arrival_ms"]),
        )


class SyntheticFeedSource:
    """A seeded, offset-replayable event log over a simulated world.

    Per frame ``t`` the source runs the detector (same RNG discipline as
    :meth:`~repro.detect.detector.NoisyDetector.detect_video`, so frame
    payloads match the offline pipeline's), optionally blanks it through
    the fault profile's frame-drop injector, stamps it with arrival time
    ``t · frame_interval_ms + jitter`` where ``jitter ∈ [0,
    disorder_ms)``, and emits events in arrival order.  Because jitter
    is bounded, a frame can only be overtaken by frames at most
    ``ceil(disorder_ms / frame_interval_ms)`` slots behind it, so the
    internal reorder heap stays small and the stream is emitted lazily.

    Args:
        world: the simulated ground truth to detect over.
        detector: detection front-end (default configuration when
            omitted).
        detector_seed: seed of the detection noise.
        frame_interval_ms: nominal inter-frame arrival spacing.
        disorder_ms: arrival-jitter bound; ``0`` keeps the feed in
            frame order.
        disorder_seed: seed of the arrival jitter.
        fault_profile: optional chaos configuration; its frame-drop
            injector blanks a seeded subset of payloads upstream of the
            service, exactly as the offline pipeline applies it.
    """

    def __init__(
        self,
        world: VideoGroundTruth,
        detector: NoisyDetector | None = None,
        detector_seed: int = 2,
        frame_interval_ms: float = DEFAULT_FRAME_INTERVAL_MS,
        disorder_ms: float = 0.0,
        disorder_seed: int = 0,
        fault_profile: FaultProfile | None = None,
    ) -> None:
        if frame_interval_ms <= 0:
            raise ValueError("frame_interval_ms must be positive")
        if disorder_ms < 0:
            raise ValueError("disorder_ms must be non-negative")
        self.world = world
        self.detector = detector or NoisyDetector()
        self.detector_seed = detector_seed
        self.frame_interval_ms = frame_interval_ms
        self.disorder_ms = disorder_ms
        self.disorder_seed = disorder_seed
        self.fault_profile = fault_profile

    @property
    def n_events(self) -> int:
        """Total events the source will emit (one per world frame)."""
        return self.world.n_frames

    def events(self, start: int = 0) -> Iterator[FrameEvent]:
        """Yield the event log in arrival order, from offset ``start``.

        The full log is always regenerated internally (the RNG streams
        must advance identically whatever the offset), so
        ``events(start=n)`` yields exactly what an uninterrupted
        consumer would have seen after its first ``n`` events — the
        replay contract behind crash-recoverable restart.
        """
        if start < 0:
            raise ValueError("start must be non-negative")
        detect_rng = np.random.default_rng(self.detector_seed)
        jitter_rng = np.random.default_rng(self.disorder_seed)
        dropper = (
            self.fault_profile.frame_injector()
            if self.fault_profile is not None
            and self.fault_profile.frame_drop_rate > 0
            else None
        )
        heap: list[tuple[float, int, list[Detection]]] = []
        emitted = 0

        def pop_ready(horizon_ms: float) -> Iterator[FrameEvent]:
            nonlocal emitted
            while heap and heap[0][0] <= horizon_ms:
                arrival, frame, detections = heapq.heappop(heap)
                emitted += 1
                if emitted > start:
                    yield FrameEvent(frame, detections, arrival)

        for frame in range(self.world.n_frames):
            detections = self.detector.detect_frame(
                self.world, frame, detect_rng
            )
            if dropper is not None:
                detections = dropper.apply([detections])[0]
            jitter = (
                float(jitter_rng.uniform(0.0, self.disorder_ms))
                if self.disorder_ms > 0
                else 0.0
            )
            arrival = frame * self.frame_interval_ms + jitter
            heapq.heappush(heap, (arrival, frame, detections))
            # Every future frame arrives at ≥ (frame+1)·interval, so
            # anything at or before that horizon is safely ordered.
            yield from pop_ready((frame + 1) * self.frame_interval_ms)
        yield from pop_ready(float("inf"))
