"""Backpressure: the bounded intake queue and its overload policies.

When merge work falls behind the feed, events pile up at the intake.
The queue is bounded; what happens at the bound is a policy decision,
made deterministically from simulated state (queue depth and simulated
latency — never wall time):

* ``block`` — lossless: the upstream transport holds events until the
  queue drains (the service keeps consuming in order; depth never
  exceeds capacity).  Latency grows, nothing is dropped.
* ``drop-oldest`` — load shedding: the stalest queued frame is shed to
  admit the newest.  The tracker sees the shed frame as missing; track
  continuity degrades gracefully rather than latency growing without
  bound.
* ``degrade`` — quality shedding: every event is admitted (the queue
  may exceed capacity), but windows that close while the service is
  over capacity or beyond its latency SLO are merged with the
  spatial-prior fallback (``MergeResult.degraded``) instead of paying
  the ReID budget — trading recall for drain rate, exactly the
  degradation path the resilience layer already defines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.streaming.events import FrameEvent

#: The recognised policy modes.
MODES = ("block", "drop-oldest", "degrade")


@dataclass(frozen=True)
class BackpressurePolicy:
    """Declarative overload behaviour for the intake queue.

    Attributes:
        mode: one of :data:`MODES` (see module docstring).
        capacity: intake-queue bound, in events.
        latency_slo_ms: simulated latency target for ``degrade`` mode —
            a window closing more than this many simulated ms after its
            last frame's nominal arrival is merged degraded.  ``None``
            degrades on queue depth alone.
    """

    mode: str = "block"
    capacity: int = 64
    latency_slo_ms: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if self.latency_slo_ms is not None and self.latency_slo_ms < 0:
            raise ValueError("latency_slo_ms must be non-negative")

    def should_degrade(self, depth: int, lag_ms: float) -> bool:
        """Whether a window closing now must merge in degraded mode."""
        if self.mode != "degrade":
            return False
        if depth > self.capacity:
            return True
        return (
            self.latency_slo_ms is not None and lag_ms > self.latency_slo_ms
        )


class IntakeQueue:
    """The bounded FIFO between the feed and the service loop.

    Admission semantics are driven by a :class:`BackpressurePolicy`;
    all counters are part of the service's checkpointed state.

    Args:
        policy: the overload policy.
    """

    def __init__(self, policy: BackpressurePolicy) -> None:
        self.policy = policy
        self.events: deque[FrameEvent] = deque()
        self.n_enqueued = 0
        self.n_shed = 0
        self.peak_depth = 0

    @property
    def depth(self) -> int:
        """Current queue occupancy."""
        return len(self.events)

    @property
    def head(self) -> FrameEvent | None:
        """The oldest queued event, or ``None`` when empty."""
        return self.events[0] if self.events else None

    def admit(self, event: FrameEvent) -> bool:
        """Try to enqueue ``event`` under the policy.

        Returns:
            ``True`` when the event entered the queue (possibly after
            shedding the oldest entry under ``drop-oldest``); ``False``
            under ``block`` at capacity — the caller must drain one
            event and re-offer (upstream holds the event meanwhile).
        """
        if self.depth >= self.policy.capacity:
            if self.policy.mode == "block":
                return False
            if self.policy.mode == "drop-oldest":
                self.events.popleft()
                self.n_shed += 1
        self.events.append(event)
        self.n_enqueued += 1
        self.peak_depth = max(self.peak_depth, self.depth)
        return True

    def pop(self) -> FrameEvent:
        """Dequeue the oldest event."""
        return self.events.popleft()

    def state_dict(self) -> dict:
        """Pure-JSON state (queued events included)."""
        return {
            "events": [event.to_dict() for event in self.events],
            "n_enqueued": self.n_enqueued,
            "n_shed": self.n_shed,
            "peak_depth": self.peak_depth,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output."""
        self.events = deque(
            FrameEvent.from_dict(event) for event in state["events"]
        )
        self.n_enqueued = int(state["n_enqueued"])
        self.n_shed = int(state["n_shed"])
        self.peak_depth = int(state["peak_depth"])
