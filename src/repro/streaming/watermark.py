"""Watermark tracking and the in-order release buffer.

The service's disorder tolerance is the classic watermark construction:
the watermark trails the highest frame seen by ``allowed_lateness``
frames, and a frame is *final* once the watermark passes it — no
in-tolerance arrival can precede it anymore.  Final frames are released
to the tracker in strict frame order by :class:`ReorderBuffer`; frames
arriving after their slot was finalized are late beyond tolerance and
are shed (counted, never processed).  Both pieces are pure bookkeeping
with JSON state, so the service checkpoint captures them exactly.
"""

from __future__ import annotations

from repro import contracts
from repro.detect import Detection

#: Watermark value before any event has been observed.
UNSTARTED = -1


class WatermarkTracker:
    """Monotone low-watermark over observed frame indices.

    Args:
        allowed_lateness: how many frames a payload may trail the
            newest arrival and still be admitted (0 = in-order feeds
            only).
    """

    def __init__(self, allowed_lateness: int = 0) -> None:
        if allowed_lateness < 0:
            raise ValueError("allowed_lateness must be non-negative")
        self.allowed_lateness = allowed_lateness
        self.max_frame = UNSTARTED

    @property
    def watermark(self) -> int:
        """Highest frame index guaranteed final (may be ``UNSTARTED``)."""
        return self.max_frame - self.allowed_lateness

    def observe(self, frame: int) -> int:
        """Fold one arrival in; return the (never-regressing) watermark."""
        if frame < 0:
            raise ValueError("frame must be non-negative")
        before = self.watermark
        self.max_frame = max(self.max_frame, frame)
        if contracts.ENABLED:
            contracts.check_watermark_monotonic(
                before, self.watermark, where="WatermarkTracker"
            )
        return self.watermark

    def state_dict(self) -> dict:
        """Pure-JSON state."""
        return {
            "allowed_lateness": self.allowed_lateness,
            "max_frame": self.max_frame,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output."""
        self.allowed_lateness = int(state["allowed_lateness"])
        self.max_frame = int(state["max_frame"])


class ReorderBuffer:
    """Holds not-yet-final frames; releases them in strict frame order.

    Memory is bounded by construction: only frames above the watermark
    are ever resident, i.e. at most ``allowed_lateness + disorder span``
    payloads.
    """

    def __init__(self) -> None:
        self.pending: dict[int, list[Detection]] = {}
        self.last_released = UNSTARTED

    def __len__(self) -> int:
        return len(self.pending)

    def add(self, frame: int, detections: list[Detection]) -> bool:
        """Buffer one payload; return ``False`` for late/duplicate frames
        (already released or already buffered) that must be shed."""
        if frame <= self.last_released or frame in self.pending:
            return False
        self.pending[frame] = detections
        return True

    def release(
        self, watermark: int
    ) -> list[tuple[int, list[Detection] | None]]:
        """Pop every frame up to ``watermark`` in order.

        Frames that never arrived come back as ``(frame, None)`` so the
        caller can account for them and keep the tracker's frame clock
        aligned with event time.
        """
        released: list[tuple[int, list[Detection] | None]] = []
        while self.last_released < watermark:
            frame = self.last_released + 1
            released.append((frame, self.pending.pop(frame, None)))
            self.last_released = frame
        return released

    def state_dict(self) -> dict:
        """Pure-JSON state (pending payloads included)."""
        return {
            "last_released": self.last_released,
            "pending": {
                str(frame): [d.to_dict() for d in detections]
                for frame, detections in sorted(self.pending.items())
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output."""
        self.last_released = int(state["last_released"])
        self.pending = {
            int(frame): [Detection.from_dict(d) for d in detections]
            for frame, detections in state["pending"].items()
        }
