"""Resilience layer: retry, circuit breaking, validation, checkpointing.

Everything here operates on the *simulated* clock
(:class:`~repro.reid.cost.CostModel`) so that fault handling is part of
the reproducible experiment, not a source of wall-time nondeterminism.
See DESIGN.md §7 for the failure model this layer implements.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
)
from repro.resilience.checkpoint import (
    CheckpointStore,
    capture_scorer_state,
    encode_generator_state,
    restore_generator_state,
    restore_scorer_state,
)
from repro.resilience.errors import (
    REID_UNAVAILABLE,
    CircuitOpenError,
    CorruptFeatureError,
    ReidUnavailableError,
    ResilienceError,
    RetriesExhaustedError,
)
from repro.resilience.retry import RetryPolicy, retry_call
from repro.resilience.scorer import ResilienceConfig, ResilientReidScorer

__all__ = [
    "BreakerPolicy",
    "CheckpointStore",
    "CircuitBreaker",
    "CircuitOpenError",
    "CLOSED",
    "CorruptFeatureError",
    "HALF_OPEN",
    "OPEN",
    "REID_UNAVAILABLE",
    "ReidUnavailableError",
    "ResilienceConfig",
    "ResilienceError",
    "ResilientReidScorer",
    "RetriesExhaustedError",
    "RetryPolicy",
    "capture_scorer_state",
    "encode_generator_state",
    "restore_generator_state",
    "restore_scorer_state",
    "retry_call",
]
