"""Per-window checkpointing for crash recovery.

A checkpoint is a pure-JSON snapshot of *everything* a mid-window merge
depends on: posterior arrays, sampling bookkeeping, the merger's RNG,
the scorer's cache and cost counters, and the ReID model's RNG (fault
schedules included).  Because the capture is complete, a window killed
by a :class:`~repro.faults.errors.WindowCrashError` and resumed from its
last checkpoint reproduces the uninterrupted run *bit-exactly* — the
acceptance test for this subsystem.

:class:`CheckpointStore` keeps snapshots in memory (optionally mirrored
to JSON files) and always round-trips them through ``json`` so resuming
in-process behaves exactly like resuming after a process restart.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

from repro import contracts


def _encode_key(key) -> str:
    """Deterministic string form of a (possibly nested-tuple) window key."""
    return json.dumps(key, sort_keys=True, separators=(",", ":"))


def encode_generator_state(rng: np.random.Generator) -> dict:
    """JSON-able state of a numpy Generator (``bit_generator.state``)."""
    return dict(rng.bit_generator.state)


def restore_generator_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a Generator from :func:`encode_generator_state` output."""
    rng.bit_generator.state = state


def capture_scorer_state(scorer) -> dict:
    """Snapshot a scorer's cache, cost clock, model RNG and breaker.

    Works for both :class:`~repro.reid.scorer.ReidScorer` and
    :class:`~repro.resilience.scorer.ResilientReidScorer` (duck-typed on
    the optional ``breaker`` attribute and the model's optional
    ``rng_state`` method).
    """
    state: dict = {
        "cost": scorer.cost.state_dict(),
        "cache": [
            [list(key), [float(x) for x in feature]]
            for key, feature in scorer.cache.items()
        ],
    }
    model_state = getattr(scorer.model, "rng_state", None)
    state["model"] = model_state() if callable(model_state) else None
    breaker = getattr(scorer, "breaker", None)
    if breaker is not None:
        state["breaker"] = breaker.state_dict()
    return state


def restore_scorer_state(scorer, state: dict) -> None:
    """Restore a snapshot captured by :func:`capture_scorer_state`."""
    scorer.cost.load_state_dict(state["cost"])
    scorer.cache.clear()
    for key, feature in state["cache"]:
        scorer.cache.put(
            (int(key[0]), int(key[1])), np.asarray(feature, dtype=float)
        )
    if state.get("model") is not None:
        set_state = getattr(scorer.model, "set_rng_state", None)
        if callable(set_state):
            set_state(state["model"])
    breaker = getattr(scorer, "breaker", None)
    if breaker is not None and state.get("breaker") is not None:
        breaker.load_state_dict(state["breaker"])


class CheckpointStore:
    """Keyed store of window checkpoints, in memory and optionally on disk.

    Every ``save`` serializes the payload to JSON and every ``load``
    parses it back, so resumed state is exactly what a restarted process
    would see (tuples become lists, int keys become strings — callers
    must encode accordingly).  When runtime contracts are enabled, each
    save additionally verifies the payload deep-equals its own JSON
    round-trip.

    Args:
        path: optional directory for JSON file mirrors; created lazily.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._store: dict[str, str] = {}
        self.n_saves = 0
        self.n_loads = 0

    def __len__(self) -> int:
        return len(self._store)

    def _file_for(self, encoded: str) -> str:
        digest = hashlib.sha1(encoded.encode("utf-8")).hexdigest()[:16]
        return os.path.join(self.path, f"ckpt_{digest}.json")

    def save(self, key, state: dict) -> None:
        """Persist ``state`` under ``key``, replacing any prior snapshot."""
        payload = json.dumps(state, sort_keys=True)
        if contracts.ENABLED:
            contracts.check_checkpoint_roundtrip(
                state, json.loads(payload), where="CheckpointStore.save"
            )
        encoded = _encode_key(key)
        self._store[encoded] = payload
        self.n_saves += 1
        if self.path is not None:
            os.makedirs(self.path, exist_ok=True)
            with open(self._file_for(encoded), "w", encoding="utf-8") as fh:
                fh.write(payload)

    def load(self, key) -> dict | None:
        """Return the snapshot for ``key``, or ``None`` when absent."""
        encoded = _encode_key(key)
        payload = self._store.get(encoded)
        if payload is None and self.path is not None:
            file_path = self._file_for(encoded)
            if os.path.exists(file_path):
                with open(file_path, encoding="utf-8") as fh:
                    payload = fh.read()
        if payload is None:
            return None
        self.n_loads += 1
        return json.loads(payload)

    def discard(self, key) -> None:
        """Drop the snapshot for ``key`` (memory and disk), if present."""
        encoded = _encode_key(key)
        self._store.pop(encoded, None)
        if self.path is not None:
            file_path = self._file_for(encoded)
            if os.path.exists(file_path):
                os.remove(file_path)
