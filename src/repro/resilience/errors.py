"""Exceptions raised by the resilience layer itself.

These mark *handled* failure: the layer retried, backed off, or tripped
the breaker, and is now telling the caller that the dependency is
unavailable.  Callers (TMerge, the pipeline) catch
:data:`REID_UNAVAILABLE` to enter degraded mode instead of aborting.
"""

from __future__ import annotations


class ResilienceError(RuntimeError):
    """Base class for resilience-layer failures."""


class CircuitOpenError(ResilienceError):
    """The circuit breaker is open: calls fail fast without being tried."""


class ReidUnavailableError(ResilienceError):
    """Every retry of a ReID call failed; the dependency is down."""


class CorruptFeatureError(ResilienceError):
    """A scorer response came back non-finite (corrupted embedding).

    Raised by :class:`~repro.resilience.scorer.ResilientReidScorer` after
    it evicts the offending cache entries, so the retry re-extracts fresh
    features instead of replaying the poisoned cache.
    """


class RetriesExhaustedError(ResilienceError):
    """A :func:`~repro.resilience.retry.retry_call` ran out of attempts."""


#: The exception pair that means "ReID cannot be reached right now" —
#: what degraded-mode fallbacks catch.
REID_UNAVAILABLE = (CircuitOpenError, ReidUnavailableError)
