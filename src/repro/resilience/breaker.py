"""Circuit breaker over the simulated clock.

The classic three-state machine (closed → open → half-open), with one
repo-specific twist: "time" is the shared
:class:`~repro.reid.cost.CostModel` clock, so recovery timing is part of
the reproducible simulation rather than of wall time (REPRO002).  State
transitions are validated by :func:`repro.contracts.check_breaker_transition`
when runtime contracts are enabled.

States:

* ``closed`` — calls flow; consecutive failures are counted.
* ``open`` — calls fail fast (no charge); entered after
  ``failure_threshold`` consecutive failures; holds for
  ``recovery_timeout_ms`` of simulated time.
* ``half_open`` — after the timeout, trial calls are admitted; a success
  streak of ``trial_successes`` closes the breaker, any failure re-opens
  it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import contracts

#: Breaker state names (kept as plain strings so checkpoints serialize).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Circuit-breaker tuning.

    Attributes:
        failure_threshold: consecutive failures that trip the breaker.
        recovery_timeout_ms: simulated milliseconds the breaker stays
            open before admitting trial calls.
        trial_successes: consecutive half-open successes required to
            close the breaker again.
    """

    failure_threshold: int = 5
    recovery_timeout_ms: float = 1000.0
    trial_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.recovery_timeout_ms < 0:
            raise ValueError("recovery_timeout_ms must be non-negative")
        if self.trial_successes < 1:
            raise ValueError("trial_successes must be >= 1")


class CircuitBreaker:
    """The state machine guarding one unreliable dependency.

    Args:
        policy: thresholds and timings.
        clock: the :class:`~repro.reid.cost.CostModel` whose
            ``milliseconds`` drive recovery timing.
        telemetry: optional injected :class:`~repro.telemetry.Telemetry`
            mirroring state flips into ``breaker.opens`` /
            ``breaker.closes``.
    """

    def __init__(self, policy: BreakerPolicy, clock, telemetry=None) -> None:
        self.policy = policy
        self.clock = clock
        self.telemetry = telemetry
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trial_streak = 0
        self.opened_at_ms = 0.0
        self.n_opens = 0
        self.n_closes = 0

    def _transition(self, new_state: str) -> None:
        if new_state == self.state:
            return
        if contracts.ENABLED:
            contracts.check_breaker_transition(
                self.state, new_state, where="CircuitBreaker"
            )
        if new_state == OPEN:
            self.n_opens += 1
            self.opened_at_ms = float(self.clock.milliseconds)
            if self.telemetry is not None:
                self.telemetry.count("breaker.opens")
        if new_state == CLOSED:
            self.n_closes += 1
            if self.telemetry is not None:
                self.telemetry.count("breaker.closes")
        self.state = new_state

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        Reading the simulated clock here is what moves ``open`` to
        ``half_open`` once the recovery timeout has accrued.
        """
        if self.state == OPEN:
            elapsed = float(self.clock.milliseconds) - self.opened_at_ms
            if elapsed >= self.policy.recovery_timeout_ms:
                self.trial_streak = 0
                self._transition(HALF_OPEN)
            else:
                return False
        return True

    def record_success(self) -> None:
        """Note one successful call through the breaker."""
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.trial_streak += 1
            if self.trial_streak >= self.policy.trial_successes:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        """Note one failed call; may trip the breaker."""
        if self.state == HALF_OPEN:
            self._transition(OPEN)
            self.consecutive_failures = 1
            return
        self.consecutive_failures += 1
        if (
            self.state == CLOSED
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self._transition(OPEN)

    def state_dict(self) -> dict:
        """Restorable breaker state (for window checkpoints)."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trial_streak": self.trial_streak,
            "opened_at_ms": self.opened_at_ms,
            "n_opens": self.n_opens,
            "n_closes": self.n_closes,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a state captured by :meth:`state_dict`."""
        self.state = str(state["state"])
        self.consecutive_failures = int(state["consecutive_failures"])
        self.trial_streak = int(state["trial_streak"])
        self.opened_at_ms = float(state["opened_at_ms"])
        self.n_opens = int(state["n_opens"])
        self.n_closes = int(state["n_closes"])
