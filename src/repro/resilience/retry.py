"""Retry with exponential backoff on the *simulated* clock.

This module is the sanctioned retry primitive of the repo: lint rule
REPRO009 forbids hand-rolled ``while True: try/except`` retry loops in
library code precisely so every retry flows through here, where backoff
is charged to the :class:`~repro.reid.cost.CostModel` (never wall time —
REPRO002) and attempt accounting is uniform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.faults.errors import ReidFaultError
from repro.resilience.errors import RetriesExhaustedError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry a transient failure.

    Attributes:
        max_attempts: total tries, including the first (≥ 1).
        backoff_base_ms: simulated backoff before the second attempt.
        backoff_multiplier: exponential growth factor per further attempt.
        retry_on: exception types considered transient; anything else
            propagates immediately.
    """

    max_attempts: int = 3
    backoff_base_ms: float = 50.0
    backoff_multiplier: float = 2.0
    retry_on: tuple[type[BaseException], ...] = (ReidFaultError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_ms < 0:
            raise ValueError("backoff_base_ms must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not self.retry_on:
            raise ValueError("retry_on must name at least one exception")

    def backoff_ms(self, attempt: int) -> float:
        """Simulated backoff after the ``attempt``-th failure (1-based)."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        return self.backoff_base_ms * self.backoff_multiplier ** (attempt - 1)


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy,
    clock,
    on_failure: Callable[[BaseException], None] | None = None,
) -> T:
    """Call ``fn`` under ``policy``, charging backoff to ``clock``.

    Timeout-style faults that carry a ``penalty_ms`` attribute (see
    :class:`~repro.faults.errors.ReidTimeoutError`) additionally charge
    that penalty — a timed-out call is never free.

    Args:
        fn: the zero-argument operation to attempt.
        policy: retry configuration.
        clock: a :class:`~repro.reid.cost.CostModel` (or anything with
            ``charge_wait``).
        on_failure: optional observer invoked with each transient failure
            (the circuit breaker hooks in here).

    Returns:
        ``fn()``'s result from the first successful attempt.

    Raises:
        RetriesExhaustedError: when every attempt failed transiently; the
            last failure is chained as ``__cause__``.
    """
    last: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except policy.retry_on as exc:
            last = exc
            penalty = float(getattr(exc, "penalty_ms", 0.0))
            if penalty > 0:
                clock.charge_wait(penalty)
            if on_failure is not None:
                on_failure(exc)
            if attempt < policy.max_attempts:
                backoff = policy.backoff_ms(attempt)
                if backoff > 0:
                    clock.charge_wait(backoff)
    raise RetriesExhaustedError(
        f"{policy.max_attempts} attempts failed; last: {last!r}"
    ) from last
