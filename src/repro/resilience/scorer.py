"""The resilient ReID scorer: retry + circuit breaker + response validation.

:class:`ResilientReidScorer` wraps a
:class:`~repro.reid.scorer.ReidScorer` and presents the exact same
interface to the merging algorithms, adding three behaviours:

* **Retry with exponential backoff** — transient ReID faults
  (:class:`~repro.faults.errors.ReidFaultError`) are retried per a
  :class:`~repro.resilience.retry.RetryPolicy`; backoff and timeout
  penalties accrue on the simulated clock.
* **Circuit breaking** — consecutive failures trip a
  :class:`~repro.resilience.breaker.CircuitBreaker`; while it is open,
  calls raise :class:`~repro.resilience.errors.CircuitOpenError`
  immediately, which the algorithms catch to enter degraded mode.
* **Response validation** — non-finite distances or features (corrupted
  embeddings) are detected, the poisoned cache entries evicted, and the
  call retried so fresh features are extracted.

With no faults injected, every call is a single successful attempt with
zero extra clock charges — the wrapper is bit-transparent (the
fault-free pipeline produces byte-identical results with or without it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.resilience.breaker import BreakerPolicy, CircuitBreaker
from repro.resilience.errors import (
    CircuitOpenError,
    CorruptFeatureError,
    ReidUnavailableError,
)
from repro.resilience.retry import RetryPolicy


@dataclass(frozen=True)
class ResilienceConfig:
    """Bundled resilience tuning for the ingestion pipeline.

    Attributes:
        retry: per-call retry policy.
        breaker: circuit-breaker policy.
        max_window_retries: how many times a crashed window is re-run
            (ideally resuming from a checkpoint) before giving up.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    max_window_retries: int = 2

    def __post_init__(self) -> None:
        if self.max_window_retries < 0:
            raise ValueError("max_window_retries must be non-negative")


class ResilientReidScorer:
    """A drop-in :class:`~repro.reid.scorer.ReidScorer` that survives faults.

    Args:
        scorer: the wrapped scorer (owns model, cache and cost clock).
        retry: retry policy; defaults are sensible for the shipped
            fault profiles.
        breaker: circuit breaker; built from ``breaker_policy`` over the
            scorer's cost clock when not supplied.
        breaker_policy: policy for the auto-built breaker.
    """

    def __init__(
        self,
        scorer,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        breaker_policy: BreakerPolicy | None = None,
    ) -> None:
        self._scorer = scorer
        self.retry = retry or RetryPolicy()
        self.breaker = breaker or CircuitBreaker(
            breaker_policy or BreakerPolicy(),
            clock=scorer.cost,
            telemetry=getattr(scorer, "telemetry", None),
        )
        #: Armed per-window crash countdown (see
        #: :class:`~repro.faults.injectors.WindowCrashInjector`); the
        #: pipeline re-arms this before each window.
        self.crash_injector = None
        self.n_transient_faults = 0
        self.n_corruptions_detected = 0
        self._retry_on = tuple(self.retry.retry_on) + (CorruptFeatureError,)

    # ------------------------------------------------------------------
    # Delegated surface
    # ------------------------------------------------------------------
    @property
    def model(self) -> object:
        """The wrapped scorer's ReID model."""
        return self._scorer.model

    @property
    def cost(self) -> object:
        """The shared simulated cost clock."""
        return self._scorer.cost

    @property
    def cache(self) -> object:
        """The shared feature cache."""
        return self._scorer.cache

    @property
    def inner(self) -> object:
        """The wrapped (non-resilient) scorer."""
        return self._scorer

    @property
    def telemetry(self) -> object:
        """The wrapped scorer's telemetry sink (mergers read this)."""
        return getattr(self._scorer, "telemetry", None)

    # ------------------------------------------------------------------
    # The guarded call core
    # ------------------------------------------------------------------
    def _call(self, fn):
        """Run ``fn`` under crash seam, breaker and retry policy."""
        if self.crash_injector is not None:
            self.crash_injector.tick()
        policy = self.retry
        last: BaseException | None = None
        for attempt in range(1, policy.max_attempts + 1):
            if not self.breaker.allow():
                raise CircuitOpenError(
                    "circuit breaker open; ReID calls failing fast"
                ) from last
            try:
                result = fn()
            except self._retry_on as exc:
                last = exc
                self.n_transient_faults += 1
                if self.telemetry is not None:
                    self.telemetry.count("resilience.transient_faults")
                penalty = float(getattr(exc, "penalty_ms", 0.0))
                if penalty > 0:
                    self.cost.charge_wait(penalty)
                self.breaker.record_failure()
                if attempt < policy.max_attempts:
                    backoff = policy.backoff_ms(attempt)
                    if backoff > 0:
                        self.cost.charge_wait(backoff)
                continue
            self.breaker.record_success()
            return result
        raise ReidUnavailableError(
            f"ReID unavailable after {policy.max_attempts} attempts"
        ) from last

    def _corrupt(self, keys, what: str) -> CorruptFeatureError:
        """Evict poisoned cache entries and build the retryable error."""
        self.n_corruptions_detected += 1
        if self.telemetry is not None:
            self.telemetry.count("resilience.corruptions_detected")
        for key in keys:
            self.cache.discard(key)
        return CorruptFeatureError(
            f"non-finite {what}; evicted {len(keys)} cached feature(s)"
        )

    # ------------------------------------------------------------------
    # Scorer interface (validated + guarded)
    # ------------------------------------------------------------------
    def feature(self, track, index: int) -> np.ndarray:
        """Cached feature of one BBox, validated finite."""

        def attempt() -> np.ndarray:
            result = self._scorer.feature(track, index)
            if not np.all(np.isfinite(result)):
                raise self._corrupt([(track.track_id, index)], "feature")
            return result

        return self._call(attempt)

    def distance(self, track_a, index_a: int, track_b, index_b: int) -> float:
        """Raw BBox-pair distance, validated finite."""

        def attempt() -> float:
            result = self._scorer.distance(track_a, index_a, track_b, index_b)
            if not np.isfinite(result):
                raise self._corrupt(
                    [
                        (track_a.track_id, index_a),
                        (track_b.track_id, index_b),
                    ],
                    "distance",
                )
            return result

        return self._call(attempt)

    def distance_fresh(
        self, track_a, index_a: int, track_b, index_b: int
    ) -> float:
        """No-reuse distance (PS/LCB semantics), validated finite."""

        def attempt() -> float:
            result = self._scorer.distance_fresh(
                track_a, index_a, track_b, index_b
            )
            if not np.isfinite(result):
                self.n_corruptions_detected += 1
                if self.telemetry is not None:
                    self.telemetry.count("resilience.corruptions_detected")
                raise CorruptFeatureError("non-finite fresh distance")
            return result

        return self._call(attempt)

    def normalized_distance(
        self, track_a, index_a: int, track_b, index_b: int
    ) -> float:
        """The paper's d̃ ∈ [0, 1], through the guarded distance path."""
        from repro.reid.scorer import normalize_distance

        return normalize_distance(
            self.distance(track_a, index_a, track_b, index_b)
        )

    def track_features(
        self, track, batch_size: int | None = None
    ) -> np.ndarray:
        """All features of a track, validated finite row by row."""

        def attempt() -> np.ndarray:
            result = self._scorer.track_features(track, batch_size)
            bad_rows = np.nonzero(~np.all(np.isfinite(result), axis=1))[0]
            if bad_rows.size:
                raise self._corrupt(
                    [(track.track_id, int(i)) for i in bad_rows],
                    "track features",
                )
            return result

        return self._call(attempt)

    def pair_distance_matrix(
        self, track_a, track_b, batch_size: int | None = None
    ) -> np.ndarray:
        """All pairwise distances between two tracks, validated finite."""

        def attempt() -> np.ndarray:
            result = self._scorer.pair_distance_matrix(
                track_a, track_b, batch_size
            )
            if not np.all(np.isfinite(result)):
                bad_a = np.nonzero(~np.all(np.isfinite(result), axis=1))[0]
                bad_b = np.nonzero(~np.all(np.isfinite(result), axis=0))[0]
                keys = [(track_a.track_id, int(i)) for i in bad_a]
                keys += [(track_b.track_id, int(j)) for j in bad_b]
                raise self._corrupt(keys, "distance matrix")
            return result

        return self._call(attempt)

    def distances_batched(
        self,
        requests: list[tuple],
        batch_size: int,
    ) -> list[float]:
        """Batched distances (§IV-F), validated finite per request.

        The whole batch is one guarded call: the breaker records one
        success or failure per simulated GPU invocation (not per
        request), and validation is one vectorized ``isfinite`` pass.
        """
        if self.telemetry is not None:
            self.telemetry.count("resilience.batched_calls")

        def attempt() -> list[float]:
            result = self._scorer.distances_batched(requests, batch_size)
            bad = np.nonzero(~np.isfinite(np.asarray(result)))[0]
            if bad.size:
                if self.telemetry is not None:
                    self.telemetry.count(
                        "resilience.corrupt_batch_requests", int(bad.size)
                    )
                keys = []
                for i in bad:
                    track_a, ia, track_b, ib = requests[int(i)]
                    keys.append((track_a.track_id, ia))
                    keys.append((track_b.track_id, ib))
                raise self._corrupt(keys, "batched distances")
            return result

        return self._call(attempt)

    def distances_batched_fresh(
        self,
        requests: list[tuple],
        batch_size: int,
    ) -> list[float]:
        """Batched no-reuse distances, validated finite per request."""

        def attempt() -> list[float]:
            result = self._scorer.distances_batched_fresh(
                requests, batch_size
            )
            if any(not np.isfinite(d) for d in result):
                self.n_corruptions_detected += 1
                if self.telemetry is not None:
                    self.telemetry.count("resilience.corruptions_detected")
                raise CorruptFeatureError("non-finite fresh batch")
            return result

        return self._call(attempt)

    def normalized_distances_batched(
        self,
        requests: list[tuple],
        batch_size: int,
    ) -> list[float]:
        """Batched d̃ values through the guarded batched path."""
        from repro.reid.scorer import normalize_distances

        raw = self.distances_batched(requests, batch_size)
        if not raw:
            return []
        return [float(d) for d in normalize_distances(raw)]

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Resilience counters, for reporting."""
        return {
            "transient_faults": float(self.n_transient_faults),
            "corruptions_detected": float(self.n_corruptions_detected),
            "breaker_opens": float(self.breaker.n_opens),
            "breaker_closes": float(self.breaker.n_closes),
            "wait_ms": float(self.cost.wait_ms),
        }
