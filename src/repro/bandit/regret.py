"""Regret accounting (§IV-E).

The paper defines the average regret of a run as the mean excess of each
iteration's observed normalized distance over ``s̃_min``, the smallest true
normalized pair score.  :class:`RegretTracker` accumulates it online so the
efficiency-analysis bench can plot ``E[R(τ_max)]`` against the
``O(sqrt(|P_c| log τ / τ))`` bound.
"""

from __future__ import annotations

from collections.abc import Iterable


class RegretTracker:
    """Online average-regret accumulator.

    Args:
        s_min: the normalized score of the best (lowest-score) arm.
    """

    def __init__(self, s_min: float) -> None:
        if not 0.0 <= s_min <= 1.0:
            raise ValueError("s_min must be a normalized score in [0, 1]")
        self.s_min = s_min
        self._total = 0.0
        self._rounds = 0

    def record(self, observed: float) -> None:
        """Record one iteration's observed normalized distance d̃_τ."""
        self._total += observed - self.s_min
        self._rounds += 1

    def record_many(self, observed: Iterable[float]) -> None:
        """Record a batch of observations in order.

        Accumulates sequentially (float addition is not associative), so
        the running total is bit-identical to calling :meth:`record` once
        per element — the invariant the batched sampler's differential
        tests rely on.  Batches are at most ``batch_size`` long, so the
        Python loop is off the hot path.

        Args:
            observed: iterable of normalized distances d̃ (e.g. a numpy
                array of one batched iteration's observations).
        """
        for value in observed:
            self._total += float(value) - self.s_min
            self._rounds += 1

    @property
    def rounds(self) -> int:
        """Number of observations recorded so far."""
        return self._rounds

    @property
    def cumulative(self) -> float:
        """Σ_τ (d̃_τ − s̃_min)."""
        return self._total

    @property
    def average(self) -> float:
        """R(τ_max) = cumulative / τ_max; 0.0 before any round."""
        if self._rounds == 0:
            return 0.0
        return self._total / self._rounds

    def state_dict(self) -> dict[str, float]:
        """Restorable accumulator state (for window checkpoints)."""
        return {"total": self._total, "rounds": self._rounds}

    def load_state_dict(self, state: dict[str, float]) -> None:
        """Restore a state captured by :meth:`state_dict`."""
        self._total = float(state["total"])
        self._rounds = int(state["rounds"])

    @staticmethod
    def theoretical_bound(n_arms: int, rounds: int) -> float:
        """The §IV-E bound shape ``sqrt(|P_c| · log τ / τ)`` (up to O(1))."""
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if n_arms < 1:
            raise ValueError("n_arms must be >= 1")
        import math

        log_term = math.log(rounds) if rounds > 1 else 1.0
        return math.sqrt(n_arms * log_term / rounds)
