"""Normal–Normal posterior — the extension variant of TMerge.

The paper quantizes each normalized distance into a Bernoulli trial before
updating a Beta posterior.  A natural alternative (flagged in DESIGN.md as
an ablation) is to keep the continuous observation and maintain a Gaussian
posterior over the pair score with a known observation noise.  This module
provides that posterior; ``TMerge(posterior="gaussian")`` uses it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class GaussianPosterior:
    """Posterior over a mean with Normal prior and known obs. variance.

    Attributes:
        mean: posterior mean.
        variance: posterior variance of the mean.
        obs_variance: assumed variance of each observation.
        observations: number of observations folded in.
    """

    mean: float = 0.5
    variance: float = 0.25
    obs_variance: float = 0.05
    observations: int = 0

    def __post_init__(self) -> None:
        if self.variance <= 0 or self.obs_variance <= 0:
            raise ValueError("variances must be positive")

    def update(self, value: float) -> None:
        """Fold in one continuous observation (a normalized distance)."""
        precision = 1.0 / self.variance
        obs_precision = 1.0 / self.obs_variance
        new_precision = precision + obs_precision
        self.mean = (
            precision * self.mean + obs_precision * value
        ) / new_precision
        self.variance = 1.0 / new_precision
        self.observations += 1

    def sample(self, rng: np.random.Generator) -> float:
        """Draw θ ~ N(mean, variance)."""
        return float(rng.normal(self.mean, np.sqrt(self.variance)))

    def copy(self) -> "GaussianPosterior":
        """An independent copy of this posterior."""
        return GaussianPosterior(
            self.mean, self.variance, self.obs_variance, self.observations
        )
