"""Confidence-bound utilities: Hoeffding radii, UCB and LCB indices.

The same Hoeffding radius ``U = sqrt(2 log τ / n)`` serves two roles in the
paper: the pruning rule ULB (Algorithm 4) and the LCB competitor (§V-B),
which is UCB1 flipped for minimization.
"""

from __future__ import annotations

import math

import numpy as np


def hoeffding_radius(total_rounds: int, pulls: int) -> float:
    """The paper's ``U_{i,j} = sqrt(2 log τ / n_{i,j})``.

    Args:
        total_rounds: the current iteration count τ (≥ 1).
        pulls: how many times this arm has been sampled.

    Returns:
        The two-sided confidence radius; infinite for unpulled arms so they
        are never prematurely pruned and always preferred by LCB.
    """
    if total_rounds < 1:
        raise ValueError("total_rounds must be >= 1")
    if pulls < 0:
        raise ValueError("pulls must be non-negative")
    if pulls == 0:
        return math.inf
    log_term = math.log(total_rounds) if total_rounds > 1 else 0.0
    return math.sqrt(2.0 * log_term / pulls)


def hoeffding_radii(total_rounds: int, pulls: np.ndarray) -> np.ndarray:
    """Vectorized :func:`hoeffding_radius` over an array of pull counts.

    Bit-identical per element to the scalar function (same IEEE-754
    ``sqrt(2 log τ / n)`` evaluation; unpulled arms get ``inf``), so the
    ULB pruner can switch between them freely.

    Args:
        total_rounds: the current iteration count τ (≥ 1).
        pulls: per-arm sample counts (non-negative).

    Returns:
        A float64 array of confidence radii, ``inf`` where ``pulls == 0``.
    """
    if total_rounds < 1:
        raise ValueError("total_rounds must be >= 1")
    pulls = np.asarray(pulls)
    if np.any(pulls < 0):
        raise ValueError("pulls must be non-negative")
    log_term = math.log(total_rounds) if total_rounds > 1 else 0.0
    # np.maximum guards the 0/0 → nan case (τ=1 with unpulled arms);
    # the np.where then restores inf for every unpulled arm.
    radii = np.sqrt(2.0 * log_term / np.maximum(pulls, 1))
    return np.where(pulls > 0, radii, np.inf)


def ucb_index(mean: float, total_rounds: int, pulls: int) -> float:
    """Classic UCB1 index (maximization): mean + radius."""
    return mean + hoeffding_radius(total_rounds, pulls)


def lcb_index(mean: float, total_rounds: int, pulls: int) -> float:
    """Lower confidence bound (minimization): mean − radius.

    Arms with no pulls have index −∞, forcing initial exploration of every
    arm exactly as UCB1 does.
    """
    radius = hoeffding_radius(total_rounds, pulls)
    if math.isinf(radius):
        return -math.inf
    return mean - radius
