"""Beta–Bernoulli posteriors.

The Beta distribution is the conjugate prior to the Bernoulli likelihood:
after observing a success the posterior is ``Be(S+1, F)``, after a failure
``Be(S, F+1)`` — exactly the update loop of Algorithm 2 (lines 10-13).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BetaPosterior:
    """A Beta(S, F) posterior over a Bernoulli mean.

    Attributes:
        successes: the shape parameter ``S`` (pseudo-count of ``r = 1``).
        failures: the shape parameter ``F`` (pseudo-count of ``r = 0``).
    """

    successes: float = 1.0
    failures: float = 1.0

    def __post_init__(self) -> None:
        if self.successes <= 0 or self.failures <= 0:
            raise ValueError("Beta shape parameters must be positive")

    @property
    def mean(self) -> float:
        """Posterior mean ``S / (S + F)`` — the pair score estimate."""
        return self.successes / (self.successes + self.failures)

    @property
    def variance(self) -> float:
        """Posterior variance ``sf / ((s+f)^2 (s+f+1))``."""
        s, f = self.successes, self.failures
        total = s + f
        return (s * f) / (total * total * (total + 1.0))

    @property
    def pulls(self) -> float:
        """Number of observed trials beyond the Be(1, 1) prior mass."""
        return self.successes + self.failures - 2.0

    def update(self, outcome: int) -> None:
        """Fold in one Bernoulli outcome ``r ∈ {0, 1}``."""
        if outcome == 1:
            self.successes += 1.0
        elif outcome == 0:
            self.failures += 1.0
        else:
            raise ValueError(f"Bernoulli outcome must be 0 or 1, got {outcome}")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw θ ~ Be(S, F) (the Thompson sampling step)."""
        return float(rng.beta(self.successes, self.failures))

    def copy(self) -> "BetaPosterior":
        """An independent copy of this posterior."""
        return BetaPosterior(self.successes, self.failures)
