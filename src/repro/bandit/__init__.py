"""Multi-armed bandit machinery.

The paper casts polyonymous-pair identification as a minimization bandit:
each track pair is an arm, pulling an arm samples one BBox-pair distance,
and the goal is to concentrate pulls on the lowest-mean arms.  This package
provides the generic pieces:

* :class:`BetaPosterior` — conjugate Beta–Bernoulli posterior per arm.
* :class:`ThompsonSampler` — posterior sampling over a set of arms
  (minimization convention: pick the smallest sampled value).
* :class:`GaussianPosterior` — a Normal–Normal alternative used by the
  extension variant of TMerge.
* :func:`hoeffding_radius` — the confidence radius behind ULB pruning and
  the LCB competitor.
* :class:`RegretTracker` — average-regret accounting of §IV-E.
"""

from repro.bandit.beta import BetaPosterior
from repro.bandit.gaussian import GaussianPosterior
from repro.bandit.thompson import ThompsonSampler
from repro.bandit.confidence import hoeffding_radius, lcb_index, ucb_index
from repro.bandit.regret import RegretTracker

__all__ = [
    "BetaPosterior",
    "GaussianPosterior",
    "ThompsonSampler",
    "hoeffding_radius",
    "lcb_index",
    "ucb_index",
    "RegretTracker",
]
