"""Thompson sampling over a collection of arms (minimization convention).

The sampler is deliberately generic: arms are identified by hashable keys
and carry any posterior exposing ``sample(rng)`` and ``update(outcome)``.
TMerge instantiates it with one :class:`~repro.bandit.beta.BetaPosterior`
per track pair and asks for the arm with the *smallest* sampled value, since
small distances mean likely-polyonymous pairs.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Protocol

import numpy as np


class Posterior(Protocol):
    """Anything Thompson sampling can drive."""

    def sample(self, rng: np.random.Generator) -> float: ...

    def update(self, outcome) -> None: ...


class ThompsonSampler:
    """Posterior-sampling arm selection.

    Args:
        posteriors: mapping from arm key to posterior.
        rng: random source for posterior draws.
    """

    def __init__(
        self,
        posteriors: dict[Hashable, Posterior],
        rng: np.random.Generator,
    ) -> None:
        if not posteriors:
            raise ValueError("ThompsonSampler needs at least one arm")
        self.posteriors = dict(posteriors)
        self.rng = rng

    def select_min(
        self, eligible: Iterable[Hashable] | None = None
    ) -> Hashable:
        """Sample every eligible arm's posterior; return the arg-min arm.

        Args:
            eligible: arm keys to consider (default: all arms).  TMerge
                passes ``P_c \\ P_skip`` here once ULB starts pruning.
        """
        keys = list(eligible) if eligible is not None else list(self.posteriors)
        if not keys:
            raise ValueError("no eligible arms to select from")
        samples = [self.posteriors[k].sample(self.rng) for k in keys]
        return keys[int(np.argmin(samples))]

    def select_min_batch(
        self, count: int, eligible: Iterable[Hashable] | None = None
    ) -> list[Hashable]:
        """Select the ``count`` arms with the smallest sampled values.

        This is the batched (-B) selection rule: one posterior draw per arm,
        take the bottom-``count``.  Returns fewer arms when fewer are
        eligible.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        keys = list(eligible) if eligible is not None else list(self.posteriors)
        if not keys:
            return []
        samples = np.array(
            [self.posteriors[k].sample(self.rng) for k in keys]
        )
        take = min(count, len(keys))
        order = np.argpartition(samples, take - 1)[:take]
        # Preserve ascending sampled-value order for deterministic tests.
        order = order[np.argsort(samples[order])]
        return [keys[int(i)] for i in order]

    def update(self, key: Hashable, outcome) -> None:
        """Fold an observation into one arm's posterior."""
        self.posteriors[key].update(outcome)

    def posterior_means(self) -> dict[Hashable, float]:
        """Posterior mean per arm (used for the final top-K ranking)."""
        return {k: p.mean for k, p in self.posteriors.items()}
